//! Umbrella crate for the TOC reproduction workspace.
//!
//! Re-exports the public APIs of the member crates so that examples and
//! downstream users need a single dependency:
//!
//! ```
//! use toc_repro::prelude::*;
//! let dense = DenseMatrix::from_rows(vec![vec![1.0, 0.0], vec![1.0, 0.0]]);
//! let toc = TocBatch::encode(&dense);
//! assert_eq!(toc.decode(), dense);
//! ```

pub use toc_core as core;
pub use toc_data as data;
pub use toc_formats as formats;
pub use toc_gc as gc;
pub use toc_linalg as linalg;
pub use toc_ml as ml;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use toc_core::TocBatch;
    pub use toc_data::store::MiniBatchStore;
    pub use toc_data::synth::{DatasetPreset, SynthConfig};
    pub use toc_formats::{AnyBatch, MatrixBatch, Scheme};
    pub use toc_linalg::DenseMatrix;
    pub use toc_ml::mgd::{MgdConfig, ModelSpec, Trainer};
    pub use toc_ml::models::{LinearModel, NeuralNet};
    pub use toc_ml::LossKind;
}
