//! Classic byte-oriented LZW (Welch 1984), the scheme TOC is derived from.
//!
//! Included so tests and benches can contrast TOC against its ancestor: LZW
//! compresses a blob of bytes with no knowledge of tuple or column
//! boundaries (Table 3 of the paper), so nothing can be computed on its
//! output without full decompression.
//!
//! Codes are emitted as 16-bit little-endian words; the dictionary is reset
//! when it reaches 65536 entries (both sides perform the reset at the same
//! point, keeping the streams in sync).

use crate::GcError;
use std::collections::HashMap;

const MAX_DICT: u32 = u16::MAX as u32 + 1;

/// Compress `input` with byte-LZW.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out: Vec<u8> = Vec::with_capacity(8 + input.len() / 2);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());
    if input.is_empty() {
        return out;
    }
    // Dictionary: (prefix code, next byte) -> code. Codes 0..=255 are the
    // single bytes themselves.
    let mut dict: HashMap<(u32, u8), u32> = HashMap::new();
    let mut next_code: u32 = 256;
    let mut cur: u32 = input[0] as u32;
    for &b in &input[1..] {
        match dict.get(&(cur, b)) {
            Some(&code) => cur = code,
            None => {
                out.extend_from_slice(&(cur as u16).to_le_bytes());
                dict.insert((cur, b), next_code);
                next_code += 1;
                if next_code == MAX_DICT {
                    dict.clear();
                    next_code = 256;
                }
                cur = b as u32;
            }
        }
    }
    out.extend_from_slice(&(cur as u16).to_le_bytes());
    out
}

/// Decompress an LZW stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, GcError> {
    let mut out = Vec::new();
    decompress_into(input, &mut out)?;
    Ok(out)
}

/// [`decompress`] into a caller-owned buffer (cleared, then refilled),
/// reusing its allocation across calls.
pub fn decompress_into(input: &[u8], out: &mut Vec<u8>) -> Result<(), GcError> {
    out.clear();
    if input.len() < 8 {
        return Err(GcError::Corrupt("missing LZW header"));
    }
    let expected_len = u64::from_le_bytes(input[..8].try_into().unwrap()) as usize;
    let body = &input[8..];
    if !body.len().is_multiple_of(2) {
        return Err(GcError::Corrupt("odd LZW body length"));
    }
    if body.is_empty() {
        return if expected_len == 0 {
            Ok(())
        } else {
            Err(GcError::Corrupt("truncated LZW stream"))
        };
    }
    // `expected_len` comes from an untrusted header: every code emits at
    // least one byte and at most one dictionary string (< MAX_DICT bytes,
    // since entries grow by one byte per code between resets). Reject
    // headers outside those bounds before allocating, then reserve the
    // exact decoded size up front (capped so a hostile header cannot force
    // a huge allocation) so the emit loop never reallocates.
    let n_codes = body.len() / 2;
    if expected_len < n_codes || expected_len as u64 > (n_codes as u64) * MAX_DICT as u64 {
        return Err(GcError::Corrupt(
            "LZW declared length implausible for code count",
        ));
    }
    out.reserve(expected_len.min(64 << 20));

    // Dictionary as parent-pointer arrays (code -> (prefix, last byte)).
    let mut parent: Vec<u32> = (0..256).collect();
    let mut last: Vec<u8> = (0..=255).collect();
    let mut first_byte: Vec<u8> = (0..=255).collect();

    let read_code = |i: usize| -> u32 { u16::from_le_bytes([body[2 * i], body[2 * i + 1]]) as u32 };
    let n_codes = body.len() / 2;

    let emit = |out: &mut Vec<u8>, parent: &[u32], last: &[u8], code: u32| -> Result<(), GcError> {
        // Materialize the sequence for `code` by backtracking.
        let start = out.len();
        let mut cur = code;
        loop {
            out.push(last[cur as usize]);
            if cur < 256 {
                break;
            }
            cur = parent[cur as usize];
        }
        out[start..].reverse();
        Ok(())
    };

    let mut prev = read_code(0);
    if prev >= 256 {
        return Err(GcError::Corrupt("first LZW code must be a literal"));
    }
    emit(out, &parent, &last, prev)?;

    for i in 1..n_codes {
        let code = read_code(i);
        let next_code = parent.len() as u32;
        if code > next_code {
            return Err(GcError::Corrupt("LZW code beyond dictionary"));
        }
        if code == next_code {
            // KwKwK: the code being defined right now.
            let fb = first_byte[prev as usize];
            parent.push(prev);
            last.push(fb);
            first_byte.push(first_byte[prev as usize]);
            emit(out, &parent, &last, code)?;
        } else {
            emit(out, &parent, &last, code)?;
            parent.push(prev);
            last.push(first_byte[code as usize]);
            first_byte.push(first_byte[prev as usize]);
        }
        if parent.len() as u32 == MAX_DICT {
            parent.truncate(256);
            last.truncate(256);
            first_byte.truncate(256);
        }
        prev = code;
        if prev as usize >= parent.len() {
            return Err(GcError::Corrupt("LZW stream desynchronized after reset"));
        }
        // Fail fast on overrun instead of materializing the whole stream.
        if out.len() > expected_len {
            return Err(GcError::LengthMismatch {
                expected: expected_len as u64,
                got: out.len() as u64,
            });
        }
    }

    if out.len() != expected_len {
        return Err(GcError::LengthMismatch {
            expected: expected_len as u64,
            got: out.len() as u64,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"aaaa");
    }

    #[test]
    fn kwkwk_pattern() {
        // The classic pathological input for LZW decoders.
        roundtrip(b"abababababababab");
        roundtrip(b"aaabaaabaaab");
    }

    #[test]
    fn repetitive_text_compresses() {
        let data: Vec<u8> = b"the quick brown fox "
            .iter()
            .cycle()
            .take(10_000)
            .copied()
            .collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 3, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn random_bytes_roundtrip() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let data: Vec<u8> = (0..50_000).map(|_| rng.gen()).collect();
        roundtrip(&data);
    }

    #[test]
    fn dictionary_reset_path() {
        // Enough distinct digrams to overflow the 16-bit dictionary.
        let mut data = Vec::new();
        for i in 0..200_000u32 {
            data.extend_from_slice(&(i as u16 ^ (i >> 3) as u16).to_le_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    fn corrupt_streams_error() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[1, 0, 0, 0, 0, 0, 0, 0]).is_err()); // missing body
        let mut c = compress(b"hello hello hello");
        c.truncate(c.len() - 1);
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn declared_length_mismatch_is_structured() {
        let data = b"mississippi mississippi mississippi";
        let mut c = compress(data);
        c[..8].copy_from_slice(&(data.len() as u64 + 1).to_le_bytes());
        match decompress(&c) {
            Err(GcError::LengthMismatch { expected, got }) => {
                assert_eq!(expected, data.len() as u64 + 1);
                assert_eq!(got, data.len() as u64);
            }
            other => panic!("expected LengthMismatch, got {other:?}"),
        }
    }

    #[test]
    fn implausible_declared_length_rejected_before_allocating() {
        let mut c = compress(b"abcd");
        c[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(decompress(&c), Err(GcError::Corrupt(_))));
    }
}
