//! LSB-first bit stream reader/writer used by the deflate-like codec.
//!
//! The reader keeps up to 64 bits buffered and refills with a single
//! 8-byte little-endian word load whenever at least 8 input bytes remain
//! (the byte-at-a-time loop survives only as the stream-tail cold path).
//! On top of the buffered word it exposes a `peek_bits`/`consume` pair so
//! table-driven decoders can look at the next N bits *without* committing
//! to a symbol length, which is what makes the one-lookup Huffman fast
//! path in [`crate::huffman::Decoder`] possible.

use crate::GcError;

/// LSB-first bit writer (DEFLATE bit order).
#[derive(Default)]
pub struct BitWriter {
    out: Vec<u8>,
    bitbuf: u64,
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the low `n` bits of `bits` (n <= 32).
    #[inline]
    pub fn write_bits(&mut self, bits: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || bits < (1u32 << n));
        self.bitbuf |= (bits as u64) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.bitbuf & 0xFF) as u8);
            self.bitbuf >>= 8;
            self.nbits -= 8;
        }
    }

    /// Flush any partial byte (zero-padded) and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.bitbuf & 0xFF) as u8);
        }
        self.out
    }

    /// Bytes written so far (excluding the partial byte).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    pub fn is_empty(&self) -> bool {
        self.out.is_empty() && self.nbits == 0
    }
}

/// LSB-first bit reader.
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    bitbuf: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            bitbuf: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        if self.nbits <= 56 {
            if let Some(word) = self.bytes.get(self.pos..self.pos + 8) {
                // Fast path: one 64-bit load; accept as many whole bytes as
                // fit above the bits already buffered. `take * 8` never
                // exceeds `64 - nbits`, so the shift drops nothing we keep.
                let w = u64::from_le_bytes(word.try_into().unwrap());
                let take = ((64 - self.nbits) / 8) as usize;
                self.bitbuf |= w << self.nbits;
                self.pos += take;
                self.nbits += take as u32 * 8;
                return;
            }
        }
        self.refill_tail();
    }

    /// Byte-at-a-time refill for the last < 8 bytes of the stream.
    #[cold]
    fn refill_tail(&mut self) {
        while self.nbits <= 56 && self.pos < self.bytes.len() {
            self.bitbuf |= (self.bytes[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `n` bits (n <= 32). Errors on exhausted input.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u32, GcError> {
        debug_assert!(n <= 32);
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(GcError::Corrupt("bit stream exhausted"));
            }
        }
        let mask = if n == 32 { u64::MAX } else { (1u64 << n) - 1 };
        let v = (self.bitbuf & mask) as u32;
        self.bitbuf >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<u32, GcError> {
        self.read_bits(1)
    }

    /// Look at the next `n` bits (n <= 32) without consuming them. Near the
    /// end of the stream fewer bits may remain; missing high bits read as
    /// zero (callers pair this with [`Self::consume`], which still enforces
    /// availability when a symbol length is committed).
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u32 {
        debug_assert!(n <= 32);
        if self.nbits < n {
            self.refill();
        }
        let mask = if n == 32 { u64::MAX } else { (1u64 << n) - 1 };
        (self.bitbuf & mask) as u32
    }

    /// Consume `n` bits previously seen via [`Self::peek_bits`].
    #[inline]
    pub fn consume(&mut self, n: u32) -> Result<(), GcError> {
        if self.nbits < n {
            return Err(GcError::Corrupt("bit stream exhausted"));
        }
        self.bitbuf >>= n;
        self.nbits -= n;
        Ok(())
    }

    /// Bits currently buffered (after a refill attempt). Only used by
    /// diagnostics and tests; the hot paths never call it.
    pub fn buffered_bits(&mut self) -> u32 {
        self.refill();
        self.nbits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let mut w = BitWriter::new();
        let vals = [
            (1u32, 1u32),
            (0, 1),
            (5, 3),
            (255, 8),
            (1023, 10),
            (0xFFFF_FFFF, 32),
            (7, 5),
        ];
        for &(v, n) in &vals {
            w.write_bits(v, n);
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &(v, n) in &vals {
            assert_eq!(r.read_bits(n).unwrap(), v);
        }
    }

    #[test]
    fn exhausted_reader_errors() {
        let buf = [0xABu8];
        let mut r = BitReader::new(&buf);
        assert!(r.read_bits(8).is_ok());
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn lsb_first_order() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b0, 1);
        w.write_bits(0b11, 2);
        let buf = w.finish();
        assert_eq!(buf, vec![0b0000_1101]);
    }
}
