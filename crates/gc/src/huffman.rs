//! Length-limited canonical Huffman coding used by the deflate-like codec.

use crate::bitio::{BitReader, BitWriter};
use crate::GcError;

/// Build Huffman code lengths for `freqs`, capped at `max_len` bits.
///
/// Classic heap-based Huffman followed by a Kraft-sum repair pass when the
/// cap is exceeded (the resulting code stays prefix-free; optimality loss at
/// depth 15 is negligible for these alphabets).
pub fn build_lengths(freqs: &[u64], max_len: u8) -> Vec<u8> {
    let n = freqs.len();
    let mut lengths = vec![0u8; n];
    let live: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match live.len() {
        0 => return lengths,
        1 => {
            lengths[live[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Heap Huffman over (freq, node id); internal nodes get ids >= n.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut parent: Vec<usize> = vec![usize::MAX; n + live.len()];
    let mut next_internal = n;
    for &i in &live {
        heap.push(Reverse((freqs[i], i)));
    }
    while heap.len() > 1 {
        let Reverse((f1, a)) = heap.pop().unwrap();
        let Reverse((f2, b)) = heap.pop().unwrap();
        let id = next_internal;
        next_internal += 1;
        parent[a] = id;
        parent[b] = id;
        heap.push(Reverse((f1 + f2, id)));
    }
    let root = heap.pop().unwrap().0 .1;
    for &i in &live {
        let mut d = 0u32;
        let mut cur = i;
        while cur != root {
            cur = parent[cur];
            d += 1;
        }
        lengths[i] = d.min(max_len as u32) as u8;
    }

    // Kraft repair: the cap may have made the code over-full. Scale the
    // Kraft sum by 2^max_len so it is integral.
    let budget: u64 = 1u64 << max_len;
    let kraft = |lengths: &[u8]| -> u64 {
        lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max_len - l))
            .sum()
    };
    let mut k = kraft(&lengths);
    while k > budget {
        // Deepen the least-frequent symbol that is not yet at the cap.
        let mut best: Option<usize> = None;
        for &i in &live {
            if lengths[i] < max_len && best.is_none_or(|b| (freqs[i], i) < (freqs[b], b)) {
                best = Some(i);
            }
        }
        let b = best.expect("kraft repair always has a candidate");
        k -= 1u64 << (max_len - lengths[b] - 1);
        lengths[b] += 1;
    }
    lengths
}

/// Canonical Huffman encoder: per-symbol `(reversed code bits, length)`.
///
/// Codes are assigned in (length, symbol) order and written LSB-first via a
/// bit reversal, so the decoder can consume them one bit at a time in
/// MSB-first canonical order.
pub struct Encoder {
    code: Vec<u32>,
    len: Vec<u8>,
}

impl Encoder {
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let max = lengths.iter().copied().max().unwrap_or(0);
        let mut bl_count = vec![0u32; max as usize + 1];
        for &l in lengths {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        let mut next_code = vec![0u32; max as usize + 2];
        let mut code = 0u32;
        for bits in 1..=max as usize {
            code = (code + bl_count[bits - 1]) << 1;
            next_code[bits] = code;
        }
        let mut codes = vec![0u32; lengths.len()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                codes[sym] = c.reverse_bits() >> (32 - l as u32);
            }
        }
        Self {
            code: codes,
            len: lengths.to_vec(),
        }
    }

    /// Write symbol `sym` to the bit stream.
    #[inline]
    pub fn write(&self, w: &mut BitWriter, sym: usize) {
        debug_assert!(self.len[sym] > 0, "symbol {sym} has no code");
        w.write_bits(self.code[sym], self.len[sym] as u32);
    }

    /// Code length of `sym` (0 = unused).
    pub fn length(&self, sym: usize) -> u8 {
        self.len[sym]
    }
}

/// Width of the primary decode lookup table. Covers every code of length
/// <= 11 with a single peek + load; only the rare deep codes (length 12..=15
/// of skewed alphabets) fall back to the bitwise walk.
const TABLE_BITS: u32 = 11;

/// Canonical Huffman decoder.
///
/// The hot path is a single `TABLE_BITS`-bit peek into a flat lookup table
/// whose entries pack `symbol | (code_len << 12)`; every table slot whose low
/// bits spell a short code (LSB-first, as written by [`Encoder`]) holds that
/// code's symbol, replicated across all settings of the unconsumed high bits.
/// Codes longer than `TABLE_BITS` hit a zero entry and take the out-of-line
/// bit-at-a-time walk over the per-length tables.
pub struct Decoder {
    max_len: u8,
    /// `first_code[l]`: canonical code value of the first code of length l.
    first_code: Vec<u32>,
    /// `count[l]`: number of codes of length l.
    count: Vec<u32>,
    /// `offset[l]`: index of that first code's symbol in `symbols`.
    offset: Vec<u32>,
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u32>,
    /// Primary lookup: `sym | (len << 12)`; 0 = overlong or invalid prefix.
    table: Vec<u16>,
}

impl Decoder {
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, GcError> {
        let max = lengths.iter().copied().max().unwrap_or(0);
        let mut count = vec![0u32; max as usize + 1];
        for &l in lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // Verify the Kraft inequality so decoding cannot run off the rails.
        if max > 0 {
            let mut kraft: u64 = 0;
            for (l, &c) in count.iter().enumerate().skip(1) {
                kraft += (c as u64) << (max as usize - l);
            }
            if kraft > 1u64 << max {
                return Err(GcError::Corrupt("over-full Huffman code"));
            }
        }
        let mut first_code = vec![0u32; max as usize + 1];
        let mut offset = vec![0u32; max as usize + 1];
        let mut code = 0u32;
        let mut sym_off = 0u32;
        for l in 1..=max as usize {
            code = (code + if l > 1 { count[l - 1] } else { 0 }) << 1;
            first_code[l] = code;
            offset[l] = sym_off;
            sym_off += count[l];
        }
        let mut symbols: Vec<u32> = Vec::with_capacity(sym_off as usize);
        for l in 1..=max {
            for (sym, &sl) in lengths.iter().enumerate() {
                if sl == l {
                    symbols.push(sym as u32);
                }
            }
        }

        // Primary table: walk symbols in canonical (length, symbol) order,
        // mirroring the encoder's code assignment, and stamp each short
        // code's entry into every slot that shares its low `l` bits.
        let mut table = vec![0u16; 1 << TABLE_BITS];
        let mut next_code = first_code.clone();
        for (sym, &l) in lengths.iter().enumerate() {
            if l == 0 {
                continue;
            }
            let c = next_code[l as usize];
            next_code[l as usize] += 1;
            if l as u32 > TABLE_BITS {
                continue;
            }
            debug_assert!(sym < (1 << 12) && (l as u32) <= 15);
            let rev = (c.reverse_bits() >> (32 - l as u32)) as usize;
            let entry = sym as u16 | ((l as u16) << 12);
            let step = 1usize << l;
            let mut idx = rev;
            while idx < table.len() {
                table[idx] = entry;
                idx += step;
            }
        }

        Ok(Self {
            max_len: max,
            first_code,
            count,
            offset,
            symbols,
            table,
        })
    }

    /// Decode one symbol: peek `TABLE_BITS` bits, one table load, consume
    /// the code length the entry declares. Overlong/invalid prefixes take
    /// the cold bitwise walk.
    #[inline]
    pub fn read(&self, r: &mut BitReader<'_>) -> Result<u32, GcError> {
        let peek = r.peek_bits(TABLE_BITS);
        let entry = self.table[peek as usize];
        let len = (entry >> 12) as u32;
        if len != 0 {
            r.consume(len)?;
            return Ok((entry & 0x0FFF) as u32);
        }
        self.read_overlong(r)
    }

    #[cold]
    fn read_overlong(&self, r: &mut BitReader<'_>) -> Result<u32, GcError> {
        self.read_bitwise(r)
    }

    /// Bit-at-a-time decode over the per-length tables. This is both the
    /// cold fallback for codes longer than `TABLE_BITS` and the scalar
    /// reference path the codec-speed gate measures the table decoder
    /// against.
    #[doc(hidden)]
    #[inline]
    pub fn read_bitwise(&self, r: &mut BitReader<'_>) -> Result<u32, GcError> {
        let mut code = 0u32;
        for l in 1..=self.max_len as usize {
            code = (code << 1) | r.read_bit()?;
            let idx = code.wrapping_sub(self.first_code[l]);
            if idx < self.count[l] {
                return Ok(self.symbols[(self.offset[l] + idx) as usize]);
            }
        }
        Err(GcError::Corrupt("invalid Huffman code"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_symbols(freqs: &[u64], stream: &[usize], max_len: u8) {
        let lengths = build_lengths(freqs, max_len);
        assert!(lengths.iter().all(|&l| l <= max_len));
        let enc = Encoder::from_lengths(&lengths);
        let mut w = BitWriter::new();
        for &s in stream {
            enc.write(&mut w, s);
        }
        let buf = w.finish();
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let mut r = BitReader::new(&buf);
        for &s in stream {
            assert_eq!(dec.read(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn simple_alphabet() {
        let freqs = [45u64, 13, 12, 16, 9, 5];
        let stream: Vec<usize> = (0..600).map(|i| i % 6).collect();
        roundtrip_symbols(&freqs, &stream, 15);
    }

    #[test]
    fn single_symbol_gets_length_one() {
        let lengths = build_lengths(&[0, 7, 0], 15);
        assert_eq!(lengths, vec![0, 1, 0]);
        roundtrip_symbols(&[0, 7, 0], &[1, 1, 1], 15);
    }

    #[test]
    fn skewed_frequencies_hit_length_cap() {
        // Fibonacci-like frequencies force deep trees; cap at 8.
        let mut freqs = vec![0u64; 24];
        let mut a = 1u64;
        let mut b = 1u64;
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_lengths(&freqs, 8);
        assert!(lengths.iter().all(|&l| l > 0 && l <= 8));
        // Kraft inequality must hold.
        let kraft: u64 = lengths.iter().map(|&l| 1u64 << (8 - l)).sum();
        assert!(kraft <= 1 << 8);
        let stream: Vec<usize> = (0..500).map(|i| i % 24).collect();
        roundtrip_symbols(&freqs, &stream, 8);
    }

    #[test]
    fn lengths_are_optimal_for_uniform() {
        let lengths = build_lengths(&[10, 10, 10, 10], 15);
        assert_eq!(lengths, vec![2, 2, 2, 2]);
    }

    #[test]
    fn over_full_code_rejected() {
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_err());
        assert!(Decoder::from_lengths(&[1, 1]).is_ok());
    }

    #[test]
    fn deep_codes_take_the_overlong_path() {
        // Uncapped Fibonacci frequencies over 24 symbols force code lengths
        // past TABLE_BITS (up to the cap of 15), so decoding exercises both
        // the primary table and the bitwise fallback in one stream.
        let mut freqs = vec![0u64; 24];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_lengths(&freqs, 15);
        assert!(
            lengths.iter().any(|&l| l as u32 > super::TABLE_BITS),
            "workload must include overlong codes: {lengths:?}"
        );
        let stream: Vec<usize> = (0..2000).map(|i| (i * 7) % 24).collect();
        roundtrip_symbols(&freqs, &stream, 15);
    }

    #[test]
    fn table_and_bitwise_paths_agree() {
        let freqs = [45u64, 13, 12, 16, 9, 5, 2, 1];
        let lengths = build_lengths(&freqs, 15);
        let enc = Encoder::from_lengths(&lengths);
        let stream: Vec<usize> = (0..997).map(|i| (i * 3) % 8).collect();
        let mut w = BitWriter::new();
        for &s in &stream {
            enc.write(&mut w, s);
        }
        let buf = w.finish();
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let mut fast = BitReader::new(&buf);
        let mut slow = BitReader::new(&buf);
        for &s in &stream {
            assert_eq!(dec.read(&mut fast).unwrap() as usize, s);
            assert_eq!(dec.read_bitwise(&mut slow).unwrap() as usize, s);
        }
    }

    #[test]
    fn empty_freqs() {
        let lengths = build_lengths(&[0, 0, 0], 15);
        assert_eq!(lengths, vec![0, 0, 0]);
        assert!(Decoder::from_lengths(&lengths).is_ok());
    }
}
