//! Tabled range-ANS (rANS) entropy coder with per-chunk adaptive models.
//!
//! This is the "modern entropy coding" leg of the codec matrix (pcodec
//! class): the input is split into fixed-size chunks, each chunk gets its
//! own byte-frequency model normalized to a power-of-two total, symbols are
//! encoded **in reverse** through two interleaved 64-bit rANS states, and
//! the decoder runs forward with a branchless slot-table inner loop — one
//! table load per symbol, no bit-at-a-time tree walk and no code-length
//! branch.
//!
//! Container layout:
//!
//! ```text
//! u64 total original length
//! per chunk:
//!   u32 raw_len               (1 ..= CHUNK bytes this chunk decodes to)
//!   u16 n_present             (distinct byte values in the chunk)
//!   n_present × (u8 sym, u16 freq)   symbols strictly ascending,
//!                                    freqs >= 1 and summing to SCALE
//!   u32 n_words               (renormalization words)
//!   u64 state0, u64 state1    (final encoder states)
//!   n_words × u32 LE          (renorm words, already reversed so the
//!                              decoder consumes them front-to-back)
//! ```
//!
//! ## Why decoding cannot panic on corrupt input
//!
//! The crate forbids `unsafe` and the mutation-sweep tests run in debug
//! builds, so arithmetic overflow must be impossible, not just unlikely.
//! The freq table is validated (freqs >= 1, summing to exactly `SCALE`)
//! before any state math, and the initial states are required to sit in
//! `[LOWER, 1 << 63)`. From `x < 2^63` the decode step yields
//! `freq * (x >> 12) + bias <= 2^12 * (2^51 - 1) + (2^12 - 1) < 2^63`,
//! and renormalization only runs while `x < LOWER = 2^31`, so
//! `(x << 32) | word < 2^63`. The invariant holds inductively and every
//! operation stays in range.

use crate::GcError;

/// Frequency precision: per-chunk models are normalized to `1 << SCALE_BITS`.
pub const SCALE_BITS: u32 = 12;
const SCALE: u32 = 1 << SCALE_BITS;
/// Lower bound of the normalized state interval.
const LOWER: u64 = 1 << 31;
/// States must stay below this for overflow-free decode steps (see module
/// docs); the encoder's renormalization guarantees it, the decoder checks it.
const STATE_MAX: u64 = 1 << 63;
/// Default chunk size: big enough to amortize the table header, small
/// enough that the model adapts to local statistics.
pub const CHUNK: usize = 64 * 1024;

/// Normalize a byte histogram to frequencies summing to exactly `SCALE`,
/// with every present symbol getting at least 1.
fn normalize(hist: &[u64; 256], total: u64) -> [u32; 256] {
    debug_assert!(total > 0);
    let mut freqs = [0u32; 256];
    let mut sum: u32 = 0;
    for i in 0..256 {
        if hist[i] > 0 {
            let f = ((hist[i] as u128 * SCALE as u128) / total as u128) as u32;
            freqs[i] = f.max(1);
            sum += freqs[i];
        }
    }
    // Largest-remainder style repair: shave over-represented symbols first
    // (never below 1), then hand any deficit to the most frequent symbol.
    while sum > SCALE {
        let mut best = usize::MAX;
        for i in 0..256 {
            if freqs[i] > 1 && (best == usize::MAX || freqs[i] > freqs[best]) {
                best = i;
            }
        }
        freqs[best] -= 1;
        sum -= 1;
    }
    if sum < SCALE {
        let mut best = 0;
        for i in 1..256 {
            if freqs[i] > freqs[best] {
                best = i;
            }
        }
        freqs[best] += SCALE - sum;
    }
    freqs
}

/// Compress `input` with the default chunk size.
pub fn compress(input: &[u8]) -> Vec<u8> {
    compress_chunked(input, CHUNK)
}

/// Compress `input` with an explicit chunk size (clamped to a sane range).
pub fn compress_chunked(input: &[u8], chunk_size: usize) -> Vec<u8> {
    let chunk_size = chunk_size.clamp(1024, 1 << 22);
    let mut out = Vec::with_capacity(16 + input.len() / 2);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());
    for chunk in input.chunks(chunk_size) {
        encode_chunk(chunk, &mut out);
    }
    out
}

fn encode_chunk(chunk: &[u8], out: &mut Vec<u8>) {
    let mut hist = [0u64; 256];
    for &b in chunk {
        hist[b as usize] += 1;
    }
    let freqs = normalize(&hist, chunk.len() as u64);
    let mut cum = [0u32; 256];
    let mut acc = 0u32;
    for i in 0..256 {
        cum[i] = acc;
        acc += freqs[i];
    }

    // Encode in reverse through two interleaved states so the decoder can
    // run forward alternating the same way.
    let mut states = [LOWER, LOWER];
    let mut words: Vec<u32> = Vec::with_capacity(chunk.len() / 3 + 4);
    for i in (0..chunk.len()).rev() {
        let s = chunk[i] as usize;
        let f = freqs[s] as u64;
        let x = &mut states[i & 1];
        // Emit 32-bit words until the encode step cannot push the state
        // past STATE_MAX: x' < (x_max/f)*f/... — the classic rANS bound.
        let x_max = ((LOWER >> SCALE_BITS) * f) << 32;
        while *x >= x_max {
            words.push(*x as u32);
            *x >>= 32;
        }
        *x = ((*x / f) << SCALE_BITS) + (*x % f) + cum[s] as u64;
    }
    // The decoder consumes renorm words in exactly the reverse order they
    // were pushed; reverse once here so it can stream front-to-back.
    words.reverse();

    out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
    let n_present = freqs.iter().filter(|&&f| f > 0).count() as u16;
    out.extend_from_slice(&n_present.to_le_bytes());
    for (sym, &f) in freqs.iter().enumerate() {
        if f > 0 {
            out.push(sym as u8);
            out.extend_from_slice(&(f as u16).to_le_bytes());
        }
    }
    out.extend_from_slice(&(words.len() as u32).to_le_bytes());
    out.extend_from_slice(&states[0].to_le_bytes());
    out.extend_from_slice(&states[1].to_le_bytes());
    for w in &words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, GcError> {
    let mut out = Vec::new();
    decompress_into(input, &mut out)?;
    Ok(out)
}

/// Byte cursor over the untrusted container.
struct Rd<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], GcError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or(GcError::Corrupt("truncated ANS stream"))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, GcError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, GcError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, GcError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, GcError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Per-chunk decode tables: one entry per slot in `0..SCALE`.
struct SlotTables {
    sym: Vec<u8>,
    freq: Vec<u16>,
    bias: Vec<u16>,
}

fn read_freq_table(r: &mut Rd<'_>) -> Result<SlotTables, GcError> {
    let n_present = r.u16()? as usize;
    if n_present == 0 || n_present > 256 {
        return Err(GcError::Corrupt("ANS model has no symbols"));
    }
    let mut sym = vec![0u8; SCALE as usize];
    let mut freq = vec![0u16; SCALE as usize];
    let mut bias = vec![0u16; SCALE as usize];
    let mut cum: u32 = 0;
    let mut prev_sym: i32 = -1;
    for _ in 0..n_present {
        let s = r.u8()?;
        let f = r.u16()? as u32;
        if (s as i32) <= prev_sym {
            return Err(GcError::Corrupt("ANS model symbols not ascending"));
        }
        prev_sym = s as i32;
        if f == 0 || cum + f > SCALE {
            return Err(GcError::Corrupt("ANS model frequencies out of range"));
        }
        for slot in cum..cum + f {
            sym[slot as usize] = s;
            freq[slot as usize] = f as u16;
            bias[slot as usize] = (slot - cum) as u16;
        }
        cum += f;
    }
    if cum != SCALE {
        return Err(GcError::Corrupt(
            "ANS model frequencies do not sum to scale",
        ));
    }
    Ok(SlotTables { sym, freq, bias })
}

/// [`decompress`] into a caller-owned buffer (cleared, then refilled),
/// reusing its allocation across calls.
pub fn decompress_into(input: &[u8], out: &mut Vec<u8>) -> Result<(), GcError> {
    out.clear();
    let mut r = Rd { b: input, pos: 0 };
    let expected = r.u64()? as usize;
    // Reserve the declared size up front (capped so a hostile header cannot
    // force a huge allocation before the first decode error).
    out.reserve(expected.min(64 << 20));
    while out.len() < expected {
        let raw_len = r.u32()? as usize;
        if raw_len == 0 || raw_len > (1 << 22) {
            return Err(GcError::Corrupt("ANS chunk length out of range"));
        }
        if raw_len > expected - out.len() {
            return Err(GcError::LengthMismatch {
                expected: expected as u64,
                got: (out.len() + raw_len) as u64,
            });
        }
        let tables = read_freq_table(&mut r)?;
        let n_words = r.u32()? as usize;
        let mut states = [r.u64()?, r.u64()?];
        for &x in &states {
            if !(LOWER..STATE_MAX).contains(&x) {
                return Err(GcError::Corrupt("ANS state out of range"));
            }
        }
        let words = r.take(
            n_words
                .checked_mul(4)
                .ok_or(GcError::Corrupt("ANS word count overflow"))?,
        )?;

        let mut wi = 0usize;
        let mask = (SCALE - 1) as u64;
        for j in 0..raw_len {
            let x = &mut states[j & 1];
            let slot = (*x & mask) as usize;
            out.push(tables.sym[slot]);
            // Overflow-free by the state invariant (see module docs).
            *x = tables.freq[slot] as u64 * (*x >> SCALE_BITS) + tables.bias[slot] as u64;
            while *x < LOWER {
                if wi >= n_words {
                    return Err(GcError::Corrupt("ANS renorm words exhausted"));
                }
                let w = u32::from_le_bytes(words[wi * 4..wi * 4 + 4].try_into().unwrap());
                *x = (*x << 32) | w as u64;
                wi += 1;
            }
        }
        // A well-formed chunk returns both states to the encoder's initial
        // value and consumes every renorm word — cheap integrity check that
        // catches most single-byte corruptions outright.
        if states != [LOWER, LOWER] || wi != n_words {
            return Err(GcError::Corrupt("ANS chunk failed final state check"));
        }
    }
    if r.pos != input.len() {
        return Err(GcError::Corrupt("trailing bytes after ANS stream"));
    }
    if out.len() != expected {
        return Err(GcError::LengthMismatch {
            expected: expected as u64,
            got: out.len() as u64,
        });
    }
    Ok(())
}

/// Estimate the compressed size of `data` from its zeroth-order byte
/// entropy, without running the encoder. Used by the format layer's
/// `--scheme auto` scoring so ANS competes without an encode probe.
pub fn estimate_compressed_size(data: &[u8]) -> usize {
    if data.is_empty() {
        return 8;
    }
    let mut hist = [0u64; 256];
    for &b in data {
        hist[b as usize] += 1;
    }
    estimate_from_hist(&hist, data.len())
}

/// Entropy estimate from a precomputed histogram over `len` bytes.
pub fn estimate_from_hist(hist: &[u64; 256], len: usize) -> usize {
    if len == 0 {
        return 8;
    }
    let n = len as f64;
    let mut bits = 0.0f64;
    let mut n_present = 0usize;
    for &c in hist {
        if c > 0 {
            n_present += 1;
            let p = c as f64 / n;
            bits -= c as f64 * p.log2();
        }
    }
    // Per-chunk overhead: raw_len + n_present + table pairs + n_words +
    // two states, assuming the histogram shape is representative per chunk.
    let n_chunks = len.div_ceil(CHUNK);
    let overhead = 8 + n_chunks * (4 + 2 + 3 * n_present + 4 + 16);
    overhead + (bits / 8.0).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data, "len {}", data.len());
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"aaaa");
    }

    #[test]
    fn single_symbol_runs() {
        roundtrip(&vec![0u8; 100_000]);
        roundtrip(&vec![0xFFu8; 65_537]);
    }

    #[test]
    fn skewed_text_compresses() {
        let data: Vec<u8> = b"abracadabra alakazam "
            .iter()
            .cycle()
            .take(200_000)
            .copied()
            .collect();
        let c = compress(&data);
        // Zeroth-order entropy of this alphabet is well under 4 bits/byte.
        assert!(c.len() < data.len() / 2, "{} vs {}", c.len(), data.len());
        roundtrip(&data);
    }

    #[test]
    fn random_bytes_roundtrip() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12345);
        for len in [1usize, 255, 4096, CHUNK - 1, CHUNK, CHUNK + 1, 200_000] {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn chunk_boundary_statistics_shift() {
        // First chunk all-zeros, second chunk random: per-chunk models must
        // adapt independently.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut data = vec![0u8; CHUNK];
        data.extend((0..CHUNK).map(|_| rng.gen::<u8>()));
        let c = compress(&data);
        // The zero chunk should compress to almost nothing.
        assert!(c.len() < CHUNK + CHUNK / 4);
        roundtrip(&data);
    }

    #[test]
    fn explicit_chunk_sizes() {
        let data: Vec<u8> = (0..300_000u32).map(|i| (i % 7) as u8).collect();
        for cs in [1024usize, 4096, 100_000, 1 << 22] {
            let c = compress_chunked(&data, cs);
            assert_eq!(decompress(&c).unwrap(), data, "chunk {cs}");
        }
    }

    #[test]
    fn doubles_like_mini_batch_payload() {
        let vals = [1.5f64, 0.0, 0.0, 2.25, 0.0, 1.5, 0.0, 0.0];
        let mut data = Vec::new();
        for i in 0..30_000 {
            data.extend_from_slice(&vals[i % vals.len()].to_le_bytes());
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 2);
        roundtrip(&data);
    }

    #[test]
    fn estimate_tracks_actual_size() {
        let data: Vec<u8> = b"entropy estimate sanity check payload "
            .iter()
            .cycle()
            .take(120_000)
            .copied()
            .collect();
        let actual = compress(&data).len();
        let est = estimate_compressed_size(&data);
        // Zeroth-order entropy is exactly what the coder targets, so the
        // estimate should land within a modest factor of reality.
        assert!(
            est > actual / 2 && est < actual * 2,
            "est {est} vs actual {actual}"
        );
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[0, 0, 0]).is_err());
        let c = compress(b"some payload worth corrupting, with repetition repetition");
        for cut in 0..c.len() {
            let _ = decompress(&c[..cut]);
        }
    }

    #[test]
    fn truncation_always_detected() {
        let c = compress(&vec![7u8; 10_000]);
        for cut in 8..c.len() {
            assert!(decompress(&c[..cut]).is_err(), "cut {cut} accepted");
        }
    }
}
