#![forbid(unsafe_code)]
//! # toc-gc — general-purpose byte compressors
//!
//! The paper compares TOC against two general compression schemes (GC):
//! Snappy and Gzip. Neither library is available offline, so this crate
//! implements the same algorithmic classes from scratch:
//!
//! * [`fastlz`] — greedy single-probe LZ (Snappy class: very fast, modest
//!   ratio).
//! * [`deflate`] — LZ77 with hash chains + dynamic canonical Huffman coding
//!   over the RFC 1951 alphabets (Gzip class: strong ratio, slower).
//! * [`lzw`] — classic byte LZW (Welch 1984), the ancestor TOC adapts;
//!   used to contrast structure-oblivious dictionary coding with TOC.
//! * [`ans`] — tabled range-ANS entropy coder (pcodec class): per-chunk
//!   adaptive frequency tables, reverse-order encode, two interleaved
//!   decode states driving a branchless slot-table inner loop.
//!
//! All three share the defining GC property the paper measures: the payload
//! must be **fully decompressed before any matrix operation** can run.

pub mod ans;
pub mod bitio;
pub mod deflate;
pub mod fastlz;
pub mod huffman;
pub mod lzw;

/// Error type for the decompressors. Corrupt input yields an error, never a
/// panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcError {
    /// Malformed or truncated compressed stream.
    Corrupt(&'static str),
    /// The decoded payload does not match the length the header declared.
    LengthMismatch { expected: u64, got: u64 },
}

impl std::fmt::Display for GcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GcError::Corrupt(msg) => write!(f, "corrupt compressed stream: {msg}"),
            GcError::LengthMismatch { expected, got } => write!(
                f,
                "decoded length mismatch: header declared {expected} bytes, stream produced {got}"
            ),
        }
    }
}

impl std::error::Error for GcError {}

/// A byte-oriented compression codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Codec {
    /// Snappy-class fast LZ.
    FastLz,
    /// Gzip-class LZ77 + Huffman.
    Deflate,
    /// Classic byte LZW.
    Lzw,
    /// Tabled range-ANS entropy coder (per-chunk adaptive, interleaved
    /// decode states).
    Ans,
}

impl Codec {
    /// Human-readable name (matches the labels used in the experiment
    /// harness; `Snappy*`/`Gzip*` mark the from-scratch substitutes).
    pub fn name(self) -> &'static str {
        match self {
            Codec::FastLz => "Snappy*",
            Codec::Deflate => "Gzip*",
            Codec::Lzw => "LZW",
            Codec::Ans => "ANS",
        }
    }

    /// Compress `input`.
    pub fn compress(self, input: &[u8]) -> Vec<u8> {
        match self {
            Codec::FastLz => fastlz::compress(input),
            Codec::Deflate => deflate::compress(input),
            Codec::Lzw => lzw::compress(input),
            Codec::Ans => ans::compress(input),
        }
    }

    /// Decompress `input`.
    pub fn decompress(self, input: &[u8]) -> Result<Vec<u8>, GcError> {
        match self {
            Codec::FastLz => fastlz::decompress(input),
            Codec::Deflate => deflate::decompress(input),
            Codec::Lzw => lzw::decompress(input),
            Codec::Ans => ans::decompress(input),
        }
    }

    /// Decompress `input` into a caller-owned buffer (cleared, then
    /// refilled), reusing its allocation across calls. This is the staging
    /// entry point of the workspace execution API: repeated decompression
    /// of same-sized mini-batches allocates nothing in steady state.
    pub fn decompress_into(self, input: &[u8], out: &mut Vec<u8>) -> Result<(), GcError> {
        match self {
            Codec::FastLz => fastlz::decompress_into(input, out),
            Codec::Deflate => deflate::decompress_into(input, out),
            Codec::Lzw => lzw::decompress_into(input, out),
            Codec::Ans => ans::decompress_into(input, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_dispatch_roundtrips() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 97) as u8).collect();
        for codec in [Codec::FastLz, Codec::Deflate, Codec::Lzw, Codec::Ans] {
            let c = codec.compress(&data);
            assert_eq!(codec.decompress(&c).unwrap(), data, "{}", codec.name());
            assert!(c.len() < data.len(), "{} did not compress", codec.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(Codec::FastLz.name(), Codec::Deflate.name());
    }
}
