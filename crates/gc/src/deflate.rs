//! A Gzip-class compressor: LZ77 with hash chains + dynamic canonical
//! Huffman coding of literal/length and distance symbols, following the
//! DEFLATE symbol alphabets (RFC 1951) with a simplified container.
//!
//! Container layout:
//!
//! ```text
//! u64   original length
//! 143 B nibble-packed literal/length code lengths (286 symbols)
//! 15 B  nibble-packed distance code lengths (30 symbols)
//! ...   LSB-first bit stream of Huffman symbols + extra bits, ending at EOB
//! ```
//!
//! Ratio and speed sit in the Gzip class: much better ratio than
//! [`crate::fastlz`], much slower; decompression must reproduce every byte
//! before any computation can use the data — the property the paper's GC
//! comparison exercises.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{build_lengths, Decoder, Encoder};
use crate::GcError;

const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const MAX_DIST: usize = 32 * 1024;
const HASH_BITS: u32 = 15;
const MAX_CHAIN: usize = 64;
const NUM_LITLEN: usize = 286; // 0..=255 literals, 256 EOB, 257..=285 lengths
const NUM_DIST: usize = 30;
const EOB: usize = 256;

// RFC 1951 length code tables (code 257 + i).
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
// RFC 1951 distance code tables.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Map a match length (3..=258) to (symbol, extra bits, extra value).
#[inline]
fn length_symbol(len: usize) -> (usize, u8, u32) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    // Linear scan from the top is fine: 29 entries.
    let mut i = LEN_BASE.len() - 1;
    while LEN_BASE[i] as usize > len {
        i -= 1;
    }
    (257 + i, LEN_EXTRA[i], (len - LEN_BASE[i] as usize) as u32)
}

/// Map a distance (1..=32768) to (symbol, extra bits, extra value).
#[inline]
fn dist_symbol(dist: usize) -> (usize, u8, u32) {
    debug_assert!((1..=MAX_DIST).contains(&dist));
    let mut i = DIST_BASE.len() - 1;
    while DIST_BASE[i] as usize > dist {
        i -= 1;
    }
    (i, DIST_EXTRA[i], (dist - DIST_BASE[i] as usize) as u32)
}

enum Token {
    Literal(u8),
    Match { len: u16, dist: u16 },
}

#[inline]
fn hash3(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], 0]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Greedy LZ77 parse with hash chains.
fn lz77_parse(input: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(input.len() / 4 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; input.len()];
    let mut i = 0usize;
    while i < input.len() {
        if i + MIN_MATCH <= input.len() {
            let h = hash3(&input[i..]);
            let mut cand = head[h];
            let mut best_len = 0usize;
            let mut best_dist = 0usize;
            let mut chain = 0usize;
            let max_len = (input.len() - i).min(MAX_MATCH);
            while cand != usize::MAX && chain < MAX_CHAIN {
                let dist = i - cand;
                if dist > MAX_DIST {
                    break;
                }
                // Quick reject on the byte after the current best.
                if best_len == 0 || input[cand + best_len] == input[i + best_len] {
                    let mut l = 0usize;
                    while l < max_len && input[cand + l] == input[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = dist;
                        if l == max_len {
                            break;
                        }
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
            // Insert the current position into the chain.
            prev[i] = head[h];
            head[h] = i;
            if best_len >= MIN_MATCH {
                tokens.push(Token::Match {
                    len: best_len as u16,
                    dist: best_dist as u16,
                });
                // Insert the skipped positions so later matches can find
                // them (cap the work for long matches).
                let end = (i + best_len).min(input.len().saturating_sub(MIN_MATCH - 1));
                for k in i + 1..end {
                    let hk = hash3(&input[k..]);
                    prev[k] = head[hk];
                    head[hk] = k;
                }
                i += best_len;
                continue;
            }
        }
        tokens.push(Token::Literal(input[i]));
        i += 1;
    }
    tokens
}

fn pack_nibbles(lengths: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(lengths.len().div_ceil(2));
    for pair in lengths.chunks(2) {
        let lo = pair[0] & 0x0F;
        let hi = if pair.len() > 1 { pair[1] & 0x0F } else { 0 };
        out.push(lo | (hi << 4));
    }
    out
}

fn unpack_nibbles(bytes: &[u8], n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let b = bytes[i / 2];
        out.push(if i % 2 == 0 { b & 0x0F } else { b >> 4 });
    }
    out
}

/// Compress `input`.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let tokens = lz77_parse(input);

    // Symbol statistics.
    let mut lit_freq = vec![0u64; NUM_LITLEN];
    let mut dist_freq = vec![0u64; NUM_DIST];
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[length_symbol(len as usize).0] += 1;
                dist_freq[dist_symbol(dist as usize).0] += 1;
            }
        }
    }
    lit_freq[EOB] += 1;

    let lit_lengths = build_lengths(&lit_freq, 15);
    let dist_lengths = build_lengths(&dist_freq, 15);
    let lit_enc = Encoder::from_lengths(&lit_lengths);
    let dist_enc = Encoder::from_lengths(&dist_lengths);

    let mut out = Vec::with_capacity(64 + input.len() / 3);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());
    out.extend_from_slice(&pack_nibbles(&lit_lengths));
    out.extend_from_slice(&pack_nibbles(&dist_lengths));

    let mut w = BitWriter::new();
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_enc.write(&mut w, b as usize),
            Token::Match { len, dist } => {
                let (sym, extra, val) = length_symbol(len as usize);
                lit_enc.write(&mut w, sym);
                if extra > 0 {
                    w.write_bits(val, extra as u32);
                }
                let (dsym, dextra, dval) = dist_symbol(dist as usize);
                dist_enc.write(&mut w, dsym);
                if dextra > 0 {
                    w.write_bits(dval, dextra as u32);
                }
            }
        }
    }
    lit_enc.write(&mut w, EOB);
    out.extend_from_slice(&w.finish());
    out
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, GcError> {
    let mut out = Vec::new();
    decompress_into(input, &mut out)?;
    Ok(out)
}

/// [`decompress`] into a caller-owned buffer (cleared, then refilled),
/// reusing its allocation across calls.
pub fn decompress_into(input: &[u8], out: &mut Vec<u8>) -> Result<(), GcError> {
    decompress_into_impl::<true>(input, out)
}

/// The pre-table scalar reference decoder: bitwise Huffman walk plus
/// byte-at-a-time match copies. Kept (sharing all container parsing with the
/// fast path) so the codec-speed gate can measure the table-driven kernels
/// against the original scalar ones inside a single binary.
#[doc(hidden)]
pub fn decompress_into_scalar(input: &[u8], out: &mut Vec<u8>) -> Result<(), GcError> {
    decompress_into_impl::<false>(input, out)
}

fn decompress_into_impl<const FAST: bool>(input: &[u8], out: &mut Vec<u8>) -> Result<(), GcError> {
    out.clear();
    const HEADER: usize = 8 + NUM_LITLEN.div_ceil(2) + NUM_DIST.div_ceil(2);
    if input.len() < HEADER {
        return Err(GcError::Corrupt("truncated deflate header"));
    }
    let expected = u64::from_le_bytes(input[..8].try_into().unwrap()) as usize;
    let lit_lengths = unpack_nibbles(&input[8..], NUM_LITLEN);
    let dist_lengths = unpack_nibbles(&input[8 + NUM_LITLEN.div_ceil(2)..], NUM_DIST);
    let lit_dec = Decoder::from_lengths(&lit_lengths)?;
    let dist_dec = Decoder::from_lengths(&dist_lengths)?;

    // `expected` comes from an untrusted header, so sanity-check it before
    // allocating: every symbol costs at least one stream bit and emits at
    // most MAX_MATCH bytes, so the declared size cannot exceed
    // body_bits * 258 for any well-formed stream. Within that bound,
    // reserve the exact decoded size up front (capped so a hostile header
    // attached to a large body cannot force a multi-GB allocation before
    // the first decode error) — the hot loop then never reallocates.
    let body_bits = ((input.len() - HEADER) as u64).saturating_mul(8);
    if expected as u64 > body_bits.saturating_mul(MAX_MATCH as u64) {
        return Err(GcError::Corrupt(
            "deflate declared length implausible for stream size",
        ));
    }
    out.reserve(expected.min(64 << 20));
    let mut r = BitReader::new(&input[HEADER..]);
    loop {
        let sym = if FAST {
            lit_dec.read(&mut r)? as usize
        } else {
            lit_dec.read_bitwise(&mut r)? as usize
        };
        if sym < 256 {
            if out.len() == expected {
                return Err(GcError::LengthMismatch {
                    expected: expected as u64,
                    got: out.len() as u64 + 1,
                });
            }
            out.push(sym as u8);
        } else if sym == EOB {
            break;
        } else {
            let i = sym - 257;
            if i >= LEN_BASE.len() {
                return Err(GcError::Corrupt("invalid length symbol"));
            }
            let len = LEN_BASE[i] as usize + r.read_bits(LEN_EXTRA[i] as u32)? as usize;
            let dsym = if FAST {
                dist_dec.read(&mut r)? as usize
            } else {
                dist_dec.read_bitwise(&mut r)? as usize
            };
            if dsym >= DIST_BASE.len() {
                return Err(GcError::Corrupt("invalid distance symbol"));
            }
            let dist = DIST_BASE[dsym] as usize + r.read_bits(DIST_EXTRA[dsym] as u32)? as usize;
            if dist == 0 || dist > out.len() {
                return Err(GcError::Corrupt("distance out of range"));
            }
            // Fail fast before copying: `out.len() <= expected` is a loop
            // invariant, so the subtraction cannot underflow.
            if len > expected - out.len() {
                return Err(GcError::LengthMismatch {
                    expected: expected as u64,
                    got: (out.len() + len) as u64,
                });
            }
            let start = out.len() - dist;
            if FAST {
                if dist >= len {
                    // Disjoint source and destination: one bulk copy.
                    out.extend_from_within(start..start + len);
                } else {
                    // Overlapping RLE-style match: each pass copies the
                    // whole materialized window, so the copied span doubles
                    // per iteration instead of moving one byte at a time.
                    let mut rem = len;
                    while rem > 0 {
                        let chunk = rem.min(out.len() - start);
                        out.extend_from_within(start..start + chunk);
                        rem -= chunk;
                    }
                }
            } else {
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    if out.len() != expected {
        return Err(GcError::LengthMismatch {
            expected: expected as u64,
            got: out.len() as u64,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data, "len {}", data.len());
    }

    #[test]
    fn length_symbol_table_edges() {
        assert_eq!(length_symbol(3), (257, 0, 0));
        assert_eq!(length_symbol(10), (264, 0, 0));
        assert_eq!(length_symbol(11), (265, 1, 0));
        assert_eq!(length_symbol(12), (265, 1, 1));
        assert_eq!(length_symbol(258), (285, 0, 0));
        assert_eq!(length_symbol(257), (284, 5, 30));
    }

    #[test]
    fn dist_symbol_table_edges() {
        assert_eq!(dist_symbol(1), (0, 0, 0));
        assert_eq!(dist_symbol(4), (3, 0, 0));
        assert_eq!(dist_symbol(5), (4, 1, 0));
        assert_eq!(dist_symbol(24577), (29, 13, 0));
        assert_eq!(dist_symbol(32768), (29, 13, 8191));
    }

    #[test]
    fn empty_and_small() {
        roundtrip(b"");
        roundtrip(b"z");
        roundtrip(b"abcabcabc");
    }

    #[test]
    fn rle_heavy_input() {
        roundtrip(&vec![0u8; 100_000]);
        let mut v = Vec::new();
        for i in 0..1000 {
            v.extend_from_slice(&[(i % 7) as u8; 97]);
        }
        roundtrip(&v);
    }

    #[test]
    fn compresses_repetitive_doubles_well() {
        // DEN bytes of a redundant mini-batch: expect a strong ratio.
        let vals = [1.5f64, 0.0, 0.0, 2.25, 0.0, 1.5, 0.0, 0.0];
        let mut data = Vec::new();
        for i in 0..30_000 {
            data.extend_from_slice(&vals[i % vals.len()].to_le_bytes());
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 10, "{} vs {}", c.len(), data.len());
        roundtrip(&data);
    }

    #[test]
    fn beats_fastlz_on_ratio() {
        let row: Vec<u8> = (0..251).map(|i| (i % 23) as u8).collect();
        let data: Vec<u8> = row.iter().cycle().take(120_000).copied().collect();
        let d = compress(&data);
        let f = crate::fastlz::compress(&data);
        assert!(
            d.len() < f.len(),
            "deflate {} vs fastlz {}",
            d.len(),
            f.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn random_bytes_roundtrip() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for len in [1usize, 255, 4096, 70_000] {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn long_range_matches() {
        // A motif that repeats at distance ~20000 (needs big offsets).
        let motif: Vec<u8> = (0..19_777u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut data = motif.clone();
        data.extend_from_slice(&motif);
        data.extend_from_slice(&motif);
        let c = compress(&data);
        assert!(c.len() < data.len() / 2);
        roundtrip(&data);
    }

    #[test]
    fn fast_and_scalar_decoders_agree() {
        let mut data: Vec<u8> = (0..9973u32).map(|i| (i * 131 % 251) as u8).collect();
        data.extend_from_slice(&vec![42u8; 4096]); // overlapping-match path
        let more = data.clone();
        data.extend_from_slice(&more); // long-range disjoint matches
        let c = compress(&data);
        let mut fast = Vec::new();
        let mut scalar = Vec::new();
        decompress_into(&c, &mut fast).unwrap();
        decompress_into_scalar(&c, &mut scalar).unwrap();
        assert_eq!(fast, data);
        assert_eq!(fast, scalar);
    }

    #[test]
    fn declared_length_mismatch_is_structured() {
        let c = compress(b"hello hello hello hello");
        let mut bad = c.clone();
        bad[0] ^= 1; // declared decoded size off by one
        match decompress(&bad) {
            Err(GcError::LengthMismatch { .. }) => {}
            other => panic!("expected LengthMismatch, got {other:?}"),
        }
    }

    #[test]
    fn implausible_declared_length_rejected_before_allocating() {
        let mut c = compress(b"tiny");
        c[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(decompress(&c), Err(GcError::Corrupt(_))));
    }

    #[test]
    fn corrupt_streams_error() {
        assert!(decompress(&[]).is_err());
        let c = compress(b"some reasonably long input string, repeated, repeated");
        for cut in [9, 20, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err() || decompress(&c[..cut]).is_ok());
        }
        // Flipping header bytes must never panic.
        for i in 0..c.len().min(60) {
            let mut b = c.clone();
            b[i] ^= 0x5A;
            let _ = decompress(&b);
        }
    }
}
