//! A Snappy-class byte compressor: greedy LZ with a single-probe hash table,
//! byte-aligned output, built for speed over ratio.
//!
//! Format (after an 8-byte original-length header), a sequence of ops:
//!
//! * `0xxxxxxx` — literal run: copy the next `x + 1` bytes (1..=128).
//! * `1xxxxxxx o1 o2` — match: copy `x + MIN_MATCH` bytes (4..=131) from
//!   `offset = u16le(o1, o2)` bytes back (1..=65535).

use crate::GcError;

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 131; // (0x7F) + MIN_MATCH
const MAX_OFFSET: usize = u16::MAX as usize;
const HASH_BITS: u32 = 14;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `input`.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + input.len() / 2);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());

    let mut table = vec![0usize; 1 << HASH_BITS]; // position + 1; 0 = empty
    let mut i = 0usize;
    let mut lit_start = 0usize;

    let flush_literals = |out: &mut Vec<u8>, input: &[u8], from: usize, to: usize| {
        let mut s = from;
        while s < to {
            let run = (to - s).min(128);
            out.push((run - 1) as u8);
            out.extend_from_slice(&input[s..s + run]);
            s += run;
        }
    };

    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let cand = table[h];
        table[h] = i + 1;
        if cand > 0 {
            let cand = cand - 1;
            let offset = i - cand;
            if (1..=MAX_OFFSET).contains(&offset) && input[cand..cand + 4] == input[i..i + 4] {
                // Extend the match.
                let mut len = 4;
                let max = (input.len() - i).min(MAX_MATCH);
                while len < max && input[cand + len] == input[i + len] {
                    len += 1;
                }
                flush_literals(&mut out, input, lit_start, i);
                out.push(0x80 | (len - MIN_MATCH) as u8);
                out.extend_from_slice(&(offset as u16).to_le_bytes());
                i += len;
                lit_start = i;
                continue;
            }
        }
        i += 1;
    }
    flush_literals(&mut out, input, lit_start, input.len());
    out
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, GcError> {
    let mut out = Vec::new();
    decompress_into(input, &mut out)?;
    Ok(out)
}

/// [`decompress`] into a caller-owned buffer (cleared, then refilled),
/// reusing its allocation across calls.
pub fn decompress_into(input: &[u8], out: &mut Vec<u8>) -> Result<(), GcError> {
    out.clear();
    if input.len() < 8 {
        return Err(GcError::Corrupt("missing fastlz header"));
    }
    let expected = u64::from_le_bytes(input[..8].try_into().unwrap()) as usize;
    let body = &input[8..];
    // Cap the pre-allocation: `expected` comes from an untrusted header.
    out.reserve(expected.min(16 << 20));
    let mut p = 0usize;
    while p < body.len() {
        let tag = body[p];
        p += 1;
        if tag & 0x80 == 0 {
            let run = tag as usize + 1;
            if p + run > body.len() {
                return Err(GcError::Corrupt("literal run past end"));
            }
            out.extend_from_slice(&body[p..p + run]);
            p += run;
        } else {
            let len = (tag & 0x7F) as usize + MIN_MATCH;
            if p + 2 > body.len() {
                return Err(GcError::Corrupt("truncated match offset"));
            }
            let offset = u16::from_le_bytes([body[p], body[p + 1]]) as usize;
            p += 2;
            if offset == 0 || offset > out.len() {
                return Err(GcError::Corrupt("match offset out of range"));
            }
            // Byte-by-byte copy: offsets smaller than the length implement
            // run-length repetition, as in every LZ format.
            let start = out.len() - offset;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    if out.len() != expected {
        return Err(GcError::Corrupt("fastlz output length mismatch"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data, "len {}", data.len());
    }

    #[test]
    fn empty_and_small() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn overlapping_copy_rle() {
        roundtrip(&vec![7u8; 5000]);
        roundtrip(b"abcabcabcabcabcabcabcabcabc");
    }

    #[test]
    fn long_literal_runs() {
        let data: Vec<u8> = (0..100_000u32)
            .map(|i| (i.wrapping_mul(2654435761)) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn repetitive_data_compresses() {
        let row: Vec<u8> = (0..200).map(|i| (i % 17) as u8).collect();
        let data: Vec<u8> = row.iter().cycle().take(100_000).copied().collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 5, "{} vs {}", c.len(), data.len());
        roundtrip(&data);
    }

    #[test]
    fn doubles_with_few_distinct_values() {
        // Mimics a DEN-encoded mini-batch with a small value pool.
        let vals = [1.5f64, 0.0, 2.25, 0.0, 0.0, 1.5];
        let mut data = Vec::new();
        for i in 0..20_000 {
            data.extend_from_slice(&vals[i % vals.len()].to_le_bytes());
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 4);
        roundtrip(&data);
    }

    #[test]
    fn corrupt_streams_error() {
        assert!(decompress(&[]).is_err());
        let mut c = compress(b"hello world hello world hello world");
        c.truncate(c.len() - 1);
        assert!(decompress(&c).is_err());
        // Bogus offset.
        let bad = [&8u64.to_le_bytes()[..], &[0x80, 0xFF, 0xFF]].concat();
        assert!(decompress(&bad).is_err());
    }

    #[test]
    fn random_bytes_roundtrip() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4242);
        for len in [1, 100, 1024, 66_000] {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            roundtrip(&data);
        }
    }
}
