//! Property tests: every codec must roundtrip arbitrary byte strings and
//! never panic on arbitrary (corrupt) compressed input.

use proptest::prelude::*;
use toc_gc::Codec;

const CODECS: [Codec; 4] = [Codec::FastLz, Codec::Deflate, Codec::Lzw, Codec::Ans];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..8192)) {
        for codec in CODECS {
            let c = codec.compress(&data);
            prop_assert_eq!(codec.decompress(&c).unwrap(), data.clone(), "{}", codec.name());
        }
    }

    #[test]
    fn roundtrip_low_entropy(byte in any::<u8>(), len in 0usize..20_000) {
        let data = vec![byte; len];
        for codec in CODECS {
            let c = codec.compress(&data);
            prop_assert_eq!(codec.decompress(&c).unwrap(), data.clone());
            if len > 1000 {
                prop_assert!(c.len() < data.len() / 4, "{} ratio too weak", codec.name());
            }
        }
    }

    #[test]
    fn roundtrip_structured(motif in prop::collection::vec(any::<u8>(), 1..64), reps in 1usize..200) {
        let data: Vec<u8> = motif.iter().cycle().take(motif.len() * reps).copied().collect();
        for codec in CODECS {
            let c = codec.compress(&data);
            prop_assert_eq!(codec.decompress(&c).unwrap(), data.clone());
        }
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        for codec in CODECS {
            let _ = codec.decompress(&data);
        }
    }

    #[test]
    fn truncation_never_panics(data in prop::collection::vec(any::<u8>(), 0..2048), frac in 0.0f64..1.0) {
        for codec in CODECS {
            let c = codec.compress(&data);
            let cut = (c.len() as f64 * frac) as usize;
            let _ = codec.decompress(&c[..cut]);
        }
    }
}

/// Exhaustive single-byte-flip mutation sweep over ANS streams: every
/// position of the compressed container is XORed with every one-hot bit
/// pattern plus a couple of dense ones, and decoding must either succeed or
/// return an error — never panic (this runs in debug builds, so arithmetic
/// overflow would abort the test). Deterministic by construction so CI can
/// run it as a named gate.
#[test]
fn ans_mutation_sweep_never_panics() {
    // Pseudo-random bytes from a fixed LCG (no RNG dependency needed).
    let mut x = 0x2545_F491_4F6C_DD1D_u64;
    let payloads: Vec<Vec<u8>> = vec![
        Vec::new(),
        vec![42u8; 3000],
        (0..4096u32).map(|i| (i % 256) as u8).collect(),
        b"structured text payload, repeated enough to exercise the model "
            .iter()
            .cycle()
            .take(5000)
            .copied()
            .collect(),
        (0..4000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect(),
    ];

    for data in &payloads {
        let c = Codec::Ans.compress(data);
        for i in 0..c.len() {
            for pat in [0x01u8, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0xFF, 0x5A] {
                let mut bad = c.clone();
                bad[i] ^= pat;
                if let Ok(roundtrip) = Codec::Ans.decompress(&bad) {
                    // A flip the checks cannot see must still decode to
                    // the declared length.
                    assert_eq!(roundtrip.len(), data.len());
                }
            }
        }
    }
}
