//! Property tests: every codec must roundtrip arbitrary byte strings and
//! never panic on arbitrary (corrupt) compressed input.

use proptest::prelude::*;
use toc_gc::Codec;

const CODECS: [Codec; 3] = [Codec::FastLz, Codec::Deflate, Codec::Lzw];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..8192)) {
        for codec in CODECS {
            let c = codec.compress(&data);
            prop_assert_eq!(codec.decompress(&c).unwrap(), data.clone(), "{}", codec.name());
        }
    }

    #[test]
    fn roundtrip_low_entropy(byte in any::<u8>(), len in 0usize..20_000) {
        let data = vec![byte; len];
        for codec in CODECS {
            let c = codec.compress(&data);
            prop_assert_eq!(codec.decompress(&c).unwrap(), data.clone());
            if len > 1000 {
                prop_assert!(c.len() < data.len() / 4, "{} ratio too weak", codec.name());
            }
        }
    }

    #[test]
    fn roundtrip_structured(motif in prop::collection::vec(any::<u8>(), 1..64), reps in 1usize..200) {
        let data: Vec<u8> = motif.iter().cycle().take(motif.len() * reps).copied().collect();
        for codec in CODECS {
            let c = codec.compress(&data);
            prop_assert_eq!(codec.decompress(&c).unwrap(), data.clone());
        }
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        for codec in CODECS {
            let _ = codec.decompress(&data);
        }
    }

    #[test]
    fn truncation_never_panics(data in prop::collection::vec(any::<u8>(), 0..2048), frac in 0.0f64..1.0) {
        for codec in CODECS {
            let c = codec.compress(&data);
            let cut = (c.len() as f64 * frac) as usize;
            let _ = codec.decompress(&c[..cut]);
        }
    }
}
