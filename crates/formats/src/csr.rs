//! CSR (§5 method 2): compressed sparse row. Per row, only non-zero values
//! and their column indexes are stored. Size model: `u32` row pointers,
//! `u32` column indexes, `f64` values.

use crate::wire::{put_u32, put_u32s, Rd};
use crate::{FormatError, MatrixBatch, Scheme};
use toc_linalg::sparse::{ColVal, SparseRows};
use toc_linalg::DenseMatrix;

/// A CSR-encoded mini-batch.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrBatch {
    s: SparseRows,
}

impl CsrBatch {
    pub fn encode(dense: &DenseMatrix) -> Self {
        Self {
            s: SparseRows::encode(dense),
        }
    }

    pub fn from_sparse(s: SparseRows) -> Self {
        Self { s }
    }

    /// Footprint of a CSR encoding of `s` (shared with the TOC_SPARSE
    /// ablation, which is the same layout).
    pub fn csr_size_bytes(s: &SparseRows) -> usize {
        // rows, cols header + row pointers + (col idx + value) per nnz.
        16 + 4 * (s.rows() + 1) + 12 * s.num_pairs()
    }

    pub fn from_body(body: &[u8]) -> Result<Self, FormatError> {
        let mut rd = Rd::new(body);
        let rows = rd.u32()? as usize;
        let cols = rd.u32()? as usize;
        let offsets32 = rd.u32s()?;
        let cols_arr = rd.u32s()?;
        let vals = rd.f64s()?;
        rd.done()?;
        if offsets32.len() != rows + 1 || cols_arr.len() != vals.len() {
            return Err(FormatError::Corrupt("CSR section mismatch".into()));
        }
        let mut prev = 0u32;
        for &o in &offsets32 {
            if o < prev || o as usize > vals.len() {
                return Err(FormatError::Corrupt("CSR offsets not monotone".into()));
            }
            prev = o;
        }
        if *offsets32.last().unwrap() as usize != vals.len() {
            return Err(FormatError::Corrupt("CSR final offset mismatch".into()));
        }
        let pairs: Vec<ColVal> = cols_arr
            .iter()
            .zip(&vals)
            .map(|(&col, &val)| {
                if col as usize >= cols {
                    return Err(FormatError::Corrupt("CSR column out of range".into()));
                }
                Ok(ColVal { col, val })
            })
            .collect::<Result<_, _>>()?;
        let offsets = offsets32.iter().map(|&o| o as usize).collect();
        Ok(Self {
            s: SparseRows::from_parts(rows, cols, pairs, offsets),
        })
    }

    /// Borrow the sparse rows.
    pub fn sparse(&self) -> &SparseRows {
        &self.s
    }
}

impl MatrixBatch for CsrBatch {
    fn rows(&self) -> usize {
        self.s.rows()
    }
    fn cols(&self) -> usize {
        self.s.cols()
    }
    fn size_bytes(&self) -> usize {
        Self::csr_size_bytes(&self.s)
    }
    fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        self.s.matvec_into(v, out)
    }
    fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        self.s.vecmat_into(v, out)
    }
    fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        self.s.matmat_into(m, out)
    }
    fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        self.s.matmat_left_into(m, out)
    }
    fn decode_into(&self, out: &mut DenseMatrix) {
        self.s.decode_into(out)
    }
    fn decode_rows_into(&self, r0: usize, r1: usize, out: &mut DenseMatrix) {
        assert!(r0 <= r1 && r1 <= self.s.rows(), "row range out of bounds");
        out.reset(r1 - r0, self.s.cols());
        let offsets = self.s.offsets();
        let pairs = self.s.pairs();
        for r in r0..r1 {
            let row = out.row_mut(r - r0);
            for p in &pairs[offsets[r]..offsets[r + 1]] {
                row[p.col as usize] = p.val;
            }
        }
    }
    fn scale(&mut self, c: f64) {
        // CSR stores raw values; scaling touches every non-zero.
        let rows = self.s.rows();
        let cols = self.s.cols();
        let offsets = self.s.offsets().to_vec();
        let pairs: Vec<ColVal> = self
            .s
            .pairs()
            .iter()
            .map(|p| ColVal {
                col: p.col,
                val: p.val * c,
            })
            .collect();
        self.s = SparseRows::from_parts(rows, cols, pairs, offsets);
    }
    fn decode(&self) -> DenseMatrix {
        self.s.decode()
    }
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.size_bytes());
        out.push(Scheme::Csr.tag());
        put_u32(&mut out, self.rows() as u32);
        put_u32(&mut out, self.cols() as u32);
        let offsets: Vec<u32> = self.s.offsets().iter().map(|&o| o as u32).collect();
        put_u32s(&mut out, &offsets);
        let cols_arr: Vec<u32> = self.s.pairs().iter().map(|p| p.col).collect();
        put_u32s(&mut out, &cols_arr);
        put_u32(&mut out, self.s.num_pairs() as u32);
        for p in self.s.pairs() {
            out.extend_from_slice(&p.val.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(vec![
            vec![1.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0],
        ])
    }

    #[test]
    fn roundtrip() {
        let a = sample();
        let b = CsrBatch::encode(&a);
        let bytes = b.to_bytes();
        let restored = CsrBatch::from_body(&bytes[1..]).unwrap();
        assert_eq!(restored.decode(), a);
    }

    #[test]
    fn size_model() {
        let b = CsrBatch::encode(&sample());
        assert_eq!(b.size_bytes(), 16 + 4 * 4 + 12 * 3);
    }

    #[test]
    fn kernels_match_dense() {
        let a = sample();
        let b = CsrBatch::encode(&a);
        assert_eq!(b.matvec(&[1.0, 2.0, 3.0]), a.matvec(&[1.0, 2.0, 3.0]));
        assert_eq!(b.vecmat(&[1.0, 2.0, 3.0]), a.vecmat(&[1.0, 2.0, 3.0]));
        let m = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![0.5, 0.0], vec![1.0, 1.0]]);
        assert_eq!(b.matmat(&m), a.matmat(&m));
        let ml = DenseMatrix::from_rows(vec![vec![1.0, 0.0, 2.0], vec![0.0, 1.0, 1.0]]);
        assert_eq!(b.matmat_left(&ml), a.matmat_left(&ml));
    }

    #[test]
    fn scale_touches_values() {
        let a = sample();
        let mut b = CsrBatch::encode(&a);
        b.scale(-2.0);
        let mut want = a;
        want.scale(-2.0);
        assert_eq!(b.decode(), want);
    }

    #[test]
    fn corrupt_body_errors() {
        let b = CsrBatch::encode(&sample()).to_bytes();
        for len in 0..b.len().min(30) {
            assert!(CsrBatch::from_body(&b[1..len.max(1)]).is_err() || len + 1 >= b.len());
        }
    }
}
