//! Sample-based co-coding planner (the CLA paper's §4 "compression
//! planning", simplified): decide *which columns to co-code together*
//! before paying for a full encoding pass.
//!
//! Two phases:
//!
//! 1. **Estimate.** Draw a deterministic row sample and, per column,
//!    estimate the full-matrix distinct-value count from the sample
//!    (Good–Turing style: the singleton frequency `f1` scales to the
//!    unsampled rows). Pairwise co-occurrence cardinalities are estimated
//!    the same way from the joint sample codes of two groups.
//! 2. **Plan.** Greedy-merge: every column starts as its own group; the
//!    pair of groups whose merge gives the best estimated size reduction
//!    is merged, until no merge helps. Merges respect
//!    [`MAX_GROUP_COLS`] and [`MAX_DICT_ENTRIES`].
//!
//! The planner never looks at more than `sample_rows` rows, so planning a
//! wide batch costs `O(sample_rows · cols)` plus the pairwise estimates
//! that survive the cheap lower-bound prune. Materialization
//! ([`super::ClaBatch::encode_with`]) then builds the dictionaries in one
//! full pass over the planned groups.
//!
//! When is greedy left-to-right still the better choice? On narrow
//! matrices whose correlated columns are adjacent (the common CSV layout),
//! greedy finds the same groups without the `O(cols²)` pairwise scan, and
//! its merge test is exact rather than estimated. `toc bench`'s
//! `planner_ratio` binary compares the two.

use std::collections::HashMap;
use toc_linalg::DenseMatrix;

/// Max dictionary entries per *co-coded* (multi-column) group. Planned
/// merges are rejected when the estimated joint cardinality exceeds this;
/// materialization falls back to singleton groups if the estimate was
/// wrong. Mirrors CLA's sample-based cutoffs and keeps per-op precompute
/// tables small.
pub const MAX_DICT_ENTRIES: usize = 256;
/// Max columns co-coded into one group.
pub const MAX_GROUP_COLS: usize = 16;

/// Which grouping algorithm [`super::ClaBatch::encode_with`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClaPlanner {
    /// Historical behavior: extend the current group with the next column
    /// left-to-right while the merged dictionary stays under
    /// [`MAX_DICT_ENTRIES`] — even when the merge *grows* the encoding.
    Greedy,
    /// Sample-based greedy-merge planning (this module).
    #[default]
    SampleMerge,
}

impl ClaPlanner {
    pub fn name(self) -> &'static str {
        match self {
            ClaPlanner::Greedy => "greedy",
            ClaPlanner::SampleMerge => "sample",
        }
    }
}

impl std::str::FromStr for ClaPlanner {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "greedy" => Ok(ClaPlanner::Greedy),
            "sample" | "sample-merge" | "samplemerge" => Ok(ClaPlanner::SampleMerge),
            other => Err(format!("unknown CLA planner {other:?} (greedy|sample)")),
        }
    }
}

/// CLA encoding options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClaOptions {
    /// Grouping algorithm.
    pub planner: ClaPlanner,
    /// Rows the sample-based planner inspects during planning. Values
    /// `>= nrows` degenerate to an exact plan (estimates become exact
    /// counts over the whole batch).
    pub sample_rows: usize,
}

impl Default for ClaOptions {
    fn default() -> Self {
        Self {
            planner: ClaPlanner::SampleMerge,
            sample_rows: 256,
        }
    }
}

impl ClaOptions {
    /// The historical greedy left-to-right encoder.
    pub fn greedy() -> Self {
        Self {
            planner: ClaPlanner::Greedy,
            sample_rows: 0,
        }
    }
}

/// A planned column-group layout plus its estimated encoded size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClaPlan {
    /// Column indexes per group, ascending within and across groups.
    pub groups: Vec<Vec<u32>>,
    /// Estimated [`crate::MatrixBatch::size_bytes`] of the encoding this
    /// plan produces (the quantity the merge loop minimizes).
    pub est_bytes: usize,
    /// Rows actually sampled.
    pub sample_rows: usize,
    /// True when the sample covered every row, making all estimates exact.
    pub exact: bool,
}

/// Estimated `size_bytes` of a DDC group: tag/len overhead, column list,
/// flattened dictionary, and one row index per row at the packed width.
pub(super) fn ddc_size(width: usize, entries: usize, rows: usize) -> usize {
    8 + 4 * width + 8 * entries * width + rows * super::idx_width(entries)
}

/// `size_bytes` of an uncompressed-column group.
pub(super) fn uc_size(rows: usize) -> usize {
    8 + 8 * rows
}

/// Best encodable size for a group: multi-column groups must be DDC;
/// singletons may fall back to UC.
fn group_size(width: usize, entries: usize, rows: usize) -> usize {
    let ddc = ddc_size(width, entries, rows);
    if width == 1 {
        ddc.min(uc_size(rows))
    } else {
        ddc
    }
}

/// Scale a sample distinct count `d_s` with `f1` singletons up to the full
/// batch (Good–Turing: singletons witness the unseen mass).
fn estimate_distinct(d_s: usize, f1: usize, sample: usize, rows: usize) -> usize {
    if sample >= rows {
        return d_s; // exact
    }
    if d_s >= sample {
        return rows; // every sampled value distinct: assume incompressible
    }
    let est = d_s as f64 + f1 as f64 * (rows - sample) as f64 / sample.max(1) as f64;
    (est.ceil() as usize).clamp(d_s, rows)
}

/// Estimate the number of distinct values in a whole matrix by sampling
/// up to `sample_rows` evenly spaced rows and scaling the sample's
/// distinct/singleton counts with [`estimate_distinct`] (the same
/// Good–Turing rule the CLA planner uses per column group). This is the
/// `distinct` statistic recorded in container zone maps.
pub fn estimate_matrix_distinct(m: &DenseMatrix, sample_rows: usize) -> usize {
    if m.rows() == 0 || m.cols() == 0 {
        return 0;
    }
    let take = sample_rows.clamp(1, m.rows());
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for i in 0..take {
        // Evenly spaced sample; take == rows degenerates to every row.
        let r = i * m.rows() / take;
        for &v in m.row(r) {
            *counts.entry(v.to_bits()).or_insert(0) += 1;
        }
    }
    let d_s = counts.len();
    let f1 = counts.values().filter(|&&c| c == 1).count();
    estimate_distinct(d_s, f1, take * m.cols(), m.rows() * m.cols())
}

/// Bound on the number of groups considered together in one pairwise
/// merge window. The best-first merge is `O(window²)` joint estimates, so
/// very wide matrices (rcv1-style thousands of columns) are planned in
/// contiguous column windows instead of one global scan; correlation that
/// spans windows is missed — the price of keeping planning linear-ish in
/// width. Identical-signature columns are pre-merged *globally* first, so
/// the common wide-matrix redundancy (duplicated / all-zero columns) is
/// still found across window boundaries.
const PLAN_WINDOW_GROUPS: usize = 192;

/// Per-group state during the merge loop: the group's columns, its sample
/// codes (one dictionary id per sampled row), and cardinality estimates.
struct GroupState {
    cols: Vec<u32>,
    codes: Vec<u32>,
    /// Sample statistics: distinct count and singleton count.
    d_s: usize,
    f1: usize,
    /// Estimated full-batch distinct count.
    d_est: usize,
    /// Estimated encoded size under [`group_size`].
    size: usize,
}

/// Distinct/singleton counts plus relabeled codes of the pairwise join of
/// two code vectors.
fn join_codes(a: &[u32], b: &[u32]) -> (Vec<u32>, usize, usize) {
    let mut map: HashMap<u64, u32> = HashMap::with_capacity(a.len());
    let mut counts: Vec<u32> = Vec::new();
    let mut codes = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let key = (x as u64) << 32 | y as u64;
        let next = counts.len() as u32;
        let id = *map.entry(key).or_insert_with(|| {
            counts.push(0);
            next
        });
        counts[id as usize] += 1;
        codes.push(id);
    }
    let f1 = counts.iter().filter(|&&c| c == 1).count();
    (codes, counts.len(), f1)
}

/// Reusable scratch for joint-cardinality estimates. Pruning guarantees
/// both sides have `d_s <= MAX_DICT_ENTRIES`, so the joint id space is at
/// most `MAX_DICT_ENTRIES²` and a generation-stamped dense table beats a
/// hash map by an order of magnitude on the hot planning path.
#[derive(Default)]
struct JoinScratch {
    stamp: Vec<u32>,
    id: Vec<u32>,
    counts: Vec<u32>,
    gen: u32,
}

impl JoinScratch {
    /// Distinct/singleton counts of the pairwise join, without
    /// materializing the joined codes.
    fn join(&mut self, a: &GroupState, b: &GroupState) -> (usize, usize) {
        let space = a.d_s * b.d_s;
        if space == 0 {
            return (0, 0);
        }
        if self.stamp.len() < space {
            self.stamp.resize(space, 0);
            self.id.resize(space, 0);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.fill(0);
            self.gen = 1;
        }
        self.counts.clear();
        for (&x, &y) in a.codes.iter().zip(&b.codes) {
            let k = x as usize * b.d_s + y as usize;
            if self.stamp[k] == self.gen {
                self.counts[self.id[k] as usize] += 1;
            } else {
                self.stamp[k] = self.gen;
                self.id[k] = self.counts.len() as u32;
                self.counts.push(1);
            }
        }
        let d = self.counts.len();
        let f1 = self.counts.iter().filter(|&&c| c == 1).count();
        (d, f1)
    }
}

/// Evaluate one candidate merge: `Some((gain, joint_est))` when merging
/// strictly reduces the estimated size under the caps, `None` otherwise.
fn compute_pair(
    gi: &GroupState,
    gj: &GroupState,
    rows: usize,
    sample_len: usize,
    js: &mut JoinScratch,
) -> Option<(isize, usize)> {
    let width = gi.cols.len() + gj.cols.len();
    if width > MAX_GROUP_COLS {
        return None;
    }
    // The joint cardinality is at least max(d_i, d_j): prune pairs whose
    // *best possible* merge already loses, before paying for the join.
    let d_lower = gi.d_est.max(gj.d_est);
    if d_lower > MAX_DICT_ENTRIES
        || (gi.size + gj.size) as isize - ddc_size(width, d_lower, rows) as isize <= 0
    {
        return None;
    }
    let (joint_ds, joint_f1) = if gi.d_s == 1 {
        (gj.d_s, gj.f1) // constant group: the join is the other side
    } else if gj.d_s == 1 {
        (gi.d_s, gi.f1)
    } else {
        js.join(gi, gj)
    };
    let joint_est = estimate_distinct(joint_ds, joint_f1, sample_len, rows).max(d_lower);
    if joint_est > MAX_DICT_ENTRIES {
        return None;
    }
    let gain = (gi.size + gj.size) as isize - ddc_size(width, joint_est, rows) as isize;
    (gain > 0).then_some((gain, joint_est))
}

/// Global fast path before the pairwise scan: columns with *identical*
/// sample signatures (same code vector — duplicated, linearly-renamed, or
/// all-zero columns) co-code trivially: the joint sample cardinality is
/// the shared `d_s`, so merging up to [`MAX_GROUP_COLS`] of them is the
/// merge the pairwise loop would make anyway, found in `O(cols · sample)`
/// and across window boundaries.
fn bucket_identical(states: Vec<GroupState>, rows: usize) -> Vec<GroupState> {
    // Fingerprint the code vectors instead of cloning them as map keys
    // (a wide batch would otherwise clone+hash cols × sample u32s);
    // collisions fall back to an exact comparison against each bucket
    // representative.
    fn fingerprint(codes: &[u32]) -> u64 {
        codes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &c| {
            (h ^ c as u64).wrapping_mul(0x0000_0100_0000_01B3)
        })
    }
    let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut buckets: Vec<Vec<GroupState>> = Vec::new();
    for s in states {
        let candidates = index.entry(fingerprint(&s.codes)).or_default();
        match candidates.iter().find(|&&b| buckets[b][0].codes == s.codes) {
            Some(&b) => buckets[b].push(s),
            None => {
                candidates.push(buckets.len());
                buckets.push(vec![s]);
            }
        }
    }
    let mut out = Vec::new();
    for mut bucket in buckets {
        while !bucket.is_empty() {
            let take_n = bucket.len().min(MAX_GROUP_COLS);
            let chunk: Vec<GroupState> = bucket.drain(..take_n).collect();
            let (d_s, f1, d_est) = (chunk[0].d_s, chunk[0].f1, chunk[0].d_est);
            let width = chunk.len();
            let merged_size = ddc_size(width, d_est, rows);
            if width == 1
                || d_est > MAX_DICT_ENTRIES
                || merged_size >= chunk.iter().map(|g| g.size).sum()
            {
                out.extend(chunk);
                continue;
            }
            let mut cols: Vec<u32> = chunk.iter().flat_map(|g| g.cols.iter().copied()).collect();
            cols.sort_unstable();
            let codes = chunk.into_iter().next().expect("nonempty chunk").codes;
            out.push(GroupState {
                cols,
                codes,
                d_s,
                f1,
                d_est,
                size: merged_size,
            });
        }
    }
    out
}

/// Best-first greedy merge within one window: repeatedly merge the pair
/// with the largest estimated size reduction until no merge helps. Pair
/// gains live in a dense matrix; a merge invalidates only the merged
/// row/column, so each round costs one `O(n)` re-estimate sweep plus an
/// `O(n²)` argmax over cached gains.
fn merge_window(
    mut states: Vec<GroupState>,
    rows: usize,
    sample_len: usize,
    js: &mut JoinScratch,
) -> Vec<GroupState> {
    let n = states.len();
    if n <= 1 {
        return states;
    }
    let mut alive = vec![true; n];
    let mut pair: Vec<Option<(isize, usize)>> = vec![None; n * n];
    for i in 0..n {
        for j in i + 1..n {
            pair[i * n + j] = compute_pair(&states[i], &states[j], rows, sample_len, js);
        }
    }
    loop {
        let mut best: Option<(isize, usize, usize, usize)> = None; // gain, i, j, joint_est
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in i + 1..n {
                if !alive[j] {
                    continue;
                }
                if let Some((g, je)) = pair[i * n + j] {
                    if best.is_none_or(|b| g > b.0) {
                        best = Some((g, i, j, je));
                    }
                }
            }
        }
        let Some((_, i, j, joint_est)) = best else {
            break;
        };
        let (codes, d_s, f1) = join_codes(&states[i].codes, &states[j].codes);
        let mut cols: Vec<u32> = states[i]
            .cols
            .iter()
            .chain(&states[j].cols)
            .copied()
            .collect();
        cols.sort_unstable();
        let width = cols.len();
        states[i] = GroupState {
            cols,
            codes,
            d_s,
            f1,
            d_est: joint_est,
            size: ddc_size(width, joint_est, rows),
        };
        alive[j] = false;
        for (k, &live) in alive.iter().enumerate() {
            if !live || k == i {
                continue;
            }
            let (a, b) = (i.min(k), i.max(k));
            pair[a * n + b] = compute_pair(&states[a], &states[b], rows, sample_len, js);
        }
    }
    states
        .into_iter()
        .zip(alive)
        .filter_map(|(s, a)| a.then_some(s))
        .collect()
}

/// Phase 1 + 2: sample, estimate, greedy-merge. Returns the planned group
/// layout without touching the dictionaries.
pub fn plan(dense: &DenseMatrix, opts: &ClaOptions) -> ClaPlan {
    let rows = dense.rows();
    let cols = dense.cols();
    let sample_n = opts.sample_rows.min(rows);
    let exact = sample_n == rows;
    // Deterministic evenly-spaced sample: reproducible plans, no RNG
    // plumbing, and full coverage in the degenerate `sample >= rows` case.
    let sample: Vec<usize> = if exact {
        (0..rows).collect()
    } else {
        (0..sample_n).map(|i| i * rows / sample_n).collect()
    };

    let states: Vec<GroupState> = (0..cols)
        .map(|c| {
            let mut map: HashMap<u64, u32> = HashMap::new();
            let mut counts: Vec<u32> = Vec::new();
            let mut codes = Vec::with_capacity(sample.len());
            for &r in &sample {
                let bits = dense.get(r, c).to_bits();
                let next = counts.len() as u32;
                let id = *map.entry(bits).or_insert_with(|| {
                    counts.push(0);
                    next
                });
                counts[id as usize] += 1;
                codes.push(id);
            }
            let d_s = counts.len();
            let f1 = counts.iter().filter(|&&n| n == 1).count();
            let d_est = estimate_distinct(d_s, f1, sample.len(), rows);
            GroupState {
                cols: vec![c as u32],
                codes,
                d_s,
                f1,
                d_est,
                size: group_size(1, d_est, rows),
            }
        })
        .collect();

    // Phase 2a: global identical-signature pre-merge (cheap, cross-window).
    let mut rest = bucket_identical(states, rows);
    rest.sort_by_key(|g| g.cols[0]);

    // Phase 2b: best-first pairwise merge, windowed for bounded cost.
    let mut js = JoinScratch::default();
    let mut groups: Vec<GroupState> = Vec::new();
    while !rest.is_empty() {
        let take_n = rest.len().min(PLAN_WINDOW_GROUPS);
        let window: Vec<GroupState> = rest.drain(..take_n).collect();
        groups.extend(merge_window(window, rows, sample.len(), &mut js));
    }

    groups.sort_by_key(|g| g.cols[0]);
    let est_bytes = 16 + groups.iter().map(|g| g.size).sum::<usize>();
    ClaPlan {
        groups: groups.into_iter().map(|g| g.cols).collect(),
        est_bytes,
        sample_rows: sample_n,
        exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correlated(rows: usize) -> DenseMatrix {
        // Columns 0..4 independent with 4 distinct values; columns 4..8
        // copies of their partner 4 columns earlier.
        let mut m = DenseMatrix::zeros(rows, 8);
        for r in 0..rows {
            for c in 0..4 {
                let v = (((r * 31 + c * 17) % 97) % 4) as f64;
                m.set(r, c, v);
                m.set(r, c + 4, v + 10.0 * (c as f64 + 1.0));
            }
        }
        m
    }

    #[test]
    fn pairs_correlated_columns() {
        let m = correlated(400);
        let p = plan(&m, &ClaOptions::default());
        // Every planned group must keep each column with its perfectly
        // correlated partner (joint distinct = 4, merge always wins).
        for g in &p.groups {
            for &c in g {
                let partner = if c < 4 { c + 4 } else { c - 4 };
                assert!(
                    g.contains(&partner),
                    "{:?} splits pair {c}/{partner}",
                    p.groups
                );
            }
        }
        assert!(p.est_bytes < m.den_size_bytes());
    }

    #[test]
    fn full_sample_is_exact() {
        let m = correlated(50);
        let a = plan(
            &m,
            &ClaOptions {
                planner: ClaPlanner::SampleMerge,
                sample_rows: 50,
            },
        );
        let b = plan(
            &m,
            &ClaOptions {
                planner: ClaPlanner::SampleMerge,
                sample_rows: 5000,
            },
        );
        assert!(a.exact && b.exact);
        assert_eq!(a, b);
    }

    #[test]
    fn estimator_sane() {
        assert_eq!(estimate_distinct(5, 0, 100, 100), 5);
        assert_eq!(estimate_distinct(64, 64, 64, 1000), 1000); // all singletons
        let est = estimate_distinct(10, 2, 100, 1000);
        assert!((10..=28).contains(&est), "{est}");
        assert_eq!(estimate_distinct(3, 0, 50, 1000), 3);
    }

    #[test]
    fn zero_rows_and_constant_columns() {
        let p = plan(&DenseMatrix::zeros(0, 5), &ClaOptions::default());
        assert_eq!(p.groups.iter().map(Vec::len).sum::<usize>(), 5);
        let p = plan(&DenseMatrix::zeros(40, 40), &ClaOptions::default());
        // All-zero columns merge up to the group-width cap.
        assert!(p.groups.iter().all(|g| g.len() <= MAX_GROUP_COLS));
        assert!(p.groups.len() <= 4, "{:?}", p.groups.len());
    }
}
