//! CLA (§5 method 5): a simplified re-implementation of Compressed Linear
//! Algebra [Elgohary et al., VLDB 2016].
//!
//! CLA partitions the matrix into column groups, co-codes each group with a
//! dictionary of distinct value-tuples (DDC — dense dictionary coding), and
//! executes linear algebra directly on the compressed groups by
//! precomputing per-dictionary-entry partial results. Columns that do not
//! compress fall back to an uncompressed-column (UC) group.
//!
//! The two properties the paper contrasts with TOC are preserved:
//! compressed execution without decompression, and an **explicit
//! dictionary**, whose fixed cost is poorly amortized on small mini-batches
//! (the reason CLA ratios trail TOC there — see Figure 5).
//!
//! ## Choosing column groups
//!
//! Which columns get co-coded is decided by one of two planners
//! ([`ClaOptions::planner`]):
//!
//! * [`ClaPlanner::Greedy`] — the historical left-to-right scan: extend
//!   the current group with the next column while the merged dictionary
//!   stays under [`MAX_DICT_ENTRIES`]. Cheap and exact, but it merges
//!   *whenever it can*, not whenever it helps, and it can only group
//!   adjacent columns.
//! * [`ClaPlanner::SampleMerge`] (default) — the [`planner`] module's
//!   sample-based two-phase plan: estimate per-column distinct counts and
//!   pairwise co-occurrence cardinalities from a row sample, greedy-merge
//!   the pair of groups with the best estimated size reduction until no
//!   merge helps, then materialize the dictionaries in one full pass.
//!   Finds non-adjacent correlated columns and refuses harmful merges;
//!   costs an `O(cols²)` estimate scan bounded by
//!   [`ClaOptions::sample_rows`].
//!
//! Both planners emit the same self-describing wire format (each group
//! lists its columns), so containers encoded under either plan — or under
//! pre-planner versions of this crate — decode identically.

use crate::wire::{put_f64s, put_u32, put_u32s, Rd};
use crate::{FormatError, MatrixBatch, Scheme};
use std::collections::HashMap;
use toc_linalg::DenseMatrix;

pub mod planner;
pub use planner::{ClaOptions, ClaPlan, ClaPlanner, MAX_DICT_ENTRIES, MAX_GROUP_COLS};

/// Max dictionary entries per co-coded group (keeps row indexes 1 byte and
/// per-op precompute tables small, mirroring CLA's sample-based cutoffs).
const DICT_CAP: usize = MAX_DICT_ENTRIES;
/// Max columns co-coded into one group.
const GROUP_CAP: usize = MAX_GROUP_COLS;

fn idx_width(n: usize) -> usize {
    match n.saturating_sub(1) {
        0..=0xFF => 1,
        0x100..=0xFFFF => 2,
        _ => 4,
    }
}

/// One column group.
#[derive(Clone, Debug, PartialEq)]
pub enum Group {
    /// Dense dictionary coding over `cols.len()` co-coded columns:
    /// `dict` is `n_entries × cols.len()` row-major; `rowidx[r]` picks the
    /// tuple for matrix row `r`.
    Ddc {
        cols: Vec<u32>,
        dict: Vec<f64>,
        rowidx: Vec<u32>,
    },
    /// Uncompressed column fallback.
    Uc { col: u32, values: Vec<f64> },
}

/// A CLA-encoded mini-batch.
#[derive(Clone, Debug, PartialEq)]
pub struct ClaBatch {
    rows: usize,
    cols: usize,
    groups: Vec<Group>,
}

impl ClaBatch {
    /// Encode with the default options ([`ClaPlanner::SampleMerge`]).
    pub fn encode(dense: &DenseMatrix) -> Self {
        Self::encode_with(dense, &ClaOptions::default())
    }

    /// Encode with explicit planner options.
    pub fn encode_with(dense: &DenseMatrix, opts: &ClaOptions) -> Self {
        match opts.planner {
            ClaPlanner::Greedy => Self::encode_greedy(dense),
            ClaPlanner::SampleMerge => Self::materialize(dense, &planner::plan(dense, opts)),
        }
    }

    /// Materialize a planned group layout: one full pass per group builds
    /// the dictionary and row indexes. Groups whose *actual* cardinality
    /// exceeds the planner's estimate beyond [`MAX_DICT_ENTRIES`] fall
    /// back to singleton groups (and incompressible singletons to UC), so
    /// a bad sample can cost ratio but never correctness.
    fn materialize(dense: &DenseMatrix, plan: &ClaPlan) -> Self {
        let rows = dense.rows();
        let cols = dense.cols();
        let mut groups: Vec<Group> = Vec::with_capacity(plan.groups.len());
        for gcols in &plan.groups {
            if let [c] = gcols.as_slice() {
                groups.push(Self::build_singleton(dense, *c));
                continue;
            }
            match Self::build_ddc(dense, gcols, Some(DICT_CAP)) {
                Some(g) => groups.push(g),
                None => {
                    // Estimate was wrong: encode each column separately.
                    for &c in gcols {
                        groups.push(Self::build_singleton(dense, c));
                    }
                }
            }
        }
        Self { rows, cols, groups }
    }

    /// Build one DDC group over `gcols`, aborting (`None`) if the
    /// dictionary exceeds `cap` for a multi-column group.
    fn build_ddc(dense: &DenseMatrix, gcols: &[u32], cap: Option<usize>) -> Option<Group> {
        let rows = dense.rows();
        let mut map: HashMap<(u32, u64), u32> = HashMap::new();
        let mut dict: Vec<f64> = Vec::new();
        let mut rowidx: Vec<u32> = vec![0; rows];
        for (k, &c) in gcols.iter().enumerate() {
            map.clear();
            let mut pairs: Vec<(u32, f64)> = Vec::new();
            for (r, ri) in rowidx.iter_mut().enumerate() {
                let v = dense.get(r, c as usize);
                let key = (*ri, v.to_bits());
                let next = pairs.len() as u32;
                let id = *map.entry(key).or_insert_with(|| {
                    pairs.push((key.0, v));
                    next
                });
                *ri = id;
            }
            if let Some(cap) = cap {
                if gcols.len() > 1 && pairs.len() > cap {
                    return None;
                }
            }
            let mut new_dict = Vec::with_capacity(pairs.len() * (k + 1));
            for &(old_id, v) in &pairs {
                new_dict.extend_from_slice(&dict[old_id as usize * k..(old_id as usize + 1) * k]);
                new_dict.push(v);
            }
            dict = new_dict;
        }
        Some(Group::Ddc {
            cols: gcols.to_vec(),
            dict,
            rowidx,
        })
    }

    /// Encode one column alone: whichever of DDC and UC is smaller under
    /// the `size_bytes` model — the same rule the planner's size
    /// estimates use ([`planner`]'s `group_size`), so `ClaPlan::est_bytes`
    /// tracks what materialization actually emits.
    fn build_singleton(dense: &DenseMatrix, c: u32) -> Group {
        let rows = dense.rows();
        let Some(Group::Ddc { cols, dict, rowidx }) = Self::build_ddc(dense, &[c], None) else {
            unreachable!("uncapped build_ddc always succeeds");
        };
        if planner::uc_size(rows) < planner::ddc_size(1, dict.len(), rows) {
            Group::Uc {
                col: c,
                values: (0..rows).map(|r| dense.get(r, c as usize)).collect(),
            }
        } else {
            Group::Ddc { cols, dict, rowidx }
        }
    }

    /// Greedy left-to-right co-coding: extend the current group with the
    /// next column while the merged dictionary stays under the dictionary cap (256 entries).
    pub fn encode_greedy(dense: &DenseMatrix) -> Self {
        let rows = dense.rows();
        let cols = dense.cols();
        let mut groups: Vec<Group> = Vec::new();

        let mut c = 0usize;
        while c < cols {
            // Seed a group with column c.
            let mut map: HashMap<(u32, u64), u32> = HashMap::new();
            let mut dict: Vec<f64> = Vec::new();
            let mut rowidx: Vec<u32> = Vec::with_capacity(rows);
            #[allow(clippy::needless_range_loop)] // r indexes both the matrix and rowidx
            for r in 0..rows {
                let bits = dense.get(r, c).to_bits();
                let next = dict.len() as u32;
                let id = *map.entry((0, bits)).or_insert_with(|| {
                    dict.push(dense.get(r, c));
                    next
                });
                rowidx.push(id);
            }
            let mut group_cols = vec![c as u32];
            let mut n_entries = dict.len();

            if n_entries > DICT_CAP && n_entries * 2 > rows {
                // Incompressible column: UC fallback.
                groups.push(Group::Uc {
                    col: c as u32,
                    values: (0..rows).map(|r| dense.get(r, c)).collect(),
                });
                c += 1;
                continue;
            }

            // Try to extend with following columns.
            let mut next_col = c + 1;
            while next_col < cols && group_cols.len() < GROUP_CAP && n_entries <= DICT_CAP {
                // Candidate dictionary: distinct (current entry, new value).
                let mut cand: HashMap<(u32, u64), u32> = HashMap::new();
                let mut cand_rowidx: Vec<u32> = Vec::with_capacity(rows);
                let mut pairs: Vec<(u32, f64)> = Vec::new();
                #[allow(clippy::needless_range_loop)] // r indexes the matrix and rowidx
                for r in 0..rows {
                    let v = dense.get(r, next_col);
                    let key = (rowidx[r], v.to_bits());
                    let next = pairs.len() as u32;
                    let id = *cand.entry(key).or_insert_with(|| {
                        pairs.push((rowidx[r], v));
                        next
                    });
                    cand_rowidx.push(id);
                }
                if pairs.len() > DICT_CAP {
                    break;
                }
                // Accept: rebuild the flattened dictionary.
                let width = group_cols.len();
                let mut new_dict = Vec::with_capacity(pairs.len() * (width + 1));
                for &(old_id, v) in &pairs {
                    let old = &dict[old_id as usize * width..(old_id as usize + 1) * width];
                    new_dict.extend_from_slice(old);
                    new_dict.push(v);
                }
                dict = new_dict;
                rowidx = cand_rowidx;
                group_cols.push(next_col as u32);
                n_entries = pairs.len();
                next_col += 1;
            }

            c = next_col;
            groups.push(Group::Ddc {
                cols: group_cols,
                dict,
                rowidx,
            });
        }

        Self { rows, cols, groups }
    }

    pub fn from_body(body: &[u8]) -> Result<Self, FormatError> {
        let mut rd = Rd::new(body);
        let rows = rd.u32()? as usize;
        let cols = rd.u32()? as usize;
        let n_groups = rd.u32()? as usize;
        // Wire-length plausibility before any allocation sized by header
        // fields: every column occupies >= 4 bytes in some group's column
        // list (DDC entry or UC col field), so a header claiming more
        // columns than the body can back is corrupt — checked here so a
        // flipped high bit cannot drive `vec![...; cols]` into a
        // gigabyte allocation / abort.
        if cols > body.len() / 4 {
            return Err(FormatError::Corrupt("implausible CLA column count".into()));
        }
        // With `cols > 0` the coverage check below forces at least one
        // group, whose rowidx/values array (4+ bytes per row) bounds
        // `rows` against the body. A zero-column body is header-only for
        // any claimed row count, so cap it — otherwise a crafted 12-byte
        // body could claim 2^32 rows and drive the first kernel call
        // into a giant output allocation.
        if cols == 0 && rows > crate::MAX_DEGENERATE_DIM {
            return Err(FormatError::Corrupt("implausible CLA row count".into()));
        }
        if n_groups > cols {
            return Err(FormatError::Corrupt("too many CLA groups".into()));
        }
        let mut groups = Vec::with_capacity(n_groups);
        // The encoder always emits exactly one group membership per
        // column; enforce that the groups form a disjoint, complete
        // partition so a corrupted column list (e.g. a bit flip turning
        // [4,5] into [4,4]) errors instead of silently decoding to wrong
        // data (kernels would double-count the duplicate).
        let mut covered = vec![false; cols];
        let mut cover = |c: u32| -> Result<(), FormatError> {
            match covered.get_mut(c as usize) {
                Some(seen @ false) => {
                    *seen = true;
                    Ok(())
                }
                _ => Err(FormatError::Corrupt(
                    "CLA group column out of range or duplicated".into(),
                )),
            }
        };
        for _ in 0..n_groups {
            match rd.u8()? {
                0 => {
                    let gcols = rd.u32s()?;
                    let dict = rd.f64s()?;
                    let rowidx = rd.u32s()?;
                    let width = gcols.len().max(1);
                    let n_entries = dict.len() / width;
                    if gcols.is_empty()
                        || dict.len() % width != 0
                        || rowidx.len() != rows
                        || rowidx.iter().any(|&i| i as usize >= n_entries)
                    {
                        return Err(FormatError::Corrupt("bad DDC group".into()));
                    }
                    for &g in &gcols {
                        cover(g)?;
                    }
                    groups.push(Group::Ddc {
                        cols: gcols,
                        dict,
                        rowidx,
                    });
                }
                1 => {
                    let col = rd.u32()?;
                    let values = rd.f64s()?;
                    if values.len() != rows {
                        return Err(FormatError::Corrupt("bad UC group".into()));
                    }
                    cover(col)?;
                    groups.push(Group::Uc { col, values });
                }
                t => return Err(FormatError::Corrupt(format!("bad group tag {t}"))),
            }
        }
        rd.done()?;
        if covered.iter().any(|&seen| !seen) {
            return Err(FormatError::Corrupt(
                "CLA groups do not cover all columns".into(),
            ));
        }
        Ok(Self { rows, cols, groups })
    }

    /// Number of column groups (exposed for tests/inspection).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The encoded column groups (exposed for tests/inspection).
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }
}

impl MatrixBatch for ClaBatch {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn size_bytes(&self) -> usize {
        let mut total = 16;
        for g in &self.groups {
            total += match g {
                Group::Ddc { cols, dict, rowidx } => {
                    8 + 4 * cols.len()
                        + 8 * dict.len()
                        + rowidx.len() * idx_width(dict.len() / cols.len().max(1))
                }
                Group::Uc { values, .. } => 8 + 8 * values.len(),
            };
        }
        total
    }
    fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        toc_linalg::dense::reset_vec(out, self.rows);
        for g in &self.groups {
            match g {
                Group::Ddc { cols, dict, rowidx } => {
                    let width = cols.len();
                    let n = dict.len() / width;
                    // Precompute per-dictionary-entry dot products.
                    let mut table = vec![0.0f64; n];
                    for (i, t) in table.iter_mut().enumerate() {
                        let tuple = &dict[i * width..(i + 1) * width];
                        let mut acc = 0.0;
                        for (j, &val) in tuple.iter().enumerate() {
                            acc += val * v[cols[j] as usize];
                        }
                        *t = acc;
                    }
                    for (o, &i) in out.iter_mut().zip(rowidx) {
                        *o += table[i as usize];
                    }
                }
                Group::Uc { col, values } => {
                    let x = v[*col as usize];
                    if x != 0.0 {
                        for (o, &val) in out.iter_mut().zip(values) {
                            *o += val * x;
                        }
                    }
                }
            }
        }
    }
    fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        toc_linalg::dense::reset_vec(out, self.cols);
        for g in &self.groups {
            match g {
                Group::Ddc { cols, dict, rowidx } => {
                    let width = cols.len();
                    let n = dict.len() / width;
                    let mut acc = vec![0.0f64; n];
                    for (&i, &w) in rowidx.iter().zip(v) {
                        acc[i as usize] += w;
                    }
                    for (i, &a) in acc.iter().enumerate() {
                        if a != 0.0 {
                            let tuple = &dict[i * width..(i + 1) * width];
                            for (j, &val) in tuple.iter().enumerate() {
                                out[cols[j] as usize] += val * a;
                            }
                        }
                    }
                }
                Group::Uc { col, values } => {
                    let mut acc = 0.0;
                    for (&val, &w) in values.iter().zip(v) {
                        acc += val * w;
                    }
                    out[*col as usize] += acc;
                }
            }
        }
    }
    fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        let p = m.cols();
        out.reset(self.rows, p);
        for g in &self.groups {
            match g {
                Group::Ddc { cols, dict, rowidx } => {
                    let width = cols.len();
                    let n = dict.len() / width;
                    let mut table = vec![0.0f64; n * p];
                    for i in 0..n {
                        let tuple = &dict[i * width..(i + 1) * width];
                        let trow = &mut table[i * p..(i + 1) * p];
                        for (j, &val) in tuple.iter().enumerate() {
                            if val == 0.0 {
                                continue;
                            }
                            let mrow = m.row(cols[j] as usize);
                            for (t, &b) in trow.iter_mut().zip(mrow) {
                                *t += val * b;
                            }
                        }
                    }
                    for (r, &i) in rowidx.iter().enumerate() {
                        let trow = &table[i as usize * p..(i as usize + 1) * p];
                        let orow = out.row_mut(r);
                        for (o, &t) in orow.iter_mut().zip(trow) {
                            *o += t;
                        }
                    }
                }
                Group::Uc { col, values } => {
                    let mrow = m.row(*col as usize).to_vec();
                    for (r, &val) in values.iter().enumerate() {
                        if val == 0.0 {
                            continue;
                        }
                        let orow = out.row_mut(r);
                        for (o, &b) in orow.iter_mut().zip(&mrow) {
                            *o += val * b;
                        }
                    }
                }
            }
        }
    }
    fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        let p = m.rows();
        out.reset(p, self.cols);
        for g in &self.groups {
            match g {
                Group::Ddc { cols, dict, rowidx } => {
                    let width = cols.len();
                    let n = dict.len() / width;
                    // acc[i][q] = sum over rows with entry i of M[q][r].
                    let mut acc = vec![0.0f64; n * p];
                    for (r, &i) in rowidx.iter().enumerate() {
                        let arow = &mut acc[i as usize * p..(i as usize + 1) * p];
                        for (q, a) in arow.iter_mut().enumerate() {
                            *a += m.get(q, r);
                        }
                    }
                    for i in 0..n {
                        let tuple = &dict[i * width..(i + 1) * width];
                        let arow = &acc[i * p..(i + 1) * p];
                        for (j, &val) in tuple.iter().enumerate() {
                            if val == 0.0 {
                                continue;
                            }
                            let col = cols[j] as usize;
                            for (q, &a) in arow.iter().enumerate() {
                                out.set(q, col, out.get(q, col) + val * a);
                            }
                        }
                    }
                }
                Group::Uc { col, values } => {
                    for q in 0..p {
                        let mut accv = 0.0;
                        let mrow = m.row(q);
                        for (&val, &w) in values.iter().zip(mrow) {
                            accv += val * w;
                        }
                        out.set(q, *col as usize, out.get(q, *col as usize) + accv);
                    }
                }
            }
        }
    }
    fn scale(&mut self, c: f64) {
        for g in &mut self.groups {
            match g {
                Group::Ddc { dict, .. } => {
                    for v in dict {
                        *v *= c;
                    }
                }
                Group::Uc { values, .. } => {
                    for v in values {
                        *v *= c;
                    }
                }
            }
        }
    }
    fn decode_into(&self, out: &mut DenseMatrix) {
        out.reset(self.rows, self.cols);
        for g in &self.groups {
            match g {
                Group::Ddc { cols, dict, rowidx } => {
                    let width = cols.len();
                    for (r, &i) in rowidx.iter().enumerate() {
                        let tuple = &dict[i as usize * width..(i as usize + 1) * width];
                        for (j, &val) in tuple.iter().enumerate() {
                            out.set(r, cols[j] as usize, val);
                        }
                    }
                }
                Group::Uc { col, values } => {
                    for (r, &val) in values.iter().enumerate() {
                        out.set(r, *col as usize, val);
                    }
                }
            }
        }
    }
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![Scheme::Cla.tag()];
        put_u32(&mut out, self.rows as u32);
        put_u32(&mut out, self.cols as u32);
        put_u32(&mut out, self.groups.len() as u32);
        for g in &self.groups {
            match g {
                Group::Ddc { cols, dict, rowidx } => {
                    out.push(0);
                    put_u32s(&mut out, cols);
                    put_f64s(&mut out, dict);
                    put_u32s(&mut out, rowidx);
                }
                Group::Uc { col, values } => {
                    out.push(1);
                    put_u32(&mut out, *col);
                    put_f64s(&mut out, values);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn redundant_matrix(rows: usize, cols: usize) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, (((r % 5) * (c % 3)) % 4) as f64 * 0.5);
            }
        }
        m
    }

    #[test]
    fn roundtrip() {
        let a = redundant_matrix(40, 20);
        let b = ClaBatch::encode(&a);
        assert_eq!(b.decode(), a);
        let restored = ClaBatch::from_body(&b.to_bytes()[1..]).unwrap();
        assert_eq!(restored, b);
    }

    #[test]
    fn co_coding_happens_on_redundant_columns() {
        let a = redundant_matrix(100, 30);
        let b = ClaBatch::encode(&a);
        assert!(b.num_groups() < 30, "groups: {}", b.num_groups());
        assert!(b.size_bytes() < a.den_size_bytes());
    }

    #[test]
    fn uc_fallback_on_random_column() {
        let mut rng = StdRng::seed_from_u64(3);
        let rows = 600;
        let mut m = DenseMatrix::zeros(rows, 2);
        for r in 0..rows {
            m.set(r, 0, rng.gen::<f64>()); // unique values -> UC
            m.set(r, 1, (r % 3) as f64); // 3 distinct -> DDC
        }
        let b = ClaBatch::encode(&m);
        assert!(b.groups.iter().any(|g| matches!(g, Group::Uc { .. })));
        assert_eq!(b.decode(), m);
    }

    #[test]
    fn kernels_match_dense() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = redundant_matrix(35, 18);
        let v: Vec<f64> = (0..18).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let w: Vec<f64> = (0..35).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b = ClaBatch::encode(&a);
        let tol = 1e-9;
        assert!(toc_linalg::dense::max_abs_diff_vec(&b.matvec(&v), &a.matvec(&v)) < tol);
        assert!(toc_linalg::dense::max_abs_diff_vec(&b.vecmat(&w), &a.vecmat(&w)) < tol);
        let m = DenseMatrix::random(&mut rng, 18, 5, -1.0, 1.0);
        assert!(b.matmat(&m).max_abs_diff(&a.matmat(&m)) < tol);
        let ml = DenseMatrix::random(&mut rng, 4, 35, -1.0, 1.0);
        assert!(b.matmat_left(&ml).max_abs_diff(&a.matmat_left(&ml)) < tol);
    }

    #[test]
    fn scale_matches_dense() {
        let a = redundant_matrix(20, 10);
        let mut b = ClaBatch::encode(&a);
        b.scale(0.25);
        let mut want = a;
        want.scale(0.25);
        assert_eq!(b.decode(), want);
    }

    #[test]
    fn single_column_matrix() {
        let a = DenseMatrix::from_rows(vec![vec![1.0], vec![2.0], vec![1.0]]);
        let b = ClaBatch::encode(&a);
        assert_eq!(b.decode(), a);
        assert_eq!(b.matvec(&[2.0]), a.matvec(&[2.0]));
    }

    #[test]
    fn corrupt_body_errors() {
        let b = ClaBatch::encode(&redundant_matrix(10, 5)).to_bytes();
        assert!(ClaBatch::from_body(&b[1..b.len() - 2]).is_err());
        assert!(ClaBatch::from_body(&[0, 0, 0]).is_err());
    }

    #[test]
    fn non_partition_group_layouts_are_rejected() {
        // Greedy co-codes all 5 redundant columns into one DDC group, so
        // the wire layout is: tag, rows, cols, n_groups, group tag, col
        // list (len at 14..18, first col at 18..22, second at 22..26).
        let b = ClaBatch::encode_with(&redundant_matrix(10, 5), &ClaOptions::greedy());
        let good = b.to_bytes();
        assert_eq!(ClaBatch::from_body(&good[1..]).unwrap(), b);
        // Duplicate column: [0,1,2,3,4] -> [0,0,2,3,4].
        let mut dup = good.clone();
        dup[22..26].copy_from_slice(&0u32.to_le_bytes());
        assert!(ClaBatch::from_body(&dup[1..]).is_err());
        // Inflated column count: group no longer covers every column.
        let mut wide = good.clone();
        wide[5..9].copy_from_slice(&6u32.to_le_bytes());
        assert!(ClaBatch::from_body(&wide[1..]).is_err());
    }

    #[test]
    fn implausible_header_counts_error_without_allocating() {
        // High-bit corruption of cols/n_groups must be rejected by the
        // wire-length bound before any header-sized allocation happens
        // (a ~2^31 count would otherwise abort the process).
        let good = ClaBatch::encode(&redundant_matrix(10, 5)).to_bytes();
        let mut huge_cols = good.clone();
        huge_cols[8] |= 0x80;
        assert!(ClaBatch::from_body(&huge_cols[1..]).is_err());
        let mut huge_both = good.clone();
        huge_both[8] |= 0x80; // cols high bit
        huge_both[12] |= 0x80; // n_groups high bit (still <= cols)
        assert!(ClaBatch::from_body(&huge_both[1..]).is_err());
        // Zero-column body claiming 2^32-1 rows: the rows field has no
        // byte backing (no groups), so the degenerate-dimension cap must
        // reject it before a kernel allocates a rows-sized output.
        let mut crafted = Vec::new();
        crate::wire::put_u32(&mut crafted, u32::MAX); // rows
        crate::wire::put_u32(&mut crafted, 0); // cols
        crate::wire::put_u32(&mut crafted, 0); // n_groups
        assert!(ClaBatch::from_body(&crafted).is_err());
        // But an honestly degenerate zero-column batch still round-trips.
        let empty = ClaBatch::encode(&DenseMatrix::zeros(5, 0));
        assert_eq!(ClaBatch::from_body(&empty.to_bytes()[1..]).unwrap(), empty);
    }

    #[test]
    fn both_planners_roundtrip_and_interchange_on_the_wire() {
        let a = redundant_matrix(80, 25);
        for opts in [ClaOptions::greedy(), ClaOptions::default()] {
            let b = ClaBatch::encode_with(&a, &opts);
            assert_eq!(b.decode(), a, "{:?}", opts.planner);
            let restored = ClaBatch::from_body(&b.to_bytes()[1..]).unwrap();
            assert_eq!(restored, b, "{:?}", opts.planner);
        }
    }

    #[test]
    fn sampled_planner_skips_harmful_merges() {
        // Two independent 16-value columns: greedy co-codes them (joint
        // dictionary 256 <= cap) even though that inflates the encoding;
        // the sampled planner keeps them apart.
        let rows = 800;
        let mut m = DenseMatrix::zeros(rows, 2);
        for r in 0..rows {
            m.set(r, 0, ((r * 7 + 3) % 16) as f64);
            m.set(r, 1, ((r * 13 + 5) % 17 % 16) as f64 + 100.0);
        }
        let greedy = ClaBatch::encode_with(&m, &ClaOptions::greedy());
        let sampled = ClaBatch::encode_with(&m, &ClaOptions::default());
        assert_eq!(greedy.num_groups(), 1);
        assert_eq!(sampled.num_groups(), 2);
        assert!(sampled.size_bytes() < greedy.size_bytes());
        assert_eq!(sampled.decode(), greedy.decode());
    }

    #[test]
    fn sampled_planner_finds_non_adjacent_pairs() {
        // col2 duplicates col0; greedy can only group neighbors, the
        // planner pairs them across the independent col1.
        let rows = 300;
        let mut m = DenseMatrix::zeros(rows, 3);
        for r in 0..rows {
            let v = ((r * 11) % 5) as f64;
            m.set(r, 0, v);
            m.set(r, 1, ((r * 17 + 1) % 7) as f64 + 50.0);
            m.set(r, 2, v + 9.0);
        }
        let b = ClaBatch::encode_with(&m, &ClaOptions::default());
        let pair = b
            .groups()
            .iter()
            .any(|g| matches!(g, Group::Ddc { cols, .. } if cols.as_slice() == [0, 2]));
        assert!(pair, "groups: {:?}", b.num_groups());
        assert_eq!(b.decode(), m);
    }

    #[test]
    fn planned_multi_column_groups_respect_dict_cap() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut m = DenseMatrix::zeros(500, 12);
        for r in 0..500 {
            for c in 0..12 {
                m.set(r, c, (rng.gen_range(0..30usize) * (c + 1)) as f64);
            }
        }
        let b = ClaBatch::encode_with(&m, &ClaOptions::default());
        for g in b.groups() {
            if let Group::Ddc { cols, dict, .. } = g {
                if cols.len() > 1 {
                    assert!(dict.len() / cols.len() <= MAX_DICT_ENTRIES);
                }
            }
        }
        assert_eq!(b.decode(), m);
    }
}
