//! DEN (§5 method 1): the standard dense binary format. Row-major IEEE-754
//! doubles; the baseline every compression ratio is measured against.

use crate::wire::{put_u32, Rd};
use crate::{FormatError, MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;

/// An uncompressed dense mini-batch.
#[derive(Clone, Debug, PartialEq)]
pub struct DenBatch {
    m: DenseMatrix,
}

impl DenBatch {
    pub fn encode(dense: &DenseMatrix) -> Self {
        Self { m: dense.clone() }
    }

    pub fn from_body(body: &[u8]) -> Result<Self, FormatError> {
        let mut rd = Rd::new(body);
        let rows = rd.u32()? as usize;
        let cols = rd.u32()? as usize;
        if rows.checked_mul(cols).is_none() || rows * cols > body.len() / 8 + 1 {
            return Err(FormatError::Corrupt("implausible DEN shape".into()));
        }
        let raw = rd.take(rows * cols * 8)?;
        rd.done()?;
        let data = raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Self {
            m: DenseMatrix::from_vec(rows, cols, data),
        })
    }

    /// Borrow the underlying dense matrix.
    pub fn dense(&self) -> &DenseMatrix {
        &self.m
    }
}

impl MatrixBatch for DenBatch {
    fn rows(&self) -> usize {
        self.m.rows()
    }
    fn cols(&self) -> usize {
        self.m.cols()
    }
    fn size_bytes(&self) -> usize {
        self.m.den_size_bytes()
    }
    fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        self.m.matvec_into(v, out)
    }
    fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        self.m.vecmat_into(v, out)
    }
    fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        self.m.matmat_into(m, out)
    }
    fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        self.m.matmat_left_into(m, out)
    }
    fn decode_into(&self, out: &mut DenseMatrix) {
        out.reset(self.m.rows(), self.m.cols());
        out.data_mut().copy_from_slice(self.m.data());
    }
    fn decode_rows_into(&self, r0: usize, r1: usize, out: &mut DenseMatrix) {
        assert!(r0 <= r1 && r1 <= self.m.rows(), "row range out of bounds");
        out.reset(r1 - r0, self.m.cols());
        let cols = self.m.cols();
        out.data_mut()
            .copy_from_slice(&self.m.data()[r0 * cols..r1 * cols]);
    }
    fn scale(&mut self, c: f64) {
        self.m.scale(c);
    }
    fn decode(&self) -> DenseMatrix {
        self.m.clone()
    }
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + self.m.data().len() * 8);
        out.push(Scheme::Den.tag());
        put_u32(&mut out, self.m.rows() as u32);
        put_u32(&mut out, self.m.cols() as u32);
        for v in self.m.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 0.0], vec![-2.5, 3.0]]);
        let b = DenBatch::encode(&a);
        let bytes = b.to_bytes();
        assert_eq!(bytes[0], Scheme::Den.tag());
        let restored = DenBatch::from_body(&bytes[1..]).unwrap();
        assert_eq!(restored.decode(), a);
        assert_eq!(b.size_bytes(), a.den_size_bytes());
    }

    #[test]
    fn corrupt_body_errors() {
        assert!(DenBatch::from_body(&[1, 2]).is_err());
        assert!(DenBatch::from_body(&[255, 255, 255, 255, 255, 255, 255, 255]).is_err());
    }
}
