//! The `.tocz` container: whole datasets as ordered encoded mini-batch
//! segments, seekable since v2.
//!
//! **v1** (legacy, still readable) is a decode-everything blob:
//!
//! ```text
//! magic   u32 = 0x544F435A ("TOCZ")
//! version u8  = 1
//! batches u32
//! per batch: u32 byte length, then the tagged MatrixBatch bytes
//! ```
//!
//! **v2** is self-describing from the end of the file: a fixed-size
//! postscript at EOF points at a footer that holds a recursive layout
//! tree whose leaves record `(scheme tag, byte extent, row range, zone
//! map)` per encoded segment. Readers seek to the postscript, parse the
//! footer, and then read *only* the segments a mini-batch or row-range
//! projection touches:
//!
//! ```text
//! magic u32, version u8 = 2
//! segment 0 bytes | segment 1 bytes | ...          (tagged batch bytes)
//! footer:
//!   cols u64, segments u64
//!   layout node (recursive):
//!     kind u8 (0 = leaf, 1 = interior)
//!     row_start u64, row_end u64, begin u64, end u64
//!     zone map: min f64, max f64, nnz u64, distinct u64
//!     leaf: scheme u8 | interior: n_children u64, children...
//! postscript (last 29 bytes):
//!   footer_offset u64, footer_len u64, footer_fnv1a u64,
//!   version u8, magic u32
//! ```
//!
//! Every byte of the footer is covered by the FNV-1a checksum in the
//! postscript and the postscript fields are cross-validated against the
//! file length, so any single-byte corruption of either region is a
//! structured [`FormatError`], never a panic or a silently wrong read.
//! The layout-tree shape follows the Vortex footer design (a recursive
//! `(encoding, buffer-extent, children)` tree plus a postscript holding
//! `footer_offset`); zone maps reuse the CLA planner's Good–Turing
//! distinct-count sampler.

use crate::cla::planner::estimate_matrix_distinct;
use crate::wire::{put_f64, put_u32, put_u64, Rd};
use crate::{AnyBatch, EncodeOptions, FormatError, MatrixBatch, Scheme};
use std::path::Path;
use toc_linalg::DenseMatrix;

/// `"TOCZ"` little-endian, leading and trailing.
pub const MAGIC: u32 = 0x544F_435A;
/// Leading header: magic + version byte.
pub const HEADER_LEN: usize = 5;
/// Fixed-size v2 postscript at EOF.
pub const POSTSCRIPT_LEN: usize = 29;
/// Layout-tree fanout: leaves are grouped bottom-up in runs of this many.
pub const FOOTER_FANOUT: usize = 8;
/// Serialized size of a leaf node (kind + row range + extent + zone + tag).
const LEAF_WIRE_LEN: usize = 66;
/// Recursion guard for adversarial footers.
const MAX_TREE_DEPTH: usize = 64;

const V1: u8 = 1;
const V2: u8 = 2;

fn corrupt(msg: impl Into<String>) -> FormatError {
    FormatError::Corrupt(msg.into())
}

/// Check a length fits a `u32` wire field ([`FormatError::TooLarge`]
/// instead of the silent `as u32` truncation that used to corrupt > 4 GiB
/// v1 payloads).
fn fit_u32(what: &'static str, value: u64) -> Result<u32, FormatError> {
    u32::try_from(value).map_err(|_| FormatError::TooLarge {
        what,
        value,
        max: u32::MAX as u64,
    })
}

/// FNV-1a 64-bit, the footer integrity checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Zone maps.

/// Per-segment statistics recorded in the footer so readers can prune
/// segments without touching their bytes: value bounds, non-zero count,
/// and a distinct-value estimate from the CLA planner's Good–Turing
/// sampler ([`estimate_matrix_distinct`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZoneMap {
    /// Smallest value in the segment (0.0 for an empty segment).
    pub min: f64,
    /// Largest value in the segment (0.0 for an empty segment).
    pub max: f64,
    /// Non-zero count.
    pub nnz: u64,
    /// Estimated distinct-value count.
    pub distinct: u64,
}

impl ZoneMap {
    /// Compute from a dense segment, sampling `sample_rows` rows for the
    /// distinct estimate.
    pub fn compute(dense: &DenseMatrix, sample_rows: usize) -> Self {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut nnz = 0u64;
        for &v in dense.data() {
            min = min.min(v);
            max = max.max(v);
            nnz += (v != 0.0) as u64;
        }
        if dense.data().is_empty() {
            min = 0.0;
            max = 0.0;
        }
        Self {
            min,
            max,
            nnz,
            distinct: estimate_matrix_distinct(dense, sample_rows) as u64,
        }
    }

    /// The merged zone of two sibling segments (interior tree nodes).
    /// `distinct` sums — an upper bound, exact when the children share no
    /// values.
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            nnz: self.nnz + other.nnz,
            distinct: self.distinct.saturating_add(other.distinct),
        }
    }

    /// Whether the zone can contain a value in `[lo, hi]` (pruning keeps
    /// the segment iff this is true; `nnz == 0` segments can still match
    /// when the query range covers 0).
    pub fn may_contain_in(&self, lo: f64, hi: f64) -> bool {
        self.max >= lo && self.min <= hi
    }

    fn write_to(&self, out: &mut Vec<u8>) {
        put_f64(out, self.min);
        put_f64(out, self.max);
        put_u64(out, self.nnz);
        put_u64(out, self.distinct);
    }

    fn parse(rd: &mut Rd) -> Result<Self, FormatError> {
        Ok(Self {
            min: rd.f64()?,
            max: rd.f64()?,
            nnz: rd.u64()?,
            distinct: rd.u64()?,
        })
    }
}

// ---------------------------------------------------------------------------
// The layout tree.

/// One node of the recursive layout tree. Leaves describe one encoded
/// segment; interior nodes hold the hull of their children so a reader
/// can prune whole subtrees by row range or zone map.
#[derive(Clone, Debug, PartialEq)]
pub struct LayoutNode {
    /// Leaf: the segment's scheme tag. Interior: `None`.
    pub scheme: Option<u8>,
    /// First row covered (inclusive).
    pub row_start: u64,
    /// Last row covered (exclusive).
    pub row_end: u64,
    /// Byte extent `[begin, end)` as absolute file offsets.
    pub begin: u64,
    /// Byte extent end (exclusive).
    pub end: u64,
    /// Zone map of the covered rows (merged hull for interior nodes).
    pub zone: ZoneMap,
    /// Child nodes (empty for leaves).
    pub children: Vec<LayoutNode>,
}

impl LayoutNode {
    pub fn is_leaf(&self) -> bool {
        self.scheme.is_some()
    }

    /// Number of leaves under this node (1 for a leaf).
    pub fn leaf_count(&self) -> usize {
        if self.is_leaf() {
            1
        } else {
            self.children.iter().map(LayoutNode::leaf_count).sum()
        }
    }

    /// Tree height below this node (a leaf is 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(LayoutNode::depth)
            .max()
            .unwrap_or(0)
    }

    fn write_to(&self, out: &mut Vec<u8>) {
        out.push(if self.is_leaf() { 0 } else { 1 });
        put_u64(out, self.row_start);
        put_u64(out, self.row_end);
        put_u64(out, self.begin);
        put_u64(out, self.end);
        self.zone.write_to(out);
        match self.scheme {
            Some(tag) => out.push(tag),
            None => {
                put_u64(out, self.children.len() as u64);
                for c in &self.children {
                    c.write_to(out);
                }
            }
        }
    }

    fn parse(rd: &mut Rd, depth: usize) -> Result<Self, FormatError> {
        if depth > MAX_TREE_DEPTH {
            return Err(corrupt("layout tree deeper than the recursion bound"));
        }
        let kind = rd.u8()?;
        let row_start = rd.u64()?;
        let row_end = rd.u64()?;
        let begin = rd.u64()?;
        let end = rd.u64()?;
        let zone = ZoneMap::parse(rd)?;
        if row_start > row_end || begin > end {
            return Err(corrupt("layout node with inverted range"));
        }
        match kind {
            0 => {
                let tag = rd.u8()?;
                if !Scheme::is_valid_tag(tag) {
                    return Err(corrupt(format!(
                        "layout leaf with unknown scheme tag {tag}"
                    )));
                }
                if row_start == row_end || begin == end {
                    return Err(corrupt("empty layout leaf"));
                }
                Ok(Self {
                    scheme: Some(tag),
                    row_start,
                    row_end,
                    begin,
                    end,
                    zone,
                    children: Vec::new(),
                })
            }
            1 => {
                let n = rd.u64()? as usize;
                // A child needs at least a leaf's worth of bytes: bound
                // the declared count by what the remaining footer can
                // physically back before allocating (the PR 6
                // implausible-declared-length rule).
                if n > rd.remaining() / LEAF_WIRE_LEN {
                    return Err(corrupt("implausible layout child count"));
                }
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(LayoutNode::parse(rd, depth + 1)?);
                }
                // Interior hull must equal its children exactly: rows and
                // bytes contiguous, no gaps, no overlap.
                if let (Some(first), Some(last)) = (children.first(), children.last()) {
                    if first.row_start != row_start
                        || last.row_end != row_end
                        || first.begin != begin
                        || last.end != end
                    {
                        return Err(corrupt("interior node hull disagrees with children"));
                    }
                    for w in children.windows(2) {
                        if w[1].row_start != w[0].row_end || w[1].begin != w[0].end {
                            return Err(corrupt("layout children not contiguous"));
                        }
                    }
                } else if row_start != row_end || begin != end {
                    return Err(corrupt("childless interior node covers rows"));
                }
                Ok(Self {
                    scheme: None,
                    row_start,
                    row_end,
                    begin,
                    end,
                    zone,
                    children,
                })
            }
            k => Err(corrupt(format!("unknown layout node kind {k}"))),
        }
    }
}

/// The parsed v2 footer: column count plus the layout tree.
#[derive(Clone, Debug, PartialEq)]
pub struct Footer {
    /// Columns of every segment.
    pub cols: u64,
    /// The layout tree (a single leaf for 1-segment containers, a
    /// childless interior node for empty ones).
    pub root: LayoutNode,
}

impl Footer {
    pub fn total_rows(&self) -> u64 {
        self.root.row_end
    }

    pub fn num_segments(&self) -> usize {
        self.root.leaf_count()
    }

    /// The leaves in segment order.
    pub fn leaves(&self) -> Vec<&LayoutNode> {
        let mut out = Vec::with_capacity(self.num_segments());
        fn walk<'a>(n: &'a LayoutNode, out: &mut Vec<&'a LayoutNode>) {
            if n.is_leaf() {
                out.push(n);
            } else {
                for c in &n.children {
                    walk(c, out);
                }
            }
        }
        walk(&self.root, &mut out);
        out
    }

    /// Segment indexes whose row range intersects `[r0, r1)`, found by
    /// pruning the tree (subtrees outside the range are skipped whole).
    pub fn segments_overlapping_rows(&self, r0: u64, r1: u64) -> Vec<usize> {
        let mut out = Vec::new();
        if r0 >= r1 {
            return out;
        }
        fn walk(n: &LayoutNode, r0: u64, r1: u64, idx: &mut usize, out: &mut Vec<usize>) {
            if n.row_end <= r0 || n.row_start >= r1 {
                *idx += n.leaf_count();
                return;
            }
            if n.is_leaf() {
                out.push(*idx);
                *idx += 1;
            } else {
                for c in &n.children {
                    walk(c, r0, r1, idx, out);
                }
            }
        }
        let mut idx = 0;
        walk(&self.root, r0, r1, &mut idx, &mut out);
        out
    }

    /// Segment indexes whose zone map may contain a value in `[lo, hi]`
    /// — zone-map pruning, hierarchical: an interior node whose merged
    /// zone misses the range skips its whole subtree.
    pub fn segments_with_values_in(&self, lo: f64, hi: f64) -> Vec<usize> {
        let mut out = Vec::new();
        fn walk(n: &LayoutNode, lo: f64, hi: f64, idx: &mut usize, out: &mut Vec<usize>) {
            if !n.zone.may_contain_in(lo, hi) {
                *idx += n.leaf_count();
                return;
            }
            if n.is_leaf() {
                out.push(*idx);
                *idx += 1;
            } else {
                for c in &n.children {
                    walk(c, lo, hi, idx, out);
                }
            }
        }
        let mut idx = 0;
        walk(&self.root, lo, hi, &mut idx, &mut out);
        out
    }

    /// Serialize (the byte range the postscript checksum covers).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.cols);
        put_u64(&mut out, self.num_segments() as u64);
        self.root.write_to(&mut out);
        out
    }

    /// Parse and structurally validate a footer byte range.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FormatError> {
        let mut rd = Rd::new(bytes);
        let cols = rd.u64()?;
        let segments = rd.u64()? as usize;
        // Each segment contributes one >= LEAF_WIRE_LEN leaf; reject a
        // declared count the footer can't physically hold.
        if segments > rd.remaining() / LEAF_WIRE_LEN {
            return Err(corrupt("implausible footer segment count"));
        }
        let root = LayoutNode::parse(&mut rd, 1)?;
        rd.done()?;
        if root.leaf_count() != segments {
            return Err(corrupt("footer segment count disagrees with the tree"));
        }
        if segments == 0 && (root.is_leaf() || root.row_start != root.row_end) {
            return Err(corrupt("empty footer with a non-empty tree"));
        }
        if root.row_start != 0 {
            return Err(corrupt("layout tree does not start at row 0"));
        }
        Ok(Self { cols, root })
    }
}

/// Build the layout tree bottom-up with [`FOOTER_FANOUT`]-wide interior
/// nodes. One leaf stays a bare leaf root; zero leaves become a childless
/// interior node anchored at `empty_offset`.
fn build_tree(mut level: Vec<LayoutNode>, empty_offset: u64) -> LayoutNode {
    if level.is_empty() {
        return LayoutNode {
            scheme: None,
            row_start: 0,
            row_end: 0,
            begin: empty_offset,
            end: empty_offset,
            zone: ZoneMap {
                min: 0.0,
                max: 0.0,
                nnz: 0,
                distinct: 0,
            },
            children: Vec::new(),
        };
    }
    while level.len() > 1 {
        level = level
            .chunks(FOOTER_FANOUT)
            .map(|run| {
                let zone = run[1..]
                    .iter()
                    .fold(run[0].zone, |acc, n| acc.merge(&n.zone));
                LayoutNode {
                    scheme: None,
                    row_start: run[0].row_start,
                    row_end: run[run.len() - 1].row_end,
                    begin: run[0].begin,
                    end: run[run.len() - 1].end,
                    zone,
                    children: run.to_vec(),
                }
            })
            .collect();
    }
    level.pop().unwrap()
}

// ---------------------------------------------------------------------------
// The postscript.

/// The fixed-size trailer at EOF: where the footer is and what protects it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Postscript {
    /// Absolute file offset of the footer.
    pub footer_offset: u64,
    /// Footer length in bytes.
    pub footer_len: u64,
    /// FNV-1a 64 of the footer bytes.
    pub footer_checksum: u64,
}

impl Postscript {
    fn write_to(&self, out: &mut Vec<u8>) {
        put_u64(out, self.footer_offset);
        put_u64(out, self.footer_len);
        put_u64(out, self.footer_checksum);
        out.push(V2);
        put_u32(out, MAGIC);
    }

    /// Parse the last [`POSTSCRIPT_LEN`] bytes of a v2 container.
    pub fn parse(tail: &[u8]) -> Result<Self, FormatError> {
        if tail.len() != POSTSCRIPT_LEN {
            return Err(corrupt("postscript length mismatch"));
        }
        let mut rd = Rd::new(tail);
        let footer_offset = rd.u64()?;
        let footer_len = rd.u64()?;
        let footer_checksum = rd.u64()?;
        let version = rd.u8()?;
        let magic = rd.u32()?;
        rd.done()?;
        if magic != MAGIC {
            return Err(corrupt("bad postscript magic"));
        }
        if version != V2 {
            return Err(corrupt("unsupported postscript version"));
        }
        Ok(Self {
            footer_offset,
            footer_len,
            footer_checksum,
        })
    }

    /// Cross-validate against the file length: the footer must sit flush
    /// between the segments and this postscript.
    pub fn validate(&self, file_len: u64) -> Result<(), FormatError> {
        if file_len < (HEADER_LEN + POSTSCRIPT_LEN) as u64 {
            return Err(corrupt("file too short for a v2 container"));
        }
        if self.footer_offset < HEADER_LEN as u64 {
            return Err(corrupt("footer offset inside the header"));
        }
        match self.footer_offset.checked_add(self.footer_len) {
            Some(end) if end == file_len - POSTSCRIPT_LEN as u64 => Ok(()),
            _ => Err(corrupt("footer extent does not reach the postscript")),
        }
    }
}

// ---------------------------------------------------------------------------
// The container.

/// A compressed dataset: an ordered list of encoded mini-batch segments,
/// plus (when known) their zone maps.
pub struct Container {
    pub batches: Vec<AnyBatch>,
    /// One zone map per batch. Populated by [`Container::encode_with`]
    /// and by v2 parses; `None` after a v1 parse (v1 has no footer —
    /// serializing such a container to v2 recomputes them by decoding).
    zones: Option<Vec<ZoneMap>>,
}

impl Container {
    /// Wrap pre-encoded batches (no zone maps yet).
    pub fn new(batches: Vec<AnyBatch>) -> Self {
        Self {
            batches,
            zones: None,
        }
    }

    /// Encode `m` into `segment_rows`-row segments with `scheme`,
    /// computing each segment's zone map as it goes (the distinct
    /// estimate samples `opts.cla.sample_rows` rows — the CLA planner's
    /// sampler knob).
    pub fn encode_with(
        m: &DenseMatrix,
        scheme: Scheme,
        segment_rows: usize,
        opts: &EncodeOptions,
    ) -> Self {
        let mut batches = Vec::new();
        let mut zones = Vec::new();
        let mut start = 0;
        while start < m.rows() {
            let end = (start + segment_rows).min(m.rows());
            let dense = m.slice_rows(start, end);
            zones.push(ZoneMap::compute(&dense, opts.cla.sample_rows));
            batches.push(scheme.encode_with(&dense, opts));
            start = end;
        }
        Self {
            batches,
            zones: Some(zones),
        }
    }

    /// The zone maps, when known.
    pub fn zones(&self) -> Option<&[ZoneMap]> {
        self.zones.as_deref()
    }

    /// Zone maps for serialization: the stored ones, or recomputed by
    /// decoding each batch (the v1 → v2 upgrade path).
    fn zones_or_compute(&self) -> Vec<ZoneMap> {
        match &self.zones {
            Some(z) => z.clone(),
            None => self
                .batches
                .iter()
                .map(|b| ZoneMap::compute(&b.decode(), crate::ClaOptions::default().sample_rows))
                .collect(),
        }
    }

    /// Decode all batches back into one dense matrix.
    pub fn decode(&self) -> Result<DenseMatrix, String> {
        let total_rows: usize = self.batches.iter().map(|b| b.rows()).sum();
        let cols = self.batches.first().map(|b| b.cols()).unwrap_or(0);
        let mut out = DenseMatrix::zeros(total_rows, cols);
        let mut row = 0;
        for b in &self.batches {
            if b.cols() != cols {
                return Err("inconsistent batch widths".into());
            }
            let dense = b.decode();
            for r in 0..dense.rows() {
                out.row_mut(row).copy_from_slice(dense.row(r));
                row += 1;
            }
        }
        Ok(out)
    }

    /// Decode only rows `r0..r1`, touching only the segments that
    /// intersect the range and trimming the partial segments at the edges
    /// through [`MatrixBatch::decode_rows_into`].
    pub fn decode_rows(&self, r0: usize, r1: usize) -> Result<DenseMatrix, String> {
        let total_rows: usize = self.batches.iter().map(|b| b.rows()).sum();
        if r0 > r1 || r1 > total_rows {
            return Err(format!("row range {r0}..{r1} out of 0..{total_rows}"));
        }
        let cols = self.batches.first().map(|b| b.cols()).unwrap_or(0);
        let mut out = DenseMatrix::zeros(r1 - r0, cols);
        let mut seg_start = 0usize;
        let mut scratch = DenseMatrix::default();
        for b in &self.batches {
            let seg_end = seg_start + b.rows();
            if seg_end > r0 && seg_start < r1 {
                if b.cols() != cols {
                    return Err("inconsistent batch widths".into());
                }
                let lo = r0.max(seg_start) - seg_start;
                let hi = r1.min(seg_end) - seg_start;
                b.decode_rows_into(lo, hi, &mut scratch);
                for r in 0..scratch.rows() {
                    out.row_mut(seg_start + lo + r - r0)
                        .copy_from_slice(scratch.row(r));
                }
            }
            seg_start = seg_end;
        }
        Ok(out)
    }

    /// Total encoded payload size (excluding container framing).
    pub fn payload_bytes(&self) -> usize {
        self.batches.iter().map(|b| b.size_bytes()).sum()
    }

    /// Serialize to a v2 `.tocz` file.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        let bytes = self.to_bytes().map_err(|e| e.to_string())?;
        std::fs::write(path, bytes).map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Serialize to a legacy v1 `.tocz` file.
    pub fn write_v1(&self, path: &Path) -> Result<(), String> {
        let bytes = self.to_bytes_v1().map_err(|e| e.to_string())?;
        std::fs::write(path, bytes).map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Load and validate a `.tocz` file (either version).
    pub fn read(path: &Path) -> Result<Self, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Check that every batch agrees on column count: the container
    /// header/footer records a single `cols`, so a mixed-width batch list
    /// cannot be framed without lying about the width of every batch after
    /// the first.
    fn validate_uniform_cols(&self) -> Result<usize, FormatError> {
        let cols = self.batches.first().map(|b| b.cols()).unwrap_or(0);
        for (i, b) in self.batches.iter().enumerate() {
            if b.cols() != cols {
                return Err(FormatError::MixedCols {
                    batch: i,
                    got: b.cols(),
                    expected: cols,
                });
            }
        }
        Ok(cols)
    }

    /// Serialize as v2: segments, footer tree with zone maps, postscript.
    pub fn to_bytes(&self) -> Result<Vec<u8>, FormatError> {
        let cols = self.validate_uniform_cols()?;
        let zones = self.zones_or_compute();
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(V2);
        let mut leaves = Vec::with_capacity(self.batches.len());
        let mut row = 0u64;
        for (b, zone) in self.batches.iter().zip(&zones) {
            let begin = out.len() as u64;
            let bytes = b.to_bytes();
            out.extend_from_slice(&bytes);
            leaves.push(LayoutNode {
                scheme: Some(bytes[0]),
                row_start: row,
                row_end: row + b.rows() as u64,
                begin,
                end: out.len() as u64,
                zone: *zone,
                children: Vec::new(),
            });
            row += b.rows() as u64;
        }
        let footer_offset = out.len() as u64;
        let footer = Footer {
            cols: cols as u64,
            root: build_tree(leaves, footer_offset),
        };
        let fbytes = footer.to_bytes();
        let ps = Postscript {
            footer_offset,
            footer_len: fbytes.len() as u64,
            footer_checksum: fnv1a64(&fbytes),
        };
        out.extend_from_slice(&fbytes);
        ps.write_to(&mut out);
        Ok(out)
    }

    /// Serialize as legacy v1. Errors (instead of silently truncating)
    /// when a batch or the batch count overflows the v1 `u32` fields.
    pub fn to_bytes_v1(&self) -> Result<Vec<u8>, FormatError> {
        self.validate_uniform_cols()?;
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(V1);
        let n = fit_u32("v1 container batch count", self.batches.len() as u64)?;
        out.extend_from_slice(&n.to_le_bytes());
        for b in &self.batches {
            let bytes = b.to_bytes();
            let len = fit_u32("v1 container batch length", bytes.len() as u64)?;
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        Ok(out)
    }

    /// Parse from bytes, dispatching on the version byte.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FormatError> {
        if bytes.len() < HEADER_LEN {
            return Err(corrupt("truncated container"));
        }
        if u32::from_le_bytes(bytes[0..4].try_into().unwrap()) != MAGIC {
            return Err(corrupt("bad container magic"));
        }
        match bytes[4] {
            V1 => Self::from_bytes_v1(bytes),
            V2 => Self::from_bytes_v2(bytes),
            v => Err(corrupt(format!("unsupported container version {v}"))),
        }
    }

    fn from_bytes_v1(bytes: &[u8]) -> Result<Self, FormatError> {
        let need = |n: usize, pos: usize| {
            if bytes.len() < pos + n {
                Err(corrupt("truncated container"))
            } else {
                Ok(())
            }
        };
        need(9, 0)?;
        let n = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
        // Every batch record is at least a 4-byte length prefix: a count
        // the remaining bytes can't back is rejected before the
        // `with_capacity` below can allocate for it.
        if n > (bytes.len() - 9) / 4 {
            return Err(corrupt("implausible v1 batch count"));
        }
        let mut pos = 9usize;
        let mut batches = Vec::with_capacity(n);
        for _ in 0..n {
            need(4, pos)?;
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            need(len, pos)?;
            batches.push(Scheme::from_bytes(&bytes[pos..pos + len])?);
            pos += len;
        }
        if pos != bytes.len() {
            return Err(corrupt("trailing container bytes"));
        }
        Ok(Self {
            batches,
            zones: None,
        })
    }

    fn from_bytes_v2(bytes: &[u8]) -> Result<Self, FormatError> {
        let (footer, ps) = parse_v2_footer(bytes)?;
        let leaves = footer.leaves_validated(ps.footer_offset)?;
        let cols = footer.cols as usize;
        let mut batches = Vec::with_capacity(leaves.len());
        let mut zones = Vec::with_capacity(leaves.len());
        for leaf in &leaves {
            let (begin, end) = (leaf.begin as usize, leaf.end as usize);
            if bytes[begin] != leaf.scheme.unwrap() {
                return Err(corrupt("segment scheme tag disagrees with the footer"));
            }
            let batch = Scheme::from_bytes(&bytes[begin..end])?;
            if batch.rows() as u64 != leaf.row_end - leaf.row_start || batch.cols() != cols {
                return Err(corrupt("segment shape disagrees with the footer"));
            }
            zones.push(leaf.zone);
            batches.push(batch);
        }
        Ok(Self {
            batches,
            zones: Some(zones),
        })
    }
}

/// Streaming v2 writer: segments are appended one at a time to any
/// [`std::io::Write`] sink, and only per-segment *metadata* (one
/// [`LayoutNode`] leaf, [`LEAF_WIRE_LEN`]-ish bytes) is retained in
/// memory until [`ContainerStreamWriter::finish`] emits the layout-tree
/// footer and postscript. A finished stream is a valid seekable v2
/// `.tocz`, byte-identical to `Container::to_bytes` over the same batch
/// sequence with the same zone maps — the ingest pipeline's bounded-
/// memory claim rests on never holding more than the segment currently
/// being written.
pub struct ContainerStreamWriter<W: std::io::Write> {
    sink: W,
    /// Column count fixed by the first segment (the v2 footer records a
    /// single `cols`, so a mixed-width append is rejected up front).
    cols: Option<usize>,
    leaves: Vec<LayoutNode>,
    /// Bytes written to `sink` so far (= the next segment's `begin`).
    offset: u64,
    rows: u64,
}

impl<W: std::io::Write> ContainerStreamWriter<W> {
    /// Start a stream: writes the 5-byte header immediately.
    pub fn new(mut sink: W) -> Result<Self, FormatError> {
        sink.write_all(&MAGIC.to_le_bytes())
            .and_then(|()| sink.write_all(&[V2]))
            .map_err(|e| FormatError::io("write container header", e))?;
        Ok(Self {
            sink,
            cols: None,
            leaves: Vec::new(),
            offset: HEADER_LEN as u64,
            rows: 0,
        })
    }

    /// Reconstruct a writer from a checkpointed [`WriterState`]: the
    /// header and every sealed segment up to `state.offset()` are assumed
    /// to already be in the file, and `sink` must be positioned exactly
    /// at `state.offset()` (the caller truncates any torn bytes past the
    /// watermark first). Nothing is written; the next
    /// [`ContainerStreamWriter::append`] continues the stream as if it
    /// had never stopped, so a resumed container is byte-identical to an
    /// uninterrupted one.
    pub fn resume(sink: W, state: WriterState) -> Result<Self, FormatError> {
        state.validate()?;
        Ok(Self {
            sink,
            cols: state.cols.map(|c| c as usize),
            leaves: state.leaves,
            offset: state.offset,
            rows: state.rows,
        })
    }

    /// Snapshot everything [`ContainerStreamWriter::finish`] will need —
    /// column count, byte/row watermarks and the per-segment leaf
    /// metadata — as a [`WriterState`] for a checkpoint sidecar. Cheap:
    /// one leaf is ~[`LEAF_WIRE_LEN`] bytes.
    pub fn state(&self) -> WriterState {
        WriterState {
            cols: self.cols.map(|c| c as u64),
            offset: self.offset,
            rows: self.rows,
            leaves: self.leaves.clone(),
        }
    }

    /// Flush the sink (checkpointing must not record a watermark the
    /// file does not durably contain yet).
    pub fn flush(&mut self) -> Result<(), FormatError> {
        self.sink.flush().map_err(|e| FormatError::io("flush", e))
    }

    /// Append one encoded segment with its precomputed zone map (compute
    /// it from the dense chunk *before* encoding, exactly like
    /// [`Container::encode_with`] does).
    pub fn append(&mut self, batch: &AnyBatch, zone: ZoneMap) -> Result<(), FormatError> {
        let cols = *self.cols.get_or_insert(batch.cols());
        if batch.cols() != cols {
            return Err(FormatError::MixedCols {
                batch: self.leaves.len(),
                got: batch.cols(),
                expected: cols,
            });
        }
        let bytes = batch.to_bytes();
        self.sink
            .write_all(&bytes)
            .map_err(|e| FormatError::io("write segment", e))?;
        self.leaves.push(LayoutNode {
            scheme: Some(bytes[0]),
            row_start: self.rows,
            row_end: self.rows + batch.rows() as u64,
            begin: self.offset,
            end: self.offset + bytes.len() as u64,
            zone,
            children: Vec::new(),
        });
        self.offset += bytes.len() as u64;
        self.rows += batch.rows() as u64;
        Ok(())
    }

    /// Segments appended so far.
    pub fn num_segments(&self) -> usize {
        self.leaves.len()
    }

    /// Total rows appended so far.
    pub fn total_rows(&self) -> u64 {
        self.rows
    }

    /// Bytes written to the sink so far (header plus sealed segments; the
    /// footer is not included until [`ContainerStreamWriter::finish`]).
    pub fn bytes_written(&self) -> u64 {
        self.offset
    }

    /// Seal the stream: footer tree + postscript, then flush. Returns the
    /// total container size in bytes.
    pub fn finish(mut self) -> Result<u64, FormatError> {
        let footer_offset = self.offset;
        let footer = Footer {
            cols: self.cols.unwrap_or(0) as u64,
            root: build_tree(std::mem::take(&mut self.leaves), footer_offset),
        };
        let fbytes = footer.to_bytes();
        let ps = Postscript {
            footer_offset,
            footer_len: fbytes.len() as u64,
            footer_checksum: fnv1a64(&fbytes),
        };
        let mut tail = fbytes;
        ps.write_to(&mut tail);
        self.sink
            .write_all(&tail)
            .and_then(|()| self.sink.flush())
            .map_err(|e| FormatError::io("write container footer", e))?;
        Ok(footer_offset + tail.len() as u64)
    }
}

/// The resumable state of a [`ContainerStreamWriter`], serializable for
/// a checkpoint sidecar: the column count, the byte watermark (`offset`,
/// everything below it is sealed segments), the row watermark, and the
/// leaf metadata the footer will be built from. [`WriterState::to_bytes`]
/// / [`WriterState::from_bytes`] round-trip it; parsing re-validates the
/// structural invariants (contiguous leaf extents starting at
/// [`HEADER_LEN`] and ending at the watermark, contiguous row ranges) so
/// a corrupted sidecar is a structured error, never a writer that emits
/// a misframed footer.
#[derive(Clone, Debug, PartialEq)]
pub struct WriterState {
    cols: Option<u64>,
    offset: u64,
    rows: u64,
    leaves: Vec<LayoutNode>,
}

/// Version byte leading a serialized [`WriterState`].
const WRITER_STATE_V1: u8 = 1;

impl WriterState {
    /// Byte watermark: the file offset one past the last sealed segment.
    /// A resume validator truncates the partial file back to exactly this
    /// length before reopening.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Rows sealed so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Segments sealed so far.
    pub fn num_segments(&self) -> usize {
        self.leaves.len()
    }

    /// Column count pinned by the first sealed segment (`None` until one
    /// seals). A resume driver uses this to rebuild its staging workspace
    /// without re-reading any source rows.
    pub fn cols(&self) -> Option<u64> {
        self.cols
    }

    fn validate(&self) -> Result<(), FormatError> {
        let mut at = HEADER_LEN as u64;
        let mut row = 0u64;
        for (i, leaf) in self.leaves.iter().enumerate() {
            if !leaf.is_leaf() {
                return Err(corrupt(format!("writer state node {i} is not a leaf")));
            }
            if leaf.begin != at || leaf.row_start != row {
                return Err(corrupt(format!(
                    "writer state leaf {i} is not contiguous with its predecessor"
                )));
            }
            at = leaf.end;
            row = leaf.row_end;
        }
        if at != self.offset || row != self.rows {
            return Err(corrupt(
                "writer state watermark disagrees with its leaf extents",
            ));
        }
        if self.cols.is_none() && !self.leaves.is_empty() {
            return Err(corrupt("writer state has segments but no column count"));
        }
        Ok(())
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.leaves.len() * LEAF_WIRE_LEN);
        out.push(WRITER_STATE_V1);
        match self.cols {
            Some(c) => {
                out.push(1);
                put_u64(&mut out, c);
            }
            None => {
                out.push(0);
                put_u64(&mut out, 0);
            }
        }
        put_u64(&mut out, self.offset);
        put_u64(&mut out, self.rows);
        put_u64(&mut out, self.leaves.len() as u64);
        for leaf in &self.leaves {
            leaf.write_to(&mut out);
        }
        out
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FormatError> {
        let mut rd = Rd::new(bytes);
        if rd.u8()? != WRITER_STATE_V1 {
            return Err(corrupt("unknown writer-state version"));
        }
        let has_cols = rd.u8()?;
        let cols_raw = rd.u64()?;
        let cols = match has_cols {
            0 => None,
            1 => Some(cols_raw),
            _ => return Err(corrupt("bad writer-state cols flag")),
        };
        let offset = rd.u64()?;
        let rows = rd.u64()?;
        let n = rd.u64()? as usize;
        if n > rd.remaining() / LEAF_WIRE_LEN {
            return Err(corrupt("writer state claims more leaves than it carries"));
        }
        let mut leaves = Vec::with_capacity(n);
        for _ in 0..n {
            leaves.push(LayoutNode::parse(&mut rd, 0)?);
        }
        if rd.remaining() != 0 {
            return Err(corrupt("trailing bytes after writer state"));
        }
        let state = Self {
            cols,
            offset,
            rows,
            leaves,
        };
        state.validate()?;
        Ok(state)
    }
}

impl Footer {
    /// The leaves, additionally validated against the segment region of
    /// the container: the first segment starts right after the header and
    /// the last ends exactly where the footer begins, so the leaves tile
    /// `[HEADER_LEN, footer_offset)` with no gap for unaccounted bytes
    /// (leaf contiguity itself is enforced during parse).
    pub fn leaves_validated(&self, footer_offset: u64) -> Result<Vec<LayoutNode>, FormatError> {
        let leaves: Vec<LayoutNode> = self.leaves().into_iter().cloned().collect();
        match (leaves.first(), leaves.last()) {
            (Some(first), Some(last)) => {
                if first.begin != HEADER_LEN as u64 || last.end != footer_offset {
                    return Err(corrupt("segments do not tile the payload region"));
                }
            }
            _ => {
                if footer_offset != HEADER_LEN as u64 {
                    return Err(corrupt("segments do not tile the payload region"));
                }
            }
        }
        Ok(leaves)
    }
}

/// Parse and fully validate the postscript + footer of a v2 container
/// image, without touching any segment bytes. Returns the footer and its
/// postscript. This is the pure-bytes core under both
/// [`Container::from_bytes`] and the seekable reader in `toc-data`.
pub fn parse_v2_footer(bytes: &[u8]) -> Result<(Footer, Postscript), FormatError> {
    if bytes.len() < HEADER_LEN + POSTSCRIPT_LEN {
        return Err(corrupt("file too short for a v2 container"));
    }
    if u32::from_le_bytes(bytes[0..4].try_into().unwrap()) != MAGIC || bytes[4] != V2 {
        return Err(corrupt("bad v2 container header"));
    }
    let ps = Postscript::parse(&bytes[bytes.len() - POSTSCRIPT_LEN..])?;
    ps.validate(bytes.len() as u64)?;
    let fbytes = &bytes[ps.footer_offset as usize..(ps.footer_offset + ps.footer_len) as usize];
    if fnv1a64(fbytes) != ps.footer_checksum {
        return Err(corrupt("footer checksum mismatch"));
    }
    let footer = Footer::from_bytes(fbytes)?;
    // The tree's byte extents must stay inside the segment region.
    if footer.root.end > ps.footer_offset || footer.root.begin < HEADER_LEN as u64 {
        return Err(corrupt("layout tree extends outside the segment region"));
    }
    Ok((footer, ps))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        let rows: Vec<Vec<f64>> = (0..130)
            .map(|r| {
                (0..12)
                    .map(|c| {
                        if (r + c) % 3 == 0 {
                            (c % 4) as f64
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        DenseMatrix::from_rows(rows)
    }

    #[test]
    fn roundtrip_all_schemes_both_versions() {
        let m = sample();
        for scheme in [Scheme::Toc, Scheme::Den, Scheme::Gzip, Scheme::Cla] {
            let c = Container::encode_with(&m, scheme, 50, &EncodeOptions::default());
            assert_eq!(c.batches.len(), 3);
            assert_eq!(c.decode().unwrap(), m, "{}", scheme.name());
            let v2 = Container::from_bytes(&c.to_bytes().unwrap()).unwrap();
            assert_eq!(v2.decode().unwrap(), m, "{} v2", scheme.name());
            assert_eq!(v2.zones().unwrap().len(), 3);
            let v1 = Container::from_bytes(&c.to_bytes_v1().unwrap()).unwrap();
            assert_eq!(v1.decode().unwrap(), m, "{} v1", scheme.name());
            assert!(v1.zones().is_none());
        }
    }

    #[test]
    fn v2_reserialize_is_byte_identical() {
        let m = sample();
        let c = Container::encode_with(&m, Scheme::Toc, 40, &EncodeOptions::default());
        let bytes = c.to_bytes().unwrap();
        let back = Container::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes().unwrap(), bytes);
    }

    #[test]
    fn empty_container_roundtrips() {
        let c = Container::new(Vec::new());
        let bytes = c.to_bytes().unwrap();
        let back = Container::from_bytes(&bytes).unwrap();
        assert!(back.batches.is_empty());
        let (footer, _) = parse_v2_footer(&bytes).unwrap();
        assert_eq!(footer.num_segments(), 0);
        assert_eq!(footer.total_rows(), 0);
    }

    #[test]
    fn footer_tree_shape_and_queries() {
        let m = sample();
        let c = Container::encode_with(&m, Scheme::Den, 10, &EncodeOptions::default());
        let bytes = c.to_bytes().unwrap();
        let (footer, _) = parse_v2_footer(&bytes).unwrap();
        assert_eq!(footer.num_segments(), 13);
        assert!(footer.root.depth() >= 2, "13 leaves need interior nodes");
        assert_eq!(footer.total_rows(), 130);
        assert_eq!(footer.segments_overlapping_rows(0, 10), vec![0]);
        assert_eq!(footer.segments_overlapping_rows(15, 25), vec![1, 2]);
        assert_eq!(footer.segments_overlapping_rows(125, 130), vec![12]);
        assert_eq!(footer.segments_overlapping_rows(4, 4), Vec::<usize>::new());
        // Values are 0..=3: a disjoint value range prunes every segment.
        assert_eq!(
            footer.segments_with_values_in(10.0, 20.0),
            Vec::<usize>::new()
        );
        assert_eq!(footer.segments_with_values_in(3.0, 3.0).len(), 13);
    }

    #[test]
    fn decode_rows_matches_full_decode() {
        let m = sample();
        for scheme in [Scheme::Toc, Scheme::Den, Scheme::Csr, Scheme::Gzip] {
            let c = Container::encode_with(&m, scheme, 17, &EncodeOptions::default());
            let full = c.decode().unwrap();
            for (r0, r1) in [(0, 130), (0, 1), (16, 18), (50, 90), (129, 130), (7, 7)] {
                let part = c.decode_rows(r0, r1).unwrap();
                assert_eq!(part.rows(), r1 - r0);
                for r in r0..r1 {
                    assert_eq!(
                        part.row(r - r0),
                        full.row(r),
                        "{} {r0}..{r1}",
                        scheme.name()
                    );
                }
            }
            assert!(c.decode_rows(100, 131).is_err());
            assert!(c.decode_rows(10, 9).is_err());
        }
    }

    #[test]
    fn oversize_wire_fields_are_structured_errors() {
        // The v1 u32 guard, exercised without allocating 4 GiB.
        assert_eq!(fit_u32("x", 12).unwrap(), 12);
        let err = fit_u32("v1 container batch length", u32::MAX as u64 + 1).unwrap_err();
        assert!(matches!(
            err,
            FormatError::TooLarge {
                what: "v1 container batch length",
                value,
                max,
            } if value == u32::MAX as u64 + 1 && max == u32::MAX as u64
        ));
        assert!(err.to_string().contains("exceeds the wire field maximum"));
    }

    #[test]
    fn implausible_declared_counts_are_rejected_before_allocating() {
        // v1: a header claiming u32::MAX batches in a tiny file.
        let mut v1 = Vec::new();
        v1.extend_from_slice(&MAGIC.to_le_bytes());
        v1.push(V1);
        v1.extend_from_slice(&u32::MAX.to_le_bytes());
        v1.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            Container::from_bytes(&v1),
            Err(FormatError::Corrupt(m)) if m.contains("implausible")
        ));
        // v2: a footer claiming far more segments/children than it holds.
        let m = sample();
        let c = Container::encode_with(&m, Scheme::Den, 50, &EncodeOptions::default());
        let bytes = c.to_bytes().unwrap();
        let (_, ps) = parse_v2_footer(&bytes).unwrap();
        let f0 = ps.footer_offset as usize;
        let mut mutated = bytes.clone();
        mutated[f0 + 8..f0 + 16].copy_from_slice(&u64::MAX.to_le_bytes());
        // (checksum now also mismatches; both paths must be a clean Err.)
        assert!(Container::from_bytes(&mutated).is_err());
        let fbytes = &bytes[f0..f0 + ps.footer_len as usize];
        let mut raw_footer = fbytes.to_vec();
        raw_footer[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Footer::from_bytes(&raw_footer),
            Err(FormatError::Corrupt(m)) if m.contains("implausible")
        ));
    }

    #[test]
    fn stream_writer_is_byte_identical_to_one_shot() {
        let m = sample();
        for (scheme, seg_rows) in [(Scheme::Toc, 40), (Scheme::Den, 17), (Scheme::Cla, 130)] {
            let opts = EncodeOptions::default();
            let c = Container::encode_with(&m, scheme, seg_rows, &opts);
            let one_shot = c.to_bytes().unwrap();
            let mut sink = Vec::new();
            let mut w = ContainerStreamWriter::new(&mut sink).unwrap();
            let zones = c.zones().unwrap().to_vec();
            for (b, z) in c.batches.iter().zip(zones) {
                w.append(b, z).unwrap();
            }
            assert_eq!(w.total_rows(), 130);
            let total = w.finish().unwrap();
            assert_eq!(total as usize, sink.len());
            assert_eq!(sink, one_shot, "{} seg_rows={seg_rows}", scheme.name());
        }
    }

    #[test]
    fn stream_writer_empty_and_mixed_width() {
        // Zero appends still seal into a valid (empty) v2 container,
        // byte-identical to the one-shot empty serialization.
        let mut sink = Vec::new();
        let w = ContainerStreamWriter::new(&mut sink).unwrap();
        w.finish().unwrap();
        assert_eq!(sink, Container::new(Vec::new()).to_bytes().unwrap());
        // A second segment with a different width is a structured error.
        let a = Scheme::Den.encode(&DenseMatrix::zeros(4, 3));
        let b = Scheme::Den.encode(&DenseMatrix::zeros(4, 5));
        let zone = ZoneMap::compute(&DenseMatrix::zeros(4, 3), 16);
        let mut sink = Vec::new();
        let mut w = ContainerStreamWriter::new(&mut sink).unwrap();
        w.append(&a, zone).unwrap();
        let err = w.append(&b, zone).unwrap_err();
        assert!(
            matches!(
                err,
                FormatError::MixedCols {
                    got: 5,
                    expected: 3,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn writer_state_roundtrips_and_resumes_byte_identically() {
        let m = sample();
        let opts = EncodeOptions::default();
        let c = Container::encode_with(&m, Scheme::Toc, 40, &opts);
        let one_shot = c.to_bytes().unwrap();
        let zones = c.zones().unwrap().to_vec();

        // Stream the first two segments, checkpoint, and "crash".
        let mut sink = Vec::new();
        let mut w = ContainerStreamWriter::new(&mut sink).unwrap();
        for (b, z) in c.batches.iter().zip(&zones).take(2) {
            w.append(b, *z).unwrap();
        }
        let state_bytes = w.state().to_bytes();
        let watermark = w.bytes_written() as usize;
        drop(w);
        sink.truncate(watermark); // what a resume validator does to torn bytes

        // Resume from the round-tripped state and finish the stream.
        let state = WriterState::from_bytes(&state_bytes).unwrap();
        assert_eq!(state.offset(), watermark as u64);
        assert_eq!(state.num_segments(), 2);
        let mut w = ContainerStreamWriter::resume(&mut sink, state).unwrap();
        for (b, z) in c.batches.iter().zip(&zones).skip(2) {
            w.append(b, *z).unwrap();
        }
        let total = w.finish().unwrap();
        assert_eq!(total as usize, sink.len());
        assert_eq!(sink, one_shot);
    }

    #[test]
    fn corrupt_writer_state_is_rejected() {
        let m = sample();
        let opts = EncodeOptions::default();
        let c = Container::encode_with(&m, Scheme::Toc, 40, &opts);
        let mut sink = Vec::new();
        let mut w = ContainerStreamWriter::new(&mut sink).unwrap();
        for (b, z) in c.batches.iter().zip(c.zones().unwrap()).take(2) {
            w.append(b, *z).unwrap();
        }
        let good = w.state().to_bytes();
        assert!(WriterState::from_bytes(&good).is_ok());
        // Truncation and watermark tampering are structured errors.
        assert!(WriterState::from_bytes(&good[..good.len() - 4]).is_err());
        let mut tampered = good.clone();
        tampered[10] ^= 0x40; // offset field no longer matches the leaves
        assert!(matches!(
            WriterState::from_bytes(&tampered),
            Err(FormatError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_container_errors() {
        let m = sample();
        let c = Container::encode_with(&m, Scheme::Toc, 64, &EncodeOptions::default());
        for bytes in [c.to_bytes().unwrap(), c.to_bytes_v1().unwrap()] {
            let mut t = bytes.clone();
            t.truncate(t.len() - 3);
            assert!(Container::from_bytes(&t).is_err());
            let mut flipped = bytes.clone();
            flipped[0] ^= 1;
            assert!(Container::from_bytes(&flipped).is_err());
        }
    }
}
