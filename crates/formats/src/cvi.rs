//! CVI and DVI (§5 methods 3–4): value indexing [Kourtis et al. 2008]
//! layered over CSR and DEN respectively.
//!
//! Both replace raw `f64` cells by small indexes into a dictionary of
//! distinct values, which makes the sparse-safe `A .* c` nearly free (only
//! the dictionary is rewritten) and shrinks storage when a batch has few
//! distinct values.

use crate::wire::{put_f64s, put_u32, put_u32s, Rd};
use crate::{FormatError, MatrixBatch, Scheme};
use std::collections::HashMap;
use toc_linalg::DenseMatrix;

/// Bytes per index for a dictionary of `n` entries (same bit-packing width
/// rule as the TOC physical layer).
fn idx_width(n: usize) -> usize {
    match n.saturating_sub(1) {
        0..=0xFF => 1,
        0x100..=0xFFFF => 2,
        0x1_0000..=0xFF_FFFF => 3,
        _ => 4,
    }
}

/// Scratch-lane width for chunked index unpacking: small enough to stay in
/// L1 as a stack array, large enough that the widening loop amortizes the
/// per-chunk width dispatch and autovectorizes.
const IDX_CHUNK: usize = 256;

/// Value indexes narrowed to the dictionary's width class (the wire format
/// keeps full `u32`s; narrowing happens on encode/deserialize). Kernels
/// never branch per element on the width: they unpack a whole chunk into a
/// `u32` scratch lane through one match, then gather-apply off the lane.
#[derive(Clone, Debug, PartialEq)]
enum IdxStore {
    W1(Vec<u8>),
    W2(Vec<u16>),
    W4(Vec<u32>),
}

impl IdxStore {
    fn from_u32s(idx: Vec<u32>, dict_len: usize) -> Self {
        match idx_width(dict_len) {
            1 => IdxStore::W1(idx.into_iter().map(|i| i as u8).collect()),
            2 => IdxStore::W2(idx.into_iter().map(|i| i as u16).collect()),
            _ => IdxStore::W4(idx),
        }
    }

    fn len(&self) -> usize {
        match self {
            IdxStore::W1(v) => v.len(),
            IdxStore::W2(v) => v.len(),
            IdxStore::W4(v) => v.len(),
        }
    }

    /// Scalar access (cold paths and the scalar reference kernels).
    #[inline]
    fn get(&self, k: usize) -> usize {
        match self {
            IdxStore::W1(v) => v[k] as usize,
            IdxStore::W2(v) => v[k] as usize,
            IdxStore::W4(v) => v[k] as usize,
        }
    }

    /// Widen `self[start .. start + lane.len()]` into `lane`: one width
    /// dispatch per chunk, then a flat cast loop LLVM autovectorizes.
    #[inline]
    fn unpack_into(&self, start: usize, lane: &mut [u32]) {
        let n = lane.len();
        match self {
            IdxStore::W1(v) => {
                for (o, &i) in lane.iter_mut().zip(&v[start..start + n]) {
                    *o = i as u32;
                }
            }
            IdxStore::W2(v) => {
                for (o, &i) in lane.iter_mut().zip(&v[start..start + n]) {
                    *o = i as u32;
                }
            }
            IdxStore::W4(v) => lane.copy_from_slice(&v[start..start + n]),
        }
    }

    /// Gather `dict[self[start + i]]` straight into `out`: for pure-gather
    /// loops (full DVI decode) the `u32` lane round-trip is pure overhead,
    /// so this dispatches the width once per call and runs one flat
    /// load-translate-store loop per width class.
    #[inline]
    fn gather_into(&self, dict: &[f64], start: usize, out: &mut [f64]) {
        let n = out.len();
        match self {
            IdxStore::W1(v) => {
                for (o, &i) in out.iter_mut().zip(&v[start..start + n]) {
                    *o = dict[i as usize];
                }
            }
            IdxStore::W2(v) => {
                for (o, &i) in out.iter_mut().zip(&v[start..start + n]) {
                    *o = dict[i as usize];
                }
            }
            IdxStore::W4(v) => {
                for (o, &i) in out.iter_mut().zip(&v[start..start + n]) {
                    *o = dict[i as usize];
                }
            }
        }
    }

    /// Widen everything back to the wire representation.
    fn to_u32s(&self) -> Vec<u32> {
        match self {
            IdxStore::W1(v) => v.iter().map(|&i| i as u32).collect(),
            IdxStore::W2(v) => v.iter().map(|&i| i as u32).collect(),
            IdxStore::W4(v) => v.clone(),
        }
    }
}

fn build_dict(values: impl Iterator<Item = f64>) -> (Vec<f64>, Vec<u32>) {
    let mut map: HashMap<u64, u32> = HashMap::new();
    let mut dict = Vec::new();
    let mut idx = Vec::new();
    for v in values {
        let id = *map.entry(v.to_bits()).or_insert_with(|| {
            dict.push(v);
            dict.len() as u32 - 1
        });
        idx.push(id);
    }
    (dict, idx)
}

/// CVI: CSR structure with value-indexed cells (a.k.a. CSR-VI).
#[derive(Clone, Debug, PartialEq)]
pub struct CviBatch {
    rows: usize,
    cols: usize,
    offsets: Vec<u32>,
    col_idx: Vec<u32>,
    validx: IdxStore,
    dict: Vec<f64>,
}

impl CviBatch {
    pub fn encode(dense: &DenseMatrix) -> Self {
        let s = toc_linalg::SparseRows::encode(dense);
        let (dict, validx) = build_dict(s.pairs().iter().map(|p| p.val));
        let validx = IdxStore::from_u32s(validx, dict.len());
        Self {
            rows: s.rows(),
            cols: s.cols(),
            offsets: s.offsets().iter().map(|&o| o as u32).collect(),
            col_idx: s.pairs().iter().map(|p| p.col).collect(),
            validx,
            dict,
        }
    }

    pub fn from_body(body: &[u8]) -> Result<Self, FormatError> {
        let mut rd = Rd::new(body);
        let rows = rd.u32()? as usize;
        let cols = rd.u32()? as usize;
        let offsets = rd.u32s()?;
        let col_idx = rd.u32s()?;
        let validx = rd.u32s()?;
        let dict = rd.f64s()?;
        rd.done()?;
        if offsets.len() != rows + 1
            || col_idx.len() != validx.len()
            || offsets.last().copied().unwrap_or(1) as usize != validx.len()
        {
            return Err(FormatError::Corrupt("CVI section mismatch".into()));
        }
        if validx.iter().any(|&i| i as usize >= dict.len().max(1))
            || col_idx.iter().any(|&c| c as usize >= cols)
            || offsets.windows(2).any(|w| w[1] < w[0])
        {
            return Err(FormatError::Corrupt("CVI index out of range".into()));
        }
        let validx = IdxStore::from_u32s(validx, dict.len());
        Ok(Self {
            rows,
            cols,
            offsets,
            col_idx,
            validx,
            dict,
        })
    }

    #[inline]
    fn row_range(&self, r: usize) -> (usize, usize) {
        (self.offsets[r] as usize, self.offsets[r + 1] as usize)
    }

    /// Pre-chunking scalar reference kernels (per-element index fetch, one
    /// FP dependency chain). Kept so the codec-speed gate can measure the
    /// chunked lane kernels against the original ones inside one binary.
    #[doc(hidden)]
    pub fn decode_into_scalar(&self, out: &mut DenseMatrix) {
        out.reset(self.rows, self.cols);
        for r in 0..self.rows {
            let (s, e) = self.row_range(r);
            for k in s..e {
                out.set(r, self.col_idx[k] as usize, self.dict[self.validx.get(k)]);
            }
        }
    }

    #[doc(hidden)]
    pub fn matvec_into_scalar(&self, v: &[f64], out: &mut Vec<f64>) {
        toc_linalg::dense::reset_vec(out, self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            let (s, e) = self.row_range(r);
            let mut acc = 0.0;
            for k in s..e {
                acc += self.dict[self.validx.get(k)] * v[self.col_idx[k] as usize];
            }
            *o = acc;
        }
    }
}

impl MatrixBatch for CviBatch {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn size_bytes(&self) -> usize {
        16 + 4 * (self.rows + 1)
            + self.col_idx.len() * (4 + idx_width(self.dict.len()))
            + 8 * self.dict.len()
            + 5
    }
    fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        toc_linalg::dense::reset_vec(out, self.rows);
        let mut lane = [0u32; IDX_CHUNK];
        for (r, o) in out.iter_mut().enumerate() {
            let (s, e) = self.row_range(r);
            // Four independent accumulators break the FP add dependency
            // chain (LLVM won't reorder float adds itself).
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0, 0.0, 0.0);
            let mut k = s;
            while k < e {
                let n = (e - k).min(IDX_CHUNK);
                self.validx.unpack_into(k, &mut lane[..n]);
                let cols = &self.col_idx[k..k + n];
                let mut i = 0usize;
                while i + 4 <= n {
                    a0 += self.dict[lane[i] as usize] * v[cols[i] as usize];
                    a1 += self.dict[lane[i + 1] as usize] * v[cols[i + 1] as usize];
                    a2 += self.dict[lane[i + 2] as usize] * v[cols[i + 2] as usize];
                    a3 += self.dict[lane[i + 3] as usize] * v[cols[i + 3] as usize];
                    i += 4;
                }
                while i < n {
                    a0 += self.dict[lane[i] as usize] * v[cols[i] as usize];
                    i += 1;
                }
                k += n;
            }
            *o = (a0 + a1) + (a2 + a3);
        }
    }
    fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        toc_linalg::dense::reset_vec(out, self.cols);
        let mut lane = [0u32; IDX_CHUNK];
        for (r, &w) in v.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let (s, e) = self.row_range(r);
            let mut k = s;
            while k < e {
                let n = (e - k).min(IDX_CHUNK);
                self.validx.unpack_into(k, &mut lane[..n]);
                let cols = &self.col_idx[k..k + n];
                for i in 0..n {
                    out[cols[i] as usize] += w * self.dict[lane[i] as usize];
                }
                k += n;
            }
        }
    }
    fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        out.reset(self.rows, m.cols());
        let mut lane = [0u32; IDX_CHUNK];
        for r in 0..self.rows {
            let (s, e) = self.row_range(r);
            let orow = out.row_mut(r);
            let mut k = s;
            while k < e {
                let n = (e - k).min(IDX_CHUNK);
                self.validx.unpack_into(k, &mut lane[..n]);
                let cols = &self.col_idx[k..k + n];
                for i in 0..n {
                    let val = self.dict[lane[i] as usize];
                    let mrow = m.row(cols[i] as usize);
                    for (o, &b) in orow.iter_mut().zip(mrow) {
                        *o += val * b;
                    }
                }
                k += n;
            }
        }
    }
    fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        out.reset(m.rows(), self.cols);
        let mut lane = [0u32; IDX_CHUNK];
        for q in 0..m.rows() {
            let mrow = m.row(q);
            let orow = out.row_mut(q);
            for (r, &w) in mrow.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let (s, e) = self.row_range(r);
                let mut k = s;
                while k < e {
                    let n = (e - k).min(IDX_CHUNK);
                    self.validx.unpack_into(k, &mut lane[..n]);
                    let cols = &self.col_idx[k..k + n];
                    for i in 0..n {
                        orow[cols[i] as usize] += w * self.dict[lane[i] as usize];
                    }
                    k += n;
                }
            }
        }
    }
    fn scale(&mut self, c: f64) {
        for v in &mut self.dict {
            *v *= c;
        }
    }
    fn decode_into(&self, out: &mut DenseMatrix) {
        out.reset(self.rows, self.cols);
        let mut lane = [0u32; IDX_CHUNK];
        for r in 0..self.rows {
            let (s, e) = self.row_range(r);
            let orow = out.row_mut(r);
            let mut k = s;
            while k < e {
                let n = (e - k).min(IDX_CHUNK);
                self.validx.unpack_into(k, &mut lane[..n]);
                let cols = &self.col_idx[k..k + n];
                for i in 0..n {
                    orow[cols[i] as usize] = self.dict[lane[i] as usize];
                }
                k += n;
            }
        }
    }
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![Scheme::Cvi.tag()];
        put_u32(&mut out, self.rows as u32);
        put_u32(&mut out, self.cols as u32);
        put_u32s(&mut out, &self.offsets);
        put_u32s(&mut out, &self.col_idx);
        put_u32s(&mut out, &self.validx.to_u32s());
        put_f64s(&mut out, &self.dict);
        out
    }
}

/// DVI: dense grid of value indexes plus a dictionary (zeros included).
#[derive(Clone, Debug, PartialEq)]
pub struct DviBatch {
    rows: usize,
    cols: usize,
    validx: IdxStore,
    dict: Vec<f64>,
}

impl DviBatch {
    pub fn encode(dense: &DenseMatrix) -> Self {
        let (dict, validx) = build_dict(dense.data().iter().copied());
        let validx = IdxStore::from_u32s(validx, dict.len());
        Self {
            rows: dense.rows(),
            cols: dense.cols(),
            validx,
            dict,
        }
    }

    /// Pre-chunking scalar reference decode (see [`CviBatch`] note).
    #[doc(hidden)]
    pub fn decode_into_scalar(&self, out: &mut DenseMatrix) {
        out.reset(self.rows, self.cols);
        for (k, o) in out.data_mut().iter_mut().enumerate() {
            *o = self.dict[self.validx.get(k)];
        }
    }

    #[doc(hidden)]
    pub fn matvec_into_scalar(&self, v: &[f64], out: &mut Vec<f64>) {
        toc_linalg::dense::reset_vec(out, self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, &x) in v.iter().enumerate() {
                acc += self.dict[self.validx.get(r * self.cols + c)] * x;
            }
            *o = acc;
        }
    }

    pub fn from_body(body: &[u8]) -> Result<Self, FormatError> {
        let mut rd = Rd::new(body);
        let rows = rd.u32()? as usize;
        let cols = rd.u32()? as usize;
        let validx = rd.u32s()?;
        let dict = rd.f64s()?;
        rd.done()?;
        // Checked: the wire-supplied shape product can overflow on
        // corrupted headers (debug-panic otherwise).
        if rows.checked_mul(cols) != Some(validx.len())
            || validx.iter().any(|&i| i as usize >= dict.len().max(1))
        {
            return Err(FormatError::Corrupt("DVI section mismatch".into()));
        }
        let validx = IdxStore::from_u32s(validx, dict.len());
        // A zero-area matrix leaves the other dimension unconstrained by
        // the index count (the body is header-only for any claimed
        // value), so a byte-proportional bound would reject legitimate
        // degenerate batches. Cap it generously instead, so a corrupted
        // header can't claim 2^32 rows/cols and drive the first
        // kernel-output allocation into an abort.
        if (rows == 0 || cols == 0) && rows.max(cols) > crate::MAX_DEGENERATE_DIM {
            return Err(FormatError::Corrupt("implausible DVI shape".into()));
        }
        Ok(Self {
            rows,
            cols,
            validx,
            dict,
        })
    }
}

impl MatrixBatch for DviBatch {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn size_bytes(&self) -> usize {
        16 + self.validx.len() * idx_width(self.dict.len()) + 8 * self.dict.len() + 5
    }
    fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        toc_linalg::dense::reset_vec(out, self.rows);
        let mut lane = [0u32; IDX_CHUNK];
        for (r, o) in out.iter_mut().enumerate() {
            let base = r * self.cols;
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0, 0.0, 0.0);
            let mut c = 0usize;
            while c < self.cols {
                let n = (self.cols - c).min(IDX_CHUNK);
                self.validx.unpack_into(base + c, &mut lane[..n]);
                let vs = &v[c..c + n];
                let mut i = 0usize;
                while i + 4 <= n {
                    a0 += self.dict[lane[i] as usize] * vs[i];
                    a1 += self.dict[lane[i + 1] as usize] * vs[i + 1];
                    a2 += self.dict[lane[i + 2] as usize] * vs[i + 2];
                    a3 += self.dict[lane[i + 3] as usize] * vs[i + 3];
                    i += 4;
                }
                while i < n {
                    a0 += self.dict[lane[i] as usize] * vs[i];
                    i += 1;
                }
                c += n;
            }
            *o = (a0 + a1) + (a2 + a3);
        }
    }
    fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        toc_linalg::dense::reset_vec(out, self.cols);
        let mut lane = [0u32; IDX_CHUNK];
        for (r, &w) in v.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let base = r * self.cols;
            let mut c = 0usize;
            while c < self.cols {
                let n = (self.cols - c).min(IDX_CHUNK);
                self.validx.unpack_into(base + c, &mut lane[..n]);
                for (o, &idx) in out[c..c + n].iter_mut().zip(&lane[..n]) {
                    *o += w * self.dict[idx as usize];
                }
                c += n;
            }
        }
    }
    fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        out.reset(self.rows, m.cols());
        let mut lane = [0u32; IDX_CHUNK];
        for r in 0..self.rows {
            let base = r * self.cols;
            let orow = out.row_mut(r);
            let mut c = 0usize;
            while c < self.cols {
                let n = (self.cols - c).min(IDX_CHUNK);
                self.validx.unpack_into(base + c, &mut lane[..n]);
                for (i, &idx) in lane[..n].iter().enumerate() {
                    let val = self.dict[idx as usize];
                    if val == 0.0 {
                        continue;
                    }
                    let mrow = m.row(c + i);
                    for (o, &b) in orow.iter_mut().zip(mrow) {
                        *o += val * b;
                    }
                }
                c += n;
            }
        }
    }
    fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        out.reset(m.rows(), self.cols);
        let mut lane = [0u32; IDX_CHUNK];
        for q in 0..m.rows() {
            let mrow = m.row(q);
            let orow = out.row_mut(q);
            for (r, &w) in mrow.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let base = r * self.cols;
                let mut c = 0usize;
                while c < self.cols {
                    let n = (self.cols - c).min(IDX_CHUNK);
                    self.validx.unpack_into(base + c, &mut lane[..n]);
                    for (o, &idx) in orow[c..c + n].iter_mut().zip(&lane[..n]) {
                        *o += w * self.dict[idx as usize];
                    }
                    c += n;
                }
            }
        }
    }
    fn scale(&mut self, c: f64) {
        for v in &mut self.dict {
            *v *= c;
        }
    }
    fn decode_into(&self, out: &mut DenseMatrix) {
        out.reset(self.rows, self.cols);
        self.validx.gather_into(&self.dict, 0, out.data_mut());
    }
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![Scheme::Dvi.tag()];
        put_u32(&mut out, self.rows as u32);
        put_u32(&mut out, self.cols as u32);
        put_u32s(&mut out, &self.validx.to_u32s());
        put_f64s(&mut out, &self.dict);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(vec![
            vec![1.5, 0.0, 2.5, 1.5],
            vec![0.0, 1.5, 0.0, 0.0],
            vec![2.5, 0.0, 1.5, 2.5],
        ])
    }

    #[test]
    fn idx_width_boundaries() {
        assert_eq!(idx_width(0), 1);
        assert_eq!(idx_width(1), 1);
        assert_eq!(idx_width(256), 1);
        assert_eq!(idx_width(257), 2);
        assert_eq!(idx_width(65536), 2);
        assert_eq!(idx_width(65537), 3);
    }

    #[test]
    fn cvi_roundtrip_and_kernels() {
        let a = sample();
        let b = CviBatch::encode(&a);
        assert_eq!(b.decode(), a);
        let restored = CviBatch::from_body(&b.to_bytes()[1..]).unwrap();
        assert_eq!(restored, b);
        let v = [1.0, -1.0, 0.5, 2.0];
        assert_eq!(b.matvec(&v), a.matvec(&v));
        let w = [0.5, 1.0, -2.0];
        assert_eq!(b.vecmat(&w), a.vecmat(&w));
    }

    #[test]
    fn dvi_roundtrip_and_kernels() {
        let a = sample();
        let b = DviBatch::encode(&a);
        assert_eq!(b.decode(), a);
        let restored = DviBatch::from_body(&b.to_bytes()[1..]).unwrap();
        assert_eq!(restored, b);
        let v = [1.0, -1.0, 0.5, 2.0];
        assert_eq!(b.matvec(&v), a.matvec(&v));
        let w = [0.5, 1.0, -2.0];
        assert_eq!(b.vecmat(&w), a.vecmat(&w));
        let m = DenseMatrix::from_rows(vec![
            vec![1.0, 0.0],
            vec![2.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]);
        assert_eq!(b.matmat(&m), a.matmat(&m));
        let ml = DenseMatrix::from_rows(vec![vec![1.0, 0.0, 1.0], vec![0.0, 2.0, 0.0]]);
        assert_eq!(b.matmat_left(&ml), a.matmat_left(&ml));
    }

    #[test]
    fn scale_only_touches_dict() {
        let a = sample();
        let mut cvi = CviBatch::encode(&a);
        let mut dvi = DviBatch::encode(&a);
        cvi.scale(3.0);
        dvi.scale(3.0);
        let mut want = a;
        want.scale(3.0);
        assert_eq!(cvi.decode(), want);
        assert_eq!(dvi.decode(), want);
    }

    #[test]
    fn dvi_smaller_than_den_with_few_values() {
        let a = sample();
        let dvi = DviBatch::encode(&a);
        assert!(dvi.size_bytes() < a.den_size_bytes());
    }

    #[test]
    fn chunked_and_scalar_kernels_agree_across_widths() {
        // 700 distinct values → W2 index store; 600 cols → several scratch
        // chunks per row. All values are dyadic rationals of small
        // magnitude, so every kernel's arithmetic is exact and the chunked
        // and scalar paths must agree bit-for-bit.
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|r| {
                (0..600)
                    .map(|c| ((r * 600 + c) % 700) as f64 * 0.25)
                    .collect()
            })
            .collect();
        let a = DenseMatrix::from_rows(rows);
        let v: Vec<f64> = (0..600).map(|i| (i % 13) as f64 - 6.0).collect();
        let (cvi, dvi) = (CviBatch::encode(&a), DviBatch::encode(&a));
        assert!(matches!(cvi.validx, IdxStore::W2(_)));
        let (mut fast, mut slow) = (DenseMatrix::default(), DenseMatrix::default());
        cvi.decode_into(&mut fast);
        cvi.decode_into_scalar(&mut slow);
        assert_eq!(fast, slow);
        dvi.decode_into(&mut fast);
        dvi.decode_into_scalar(&mut slow);
        assert_eq!(fast, slow);
        assert_eq!(fast, a);
        let (mut fv, mut sv) = (Vec::new(), Vec::new());
        cvi.matvec_into(&v, &mut fv);
        cvi.matvec_into_scalar(&v, &mut sv);
        assert_eq!(fv, sv);
        dvi.matvec_into(&v, &mut fv);
        dvi.matvec_into_scalar(&v, &mut sv);
        assert_eq!(fv, sv);
    }

    #[test]
    fn wide_dictionary_uses_full_width_store() {
        // 72900 distinct values pushes the dictionary past 2^16 entries,
        // exercising the widest store and its serialization round-trip.
        let rows: Vec<Vec<f64>> = (0..270)
            .map(|r| (0..270).map(|c| (r * 270 + c) as f64 + 0.5).collect())
            .collect();
        let a = DenseMatrix::from_rows(rows);
        let dvi = DviBatch::encode(&a);
        assert!(matches!(dvi.validx, IdxStore::W4(_)));
        assert_eq!(dvi.decode(), a);
        let restored = DviBatch::from_body(&dvi.to_bytes()[1..]).unwrap();
        assert_eq!(restored, dvi);
    }

    #[test]
    fn corrupt_bodies_error() {
        let a = sample();
        let cb = CviBatch::encode(&a).to_bytes();
        assert!(CviBatch::from_body(&cb[1..cb.len() - 3]).is_err());
        let db = DviBatch::encode(&a).to_bytes();
        assert!(DviBatch::from_body(&db[1..db.len() - 3]).is_err());
    }
}
