//! CVI and DVI (§5 methods 3–4): value indexing [Kourtis et al. 2008]
//! layered over CSR and DEN respectively.
//!
//! Both replace raw `f64` cells by small indexes into a dictionary of
//! distinct values, which makes the sparse-safe `A .* c` nearly free (only
//! the dictionary is rewritten) and shrinks storage when a batch has few
//! distinct values.

use crate::wire::{put_f64s, put_u32, put_u32s, Rd};
use crate::{FormatError, MatrixBatch, Scheme};
use std::collections::HashMap;
use toc_linalg::DenseMatrix;

/// Bytes per index for a dictionary of `n` entries (same bit-packing width
/// rule as the TOC physical layer).
fn idx_width(n: usize) -> usize {
    match n.saturating_sub(1) {
        0..=0xFF => 1,
        0x100..=0xFFFF => 2,
        0x1_0000..=0xFF_FFFF => 3,
        _ => 4,
    }
}

fn build_dict(values: impl Iterator<Item = f64>) -> (Vec<f64>, Vec<u32>) {
    let mut map: HashMap<u64, u32> = HashMap::new();
    let mut dict = Vec::new();
    let mut idx = Vec::new();
    for v in values {
        let id = *map.entry(v.to_bits()).or_insert_with(|| {
            dict.push(v);
            dict.len() as u32 - 1
        });
        idx.push(id);
    }
    (dict, idx)
}

/// CVI: CSR structure with value-indexed cells (a.k.a. CSR-VI).
#[derive(Clone, Debug, PartialEq)]
pub struct CviBatch {
    rows: usize,
    cols: usize,
    offsets: Vec<u32>,
    col_idx: Vec<u32>,
    validx: Vec<u32>,
    dict: Vec<f64>,
}

impl CviBatch {
    pub fn encode(dense: &DenseMatrix) -> Self {
        let s = toc_linalg::SparseRows::encode(dense);
        let (dict, validx) = build_dict(s.pairs().iter().map(|p| p.val));
        Self {
            rows: s.rows(),
            cols: s.cols(),
            offsets: s.offsets().iter().map(|&o| o as u32).collect(),
            col_idx: s.pairs().iter().map(|p| p.col).collect(),
            validx,
            dict,
        }
    }

    pub fn from_body(body: &[u8]) -> Result<Self, FormatError> {
        let mut rd = Rd::new(body);
        let rows = rd.u32()? as usize;
        let cols = rd.u32()? as usize;
        let offsets = rd.u32s()?;
        let col_idx = rd.u32s()?;
        let validx = rd.u32s()?;
        let dict = rd.f64s()?;
        rd.done()?;
        if offsets.len() != rows + 1
            || col_idx.len() != validx.len()
            || offsets.last().copied().unwrap_or(1) as usize != validx.len()
        {
            return Err(FormatError::Corrupt("CVI section mismatch".into()));
        }
        if validx.iter().any(|&i| i as usize >= dict.len().max(1))
            || col_idx.iter().any(|&c| c as usize >= cols)
            || offsets.windows(2).any(|w| w[1] < w[0])
        {
            return Err(FormatError::Corrupt("CVI index out of range".into()));
        }
        Ok(Self {
            rows,
            cols,
            offsets,
            col_idx,
            validx,
            dict,
        })
    }

    #[inline]
    fn row_range(&self, r: usize) -> (usize, usize) {
        (self.offsets[r] as usize, self.offsets[r + 1] as usize)
    }
}

impl MatrixBatch for CviBatch {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn size_bytes(&self) -> usize {
        16 + 4 * (self.rows + 1)
            + self.col_idx.len() * (4 + idx_width(self.dict.len()))
            + 8 * self.dict.len()
            + 5
    }
    fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        toc_linalg::dense::reset_vec(out, self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            let (s, e) = self.row_range(r);
            let mut acc = 0.0;
            for k in s..e {
                acc += self.dict[self.validx[k] as usize] * v[self.col_idx[k] as usize];
            }
            *o = acc;
        }
    }
    fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        toc_linalg::dense::reset_vec(out, self.cols);
        for (r, &w) in v.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let (s, e) = self.row_range(r);
            for k in s..e {
                out[self.col_idx[k] as usize] += w * self.dict[self.validx[k] as usize];
            }
        }
    }
    fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        out.reset(self.rows, m.cols());
        for r in 0..self.rows {
            let (s, e) = self.row_range(r);
            let orow = out.row_mut(r);
            for k in s..e {
                let val = self.dict[self.validx[k] as usize];
                let mrow = m.row(self.col_idx[k] as usize);
                for (o, &b) in orow.iter_mut().zip(mrow) {
                    *o += val * b;
                }
            }
        }
    }
    fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        out.reset(m.rows(), self.cols);
        for q in 0..m.rows() {
            let mrow = m.row(q);
            let orow = out.row_mut(q);
            for (r, &w) in mrow.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let (s, e) = self.row_range(r);
                for k in s..e {
                    orow[self.col_idx[k] as usize] += w * self.dict[self.validx[k] as usize];
                }
            }
        }
    }
    fn scale(&mut self, c: f64) {
        for v in &mut self.dict {
            *v *= c;
        }
    }
    fn decode_into(&self, out: &mut DenseMatrix) {
        out.reset(self.rows, self.cols);
        for r in 0..self.rows {
            let (s, e) = self.row_range(r);
            for k in s..e {
                out.set(
                    r,
                    self.col_idx[k] as usize,
                    self.dict[self.validx[k] as usize],
                );
            }
        }
    }
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![Scheme::Cvi.tag()];
        put_u32(&mut out, self.rows as u32);
        put_u32(&mut out, self.cols as u32);
        put_u32s(&mut out, &self.offsets);
        put_u32s(&mut out, &self.col_idx);
        put_u32s(&mut out, &self.validx);
        put_f64s(&mut out, &self.dict);
        out
    }
}

/// DVI: dense grid of value indexes plus a dictionary (zeros included).
#[derive(Clone, Debug, PartialEq)]
pub struct DviBatch {
    rows: usize,
    cols: usize,
    validx: Vec<u32>,
    dict: Vec<f64>,
}

impl DviBatch {
    pub fn encode(dense: &DenseMatrix) -> Self {
        let (dict, validx) = build_dict(dense.data().iter().copied());
        Self {
            rows: dense.rows(),
            cols: dense.cols(),
            validx,
            dict,
        }
    }

    pub fn from_body(body: &[u8]) -> Result<Self, FormatError> {
        let mut rd = Rd::new(body);
        let rows = rd.u32()? as usize;
        let cols = rd.u32()? as usize;
        let validx = rd.u32s()?;
        let dict = rd.f64s()?;
        rd.done()?;
        // Checked: the wire-supplied shape product can overflow on
        // corrupted headers (debug-panic otherwise).
        if rows.checked_mul(cols) != Some(validx.len())
            || validx.iter().any(|&i| i as usize >= dict.len().max(1))
        {
            return Err(FormatError::Corrupt("DVI section mismatch".into()));
        }
        // A zero-area matrix leaves the other dimension unconstrained by
        // the index count (the body is header-only for any claimed
        // value), so a byte-proportional bound would reject legitimate
        // degenerate batches. Cap it generously instead, so a corrupted
        // header can't claim 2^32 rows/cols and drive the first
        // kernel-output allocation into an abort.
        if (rows == 0 || cols == 0) && rows.max(cols) > crate::MAX_DEGENERATE_DIM {
            return Err(FormatError::Corrupt("implausible DVI shape".into()));
        }
        Ok(Self {
            rows,
            cols,
            validx,
            dict,
        })
    }
}

impl MatrixBatch for DviBatch {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn size_bytes(&self) -> usize {
        16 + self.validx.len() * idx_width(self.dict.len()) + 8 * self.dict.len() + 5
    }
    fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        toc_linalg::dense::reset_vec(out, self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.validx[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (&idx, &x) in row.iter().zip(v) {
                acc += self.dict[idx as usize] * x;
            }
            *o = acc;
        }
    }
    fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        toc_linalg::dense::reset_vec(out, self.cols);
        for (r, &w) in v.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let row = &self.validx[r * self.cols..(r + 1) * self.cols];
            for (o, &idx) in out.iter_mut().zip(row) {
                *o += w * self.dict[idx as usize];
            }
        }
    }
    fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        out.reset(self.rows, m.cols());
        for r in 0..self.rows {
            let row = &self.validx[r * self.cols..(r + 1) * self.cols];
            let orow = out.row_mut(r);
            for (k, &idx) in row.iter().enumerate() {
                let val = self.dict[idx as usize];
                if val == 0.0 {
                    continue;
                }
                let mrow = m.row(k);
                for (o, &b) in orow.iter_mut().zip(mrow) {
                    *o += val * b;
                }
            }
        }
    }
    fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        out.reset(m.rows(), self.cols);
        for q in 0..m.rows() {
            let mrow = m.row(q);
            let orow = out.row_mut(q);
            for (r, &w) in mrow.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let row = &self.validx[r * self.cols..(r + 1) * self.cols];
                for (o, &idx) in orow.iter_mut().zip(row) {
                    *o += w * self.dict[idx as usize];
                }
            }
        }
    }
    fn scale(&mut self, c: f64) {
        for v in &mut self.dict {
            *v *= c;
        }
    }
    fn decode_into(&self, out: &mut DenseMatrix) {
        out.reset(self.rows, self.cols);
        for (o, &i) in out.data_mut().iter_mut().zip(&self.validx) {
            *o = self.dict[i as usize];
        }
    }
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![Scheme::Dvi.tag()];
        put_u32(&mut out, self.rows as u32);
        put_u32(&mut out, self.cols as u32);
        put_u32s(&mut out, &self.validx);
        put_f64s(&mut out, &self.dict);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(vec![
            vec![1.5, 0.0, 2.5, 1.5],
            vec![0.0, 1.5, 0.0, 0.0],
            vec![2.5, 0.0, 1.5, 2.5],
        ])
    }

    #[test]
    fn idx_width_boundaries() {
        assert_eq!(idx_width(0), 1);
        assert_eq!(idx_width(1), 1);
        assert_eq!(idx_width(256), 1);
        assert_eq!(idx_width(257), 2);
        assert_eq!(idx_width(65536), 2);
        assert_eq!(idx_width(65537), 3);
    }

    #[test]
    fn cvi_roundtrip_and_kernels() {
        let a = sample();
        let b = CviBatch::encode(&a);
        assert_eq!(b.decode(), a);
        let restored = CviBatch::from_body(&b.to_bytes()[1..]).unwrap();
        assert_eq!(restored, b);
        let v = [1.0, -1.0, 0.5, 2.0];
        assert_eq!(b.matvec(&v), a.matvec(&v));
        let w = [0.5, 1.0, -2.0];
        assert_eq!(b.vecmat(&w), a.vecmat(&w));
    }

    #[test]
    fn dvi_roundtrip_and_kernels() {
        let a = sample();
        let b = DviBatch::encode(&a);
        assert_eq!(b.decode(), a);
        let restored = DviBatch::from_body(&b.to_bytes()[1..]).unwrap();
        assert_eq!(restored, b);
        let v = [1.0, -1.0, 0.5, 2.0];
        assert_eq!(b.matvec(&v), a.matvec(&v));
        let w = [0.5, 1.0, -2.0];
        assert_eq!(b.vecmat(&w), a.vecmat(&w));
        let m = DenseMatrix::from_rows(vec![
            vec![1.0, 0.0],
            vec![2.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]);
        assert_eq!(b.matmat(&m), a.matmat(&m));
        let ml = DenseMatrix::from_rows(vec![vec![1.0, 0.0, 1.0], vec![0.0, 2.0, 0.0]]);
        assert_eq!(b.matmat_left(&ml), a.matmat_left(&ml));
    }

    #[test]
    fn scale_only_touches_dict() {
        let a = sample();
        let mut cvi = CviBatch::encode(&a);
        let mut dvi = DviBatch::encode(&a);
        cvi.scale(3.0);
        dvi.scale(3.0);
        let mut want = a;
        want.scale(3.0);
        assert_eq!(cvi.decode(), want);
        assert_eq!(dvi.decode(), want);
    }

    #[test]
    fn dvi_smaller_than_den_with_few_values() {
        let a = sample();
        let dvi = DviBatch::encode(&a);
        assert!(dvi.size_bytes() < a.den_size_bytes());
    }

    #[test]
    fn corrupt_bodies_error() {
        let a = sample();
        let cb = CviBatch::encode(&a).to_bytes();
        assert!(CviBatch::from_body(&cb[1..cb.len() - 3]).is_err());
        let db = DviBatch::encode(&a).to_bytes();
        assert!(DviBatch::from_body(&db[1..db.len() - 3]).is_err());
    }
}
