//! TOC as a [`MatrixBatch`] format, plus the ablation variants of
//! Figures 6 and 10:
//!
//! * [`TocFormat`] — the full pipeline (sparse + logical + physical),
//!   optionally with the varint physical codec.
//! * [`TocSparse`] — sparse encoding only (`TOC_SPARSE`); layout and size
//!   equal CSR, kernels are the sparse-row kernels.
//! * [`TocSparseLogical`] — sparse + logical encoding without physical
//!   encoding (`TOC_SPARSE_AND_LOGICAL`); kernels are the TOC compressed
//!   kernels, but the footprint is the unpacked logical layout
//!   (12 B per first-layer pair, 4 B per code/offset).

use crate::csr::CsrBatch;
use crate::wire::{put_u32, Rd};
use crate::{ExecScratch, FormatError, MatrixBatch, Scheme};
use toc_core::{KernelScratch, PhysicalCodec, TocBatch};
use toc_linalg::sparse::SparseRows;
use toc_linalg::DenseMatrix;

/// Full TOC (the paper's `TOC_FULL`).
#[derive(Clone, Debug, PartialEq)]
pub struct TocFormat {
    inner: TocBatch,
}

impl TocFormat {
    pub fn encode(dense: &DenseMatrix) -> Self {
        Self {
            inner: TocBatch::encode(dense),
        }
    }

    /// Extension: varint physical codec instead of bit packing.
    pub fn encode_varint(dense: &DenseMatrix) -> Self {
        Self {
            inner: TocBatch::encode_with(dense, PhysicalCodec::Varint),
        }
    }

    pub fn from_body(body: &[u8]) -> Result<Self, FormatError> {
        Ok(Self {
            inner: TocBatch::from_bytes(body.to_vec())?,
        })
    }

    /// Borrow the underlying compressed batch.
    pub fn toc(&self) -> &TocBatch {
        &self.inner
    }
}

impl MatrixBatch for TocFormat {
    fn rows(&self) -> usize {
        self.inner.rows()
    }
    fn cols(&self) -> usize {
        self.inner.cols()
    }
    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
    fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        self.inner
            .matvec_into(v, out, &mut KernelScratch::default())
            .expect("dimension-checked by caller")
    }
    fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        self.inner
            .vecmat_into(v, out, &mut KernelScratch::default())
            .expect("dimension-checked by caller")
    }
    fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        self.inner
            .matmat_into(m, out, &mut KernelScratch::default())
            .expect("dimension-checked by caller")
    }
    fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        self.inner
            .matmat_left_into(m, out, &mut KernelScratch::default())
            .expect("dimension-checked by caller")
    }
    fn decode_into(&self, out: &mut DenseMatrix) {
        self.inner.decode_into(out, &mut KernelScratch::default())
    }
    fn matvec_into_ws(&self, v: &[f64], out: &mut Vec<f64>, ws: &mut ExecScratch) {
        self.inner
            .matvec_into(v, out, &mut ws.toc)
            .expect("dimension-checked by caller")
    }
    fn vecmat_into_ws(&self, v: &[f64], out: &mut Vec<f64>, ws: &mut ExecScratch) {
        self.inner
            .vecmat_into(v, out, &mut ws.toc)
            .expect("dimension-checked by caller")
    }
    fn matmat_into_ws(&self, m: &DenseMatrix, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        self.inner
            .matmat_into(m, out, &mut ws.toc)
            .expect("dimension-checked by caller")
    }
    fn matmat_left_into_ws(&self, m: &DenseMatrix, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        self.inner
            .matmat_left_into(m, out, &mut ws.toc)
            .expect("dimension-checked by caller")
    }
    fn decode_into_ws(&self, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        self.inner.decode_into(out, &mut ws.toc)
    }
    fn scale(&mut self, c: f64) {
        self.inner.scale(c);
    }
    fn to_bytes(&self) -> Vec<u8> {
        // The scheme tag follows the physical codec so that the TOC_VARINT
        // extension keeps its identity across serialization round-trips
        // (`to_bytes -> Scheme::from_bytes -> to_bytes` is byte-identical).
        let tag = match self.inner.codec() {
            PhysicalCodec::BitPack => Scheme::Toc.tag(),
            PhysicalCodec::Varint => Scheme::TocVarint.tag(),
        };
        let mut out = vec![tag];
        out.extend_from_slice(self.inner.as_bytes());
        out
    }
}

/// Ablation: sparse encoding only (`TOC_SPARSE`).
#[derive(Clone, Debug, PartialEq)]
pub struct TocSparse {
    s: SparseRows,
}

impl TocSparse {
    pub fn encode(dense: &DenseMatrix) -> Self {
        Self {
            s: SparseRows::encode(dense),
        }
    }

    pub fn from_body(body: &[u8]) -> Result<Self, FormatError> {
        // Same wire layout as CSR.
        let csr = CsrBatch::from_body(body)?;
        Ok(Self {
            s: csr.sparse().clone(),
        })
    }
}

impl MatrixBatch for TocSparse {
    fn rows(&self) -> usize {
        self.s.rows()
    }
    fn cols(&self) -> usize {
        self.s.cols()
    }
    fn size_bytes(&self) -> usize {
        CsrBatch::csr_size_bytes(&self.s)
    }
    fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        self.s.matvec_into(v, out)
    }
    fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        self.s.vecmat_into(v, out)
    }
    fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        self.s.matmat_into(m, out)
    }
    fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        self.s.matmat_left_into(m, out)
    }
    fn decode_into(&self, out: &mut DenseMatrix) {
        self.s.decode_into(out)
    }
    fn decode_rows_into(&self, r0: usize, r1: usize, out: &mut DenseMatrix) {
        assert!(r0 <= r1 && r1 <= self.s.rows(), "row range out of bounds");
        out.reset(r1 - r0, self.s.cols());
        let offsets = self.s.offsets();
        let pairs = self.s.pairs();
        for r in r0..r1 {
            let row = out.row_mut(r - r0);
            for p in &pairs[offsets[r]..offsets[r + 1]] {
                row[p.col as usize] = p.val;
            }
        }
    }
    fn scale(&mut self, c: f64) {
        let mut csr = CsrBatch::from_sparse(self.s.clone());
        csr.scale(c);
        self.s = csr.sparse().clone();
    }
    fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = CsrBatch::from_sparse(self.s.clone()).to_bytes();
        bytes[0] = Scheme::TocSparse.tag();
        bytes
    }
}

/// Ablation: sparse + logical encoding, no physical encoding
/// (`TOC_SPARSE_AND_LOGICAL`).
#[derive(Clone, Debug, PartialEq)]
pub struct TocSparseLogical {
    /// Ops run through the full pipeline (physical access is free relative
    /// to the kernels); only the *footprint* models the unpacked layout.
    inner: TocBatch,
    logical_size: usize,
}

impl TocSparseLogical {
    pub fn encode(dense: &DenseMatrix) -> Self {
        let sparse = SparseRows::encode(dense);
        let logical = toc_core::logical_encode(&sparse);
        // Unpacked logical layout: 12 B per I pair (u32 col + f64 value),
        // 4 B per code, 4 B per tuple offset.
        let logical_size = 16
            + 12 * logical.first_layer.len()
            + 4 * logical.codes.len()
            + 4 * logical.row_offsets.len();
        let inner = TocBatch::from_logical(&logical, PhysicalCodec::BitPack);
        Self {
            inner,
            logical_size,
        }
    }

    pub fn from_body(body: &[u8]) -> Result<Self, FormatError> {
        let mut rd = Rd::new(body);
        let logical_size = rd.u32()? as usize;
        let inner = TocBatch::from_bytes(rd.rest().to_vec())?;
        Ok(Self {
            inner,
            logical_size,
        })
    }
}

impl MatrixBatch for TocSparseLogical {
    fn rows(&self) -> usize {
        self.inner.rows()
    }
    fn cols(&self) -> usize {
        self.inner.cols()
    }
    fn size_bytes(&self) -> usize {
        self.logical_size
    }
    fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        self.inner
            .matvec_into(v, out, &mut KernelScratch::default())
            .expect("dimension-checked by caller")
    }
    fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        self.inner
            .vecmat_into(v, out, &mut KernelScratch::default())
            .expect("dimension-checked by caller")
    }
    fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        self.inner
            .matmat_into(m, out, &mut KernelScratch::default())
            .expect("dimension-checked by caller")
    }
    fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        self.inner
            .matmat_left_into(m, out, &mut KernelScratch::default())
            .expect("dimension-checked by caller")
    }
    fn decode_into(&self, out: &mut DenseMatrix) {
        self.inner.decode_into(out, &mut KernelScratch::default())
    }
    fn matvec_into_ws(&self, v: &[f64], out: &mut Vec<f64>, ws: &mut ExecScratch) {
        self.inner
            .matvec_into(v, out, &mut ws.toc)
            .expect("dimension-checked by caller")
    }
    fn vecmat_into_ws(&self, v: &[f64], out: &mut Vec<f64>, ws: &mut ExecScratch) {
        self.inner
            .vecmat_into(v, out, &mut ws.toc)
            .expect("dimension-checked by caller")
    }
    fn matmat_into_ws(&self, m: &DenseMatrix, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        self.inner
            .matmat_into(m, out, &mut ws.toc)
            .expect("dimension-checked by caller")
    }
    fn matmat_left_into_ws(&self, m: &DenseMatrix, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        self.inner
            .matmat_left_into(m, out, &mut ws.toc)
            .expect("dimension-checked by caller")
    }
    fn decode_into_ws(&self, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        self.inner.decode_into(out, &mut ws.toc)
    }
    fn scale(&mut self, c: f64) {
        self.inner.scale(c);
    }
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![Scheme::TocSparseLogical.tag()];
        put_u32(&mut out, self.logical_size as u32);
        out.extend_from_slice(self.inner.as_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|r| {
                (0..30)
                    .map(|c| {
                        if (c + r % 4) % 3 == 0 {
                            ((c % 5) as f64) + 0.5
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        DenseMatrix::from_rows(rows)
    }

    #[test]
    fn full_roundtrip() {
        let a = sample();
        let b = TocFormat::encode(&a);
        assert_eq!(b.decode(), a);
        let restored = TocFormat::from_body(&b.to_bytes()[1..]).unwrap();
        assert_eq!(restored.decode(), a);
    }

    #[test]
    fn ablation_ordering_of_sizes() {
        // Fig. 6: FULL <= SPARSE_AND_LOGICAL <= SPARSE on redundant data.
        let a = sample();
        let sparse = TocSparse::encode(&a).size_bytes();
        let logical = TocSparseLogical::encode(&a).size_bytes();
        let full = TocFormat::encode(&a).size_bytes();
        assert!(full <= logical, "full {full} vs logical {logical}");
        assert!(logical <= sparse, "logical {logical} vs sparse {sparse}");
    }

    #[test]
    fn ablations_roundtrip() {
        let a = sample();
        let s = TocSparse::encode(&a);
        assert_eq!(s.decode(), a);
        let s2 = TocSparse::from_body(&s.to_bytes()[1..]).unwrap();
        assert_eq!(s2.decode(), a);
        let l = TocSparseLogical::encode(&a);
        assert_eq!(l.decode(), a);
        let l2 = TocSparseLogical::from_body(&l.to_bytes()[1..]).unwrap();
        assert_eq!(l2.decode(), a);
    }

    #[test]
    fn varint_roundtrip() {
        let a = sample();
        let b = TocFormat::encode_varint(&a);
        assert_eq!(b.decode(), a);
    }

    #[test]
    fn kernels_agree_across_variants() {
        let a = sample();
        let v: Vec<f64> = (0..30).map(|i| (i % 7) as f64 * 0.25).collect();
        let want = a.matvec(&v);
        for b in [
            Box::new(TocFormat::encode(&a)) as Box<dyn MatrixBatch>,
            Box::new(TocSparse::encode(&a)),
            Box::new(TocSparseLogical::encode(&a)),
        ] {
            let got = b.matvec(&v);
            assert!(toc_linalg::dense::max_abs_diff_vec(&got, &want) < 1e-9);
        }
    }
}
