//! GC formats (§5 methods 6–7): the serialized DEN bytes compressed with a
//! general-purpose byte codec (Snappy*/Gzip* from [`toc_gc`]).
//!
//! The defining property (Figure 1B): **every** matrix operation must fully
//! decompress the mini-batch first. These wrappers implement the ops as
//! decompress-then-dense so the decompression overhead the paper measures is
//! incurred on each call, exactly as in their experiment harness.

use crate::wire::{put_u32, Rd};
use crate::{ExecScratch, FormatError, MatrixBatch, Scheme};
use toc_gc::Codec;
use toc_linalg::DenseMatrix;

/// A mini-batch stored as general-compressed DEN bytes.
#[derive(Clone, Debug)]
pub struct GcBatch {
    codec: Codec,
    rows: usize,
    cols: usize,
    payload: Vec<u8>,
}

impl GcBatch {
    pub fn encode(dense: &DenseMatrix, codec: Codec) -> Self {
        // Compress the raw row-major doubles (the DEN payload without tag).
        let mut den = Vec::with_capacity(dense.data().len() * 8);
        for v in dense.data() {
            den.extend_from_slice(&v.to_le_bytes());
        }
        Self {
            codec,
            rows: dense.rows(),
            cols: dense.cols(),
            payload: codec.compress(&den),
        }
    }

    pub fn from_body(body: &[u8], codec: Codec) -> Result<Self, FormatError> {
        let mut rd = Rd::new(body);
        let rows = rd.u32()? as usize;
        let cols = rd.u32()? as usize;
        let payload = rd.rest().to_vec();
        let batch = Self {
            codec,
            rows,
            cols,
            payload,
        };
        // Validate eagerly so corrupt batches surface at load time.
        batch.try_decode()?;
        Ok(batch)
    }

    /// Decompress to dense, with errors surfaced (decode() panics on
    /// corruption, which cannot happen for validated/internally built
    /// batches).
    pub fn try_decode(&self) -> Result<DenseMatrix, FormatError> {
        let mut staging = Vec::new();
        let mut out = DenseMatrix::default();
        self.try_decode_staged(&mut staging, &mut out)?;
        Ok(out)
    }

    /// Decompress into caller-owned buffers: `staging` receives the raw
    /// decompressed DEN payload, `out` the decoded matrix. Both reuse
    /// their allocations across calls — the GC-decode staging path of the
    /// workspace API.
    pub fn try_decode_staged(
        &self,
        staging: &mut Vec<u8>,
        out: &mut DenseMatrix,
    ) -> Result<(), FormatError> {
        self.codec.decompress_into(&self.payload, staging)?;
        // Checked: `rows`/`cols` come from the wire, so the product can
        // overflow (debug-panic) on corrupted headers.
        let want = self
            .rows
            .checked_mul(self.cols)
            .and_then(|c| c.checked_mul(8));
        if want != Some(staging.len()) {
            return Err(FormatError::Corrupt("GC payload shape mismatch".into()));
        }
        out.reset(self.rows, self.cols);
        for (o, c) in out.data_mut().iter_mut().zip(staging.chunks_exact(8)) {
            *o = f64::from_le_bytes(c.try_into().unwrap());
        }
        Ok(())
    }

    /// [`Self::try_decode_staged`] for internally built batches (panics on
    /// corruption, which cannot happen for those).
    fn decode_staged(&self, staging: &mut Vec<u8>, out: &mut DenseMatrix) {
        self.try_decode_staged(staging, out)
            .expect("internally built GC batch must decode")
    }

    /// Which codec this batch uses.
    pub fn codec(&self) -> Codec {
        self.codec
    }
}

impl MatrixBatch for GcBatch {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn size_bytes(&self) -> usize {
        16 + self.payload.len()
    }
    fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        self.decode().matvec_into(v, out)
    }
    fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        self.decode().vecmat_into(v, out)
    }
    fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        self.decode().matmat_into(m, out)
    }
    fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        self.decode().matmat_left_into(m, out)
    }
    fn decode_into(&self, out: &mut DenseMatrix) {
        self.decode_staged(&mut Vec::new(), out)
    }
    fn scale(&mut self, c: f64) {
        // Decompress, scale, recompress — GC has no in-place path.
        let mut d = self.decode();
        d.scale(c);
        *self = Self::encode(&d, self.codec);
    }
    fn decode(&self) -> DenseMatrix {
        self.try_decode()
            .expect("internally built GC batch must decode")
    }

    // Workspace variants: every GC op must fully decompress first (the
    // defining property the paper measures); with a scratch the
    // decompression staging and the decoded matrix are caller-owned, so
    // even GC's per-op decode allocates nothing in steady state.
    fn matvec_into_ws(&self, v: &[f64], out: &mut Vec<f64>, ws: &mut ExecScratch) {
        self.decode_staged(&mut ws.gc_bytes, &mut ws.gc_dense);
        ws.gc_dense.matvec_into(v, out);
    }
    fn vecmat_into_ws(&self, v: &[f64], out: &mut Vec<f64>, ws: &mut ExecScratch) {
        self.decode_staged(&mut ws.gc_bytes, &mut ws.gc_dense);
        ws.gc_dense.vecmat_into(v, out);
    }
    fn matmat_into_ws(&self, m: &DenseMatrix, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        self.decode_staged(&mut ws.gc_bytes, &mut ws.gc_dense);
        ws.gc_dense.matmat_into(m, out);
    }
    fn matmat_left_into_ws(&self, m: &DenseMatrix, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        self.decode_staged(&mut ws.gc_bytes, &mut ws.gc_dense);
        ws.gc_dense.matmat_left_into(m, out);
    }
    fn decode_into_ws(&self, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        self.decode_staged(&mut ws.gc_bytes, out)
    }
    fn to_bytes(&self) -> Vec<u8> {
        let tag = match self.codec {
            Codec::FastLz => Scheme::Snappy.tag(),
            Codec::Deflate => Scheme::Gzip.tag(),
            Codec::Lzw => Scheme::Gzip.tag(), // LZW is test-only; map to GC slot
            Codec::Ans => Scheme::GcAns.tag(),
        };
        let mut out = vec![tag];
        put_u32(&mut out, self.rows as u32);
        put_u32(&mut out, self.cols as u32);
        out.extend_from_slice(&self.payload);
        out
    }
}

impl PartialEq for GcBatch {
    fn eq(&self, other: &Self) -> bool {
        self.codec == other.codec
            && self.rows == other.rows
            && self.cols == other.cols
            && self.payload == other.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        let mut m = DenseMatrix::zeros(50, 40);
        for r in 0..50 {
            for c in 0..40 {
                if (r + c) % 3 == 0 {
                    m.set(r, c, ((r % 4) as f64) + 0.5);
                }
            }
        }
        m
    }

    #[test]
    fn roundtrip_both_codecs() {
        let a = sample();
        for codec in [Codec::FastLz, Codec::Deflate] {
            let b = GcBatch::encode(&a, codec);
            assert_eq!(b.decode(), a);
            let bytes = b.to_bytes();
            let restored = GcBatch::from_body(&bytes[1..], codec).unwrap();
            assert_eq!(restored, b);
        }
    }

    #[test]
    fn compresses_redundant_den_bytes() {
        let a = sample();
        for codec in [Codec::FastLz, Codec::Deflate] {
            let b = GcBatch::encode(&a, codec);
            assert!(b.size_bytes() < a.den_size_bytes() / 2, "{codec:?}");
        }
    }

    #[test]
    fn ops_match_dense_via_decompression() {
        let a = sample();
        let b = GcBatch::encode(&a, Codec::Deflate);
        let v: Vec<f64> = (0..40).map(|i| (i % 5) as f64).collect();
        assert_eq!(b.matvec(&v), a.matvec(&v));
        let w: Vec<f64> = (0..50).map(|i| (i % 7) as f64 - 3.0).collect();
        assert_eq!(b.vecmat(&w), a.vecmat(&w));
    }

    #[test]
    fn scale_roundtrips_through_recompression() {
        let a = sample();
        let mut b = GcBatch::encode(&a, Codec::FastLz);
        b.scale(2.0);
        let mut want = a;
        want.scale(2.0);
        assert_eq!(b.decode(), want);
    }

    #[test]
    fn corrupt_payload_rejected_at_load() {
        let a = sample();
        let mut bytes = GcBatch::encode(&a, Codec::Deflate).to_bytes();
        let n = bytes.len();
        bytes.truncate(n - 5);
        assert!(GcBatch::from_body(&bytes[1..], Codec::Deflate).is_err());
    }

    #[test]
    fn den_baseline_still_bigger() {
        // Sanity: DenBatch::size_bytes is the ratio denominator.
        let a = sample();
        let den = crate::den::DenBatch::encode(&a);
        let gz = GcBatch::encode(&a, Codec::Deflate);
        assert!(den.size_bytes() > gz.size_bytes());
    }
}
