//! CLA (§5 method 5): a simplified re-implementation of Compressed Linear
//! Algebra [Elgohary et al., VLDB 2016].
//!
//! CLA partitions the matrix into column groups, co-codes each group with a
//! dictionary of distinct value-tuples (DDC — dense dictionary coding), and
//! executes linear algebra directly on the compressed groups by
//! precomputing per-dictionary-entry partial results. Columns that do not
//! compress fall back to an uncompressed-column (UC) group.
//!
//! The two properties the paper contrasts with TOC are preserved:
//! compressed execution without decompression, and an **explicit
//! dictionary**, whose fixed cost is poorly amortized on small mini-batches
//! (the reason CLA ratios trail TOC there — see Figure 5).

use crate::wire::{put_f64s, put_u32, put_u32s, Rd};
use crate::{FormatError, MatrixBatch, Scheme};
use std::collections::HashMap;
use toc_linalg::DenseMatrix;

/// Max dictionary entries per co-coded group (keeps row indexes 1 byte and
/// per-op precompute tables small, mirroring CLA's sample-based cutoffs).
const DICT_CAP: usize = 256;
/// Max columns co-coded into one group.
const GROUP_CAP: usize = 16;

fn idx_width(n: usize) -> usize {
    match n.saturating_sub(1) {
        0..=0xFF => 1,
        0x100..=0xFFFF => 2,
        _ => 4,
    }
}

/// One column group.
#[derive(Clone, Debug, PartialEq)]
pub enum Group {
    /// Dense dictionary coding over `cols.len()` co-coded columns:
    /// `dict` is `n_entries × cols.len()` row-major; `rowidx[r]` picks the
    /// tuple for matrix row `r`.
    Ddc {
        cols: Vec<u32>,
        dict: Vec<f64>,
        rowidx: Vec<u32>,
    },
    /// Uncompressed column fallback.
    Uc { col: u32, values: Vec<f64> },
}

/// A CLA-encoded mini-batch.
#[derive(Clone, Debug, PartialEq)]
pub struct ClaBatch {
    rows: usize,
    cols: usize,
    groups: Vec<Group>,
}

impl ClaBatch {
    /// Greedy left-to-right co-coding: extend the current group with the
    /// next column while the merged dictionary stays under the dictionary cap (256 entries).
    pub fn encode(dense: &DenseMatrix) -> Self {
        let rows = dense.rows();
        let cols = dense.cols();
        let mut groups: Vec<Group> = Vec::new();

        let mut c = 0usize;
        while c < cols {
            // Seed a group with column c.
            let mut map: HashMap<(u32, u64), u32> = HashMap::new();
            let mut dict: Vec<f64> = Vec::new();
            let mut rowidx: Vec<u32> = Vec::with_capacity(rows);
            #[allow(clippy::needless_range_loop)] // r indexes both the matrix and rowidx
            for r in 0..rows {
                let bits = dense.get(r, c).to_bits();
                let next = dict.len() as u32;
                let id = *map.entry((0, bits)).or_insert_with(|| {
                    dict.push(dense.get(r, c));
                    next
                });
                rowidx.push(id);
            }
            let mut group_cols = vec![c as u32];
            let mut n_entries = dict.len();

            if n_entries > DICT_CAP && n_entries * 2 > rows {
                // Incompressible column: UC fallback.
                groups.push(Group::Uc {
                    col: c as u32,
                    values: (0..rows).map(|r| dense.get(r, c)).collect(),
                });
                c += 1;
                continue;
            }

            // Try to extend with following columns.
            let mut next_col = c + 1;
            while next_col < cols && group_cols.len() < GROUP_CAP && n_entries <= DICT_CAP {
                // Candidate dictionary: distinct (current entry, new value).
                let mut cand: HashMap<(u32, u64), u32> = HashMap::new();
                let mut cand_rowidx: Vec<u32> = Vec::with_capacity(rows);
                let mut pairs: Vec<(u32, f64)> = Vec::new();
                #[allow(clippy::needless_range_loop)] // r indexes the matrix and rowidx
                for r in 0..rows {
                    let v = dense.get(r, next_col);
                    let key = (rowidx[r], v.to_bits());
                    let next = pairs.len() as u32;
                    let id = *cand.entry(key).or_insert_with(|| {
                        pairs.push((rowidx[r], v));
                        next
                    });
                    cand_rowidx.push(id);
                }
                if pairs.len() > DICT_CAP {
                    break;
                }
                // Accept: rebuild the flattened dictionary.
                let width = group_cols.len();
                let mut new_dict = Vec::with_capacity(pairs.len() * (width + 1));
                for &(old_id, v) in &pairs {
                    let old = &dict[old_id as usize * width..(old_id as usize + 1) * width];
                    new_dict.extend_from_slice(old);
                    new_dict.push(v);
                }
                dict = new_dict;
                rowidx = cand_rowidx;
                group_cols.push(next_col as u32);
                n_entries = pairs.len();
                next_col += 1;
            }

            c = next_col;
            groups.push(Group::Ddc {
                cols: group_cols,
                dict,
                rowidx,
            });
        }

        Self { rows, cols, groups }
    }

    pub fn from_body(body: &[u8]) -> Result<Self, FormatError> {
        let mut rd = Rd::new(body);
        let rows = rd.u32()? as usize;
        let cols = rd.u32()? as usize;
        let n_groups = rd.u32()? as usize;
        if n_groups > cols {
            return Err(FormatError::Corrupt("too many CLA groups".into()));
        }
        let mut groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            match rd.u8()? {
                0 => {
                    let gcols = rd.u32s()?;
                    let dict = rd.f64s()?;
                    let rowidx = rd.u32s()?;
                    let width = gcols.len().max(1);
                    let n_entries = dict.len() / width;
                    if gcols.is_empty()
                        || dict.len() % width != 0
                        || rowidx.len() != rows
                        || gcols.iter().any(|&g| g as usize >= cols)
                        || rowidx.iter().any(|&i| i as usize >= n_entries)
                    {
                        return Err(FormatError::Corrupt("bad DDC group".into()));
                    }
                    groups.push(Group::Ddc {
                        cols: gcols,
                        dict,
                        rowidx,
                    });
                }
                1 => {
                    let col = rd.u32()?;
                    let values = rd.f64s()?;
                    if col as usize >= cols || values.len() != rows {
                        return Err(FormatError::Corrupt("bad UC group".into()));
                    }
                    groups.push(Group::Uc { col, values });
                }
                t => return Err(FormatError::Corrupt(format!("bad group tag {t}"))),
            }
        }
        rd.done()?;
        Ok(Self { rows, cols, groups })
    }

    /// Number of column groups (exposed for tests/inspection).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }
}

impl MatrixBatch for ClaBatch {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn size_bytes(&self) -> usize {
        let mut total = 16;
        for g in &self.groups {
            total += match g {
                Group::Ddc { cols, dict, rowidx } => {
                    8 + 4 * cols.len()
                        + 8 * dict.len()
                        + rowidx.len() * idx_width(dict.len() / cols.len().max(1))
                }
                Group::Uc { values, .. } => 8 + 8 * values.len(),
            };
        }
        total
    }
    fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        toc_linalg::dense::reset_vec(out, self.rows);
        for g in &self.groups {
            match g {
                Group::Ddc { cols, dict, rowidx } => {
                    let width = cols.len();
                    let n = dict.len() / width;
                    // Precompute per-dictionary-entry dot products.
                    let mut table = vec![0.0f64; n];
                    for (i, t) in table.iter_mut().enumerate() {
                        let tuple = &dict[i * width..(i + 1) * width];
                        let mut acc = 0.0;
                        for (j, &val) in tuple.iter().enumerate() {
                            acc += val * v[cols[j] as usize];
                        }
                        *t = acc;
                    }
                    for (o, &i) in out.iter_mut().zip(rowidx) {
                        *o += table[i as usize];
                    }
                }
                Group::Uc { col, values } => {
                    let x = v[*col as usize];
                    if x != 0.0 {
                        for (o, &val) in out.iter_mut().zip(values) {
                            *o += val * x;
                        }
                    }
                }
            }
        }
    }
    fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        toc_linalg::dense::reset_vec(out, self.cols);
        for g in &self.groups {
            match g {
                Group::Ddc { cols, dict, rowidx } => {
                    let width = cols.len();
                    let n = dict.len() / width;
                    let mut acc = vec![0.0f64; n];
                    for (&i, &w) in rowidx.iter().zip(v) {
                        acc[i as usize] += w;
                    }
                    for (i, &a) in acc.iter().enumerate() {
                        if a != 0.0 {
                            let tuple = &dict[i * width..(i + 1) * width];
                            for (j, &val) in tuple.iter().enumerate() {
                                out[cols[j] as usize] += val * a;
                            }
                        }
                    }
                }
                Group::Uc { col, values } => {
                    let mut acc = 0.0;
                    for (&val, &w) in values.iter().zip(v) {
                        acc += val * w;
                    }
                    out[*col as usize] += acc;
                }
            }
        }
    }
    fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        let p = m.cols();
        out.reset(self.rows, p);
        for g in &self.groups {
            match g {
                Group::Ddc { cols, dict, rowidx } => {
                    let width = cols.len();
                    let n = dict.len() / width;
                    let mut table = vec![0.0f64; n * p];
                    for i in 0..n {
                        let tuple = &dict[i * width..(i + 1) * width];
                        let trow = &mut table[i * p..(i + 1) * p];
                        for (j, &val) in tuple.iter().enumerate() {
                            if val == 0.0 {
                                continue;
                            }
                            let mrow = m.row(cols[j] as usize);
                            for (t, &b) in trow.iter_mut().zip(mrow) {
                                *t += val * b;
                            }
                        }
                    }
                    for (r, &i) in rowidx.iter().enumerate() {
                        let trow = &table[i as usize * p..(i as usize + 1) * p];
                        let orow = out.row_mut(r);
                        for (o, &t) in orow.iter_mut().zip(trow) {
                            *o += t;
                        }
                    }
                }
                Group::Uc { col, values } => {
                    let mrow = m.row(*col as usize).to_vec();
                    for (r, &val) in values.iter().enumerate() {
                        if val == 0.0 {
                            continue;
                        }
                        let orow = out.row_mut(r);
                        for (o, &b) in orow.iter_mut().zip(&mrow) {
                            *o += val * b;
                        }
                    }
                }
            }
        }
    }
    fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        let p = m.rows();
        out.reset(p, self.cols);
        for g in &self.groups {
            match g {
                Group::Ddc { cols, dict, rowidx } => {
                    let width = cols.len();
                    let n = dict.len() / width;
                    // acc[i][q] = sum over rows with entry i of M[q][r].
                    let mut acc = vec![0.0f64; n * p];
                    for (r, &i) in rowidx.iter().enumerate() {
                        let arow = &mut acc[i as usize * p..(i as usize + 1) * p];
                        for (q, a) in arow.iter_mut().enumerate() {
                            *a += m.get(q, r);
                        }
                    }
                    for i in 0..n {
                        let tuple = &dict[i * width..(i + 1) * width];
                        let arow = &acc[i * p..(i + 1) * p];
                        for (j, &val) in tuple.iter().enumerate() {
                            if val == 0.0 {
                                continue;
                            }
                            let col = cols[j] as usize;
                            for (q, &a) in arow.iter().enumerate() {
                                out.set(q, col, out.get(q, col) + val * a);
                            }
                        }
                    }
                }
                Group::Uc { col, values } => {
                    for q in 0..p {
                        let mut accv = 0.0;
                        let mrow = m.row(q);
                        for (&val, &w) in values.iter().zip(mrow) {
                            accv += val * w;
                        }
                        out.set(q, *col as usize, out.get(q, *col as usize) + accv);
                    }
                }
            }
        }
    }
    fn scale(&mut self, c: f64) {
        for g in &mut self.groups {
            match g {
                Group::Ddc { dict, .. } => {
                    for v in dict {
                        *v *= c;
                    }
                }
                Group::Uc { values, .. } => {
                    for v in values {
                        *v *= c;
                    }
                }
            }
        }
    }
    fn decode_into(&self, out: &mut DenseMatrix) {
        out.reset(self.rows, self.cols);
        for g in &self.groups {
            match g {
                Group::Ddc { cols, dict, rowidx } => {
                    let width = cols.len();
                    for (r, &i) in rowidx.iter().enumerate() {
                        let tuple = &dict[i as usize * width..(i as usize + 1) * width];
                        for (j, &val) in tuple.iter().enumerate() {
                            out.set(r, cols[j] as usize, val);
                        }
                    }
                }
                Group::Uc { col, values } => {
                    for (r, &val) in values.iter().enumerate() {
                        out.set(r, *col as usize, val);
                    }
                }
            }
        }
    }
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![Scheme::Cla.tag()];
        put_u32(&mut out, self.rows as u32);
        put_u32(&mut out, self.cols as u32);
        put_u32(&mut out, self.groups.len() as u32);
        for g in &self.groups {
            match g {
                Group::Ddc { cols, dict, rowidx } => {
                    out.push(0);
                    put_u32s(&mut out, cols);
                    put_f64s(&mut out, dict);
                    put_u32s(&mut out, rowidx);
                }
                Group::Uc { col, values } => {
                    out.push(1);
                    put_u32(&mut out, *col);
                    put_f64s(&mut out, values);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn redundant_matrix(rows: usize, cols: usize) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, (((r % 5) * (c % 3)) % 4) as f64 * 0.5);
            }
        }
        m
    }

    #[test]
    fn roundtrip() {
        let a = redundant_matrix(40, 20);
        let b = ClaBatch::encode(&a);
        assert_eq!(b.decode(), a);
        let restored = ClaBatch::from_body(&b.to_bytes()[1..]).unwrap();
        assert_eq!(restored, b);
    }

    #[test]
    fn co_coding_happens_on_redundant_columns() {
        let a = redundant_matrix(100, 30);
        let b = ClaBatch::encode(&a);
        assert!(b.num_groups() < 30, "groups: {}", b.num_groups());
        assert!(b.size_bytes() < a.den_size_bytes());
    }

    #[test]
    fn uc_fallback_on_random_column() {
        let mut rng = StdRng::seed_from_u64(3);
        let rows = 600;
        let mut m = DenseMatrix::zeros(rows, 2);
        for r in 0..rows {
            m.set(r, 0, rng.gen::<f64>()); // unique values -> UC
            m.set(r, 1, (r % 3) as f64); // 3 distinct -> DDC
        }
        let b = ClaBatch::encode(&m);
        assert!(b.groups.iter().any(|g| matches!(g, Group::Uc { .. })));
        assert_eq!(b.decode(), m);
    }

    #[test]
    fn kernels_match_dense() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = redundant_matrix(35, 18);
        let v: Vec<f64> = (0..18).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let w: Vec<f64> = (0..35).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b = ClaBatch::encode(&a);
        let tol = 1e-9;
        assert!(toc_linalg::dense::max_abs_diff_vec(&b.matvec(&v), &a.matvec(&v)) < tol);
        assert!(toc_linalg::dense::max_abs_diff_vec(&b.vecmat(&w), &a.vecmat(&w)) < tol);
        let m = DenseMatrix::random(&mut rng, 18, 5, -1.0, 1.0);
        assert!(b.matmat(&m).max_abs_diff(&a.matmat(&m)) < tol);
        let ml = DenseMatrix::random(&mut rng, 4, 35, -1.0, 1.0);
        assert!(b.matmat_left(&ml).max_abs_diff(&a.matmat_left(&ml)) < tol);
    }

    #[test]
    fn scale_matches_dense() {
        let a = redundant_matrix(20, 10);
        let mut b = ClaBatch::encode(&a);
        b.scale(0.25);
        let mut want = a;
        want.scale(0.25);
        assert_eq!(b.decode(), want);
    }

    #[test]
    fn single_column_matrix() {
        let a = DenseMatrix::from_rows(vec![vec![1.0], vec![2.0], vec![1.0]]);
        let b = ClaBatch::encode(&a);
        assert_eq!(b.decode(), a);
        assert_eq!(b.matvec(&[2.0]), a.matvec(&[2.0]));
    }

    #[test]
    fn corrupt_body_errors() {
        let b = ClaBatch::encode(&redundant_matrix(10, 5)).to_bytes();
        assert!(ClaBatch::from_body(&b[1..b.len() - 2]).is_err());
        assert!(ClaBatch::from_body(&[0, 0, 0]).is_err());
    }
}
