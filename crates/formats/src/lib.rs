#![forbid(unsafe_code)]
//! # toc-formats — every mini-batch encoding the paper compares
//!
//! A single [`MatrixBatch`] trait unifies the eight encoding schemes of the
//! paper's evaluation (§5, "Compared Methods") plus the TOC ablation
//! variants, so the MGD engine, the experiment harness and the correctness
//! oracles are format-agnostic:
//!
//! | Scheme | Module | Compressed execution? |
//! |--------|--------|----------------------|
//! | DEN — dense IEEE-754 doubles            | [`den`] | n/a (uncompressed) |
//! | CSR — compressed sparse row             | [`csr`] | yes |
//! | CVI — CSR + value indexing              | [`cvi`] | yes |
//! | DVI — DEN + value indexing              | [`cvi`] | yes |
//! | CLA — co-coded column groups (simplified [Elgohary et al. 2016]) | [`cla`] | yes |
//! | Snappy* — fast-LZ over DEN bytes        | [`gcform`] | no: full decompression first |
//! | Gzip* — deflate over DEN bytes          | [`gcform`] | no: full decompression first |
//! | ANS — tabled rANS over DEN bytes        | [`gcform`] | no: full decompression first |
//! | TOC (full / ablations / varint)         | [`tocform`] | yes |

pub mod cla;
pub mod container;
pub mod csr;
pub mod cvi;
pub mod den;
pub mod gcform;
pub mod tocform;

pub use cla::{ClaOptions, ClaPlanner};

use toc_linalg::DenseMatrix;

/// Per-scheme encoding knobs, threaded from the CLI / store down to the
/// format encoders. `Default` preserves each scheme's standalone behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EncodeOptions {
    /// CLA co-coding planner options.
    pub cla: ClaOptions,
}

/// Error from deserializing a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Malformed bytes.
    Corrupt(String),
    /// The buffer encodes a different scheme than requested.
    WrongScheme { expected: &'static str, got: u8 },
    /// A value does not fit the wire field that must carry it — e.g. a
    /// batch over 4 GiB under the v1 container's `u32` length prefix.
    /// Writing would silently truncate into a corrupt file, so the
    /// writer refuses.
    TooLarge {
        what: &'static str,
        value: u64,
        max: u64,
    },
    /// A container's batches disagree on column count. The header/footer
    /// carries a single `cols`, so a mixed-width container would serialize
    /// a wrong width for every batch after the first; the writer refuses.
    MixedCols {
        batch: usize,
        got: usize,
        expected: usize,
    },
    /// An underlying IO operation failed while streaming container
    /// bytes. Distinct from [`FormatError::Corrupt`] so a resume
    /// validator can tell a torn/truncated footer (resumable by
    /// truncating back to the checkpoint watermark) from a sink that is
    /// failing outright (not resumable until the IO fault clears).
    Io {
        /// What the writer was doing ("write segment", "flush", ...).
        op: &'static str,
        /// The OS error category.
        kind: std::io::ErrorKind,
        /// The formatted OS error.
        msg: String,
    },
}

impl FormatError {
    /// Wrap an IO failure from a container streaming operation.
    pub fn io(op: &'static str, e: std::io::Error) -> Self {
        FormatError::Io {
            op,
            kind: e.kind(),
            msg: e.to_string(),
        }
    }
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Corrupt(m) => write!(f, "corrupt batch: {m}"),
            FormatError::WrongScheme { expected, got } => {
                write!(f, "wrong scheme tag {got}, expected {expected}")
            }
            FormatError::TooLarge { what, value, max } => {
                write!(f, "{what} = {value} exceeds the wire field maximum {max}")
            }
            FormatError::MixedCols {
                batch,
                got,
                expected,
            } => {
                write!(
                    f,
                    "container batch {batch} has {got} cols, expected {expected}"
                )
            }
            FormatError::Io { op, msg, .. } => write!(f, "{op}: {msg}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<toc_core::TocError> for FormatError {
    fn from(e: toc_core::TocError) -> Self {
        FormatError::Corrupt(e.to_string())
    }
}

impl From<toc_gc::GcError> for FormatError {
    fn from(e: toc_gc::GcError) -> Self {
        FormatError::Corrupt(e.to_string())
    }
}

/// Reusable format-level scratch for the workspace (`*_into_ws`) kernel
/// variants: staging buffers that some encodings need *inside* an
/// operation, owned by the caller so a steady-state training loop performs
/// no per-batch heap allocation.
///
/// * `gc_bytes` / `gc_dense` — the GC formats (Snappy*/Gzip*) must fully
///   decompress before any op; these stage the decompressed DEN payload
///   and the decoded matrix.
/// * `toc` — the TOC kernels rebuild the decode tree `C'` and fill an
///   `H`/`G` accumulator per call; [`toc_core::KernelScratch`] owns both.
///
/// One instance serves any number of batches of any scheme and shape;
/// buffers grow to the high-water mark and are reused thereafter.
#[derive(Debug, Default)]
pub struct ExecScratch {
    /// Decompressed DEN payload staging for the GC formats.
    pub gc_bytes: Vec<u8>,
    /// Decoded dense staging for ops that must decompress first.
    pub gc_dense: DenseMatrix,
    /// Decode tree + accumulator scratch for the TOC kernels.
    pub toc: toc_core::KernelScratch,
    /// Serialized-batch staging for spill-store reads: out-of-core
    /// providers read a batch's on-disk bytes here before
    /// [`Scheme::from_bytes`] parses them, so a prefetch worker or visitor
    /// that owns one scratch re-reads any number of spilled batches
    /// without reallocating the IO buffer.
    pub spill_bytes: Vec<u8>,
}

/// A mini-batch in some (possibly compressed) encoding, supporting the core
/// matrix operations MGD needs (paper Table 1 / §4).
///
/// The trait exposes three method families:
///
/// 1. **Workspace kernels** (`*_into`, required): write into caller-owned
///    buffers, which are cleared and refilled reusing their allocations.
///    These are the native implementations in every format module.
/// 2. **Allocating wrappers** (provided): the historical `matvec(&self,
///    v) -> Vec<f64>` style API, now thin wrappers over the `*_into`
///    family.
/// 3. **Scratch-aware kernels** (`*_into_ws`, provided): like `*_into`
///    but additionally given an [`ExecScratch`] so formats with internal
///    staging needs (GC decompression, TOC tree rebuilds) are
///    allocation-free too. Formats without such needs ignore the scratch.
pub trait MatrixBatch {
    /// Matrix rows.
    fn rows(&self) -> usize;
    /// Matrix columns.
    fn cols(&self) -> usize;
    /// In-memory/on-disk footprint of the encoding, in bytes.
    fn size_bytes(&self) -> usize;
    /// `A · v` into a caller-owned buffer.
    fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>);
    /// `v · A` into a caller-owned buffer.
    fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>);
    /// `A · M` into a caller-owned matrix.
    fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix);
    /// `M · A` into a caller-owned matrix.
    fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix);
    /// Full decode into a caller-owned matrix (sparse-unsafe operations
    /// route through this).
    fn decode_into(&self, out: &mut DenseMatrix);
    /// Decode only rows `r0..r1` into a caller-owned matrix (`out` gets
    /// `r1 - r0` rows). Row-range projection lands here so the seekable
    /// container can trim the partial segments at a query's edges; formats
    /// with cheap row access (DEN, the sparse-row family) override this,
    /// everything else decodes fully and copies the slice.
    fn decode_rows_into(&self, r0: usize, r1: usize, out: &mut DenseMatrix) {
        assert!(r0 <= r1 && r1 <= self.rows(), "row range out of bounds");
        let full = self.decode();
        out.reset(r1 - r0, self.cols());
        for r in r0..r1 {
            out.row_mut(r - r0).copy_from_slice(full.row(r));
        }
    }
    /// Sparse-safe element-wise `A .* c`, in place.
    fn scale(&mut self, c: f64);
    /// Serialize to bytes (scheme tag included).
    fn to_bytes(&self) -> Vec<u8>;

    // ---- Allocating wrappers ------------------------------------------

    /// `A · v`.
    fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.matvec_into(v, &mut out);
        out
    }
    /// `v · A`.
    fn vecmat(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.vecmat_into(v, &mut out);
        out
    }
    /// `A · M`.
    fn matmat(&self, m: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::default();
        self.matmat_into(m, &mut out);
        out
    }
    /// `M · A`.
    fn matmat_left(&self, m: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::default();
        self.matmat_left_into(m, &mut out);
        out
    }
    /// Full decode to dense.
    fn decode(&self) -> DenseMatrix {
        let mut out = DenseMatrix::default();
        self.decode_into(&mut out);
        out
    }

    // ---- Scratch-aware kernels ----------------------------------------

    /// [`Self::matvec_into`] with format-level scratch.
    fn matvec_into_ws(&self, v: &[f64], out: &mut Vec<f64>, ws: &mut ExecScratch) {
        let _ = ws;
        self.matvec_into(v, out);
    }
    /// [`Self::vecmat_into`] with format-level scratch.
    fn vecmat_into_ws(&self, v: &[f64], out: &mut Vec<f64>, ws: &mut ExecScratch) {
        let _ = ws;
        self.vecmat_into(v, out);
    }
    /// [`Self::matmat_into`] with format-level scratch.
    fn matmat_into_ws(&self, m: &DenseMatrix, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        let _ = ws;
        self.matmat_into(m, out);
    }
    /// [`Self::matmat_left_into`] with format-level scratch.
    fn matmat_left_into_ws(&self, m: &DenseMatrix, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        let _ = ws;
        self.matmat_left_into(m, out);
    }
    /// [`Self::decode_into`] with format-level scratch.
    fn decode_into_ws(&self, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        let _ = ws;
        self.decode_into(out);
    }
}

/// The encoding schemes of the paper's evaluation, plus ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    Den,
    Csr,
    Cvi,
    Dvi,
    Cla,
    Snappy,
    Gzip,
    Toc,
    /// Ablation: sparse encoding only (Fig. 6/10 `TOC_SPARSE`).
    TocSparse,
    /// Ablation: sparse + logical encoding (Fig. 6/10
    /// `TOC_SPARSE_AND_LOGICAL`).
    TocSparseLogical,
    /// Extension: TOC with the varint physical codec.
    TocVarint,
    /// Extension: DEN bytes under the tabled rANS entropy coder
    /// ([`toc_gc::ans`]) — the modern-entropy-coding contrast to the
    /// paper's Snappy*/Gzip* GC baselines.
    GcAns,
}

impl Scheme {
    /// Every scheme tag — the paper set plus ablations and extensions.
    /// Test suites (conformance, fuzz, golden fixtures) iterate this, so
    /// a new variant added here is automatically covered everywhere.
    pub const ALL: [Scheme; 12] = [
        Scheme::Den,
        Scheme::Csr,
        Scheme::Cvi,
        Scheme::Dvi,
        Scheme::Cla,
        Scheme::Snappy,
        Scheme::Gzip,
        Scheme::Toc,
        Scheme::TocSparse,
        Scheme::TocSparseLogical,
        Scheme::TocVarint,
        Scheme::GcAns,
    ];

    /// The seven compared methods of §5 plus TOC, in the paper's order.
    pub const PAPER_SET: [Scheme; 8] = [
        Scheme::Den,
        Scheme::Csr,
        Scheme::Cvi,
        Scheme::Dvi,
        Scheme::Cla,
        Scheme::Snappy,
        Scheme::Gzip,
        Scheme::Toc,
    ];

    /// The ablation set of Figures 6 and 10.
    pub const ABLATION_SET: [Scheme; 3] =
        [Scheme::TocSparse, Scheme::TocSparseLogical, Scheme::Toc];

    /// Candidates for `--scheme auto` selection: the paper set plus the
    /// ANS extension (which competes via a cheap entropy estimate — see
    /// [`Scheme::estimate_encoded_size`]).
    pub const AUTO_SET: [Scheme; 9] = [
        Scheme::Den,
        Scheme::Csr,
        Scheme::Cvi,
        Scheme::Dvi,
        Scheme::Cla,
        Scheme::Snappy,
        Scheme::Gzip,
        Scheme::Toc,
        Scheme::GcAns,
    ];

    /// Display name matching the paper's figures (`*` marks from-scratch
    /// substitutes for Snappy/Gzip).
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Den => "DEN",
            Scheme::Csr => "CSR",
            Scheme::Cvi => "CVI",
            Scheme::Dvi => "DVI",
            Scheme::Cla => "CLA",
            Scheme::Snappy => "Snappy*",
            Scheme::Gzip => "Gzip*",
            Scheme::Toc => "TOC",
            Scheme::TocSparse => "TOC_SPARSE",
            Scheme::TocSparseLogical => "TOC_SPARSE_AND_LOGICAL",
            Scheme::TocVarint => "TOC_VARINT",
            Scheme::GcAns => "ANS",
        }
    }

    /// Whether matrix ops run directly on the compressed representation
    /// (LMC + TOC) or require full decompression first (GC).
    pub fn compressed_execution(self) -> bool {
        !matches!(self, Scheme::Snappy | Scheme::Gzip | Scheme::GcAns)
    }

    /// Encode a dense mini-batch with this scheme and default options.
    pub fn encode(self, dense: &DenseMatrix) -> AnyBatch {
        self.encode_with(dense, &EncodeOptions::default())
    }

    /// Encode with explicit per-scheme options (currently only CLA has
    /// knobs; every other scheme ignores `opts`).
    pub fn encode_with(self, dense: &DenseMatrix, opts: &EncodeOptions) -> AnyBatch {
        match self {
            Scheme::Den => AnyBatch::Den(den::DenBatch::encode(dense)),
            Scheme::Csr => AnyBatch::Csr(csr::CsrBatch::encode(dense)),
            Scheme::Cvi => AnyBatch::Cvi(cvi::CviBatch::encode(dense)),
            Scheme::Dvi => AnyBatch::Dvi(cvi::DviBatch::encode(dense)),
            Scheme::Cla => AnyBatch::Cla(cla::ClaBatch::encode_with(dense, &opts.cla)),
            Scheme::Snappy => AnyBatch::Gc(gcform::GcBatch::encode(dense, toc_gc::Codec::FastLz)),
            Scheme::Gzip => AnyBatch::Gc(gcform::GcBatch::encode(dense, toc_gc::Codec::Deflate)),
            Scheme::Toc => AnyBatch::Toc(tocform::TocFormat::encode(dense)),
            Scheme::TocSparse => AnyBatch::TocSparse(tocform::TocSparse::encode(dense)),
            Scheme::TocSparseLogical => {
                AnyBatch::TocSparseLogical(tocform::TocSparseLogical::encode(dense))
            }
            Scheme::TocVarint => AnyBatch::Toc(tocform::TocFormat::encode_varint(dense)),
            Scheme::GcAns => AnyBatch::Gc(gcform::GcBatch::encode(dense, toc_gc::Codec::Ans)),
        }
    }

    /// Estimated [`MatrixBatch::size_bytes`] of encoding `dense` with this
    /// scheme. For CLA this consults the sample-based planner's size
    /// estimate (no dictionaries are built); every other scheme probes by
    /// encoding. Used by [`pick_scheme`] so scheme selection over wide
    /// batches does not pay CLA's full co-coding cost per candidate.
    pub fn estimate_encoded_size(self, dense: &DenseMatrix, opts: &EncodeOptions) -> usize {
        match self {
            Scheme::Den => dense.den_size_bytes(),
            Scheme::Cla if opts.cla.planner == ClaPlanner::SampleMerge => {
                cla::planner::plan(dense, &opts.cla).est_bytes
            }
            // ANS compresses to (almost exactly) the zeroth-order byte
            // entropy of the DEN payload, so the estimate is one histogram
            // pass — no encode probe, unlike the LZ-based GC schemes.
            Scheme::GcAns => {
                let mut hist = [0u64; 256];
                for v in dense.data() {
                    for b in v.to_le_bytes() {
                        hist[b as usize] += 1;
                    }
                }
                // +9 for the scheme tag and rows/cols wire header.
                toc_gc::ans::estimate_from_hist(&hist, dense.data().len() * 8) + 9
            }
            _ => self.encode_with(dense, opts).size_bytes(),
        }
    }

    /// Deserialize a batch previously produced by
    /// [`MatrixBatch::to_bytes`]. The scheme is identified by the tag byte.
    pub fn from_bytes(bytes: &[u8]) -> Result<AnyBatch, FormatError> {
        let (&tag, body) = bytes
            .split_first()
            .ok_or_else(|| FormatError::Corrupt("empty buffer".into()))?;
        Ok(match tag {
            0 => AnyBatch::Den(den::DenBatch::from_body(body)?),
            1 => AnyBatch::Csr(csr::CsrBatch::from_body(body)?),
            2 => AnyBatch::Cvi(cvi::CviBatch::from_body(body)?),
            3 => AnyBatch::Dvi(cvi::DviBatch::from_body(body)?),
            4 => AnyBatch::Cla(cla::ClaBatch::from_body(body)?),
            5 => AnyBatch::Gc(gcform::GcBatch::from_body(body, toc_gc::Codec::FastLz)?),
            6 => AnyBatch::Gc(gcform::GcBatch::from_body(body, toc_gc::Codec::Deflate)?),
            // Tags 7 (TOC) and 10 (TOC_VARINT) share the body layout but
            // must agree with the physical codec recorded inside it, so the
            // scheme identity survives a serialization round-trip
            // byte-identically.
            7 | 10 => {
                let t = tocform::TocFormat::from_body(body)?;
                let want = if tag == 7 {
                    toc_core::PhysicalCodec::BitPack
                } else {
                    toc_core::PhysicalCodec::Varint
                };
                if t.toc().codec() != want {
                    return Err(FormatError::Corrupt(format!(
                        "scheme tag {tag} does not match the batch's physical codec"
                    )));
                }
                AnyBatch::Toc(t)
            }
            8 => AnyBatch::TocSparse(tocform::TocSparse::from_body(body)?),
            9 => AnyBatch::TocSparseLogical(tocform::TocSparseLogical::from_body(body)?),
            11 => AnyBatch::Gc(gcform::GcBatch::from_body(body, toc_gc::Codec::Ans)?),
            got => {
                return Err(FormatError::WrongScheme {
                    expected: "any",
                    got,
                })
            }
        })
    }

    /// Whether `tag` names a known scheme (a valid first byte of
    /// [`MatrixBatch::to_bytes`]). The v2 container footer validates leaf
    /// scheme tags through this before touching any segment bytes.
    pub fn is_valid_tag(tag: u8) -> bool {
        Self::ALL.iter().any(|s| s.tag() == tag)
    }

    /// Serialization tag byte (first byte of [`MatrixBatch::to_bytes`]).
    pub fn tag(self) -> u8 {
        match self {
            Scheme::Den => 0,
            Scheme::Csr => 1,
            Scheme::Cvi => 2,
            Scheme::Dvi => 3,
            Scheme::Cla => 4,
            Scheme::Snappy => 5,
            Scheme::Gzip => 6,
            Scheme::Toc => 7,
            Scheme::TocSparse => 8,
            Scheme::TocSparseLogical => 9,
            Scheme::TocVarint => 10,
            Scheme::GcAns => 11,
        }
    }
}

/// Pick the scheme with the smallest estimated encoding of `dense` among
/// `candidates` (ties break toward the earlier candidate). CLA is judged
/// by its planner estimate rather than a full encode probe — see
/// [`Scheme::estimate_encoded_size`].
pub fn pick_scheme(dense: &DenseMatrix, candidates: &[Scheme], opts: &EncodeOptions) -> Scheme {
    assert!(!candidates.is_empty(), "no candidate schemes");
    candidates
        .iter()
        .copied()
        .min_by_key(|s| s.estimate_encoded_size(dense, opts))
        .unwrap()
}

/// A batch in any scheme (enum dispatch over [`MatrixBatch`]).
#[derive(Clone, Debug)]
pub enum AnyBatch {
    Den(den::DenBatch),
    Csr(csr::CsrBatch),
    Cvi(cvi::CviBatch),
    Dvi(cvi::DviBatch),
    Cla(cla::ClaBatch),
    Gc(gcform::GcBatch),
    Toc(tocform::TocFormat),
    TocSparse(tocform::TocSparse),
    TocSparseLogical(tocform::TocSparseLogical),
}

macro_rules! dispatch {
    ($self:expr, $b:ident => $e:expr) => {
        match $self {
            AnyBatch::Den($b) => $e,
            AnyBatch::Csr($b) => $e,
            AnyBatch::Cvi($b) => $e,
            AnyBatch::Dvi($b) => $e,
            AnyBatch::Cla($b) => $e,
            AnyBatch::Gc($b) => $e,
            AnyBatch::Toc($b) => $e,
            AnyBatch::TocSparse($b) => $e,
            AnyBatch::TocSparseLogical($b) => $e,
        }
    };
}

impl MatrixBatch for AnyBatch {
    fn rows(&self) -> usize {
        dispatch!(self, b => b.rows())
    }
    fn cols(&self) -> usize {
        dispatch!(self, b => b.cols())
    }
    fn size_bytes(&self) -> usize {
        dispatch!(self, b => b.size_bytes())
    }
    fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        dispatch!(self, b => b.matvec_into(v, out))
    }
    fn vecmat_into(&self, v: &[f64], out: &mut Vec<f64>) {
        dispatch!(self, b => b.vecmat_into(v, out))
    }
    fn matmat_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        dispatch!(self, b => b.matmat_into(m, out))
    }
    fn matmat_left_into(&self, m: &DenseMatrix, out: &mut DenseMatrix) {
        dispatch!(self, b => b.matmat_left_into(m, out))
    }
    fn decode_into(&self, out: &mut DenseMatrix) {
        dispatch!(self, b => b.decode_into(out))
    }
    fn decode_rows_into(&self, r0: usize, r1: usize, out: &mut DenseMatrix) {
        dispatch!(self, b => b.decode_rows_into(r0, r1, out))
    }
    fn matvec(&self, v: &[f64]) -> Vec<f64> {
        dispatch!(self, b => b.matvec(v))
    }
    fn vecmat(&self, v: &[f64]) -> Vec<f64> {
        dispatch!(self, b => b.vecmat(v))
    }
    fn matmat(&self, m: &DenseMatrix) -> DenseMatrix {
        dispatch!(self, b => b.matmat(m))
    }
    fn matmat_left(&self, m: &DenseMatrix) -> DenseMatrix {
        dispatch!(self, b => b.matmat_left(m))
    }
    fn decode(&self) -> DenseMatrix {
        dispatch!(self, b => b.decode())
    }
    fn matvec_into_ws(&self, v: &[f64], out: &mut Vec<f64>, ws: &mut ExecScratch) {
        dispatch!(self, b => b.matvec_into_ws(v, out, ws))
    }
    fn vecmat_into_ws(&self, v: &[f64], out: &mut Vec<f64>, ws: &mut ExecScratch) {
        dispatch!(self, b => b.vecmat_into_ws(v, out, ws))
    }
    fn matmat_into_ws(&self, m: &DenseMatrix, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        dispatch!(self, b => b.matmat_into_ws(m, out, ws))
    }
    fn matmat_left_into_ws(&self, m: &DenseMatrix, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        dispatch!(self, b => b.matmat_left_into_ws(m, out, ws))
    }
    fn decode_into_ws(&self, out: &mut DenseMatrix, ws: &mut ExecScratch) {
        dispatch!(self, b => b.decode_into_ws(out, ws))
    }
    fn scale(&mut self, c: f64) {
        dispatch!(self, b => b.scale(c))
    }
    fn to_bytes(&self) -> Vec<u8> {
        dispatch!(self, b => b.to_bytes())
    }
}

/// Upper bound on a claimed matrix dimension that has no byte backing in
/// the wire body (the free dimension of a zero-area batch). Legitimate
/// degenerate batches sit far below it; corrupted headers claiming 2^31+
/// rows/cols are rejected before any kernel allocates an output that
/// large.
pub(crate) const MAX_DEGENERATE_DIM: usize = 1 << 24;

/// Shared wire-format helpers for the format implementations.
pub(crate) mod wire {
    use super::FormatError;

    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64s(buf: &mut Vec<u8>, vals: &[f64]) {
        put_u32(buf, vals.len() as u32);
        for v in vals {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    pub fn put_u32s(buf: &mut Vec<u8>, vals: &[u32]) {
        put_u32(buf, vals.len() as u32);
        for v in vals {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    pub struct Rd<'a> {
        pub bytes: &'a [u8],
        pub pos: usize,
    }

    impl<'a> Rd<'a> {
        pub fn new(bytes: &'a [u8]) -> Self {
            Self { bytes, pos: 0 }
        }

        pub fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
            // `pos <= len` is an invariant, but `pos + n` could overflow
            // for adversarial `n`; bound-check without any arithmetic on
            // attacker-controlled values.
            if n > self.bytes.len() - self.pos {
                return Err(FormatError::Corrupt("truncated".into()));
            }
            let s = &self.bytes[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        pub fn u8(&mut self) -> Result<u8, FormatError> {
            Ok(self.take(1)?[0])
        }

        pub fn u32(&mut self) -> Result<u32, FormatError> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }

        pub fn u64(&mut self) -> Result<u64, FormatError> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }

        pub fn f64(&mut self) -> Result<f64, FormatError> {
            Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }

        /// Bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.bytes.len() - self.pos
        }

        pub fn f64s(&mut self) -> Result<Vec<f64>, FormatError> {
            let n = self.u32()? as usize;
            // Checked multiply instead of a heuristic plausibility bound:
            // `take` then rejects any count the remaining bytes can't back.
            let byte_len = n
                .checked_mul(8)
                .ok_or_else(|| FormatError::Corrupt("f64 count overflows".into()))?;
            let raw = self.take(byte_len)?;
            Ok(raw
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect())
        }

        pub fn u32s(&mut self) -> Result<Vec<u32>, FormatError> {
            let n = self.u32()? as usize;
            let byte_len = n
                .checked_mul(4)
                .ok_or_else(|| FormatError::Corrupt("u32 count overflows".into()))?;
            let raw = self.take(byte_len)?;
            Ok(raw
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect())
        }

        pub fn rest(&mut self) -> &'a [u8] {
            let s = &self.bytes[self.pos..];
            self.pos = self.bytes.len();
            s
        }

        pub fn done(&self) -> Result<(), FormatError> {
            if self.pos != self.bytes.len() {
                return Err(FormatError::Corrupt("trailing bytes".into()));
            }
            Ok(())
        }
    }
}
