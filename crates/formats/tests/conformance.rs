//! Cross-format kernel conformance suite: one parameterized harness that
//! checks every scheme (plus both CLA planners) against the dense
//! reference for every kernel × API family on a grid of adversarial
//! shapes. This is the differential-testing guard against silent
//! divergence between the scheme implementations — in the spirit of
//! pcodec's codec conformance tests.
//!
//! Axes:
//! * **encoder** — the 11 `Scheme` tags, CLA with the greedy planner, and
//!   CLA with a deliberately tiny sample (exercising the inexact-estimate
//!   materialization fallbacks);
//! * **operation** — matvec, vecmat, matmat, matmat_left, decode;
//! * **API family** — allocating, `*_into`, and `*_into_ws` (one shared
//!   `ExecScratch` and one set of output buffers reused across *all*
//!   encoders and shapes, so stale-state bugs between calls surface too);
//! * **shape** — 0 rows, 1 row, wide, tall, all-zero, single-distinct-
//!   value columns, and a mixed small-pool batch.
//!
//! Run with `-- --nocapture` to see the per-encoder timing summary (the
//! CI jobs do, so encode-cost regressions are visible in logs).

use std::time::{Duration, Instant};
use toc_formats::cla::{ClaBatch, ClaOptions, ClaPlanner};
use toc_formats::{AnyBatch, ExecScratch, MatrixBatch, Scheme};
use toc_linalg::dense::max_abs_diff_vec;
use toc_linalg::DenseMatrix;

mod common;
use common::pool_matrix;

const TOL: f64 = 1e-9;

/// The shape grid: every case a scheme has historically gotten wrong
/// somewhere (empty batches, degenerate dictionaries, extreme aspect
/// ratios).
fn shape_grid() -> Vec<(&'static str, DenseMatrix)> {
    let single_distinct = {
        // Each column holds one value everywhere (some zero): dictionary
        // cardinality 1 per column, the planner's best case.
        let mut m = DenseMatrix::zeros(12, 8);
        for c in 0..8 {
            let v = if c % 3 == 0 { 0.0 } else { c as f64 * 0.75 };
            for r in 0..12 {
                m.set(r, c, v);
            }
        }
        m
    };
    vec![
        ("zero_rows", DenseMatrix::zeros(0, 5)),
        ("zero_cols", DenseMatrix::zeros(5, 0)),
        ("one_row", pool_matrix(1, 7, 0.8, 11)),
        ("wide", pool_matrix(3, 40, 0.5, 12)),
        ("tall", pool_matrix(40, 3, 0.5, 13)),
        ("all_zero", DenseMatrix::zeros(10, 6)),
        ("single_distinct_cols", single_distinct),
        ("mixed", pool_matrix(30, 20, 0.3, 14)),
    ]
}

type Encoder = (String, Box<dyn Fn(&DenseMatrix) -> AnyBatch>);

/// All schemes plus the CLA planner variants.
fn encoders() -> Vec<Encoder> {
    let mut out: Vec<Encoder> = Scheme::ALL
        .iter()
        .map(|&s| {
            let f: Box<dyn Fn(&DenseMatrix) -> AnyBatch> = Box::new(move |a| s.encode(a));
            (s.name().to_string(), f)
        })
        .collect();
    out.push((
        "CLA(greedy)".into(),
        Box::new(|a| AnyBatch::Cla(ClaBatch::encode_with(a, &ClaOptions::greedy()))),
    ));
    out.push((
        "CLA(sample=2)".into(),
        Box::new(|a| {
            AnyBatch::Cla(ClaBatch::encode_with(
                a,
                &ClaOptions {
                    planner: ClaPlanner::SampleMerge,
                    sample_rows: 2,
                },
            ))
        }),
    ));
    out
}

/// Deterministic non-trivial vector of length `n`.
fn test_vec(n: usize, phase: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 7 + phase * 13) % 9) as f64 * 0.5 - 2.0)
        .collect()
}

#[test]
fn every_scheme_op_and_api_family_matches_dense() {
    // One scratch + one set of output buffers shared across the whole
    // grid: the `*_into` contract is "clear and refill", so reuse across
    // shapes and schemes must never leak state.
    let mut ws = ExecScratch::default();
    let mut out_v: Vec<f64> = Vec::new();
    let mut out_m = DenseMatrix::default();
    let mut timings: Vec<(String, Duration)> = Vec::new();

    for (enc_name, encode) in encoders() {
        let t0 = Instant::now();
        for (shape, a) in shape_grid() {
            let ctx = format!("{enc_name} on {shape}");
            let (rows, cols) = (a.rows(), a.cols());
            let v = test_vec(cols, 1);
            let w = test_vec(rows, 2);
            let mr = pool_matrix(cols, 3, 0.9, 21);
            let ml = pool_matrix(3, rows, 0.9, 22);

            let b = encode(&a);
            assert_eq!(b.rows(), rows, "{ctx}: rows");
            assert_eq!(b.cols(), cols, "{ctx}: cols");
            assert!(b.size_bytes() > 0, "{ctx}: size_bytes");

            // decode — all three families are exact (lossless codecs).
            assert_eq!(b.decode(), a, "{ctx}: decode");
            b.decode_into(&mut out_m);
            assert_eq!(out_m, a, "{ctx}: decode_into");
            b.decode_into_ws(&mut out_m, &mut ws);
            assert_eq!(out_m, a, "{ctx}: decode_into_ws");

            // matvec.
            let want = a.matvec(&v);
            assert!(
                max_abs_diff_vec(&b.matvec(&v), &want) < TOL,
                "{ctx}: matvec"
            );
            b.matvec_into(&v, &mut out_v);
            assert!(max_abs_diff_vec(&out_v, &want) < TOL, "{ctx}: matvec_into");
            b.matvec_into_ws(&v, &mut out_v, &mut ws);
            assert!(
                max_abs_diff_vec(&out_v, &want) < TOL,
                "{ctx}: matvec_into_ws"
            );

            // vecmat.
            let want = a.vecmat(&w);
            assert!(
                max_abs_diff_vec(&b.vecmat(&w), &want) < TOL,
                "{ctx}: vecmat"
            );
            b.vecmat_into(&w, &mut out_v);
            assert!(max_abs_diff_vec(&out_v, &want) < TOL, "{ctx}: vecmat_into");
            b.vecmat_into_ws(&w, &mut out_v, &mut ws);
            assert!(
                max_abs_diff_vec(&out_v, &want) < TOL,
                "{ctx}: vecmat_into_ws"
            );

            // matmat.
            let want = a.matmat(&mr);
            assert!(b.matmat(&mr).max_abs_diff(&want) < TOL, "{ctx}: matmat");
            b.matmat_into(&mr, &mut out_m);
            assert!(out_m.max_abs_diff(&want) < TOL, "{ctx}: matmat_into");
            b.matmat_into_ws(&mr, &mut out_m, &mut ws);
            assert!(out_m.max_abs_diff(&want) < TOL, "{ctx}: matmat_into_ws");

            // matmat_left.
            let want = a.matmat_left(&ml);
            assert!(
                b.matmat_left(&ml).max_abs_diff(&want) < TOL,
                "{ctx}: matmat_left"
            );
            b.matmat_left_into(&ml, &mut out_m);
            assert!(out_m.max_abs_diff(&want) < TOL, "{ctx}: matmat_left_into");
            b.matmat_left_into_ws(&ml, &mut out_m, &mut ws);
            assert!(
                out_m.max_abs_diff(&want) < TOL,
                "{ctx}: matmat_left_into_ws"
            );

            // Serialization survives the same grid.
            let restored = Scheme::from_bytes(&b.to_bytes())
                .unwrap_or_else(|e| panic!("{ctx}: from_bytes {e}"));
            assert_eq!(restored.decode(), a, "{ctx}: serialized decode");
        }
        timings.push((enc_name, t0.elapsed()));
    }

    println!("conformance timing (encode + 5 ops x 3 families x 7 shapes):");
    for (name, d) in &timings {
        println!("  {name:<24} {d:>10.1?}");
    }
}

#[test]
fn scale_conforms_on_the_shape_grid() {
    for (enc_name, encode) in encoders() {
        for (shape, a) in shape_grid() {
            let mut want = a.clone();
            want.scale(-0.75);
            let mut b = encode(&a);
            b.scale(-0.75);
            assert!(
                b.decode().max_abs_diff(&want) < TOL,
                "{enc_name} on {shape}: scale"
            );
        }
    }
}

#[test]
fn planner_ratio_snapshot_for_logs() {
    // Not an assertion-heavy test: prints the greedy-vs-sampled CLA
    // ratios on a correlated matrix so CI logs (--nocapture) surface
    // ratio regressions at a glance. The strict ordering assertion lives
    // in toc-data's `sampled_cla_planner_beats_greedy_on_correlated_wide_matrix`.
    let mut m = DenseMatrix::zeros(512, 32);
    for r in 0..512 {
        for c in 0..16 {
            let v = (((r * 31 + c * 17) % 97) % 8) as f64;
            m.set(r, c, v);
            m.set(r, c + 16, v + 10.0 * (c + 1) as f64);
        }
    }
    let den = m.den_size_bytes() as f64;
    for (name, opts) in [
        ("greedy", ClaOptions::greedy()),
        ("sample", ClaOptions::default()),
    ] {
        let t0 = Instant::now();
        let b = ClaBatch::encode_with(&m, &opts);
        println!(
            "cla planner {name:<7} ratio {:>5.1}x  groups {:>3}  encode {:.1?}",
            den / b.size_bytes() as f64,
            b.num_groups(),
            t0.elapsed()
        );
        assert_eq!(b.decode(), m, "{name}");
    }
}
