//! Serialization round-trip tests over every scheme (paper set, ablations
//! and the varint extension), and equivalence tests asserting the
//! allocating and `*_into`/`*_into_ws` kernel API families produce
//! bit-identical results.

use proptest::prelude::*;
use toc_formats::{AnyBatch, ExecScratch, MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;

const ALL_SCHEMES: [Scheme; 11] = [
    Scheme::Den,
    Scheme::Csr,
    Scheme::Cvi,
    Scheme::Dvi,
    Scheme::Cla,
    Scheme::Snappy,
    Scheme::Gzip,
    Scheme::Toc,
    Scheme::TocSparse,
    Scheme::TocSparseLogical,
    Scheme::TocVarint,
];

fn pool_matrix(rows: usize, cols: usize, density: f64, seed: u64) -> DenseMatrix {
    let pool = [0.5, 1.5, -2.0, 3.25, 0.25];
    let mut m = DenseMatrix::zeros(rows, cols);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for r in 0..rows {
        for c in 0..cols {
            if (next() % 1000) as f64 / 1000.0 < density {
                m.set(r, c, pool[(next() % 5) as usize]);
            }
        }
    }
    m
}

/// `to_bytes -> Scheme::from_bytes -> to_bytes` must be byte-identical for
/// every scheme — in particular TOC_VARINT (tag 10) must keep its scheme
/// identity instead of collapsing into plain TOC (tag 7).
#[test]
fn serialization_roundtrip_is_byte_identical_for_every_scheme() {
    for (rows, cols, density) in [(40, 25, 0.35), (10, 8, 1.0), (20, 30, 0.0)] {
        let a = pool_matrix(rows, cols, density, 99);
        for scheme in ALL_SCHEMES {
            let b = scheme.encode(&a);
            let bytes = b.to_bytes();
            assert_eq!(bytes[0], scheme.tag(), "{} first byte", scheme.name());
            let restored =
                Scheme::from_bytes(&bytes).unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
            assert_eq!(restored.decode(), a, "{} decode", scheme.name());
            assert_eq!(
                restored.to_bytes(),
                bytes,
                "{} re-serialization",
                scheme.name()
            );
        }
    }
}

#[test]
fn varint_tag_mismatch_is_rejected() {
    let a = pool_matrix(12, 9, 0.5, 3);
    // A varint body under the bit-pack tag (and vice versa) must error, not
    // silently reinterpret.
    let mut varint_bytes = Scheme::TocVarint.encode(&a).to_bytes();
    assert_eq!(varint_bytes[0], Scheme::TocVarint.tag());
    varint_bytes[0] = Scheme::Toc.tag();
    assert!(Scheme::from_bytes(&varint_bytes).is_err());

    let mut toc_bytes = Scheme::Toc.encode(&a).to_bytes();
    assert_eq!(toc_bytes[0], Scheme::Toc.tag());
    toc_bytes[0] = Scheme::TocVarint.tag();
    assert!(Scheme::from_bytes(&toc_bytes).is_err());
}

/// Exercise the whole `*_into` family against the allocating family on one
/// batch, asserting bit-identical outputs. Buffers are deliberately dirty
/// (pre-filled with garbage of the wrong size) to prove the kernels reset
/// them.
fn assert_into_family_matches(b: &AnyBatch, a: &DenseMatrix, name: &str) {
    let rows = a.rows();
    let cols = a.cols();
    let v: Vec<f64> = (0..cols).map(|i| ((i % 7) as f64) - 3.0).collect();
    let w: Vec<f64> = (0..rows).map(|i| ((i % 5) as f64) * 0.5 - 1.0).collect();
    let mr = pool_matrix(cols, 6, 0.8, 7);
    let ml = pool_matrix(5, rows, 0.8, 9);

    let mut out_v = vec![f64::NAN; 3];
    let mut out_m = DenseMatrix::zeros(1, 1);
    let mut ws = ExecScratch::default();

    b.matvec_into(&v, &mut out_v);
    assert_eq!(out_v, b.matvec(&v), "{name} matvec_into");
    b.matvec_into_ws(&v, &mut out_v, &mut ws);
    assert_eq!(out_v, b.matvec(&v), "{name} matvec_into_ws");

    b.vecmat_into(&w, &mut out_v);
    assert_eq!(out_v, b.vecmat(&w), "{name} vecmat_into");
    b.vecmat_into_ws(&w, &mut out_v, &mut ws);
    assert_eq!(out_v, b.vecmat(&w), "{name} vecmat_into_ws");

    b.matmat_into(&mr, &mut out_m);
    assert_eq!(out_m, b.matmat(&mr), "{name} matmat_into");
    b.matmat_into_ws(&mr, &mut out_m, &mut ws);
    assert_eq!(out_m, b.matmat(&mr), "{name} matmat_into_ws");

    b.matmat_left_into(&ml, &mut out_m);
    assert_eq!(out_m, b.matmat_left(&ml), "{name} matmat_left_into");
    b.matmat_left_into_ws(&ml, &mut out_m, &mut ws);
    assert_eq!(out_m, b.matmat_left(&ml), "{name} matmat_left_into_ws");

    b.decode_into(&mut out_m);
    assert_eq!(out_m, *a, "{name} decode_into");
    b.decode_into_ws(&mut out_m, &mut ws);
    assert_eq!(out_m, *a, "{name} decode_into_ws");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn into_and_allocating_apis_are_bit_identical(
        rows in 1usize..24,
        cols in 1usize..18,
        density in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let a = pool_matrix(rows, cols, density, seed);
        for scheme in ALL_SCHEMES {
            let b = scheme.encode(&a);
            assert_into_family_matches(&b, &a, scheme.name());
        }
    }

    #[test]
    fn workspace_reuse_across_mixed_shapes_and_schemes(
        seed in 0u64..500,
    ) {
        // One scratch serving many batches of different shapes/schemes must
        // never leak state between calls.
        let mut ws = ExecScratch::default();
        let mut out = Vec::new();
        for (i, &(rows, cols)) in [(5usize, 17usize), (30, 4), (12, 12), (1, 9)].iter().enumerate() {
            let a = pool_matrix(rows, cols, 0.6, seed ^ (i as u64) << 7);
            let v: Vec<f64> = (0..cols).map(|c| (c % 3) as f64 - 1.0).collect();
            for scheme in [Scheme::Toc, Scheme::Gzip, Scheme::Cla, Scheme::TocVarint] {
                let b = scheme.encode(&a);
                b.matvec_into_ws(&v, &mut out, &mut ws);
                prop_assert_eq!(&out, &b.matvec(&v), "{} {}x{}", scheme.name(), rows, cols);
            }
        }
    }
}
