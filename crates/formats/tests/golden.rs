//! Golden wire fixtures: small serialized containers for every scheme,
//! checked into `tests/golden/`. Each fixture must (a) still parse, (b)
//! survive `from_bytes` → `to_bytes` byte-identically, and (c) decode to
//! the matrix it was generated from — so future encoder changes can
//! change what *new* containers look like, but can never silently break
//! *old* spill files or `.tocz` archives.
//!
//! Regenerate after an intentional wire-format change with:
//!
//! ```text
//! TOC_BLESS=1 cargo test -p toc-formats --test golden
//! ```
//!
//! (and say so in the commit message: blessing rewrites history for every
//! reader of existing containers).

use std::path::PathBuf;
use toc_formats::{MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;

const ALL_SCHEMES: [(Scheme, &str); 12] = [
    (Scheme::Den, "den"),
    (Scheme::Csr, "csr"),
    (Scheme::Cvi, "cvi"),
    (Scheme::Dvi, "dvi"),
    (Scheme::Cla, "cla"),
    (Scheme::Snappy, "snappy"),
    (Scheme::Gzip, "gzip"),
    (Scheme::Toc, "toc"),
    (Scheme::TocSparse, "toc_sparse"),
    (Scheme::TocSparseLogical, "toc_sparse_logical"),
    (Scheme::TocVarint, "toc_varint"),
    (Scheme::GcAns, "ans"),
];

/// The fixture matrix. Frozen: changing it invalidates every fixture, so
/// don't — add a second generation instead.
fn fixture_matrix() -> DenseMatrix {
    let pool = [0.5, 1.5, -2.0, 3.25];
    let mut m = DenseMatrix::zeros(14, 9);
    let mut state = 7u64.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for r in 0..14 {
        for c in 0..9 {
            if next() % 2 == 0 {
                m.set(r, c, pool[(next() % 4) as usize]);
            }
        }
    }
    m
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The name-paired fixture list must track `Scheme::ALL`: adding a
/// variant without a golden fixture fails here, not silently.
#[test]
fn fixture_list_covers_every_scheme() {
    assert_eq!(ALL_SCHEMES.len(), Scheme::ALL.len());
    for (i, (s, _)) in ALL_SCHEMES.iter().enumerate() {
        assert_eq!(*s, Scheme::ALL[i]);
    }
}

#[test]
fn golden_fixtures_parse_and_roundtrip_byte_identically() {
    let a = fixture_matrix();
    let bless = std::env::var_os("TOC_BLESS").is_some();
    let dir = golden_dir();
    if bless {
        std::fs::create_dir_all(&dir).unwrap();
    }
    for (scheme, name) in ALL_SCHEMES {
        let path = dir.join(format!("{name}.bin"));
        if bless {
            std::fs::write(&path, scheme.encode(&a).to_bytes()).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\n(missing fixture? regenerate with TOC_BLESS=1)",
                path.display()
            )
        });
        assert_eq!(bytes[0], scheme.tag(), "{name}: tag byte");
        let batch = Scheme::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{name}: old container no longer parses: {e}"));
        assert_eq!(
            batch.to_bytes(),
            bytes,
            "{name}: from_bytes -> to_bytes is not byte-identical"
        );
        assert_eq!(batch.rows(), a.rows(), "{name}");
        assert_eq!(batch.cols(), a.cols(), "{name}");
        assert_eq!(batch.decode(), a, "{name}: decoded payload drifted");
    }
    if bless {
        std::fs::write(
            dir.join("checksum.txt"),
            format!("{}\n", matrix_checksum(&a)),
        )
        .unwrap();
    }
}

fn matrix_checksum(a: &DenseMatrix) -> u64 {
    a.data().iter().enumerate().fold(0u64, |acc, (i, v)| {
        acc.wrapping_mul(31).wrapping_add(v.to_bits() ^ i as u64)
    })
}

/// The fixture generator itself must stay frozen: this pins its output so
/// an accidental edit fails here rather than via confusing decode
/// mismatches above.
#[test]
fn fixture_matrix_is_frozen() {
    let a = fixture_matrix();
    let checksum = matrix_checksum(&a);
    assert_eq!(a.rows(), 14);
    assert_eq!(a.cols(), 9);
    assert_eq!(checksum, {
        // Recorded once at fixture-generation time.
        let recorded = std::fs::read_to_string(golden_dir().join("checksum.txt"))
            .expect("tests/golden/checksum.txt (regenerate with TOC_BLESS=1)");
        recorded.trim().parse::<u64>().unwrap()
    });
}
