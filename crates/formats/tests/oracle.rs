//! Cross-format oracle tests: every scheme must (a) roundtrip losslessly,
//! (b) agree with the dense reference on all five matrix operations, and
//! (c) survive serialization.

use proptest::prelude::*;
use toc_formats::{AnyBatch, MatrixBatch, Scheme};
use toc_linalg::dense::max_abs_diff_vec;
use toc_linalg::DenseMatrix;

mod common;
use common::pool_matrix;

#[test]
fn every_scheme_roundtrips_and_matches_oracle() {
    for (rows, cols, density) in [(30, 20, 0.3), (12, 8, 1.0), (25, 40, 0.05), (10, 3, 0.0)] {
        let a = pool_matrix(rows, cols, density, 42);
        let v: Vec<f64> = (0..cols).map(|i| (i % 5) as f64 - 2.0).collect();
        let w: Vec<f64> = (0..rows).map(|i| (i % 3) as f64 * 0.5).collect();
        let mr = pool_matrix(cols, 6, 0.8, 7);
        let ml = pool_matrix(5, rows, 0.8, 9);
        let want_mv = a.matvec(&v);
        let want_vm = a.vecmat(&w);
        let want_mm = a.matmat(&mr);
        let want_mml = a.matmat_left(&ml);
        for scheme in Scheme::ALL {
            let b = scheme.encode(&a);
            assert_eq!(b.rows(), rows, "{}", scheme.name());
            assert_eq!(b.cols(), cols, "{}", scheme.name());
            assert_eq!(b.decode(), a, "{} decode", scheme.name());
            assert!(
                max_abs_diff_vec(&b.matvec(&v), &want_mv) < 1e-9,
                "{} matvec",
                scheme.name()
            );
            assert!(
                max_abs_diff_vec(&b.vecmat(&w), &want_vm) < 1e-9,
                "{} vecmat",
                scheme.name()
            );
            assert!(
                b.matmat(&mr).max_abs_diff(&want_mm) < 1e-9,
                "{} matmat",
                scheme.name()
            );
            assert!(
                b.matmat_left(&ml).max_abs_diff(&want_mml) < 1e-9,
                "{} matmat_left",
                scheme.name()
            );
        }
    }
}

#[test]
fn every_scheme_serializes() {
    let a = pool_matrix(20, 15, 0.4, 5);
    for scheme in Scheme::ALL {
        let b = scheme.encode(&a);
        let bytes = b.to_bytes();
        let restored = Scheme::from_bytes(&bytes).unwrap_or_else(|e| {
            panic!("{}: {e}", scheme.name());
        });
        assert_eq!(restored.decode(), a, "{}", scheme.name());
    }
}

#[test]
fn scale_is_consistent_everywhere() {
    let a = pool_matrix(15, 10, 0.5, 11);
    let mut want = a.clone();
    want.scale(-1.75);
    for scheme in Scheme::ALL {
        let mut b = scheme.encode(&a);
        b.scale(-1.75);
        assert!(b.decode().max_abs_diff(&want) < 1e-12, "{}", scheme.name());
    }
}

#[test]
fn compression_ratio_ordering_on_redundant_batches() {
    // A moderately sparse batch with heavy cross-row repetition, the TOC
    // sweet spot: TOC must beat CSR/CVI/DVI and be competitive with GC.
    let motifs: Vec<Vec<f64>> = (0..6)
        .map(|k| {
            (0..80)
                .map(|c| {
                    if (c + k) % 4 == 0 {
                        ((c % 3) as f64) + 1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    let rows: Vec<Vec<f64>> = (0..250).map(|r| motifs[r % 6].clone()).collect();
    let a = DenseMatrix::from_rows(rows);
    let size = |s: Scheme| s.encode(&a).size_bytes() as f64;
    let den = size(Scheme::Den);
    let ratio = |s: Scheme| den / size(s);
    assert!(
        ratio(Scheme::Toc) > ratio(Scheme::Csr),
        "TOC must beat CSR here"
    );
    assert!(
        ratio(Scheme::Toc) > ratio(Scheme::Cvi),
        "TOC must beat CVI here"
    );
    assert!(
        ratio(Scheme::Toc) > ratio(Scheme::Dvi),
        "TOC must beat DVI here"
    );
    assert!(
        ratio(Scheme::Toc) > 10.0,
        "TOC ratio {}",
        ratio(Scheme::Toc)
    );
}

#[test]
fn mismatched_tag_is_an_error() {
    assert!(Scheme::from_bytes(&[]).is_err());
    assert!(Scheme::from_bytes(&[99, 0, 0]).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_all_schemes_roundtrip(
        rows in 1usize..20,
        cols in 1usize..16,
        density in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let a = pool_matrix(rows, cols, density, seed);
        for scheme in Scheme::ALL {
            let b = scheme.encode(&a);
            prop_assert_eq!(b.decode(), a.clone(), "{}", scheme.name());
            prop_assert_eq!(b.size_bytes() > 0, true);
        }
    }

    #[test]
    fn prop_from_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(b) = Scheme::from_bytes(&bytes) {
            let _ = b.rows();
            let _ = b.size_bytes();
        }
    }

    /// Structured mutations of *valid* containers: random byte flips at
    /// random positions (random bytes from 0..200 almost never get past
    /// the tag byte; this starts from well-formed containers so the
    /// deeper parse paths get fuzzed too).
    #[test]
    fn prop_mutated_valid_containers_never_panic(
        scheme_idx in 0usize..Scheme::ALL.len(),
        seed in 0u64..500,
        flips in prop::collection::vec((0usize..4096, 0u8..8), 1..4),
    ) {
        let scheme = Scheme::ALL[scheme_idx];
        let a = pool_matrix(11, 7, 0.5, seed);
        let mut bytes = scheme.encode(&a).to_bytes();
        for (pos, bit) in flips {
            let n = bytes.len();
            bytes[pos % n] ^= 1 << bit;
        }
        if let Ok(b) = Scheme::from_bytes(&bytes) {
            // Accepted mutants must still be safe to use.
            exercise_accepted_mutant(&b);
        }
    }
}

/// Use an accepted mutant the way a reader would, without tripping the
/// one *by-design* hazard: some formats self-describe a dimension (width
/// for the sparse encodings; either dimension when the matrix has zero
/// area), so a flipped high bit can yield a legitimate, astronomically
/// large claimed shape whose kernel *outputs* would allocate that many
/// doubles. That is an inherent property of the shape, not a parser bug —
/// so kernels and dense decode are only exercised at sane dimensions.
fn exercise_accepted_mutant(b: &AnyBatch) {
    let _ = b.size_bytes();
    let _ = b.to_bytes();
    let sane = |n: usize| n <= 1 << 20;
    if sane(b.cols()) && sane(b.rows()) {
        let _ = b.matvec(&vec![1.0; b.cols()]);
    }
    if b.rows().checked_mul(b.cols()).is_some_and(|n| n <= 1 << 22) {
        let _ = b.decode();
    }
}

/// Every strict truncation of a valid container must be rejected with an
/// error (never accepted, never a panic): all wire formats carry explicit
/// section lengths and a trailing-bytes check, so missing bytes are
/// always detectable.
#[test]
fn truncated_containers_always_error() {
    let a = pool_matrix(13, 8, 0.5, 77);
    for scheme in Scheme::ALL {
        let good = scheme.encode(&a).to_bytes();
        for len in 0..good.len() {
            assert!(
                Scheme::from_bytes(&good[..len]).is_err(),
                "{}: truncation to {len}/{} bytes accepted",
                scheme.name(),
                good.len()
            );
        }
    }
}

/// Single-byte flips of the *detectable* header fields must be rejected:
/// those fields are cross-checked against the payload during parsing
/// (tag/codec consistency, section-length arithmetic, offset-table
/// shapes). Fields a format genuinely cannot cross-check are excluded
/// with a reason:
///
/// * sparse formats (CSR/CVI/CLA/TOC*) self-describe their column count —
///   a larger `cols` is a valid wider matrix, not corruption;
/// * `TOC_SPARSE_AND_LOGICAL`'s leading `logical_size` is reporting
///   metadata, constrained by nothing;
/// * the GC formats' `rows`/`cols` *are* checked (against the
///   decompressed payload length), so they are included.
///
/// Flips outside these ranges only need to never panic (tests below).
#[test]
#[allow(clippy::single_range_in_vec_init)] // the vecs hold byte *ranges*, not range contents
fn header_field_flips_always_error() {
    let a = pool_matrix(13, 8, 0.5, 77);
    for scheme in Scheme::ALL {
        let good = scheme.encode(&a).to_bytes();
        let ranges: Vec<std::ops::Range<usize>> = match scheme {
            // tag, rows, cols — cols is cross-checked (DEN: payload
            // length; DVI: rows*cols == index count; GC: decompressed
            // payload length; CLA: groups must partition the columns).
            Scheme::Den
            | Scheme::Dvi
            | Scheme::Snappy
            | Scheme::Gzip
            | Scheme::GcAns
            | Scheme::Cla => {
                vec![0..9]
            }
            // tag, rows only (cols is self-describing).
            Scheme::Csr | Scheme::Cvi | Scheme::TocSparse => vec![0..5],
            // tag, TOC magic, version, codec (cross-checked against the
            // scheme tag), padding (must be zero), rows.
            Scheme::Toc | Scheme::TocVarint => vec![0..13],
            // tag; then skip logical_size (1..5); magic, version (5..10);
            // skip the codec byte (no tag to cross-check against); pad +
            // rows (11..17).
            Scheme::TocSparseLogical => vec![0..1, 5..10, 11..17],
        };
        for range in ranges {
            for pos in range {
                for bit in 0..8 {
                    let mut b = good.clone();
                    b[pos] ^= 1 << bit;
                    assert!(
                        Scheme::from_bytes(&b).is_err(),
                        "{}: flipping bit {bit} of header byte {pos} was accepted",
                        scheme.name()
                    );
                }
            }
        }
    }
}

#[test]
fn single_byte_flips_never_panic_exhaustively() {
    // Deterministic exhaustive sweep (the proptest samples randomly):
    // every byte, two bit positions, every scheme.
    let a = pool_matrix(9, 6, 0.6, 5);
    for scheme in Scheme::ALL {
        let good = scheme.encode(&a).to_bytes();
        for pos in 0..good.len() {
            for mask in [0x01u8, 0x80u8] {
                let mut b = good.clone();
                b[pos] ^= mask;
                if let Ok(batch) = Scheme::from_bytes(&b) {
                    exercise_accepted_mutant(&batch);
                }
            }
        }
    }
}

#[test]
fn anybatch_is_object_safe_through_trait() {
    let a = pool_matrix(8, 6, 0.5, 1);
    let batches: Vec<AnyBatch> = Scheme::ALL.iter().map(|s| s.encode(&a)).collect();
    let total: usize = batches.iter().map(|b| b.size_bytes()).sum();
    assert!(total > 0);
}
