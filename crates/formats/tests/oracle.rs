//! Cross-format oracle tests: every scheme must (a) roundtrip losslessly,
//! (b) agree with the dense reference on all five matrix operations, and
//! (c) survive serialization.

use proptest::prelude::*;
use toc_formats::{AnyBatch, MatrixBatch, Scheme};
use toc_linalg::dense::max_abs_diff_vec;
use toc_linalg::DenseMatrix;

const ALL_SCHEMES: [Scheme; 11] = [
    Scheme::Den,
    Scheme::Csr,
    Scheme::Cvi,
    Scheme::Dvi,
    Scheme::Cla,
    Scheme::Snappy,
    Scheme::Gzip,
    Scheme::Toc,
    Scheme::TocSparse,
    Scheme::TocSparseLogical,
    Scheme::TocVarint,
];

fn pool_matrix(rows: usize, cols: usize, density: f64, seed: u64) -> DenseMatrix {
    // Deterministic synthetic matrix with a small value pool.
    let pool = [0.5, 1.5, -2.0, 3.25];
    let mut m = DenseMatrix::zeros(rows, cols);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for r in 0..rows {
        for c in 0..cols {
            if (next() % 1000) as f64 / 1000.0 < density {
                m.set(r, c, pool[(next() % 4) as usize]);
            }
        }
    }
    m
}

#[test]
fn every_scheme_roundtrips_and_matches_oracle() {
    for (rows, cols, density) in [(30, 20, 0.3), (12, 8, 1.0), (25, 40, 0.05), (10, 3, 0.0)] {
        let a = pool_matrix(rows, cols, density, 42);
        let v: Vec<f64> = (0..cols).map(|i| (i % 5) as f64 - 2.0).collect();
        let w: Vec<f64> = (0..rows).map(|i| (i % 3) as f64 * 0.5).collect();
        let mr = pool_matrix(cols, 6, 0.8, 7);
        let ml = pool_matrix(5, rows, 0.8, 9);
        let want_mv = a.matvec(&v);
        let want_vm = a.vecmat(&w);
        let want_mm = a.matmat(&mr);
        let want_mml = a.matmat_left(&ml);
        for scheme in ALL_SCHEMES {
            let b = scheme.encode(&a);
            assert_eq!(b.rows(), rows, "{}", scheme.name());
            assert_eq!(b.cols(), cols, "{}", scheme.name());
            assert_eq!(b.decode(), a, "{} decode", scheme.name());
            assert!(
                max_abs_diff_vec(&b.matvec(&v), &want_mv) < 1e-9,
                "{} matvec",
                scheme.name()
            );
            assert!(
                max_abs_diff_vec(&b.vecmat(&w), &want_vm) < 1e-9,
                "{} vecmat",
                scheme.name()
            );
            assert!(
                b.matmat(&mr).max_abs_diff(&want_mm) < 1e-9,
                "{} matmat",
                scheme.name()
            );
            assert!(
                b.matmat_left(&ml).max_abs_diff(&want_mml) < 1e-9,
                "{} matmat_left",
                scheme.name()
            );
        }
    }
}

#[test]
fn every_scheme_serializes() {
    let a = pool_matrix(20, 15, 0.4, 5);
    for scheme in ALL_SCHEMES {
        let b = scheme.encode(&a);
        let bytes = b.to_bytes();
        let restored = Scheme::from_bytes(&bytes).unwrap_or_else(|e| {
            panic!("{}: {e}", scheme.name());
        });
        assert_eq!(restored.decode(), a, "{}", scheme.name());
    }
}

#[test]
fn scale_is_consistent_everywhere() {
    let a = pool_matrix(15, 10, 0.5, 11);
    let mut want = a.clone();
    want.scale(-1.75);
    for scheme in ALL_SCHEMES {
        let mut b = scheme.encode(&a);
        b.scale(-1.75);
        assert!(b.decode().max_abs_diff(&want) < 1e-12, "{}", scheme.name());
    }
}

#[test]
fn compression_ratio_ordering_on_redundant_batches() {
    // A moderately sparse batch with heavy cross-row repetition, the TOC
    // sweet spot: TOC must beat CSR/CVI/DVI and be competitive with GC.
    let motifs: Vec<Vec<f64>> = (0..6)
        .map(|k| {
            (0..80)
                .map(|c| {
                    if (c + k) % 4 == 0 {
                        ((c % 3) as f64) + 1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    let rows: Vec<Vec<f64>> = (0..250).map(|r| motifs[r % 6].clone()).collect();
    let a = DenseMatrix::from_rows(rows);
    let size = |s: Scheme| s.encode(&a).size_bytes() as f64;
    let den = size(Scheme::Den);
    let ratio = |s: Scheme| den / size(s);
    assert!(
        ratio(Scheme::Toc) > ratio(Scheme::Csr),
        "TOC must beat CSR here"
    );
    assert!(
        ratio(Scheme::Toc) > ratio(Scheme::Cvi),
        "TOC must beat CVI here"
    );
    assert!(
        ratio(Scheme::Toc) > ratio(Scheme::Dvi),
        "TOC must beat DVI here"
    );
    assert!(
        ratio(Scheme::Toc) > 10.0,
        "TOC ratio {}",
        ratio(Scheme::Toc)
    );
}

#[test]
fn mismatched_tag_is_an_error() {
    assert!(Scheme::from_bytes(&[]).is_err());
    assert!(Scheme::from_bytes(&[99, 0, 0]).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_all_schemes_roundtrip(
        rows in 1usize..20,
        cols in 1usize..16,
        density in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let a = pool_matrix(rows, cols, density, seed);
        for scheme in ALL_SCHEMES {
            let b = scheme.encode(&a);
            prop_assert_eq!(b.decode(), a.clone(), "{}", scheme.name());
            prop_assert_eq!(b.size_bytes() > 0, true);
        }
    }

    #[test]
    fn prop_from_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(b) = Scheme::from_bytes(&bytes) {
            let _ = b.rows();
            let _ = b.size_bytes();
        }
    }
}

#[test]
fn anybatch_is_object_safe_through_trait() {
    let a = pool_matrix(8, 6, 0.5, 1);
    let batches: Vec<AnyBatch> = ALL_SCHEMES.iter().map(|s| s.encode(&a)).collect();
    let total: usize = batches.iter().map(|b| b.size_bytes()).sum();
    assert!(total > 0);
}
