//! Shared helpers for the toc-formats integration-test suites.
//!
//! Note: `tests/golden.rs` deliberately does NOT use this generator — its
//! fixture matrix is frozen (pinned by a checksum) and must never drift
//! when this helper evolves.

use toc_linalg::DenseMatrix;

/// Deterministic synthetic matrix with a small value pool, driven by an
/// xorshift64 stream: stable across runs and platforms, no RNG
/// dependency.
pub fn pool_matrix(rows: usize, cols: usize, density: f64, seed: u64) -> DenseMatrix {
    let pool = [0.5, 1.5, -2.0, 3.25];
    let mut m = DenseMatrix::zeros(rows, cols);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for r in 0..rows {
        for c in 0..cols {
            if (next() % 1000) as f64 / 1000.0 < density {
                m.set(r, c, pool[(next() % 4) as usize]);
            }
        }
    }
    m
}
