//! Property tests for the CLA sample-based co-coding planner: arbitrary
//! batches × sample sizes must (a) decode byte-identically to the input,
//! (b) never materialize a co-coded dictionary beyond `MAX_DICT_ENTRIES`,
//! and (c) degenerate to an exact (sample-independent) plan when the
//! sample covers every row.

use proptest::prelude::*;
use toc_formats::cla::{planner, ClaBatch, ClaOptions, ClaPlanner, Group, MAX_DICT_ENTRIES};
use toc_formats::MatrixBatch;
use toc_linalg::DenseMatrix;

/// Deterministic batch with tunable redundancy: `pool` distinct values,
/// `density` non-zero fraction, plus duplicated columns every `dup`
/// columns (so plans actually have merges to find).
fn gen_matrix(
    rows: usize,
    cols: usize,
    density: f64,
    pool: usize,
    dup: usize,
    seed: u64,
) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for r in 0..rows {
        for c in 0..cols {
            if dup > 1 && c % dup != 0 && c > 0 {
                let v = m.get(r, c - 1);
                m.set(r, c, if v == 0.0 { 0.0 } else { v + c as f64 });
                continue;
            }
            if (next() % 1000) as f64 / 1000.0 < density {
                m.set(r, c, ((next() % pool as u64) as f64 + 1.0) * 0.25);
            }
        }
    }
    m
}

fn sample_opts(sample_rows: usize) -> ClaOptions {
    ClaOptions {
        planner: ClaPlanner::SampleMerge,
        sample_rows,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The planned encoding is lossless to the bit, for any sample size —
    /// including samples far smaller than the batch (estimates wrong) and
    /// far bigger (degenerate exact plan).
    #[test]
    fn prop_planned_encoding_decodes_byte_identically(
        rows in 0usize..80,
        cols in 1usize..24,
        density in 0.0f64..1.0,
        pool in 1usize..8,
        dup in 1usize..4,
        sample in 1usize..160,
        seed in 0u64..1000,
    ) {
        let a = gen_matrix(rows, cols, density, pool, dup, seed);
        let b = ClaBatch::encode_with(&a, &sample_opts(sample));
        let decoded = b.decode();
        prop_assert_eq!(decoded.rows(), a.rows());
        prop_assert_eq!(decoded.cols(), a.cols());
        // Bit-level equality, not just `==` (which would conflate 0.0
        // and -0.0 or miss NaN payloads).
        let same_bits = decoded
            .data()
            .iter()
            .zip(a.data())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        prop_assert!(same_bits, "decode not byte-identical");
        // And the wire roundtrip preserves the plan.
        let restored = wire_roundtrip(&b);
        prop_assert_eq!(restored.decode(), decoded);
    }

    /// Materialized co-coded groups never exceed the dictionary cap, no
    /// matter how wrong the sample estimates were.
    #[test]
    fn prop_multi_column_groups_respect_dict_cap(
        rows in 0usize..120,
        cols in 1usize..20,
        density in 0.0f64..1.0,
        pool in 1usize..32,
        sample in 1usize..64,
        seed in 0u64..1000,
    ) {
        let a = gen_matrix(rows, cols, density, pool, 2, seed);
        let b = ClaBatch::encode_with(&a, &sample_opts(sample));
        let mut covered = vec![false; cols];
        for g in b.groups() {
            match g {
                Group::Ddc { cols: gcols, dict, rowidx } => {
                    let width = gcols.len();
                    prop_assert!(width >= 1);
                    if width > 1 {
                        prop_assert!(
                            dict.len() / width <= MAX_DICT_ENTRIES,
                            "{} entries in a {}-column group",
                            dict.len() / width,
                            width
                        );
                    }
                    prop_assert_eq!(rowidx.len(), rows);
                    for &c in gcols {
                        prop_assert!(!covered[c as usize], "column {} in two groups", c);
                        covered[c as usize] = true;
                    }
                }
                Group::Uc { col, values } => {
                    prop_assert_eq!(values.len(), rows);
                    prop_assert!(!covered[*col as usize]);
                    covered[*col as usize] = true;
                }
            }
        }
        prop_assert!(covered.into_iter().all(|c| c), "some column unencoded");
    }

    /// `sample_rows >= nrows` is an exact plan: the layout no longer
    /// depends on the sample size.
    #[test]
    fn prop_full_sample_degenerates_to_exact_plan(
        rows in 1usize..60,
        cols in 1usize..16,
        density in 0.0f64..1.0,
        pool in 1usize..6,
        seed in 0u64..1000,
        extra in 0usize..100,
    ) {
        let a = gen_matrix(rows, cols, density, pool, 2, seed);
        let exact = planner::plan(&a, &sample_opts(rows));
        let over = planner::plan(&a, &sample_opts(rows + extra));
        prop_assert!(exact.exact && over.exact);
        prop_assert_eq!(&exact, &over);
        prop_assert_eq!(exact.sample_rows, rows);
        // And the two encodings are byte-identical on the wire.
        let b1 = ClaBatch::encode_with(&a, &sample_opts(rows));
        let b2 = ClaBatch::encode_with(&a, &sample_opts(rows + extra));
        prop_assert_eq!(b1.to_bytes(), b2.to_bytes());
    }
}

/// Serialize + reparse helper.
fn wire_roundtrip(b: &ClaBatch) -> ClaBatch {
    ClaBatch::from_body(&b.to_bytes()[1..]).expect("roundtrip")
}
