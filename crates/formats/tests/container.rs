//! Container-level wire tests: golden fixtures for both `.tocz`
//! versions, zone-map pruning correctness, and the exhaustive mutation
//! sweep over the v2 postscript + footer region.
//!
//! Regenerate the fixtures after an intentional wire change with:
//!
//! ```text
//! TOC_BLESS=1 cargo test -p toc-formats --test container
//! ```

use proptest::prelude::*;
use std::path::PathBuf;
use toc_formats::container::{parse_v2_footer, Container, HEADER_LEN, POSTSCRIPT_LEN};
use toc_formats::{EncodeOptions, MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;

mod common;
use common::pool_matrix;

/// Decode an accepted mutant only when its self-described shape is still
/// plausibly sized — a flipped bit in a payload length field can
/// legitimately parse yet describe a terabyte-scale matrix, and blindly
/// materializing that would OOM the sweep (the parse/decode APIs are the
/// thing under test, not the allocator).
fn exercise_accepted_mutant(c: &Container) {
    let sane = c
        .batches
        .iter()
        .all(|b| b.rows() <= 4096 && b.cols() <= 4096);
    if sane {
        let _ = c.decode();
    }
    let _ = c.payload_bytes();
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The container fixture matrix. Frozen — the committed fixtures encode
/// exactly this; don't change the parameters.
fn fixture_matrix() -> DenseMatrix {
    pool_matrix(57, 6, 0.4, 1234)
}

fn fixture_container() -> Container {
    Container::encode_with(
        &fixture_matrix(),
        Scheme::Toc,
        16,
        &EncodeOptions::default(),
    )
}

/// Both versions of the committed fixture must keep parsing, keep
/// decoding to the original matrix, and keep re-serializing
/// byte-identically — old archives can never silently break.
#[test]
fn golden_container_fixtures_stay_readable() {
    let bless = std::env::var_os("TOC_BLESS").is_some();
    let dir = golden_dir();
    let a = fixture_matrix();
    for (name, v1) in [("container_v2.tocz", false), ("container_v1.tocz", true)] {
        let path = dir.join(name);
        if bless {
            let c = fixture_container();
            let bytes = if v1 {
                c.to_bytes_v1().unwrap()
            } else {
                c.to_bytes().unwrap()
            };
            std::fs::write(&path, bytes).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\n(missing fixture? regenerate with TOC_BLESS=1)",
                path.display()
            )
        });
        let c = Container::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{name}: old container no longer parses: {e}"));
        assert_eq!(c.decode().unwrap(), a, "{name}: decoded payload drifted");
        let again = if v1 {
            c.to_bytes_v1().unwrap()
        } else {
            c.to_bytes().unwrap()
        };
        assert_eq!(
            again, bytes,
            "{name}: reserialization is not byte-identical"
        );
        if v1 {
            assert!(c.zones().is_none(), "v1 carries no zone maps");
        } else {
            assert_eq!(c.zones().unwrap().len(), c.batches.len());
        }
    }
}

/// The committed v1 fixture round-trips through the file API
/// (`Container::read`), the acceptance-criteria phrasing of back-compat.
#[test]
fn v1_fixture_roundtrips_through_read() {
    let c = Container::read(&golden_dir().join("container_v1.tocz"))
        .expect("v1 fixture (regenerate with TOC_BLESS=1)");
    assert_eq!(c.decode().unwrap(), fixture_matrix());
    // And upgrading it to v2 yields a parseable seekable container.
    let v2 = c.to_bytes().unwrap();
    let up = Container::from_bytes(&v2).unwrap();
    assert_eq!(up.decode().unwrap(), fixture_matrix());
    let (footer, _) = parse_v2_footer(&v2).unwrap();
    assert_eq!(footer.num_segments(), c.batches.len());
}

/// Every single-byte mutation of the postscript or the footer must be a
/// structured `Err`, never a panic and never a silent wrong parse. The
/// footer is covered by the postscript's FNV checksum; the postscript is
/// covered by magic/version checks and exact file-length arithmetic.
/// Exhaustive: every byte position in both regions, all 255 wrong values.
#[test]
fn postscript_and_footer_mutations_always_error() {
    let m = pool_matrix(40, 5, 0.5, 9);
    let c = Container::encode_with(&m, Scheme::Den, 8, &EncodeOptions::default());
    let good = c.to_bytes().unwrap();
    let (_, ps) = parse_v2_footer(&good).unwrap();
    let footer_region = ps.footer_offset as usize..good.len();
    for pos in footer_region {
        for delta in 1..=255u8 {
            let mut bytes = good.clone();
            bytes[pos] = bytes[pos].wrapping_add(delta);
            assert!(
                Container::from_bytes(&bytes).is_err(),
                "byte {pos} (+{delta}) in footer/postscript was accepted"
            );
        }
    }
}

/// Flips anywhere in the file — header, segment payloads, everything —
/// must never panic (payload flips may legitimately parse: a flipped
/// value byte inside a dense segment is different data, not a framing
/// error).
#[test]
fn whole_file_single_byte_flips_never_panic() {
    let m = pool_matrix(30, 4, 0.5, 21);
    for v1 in [false, true] {
        let c = Container::encode_with(&m, Scheme::Toc, 7, &EncodeOptions::default());
        let good = if v1 {
            c.to_bytes_v1().unwrap()
        } else {
            c.to_bytes().unwrap()
        };
        for pos in 0..good.len() {
            for bit in 0..8 {
                let mut bytes = good.clone();
                bytes[pos] ^= 1 << bit;
                if let Ok(c) = Container::from_bytes(&bytes) {
                    exercise_accepted_mutant(&c);
                }
            }
        }
    }
}

/// Truncations at every length must error cleanly too.
#[test]
fn truncations_always_error() {
    let m = pool_matrix(25, 4, 0.5, 3);
    let c = Container::encode_with(&m, Scheme::Den, 9, &EncodeOptions::default());
    let good = c.to_bytes().unwrap();
    for len in 0..good.len() {
        assert!(
            Container::from_bytes(&good[..len]).is_err(),
            "truncation to {len} bytes was accepted"
        );
    }
}

/// The v2 postscript sits at EOF with the layout the README documents.
#[test]
fn postscript_layout_is_pinned() {
    let c = fixture_container();
    let bytes = c.to_bytes().unwrap();
    assert_eq!(POSTSCRIPT_LEN, 29);
    let tail = &bytes[bytes.len() - POSTSCRIPT_LEN..];
    // ... magic trails the file, version byte right before it.
    assert_eq!(&tail[25..29], &0x544F_435Au32.to_le_bytes());
    assert_eq!(tail[24], 2);
    let footer_offset = u64::from_le_bytes(tail[0..8].try_into().unwrap());
    let footer_len = u64::from_le_bytes(tail[8..16].try_into().unwrap());
    assert_eq!(
        footer_offset + footer_len,
        (bytes.len() - POSTSCRIPT_LEN) as u64
    );
    assert!(footer_offset >= HEADER_LEN as u64);
    // The leading header is shared with v1: magic + version.
    assert_eq!(&bytes[0..4], &0x544F_435Au32.to_le_bytes());
    assert_eq!(bytes[4], 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pruned decode == full decode on the projected range, for random
    /// matrices, segment sizes, and ranges, across representative schemes.
    #[test]
    fn prop_projected_decode_matches_full(
        seed in 0u64..10_000,
        rows in 1usize..120,
        cols in 1usize..9,
        seg in 1usize..40,
        scheme_idx in 0usize..4,
        range in (0usize..200, 0usize..200),
    ) {
        let scheme = [Scheme::Toc, Scheme::Den, Scheme::Csr, Scheme::Cla][scheme_idx];
        let m = pool_matrix(rows, cols, 0.4, seed);
        let c = Container::encode_with(&m, scheme, seg, &EncodeOptions::default());
        let (mut r0, mut r1) = (range.0 % (rows + 1), range.1 % (rows + 1));
        if r0 > r1 {
            std::mem::swap(&mut r0, &mut r1);
        }
        let part = c.decode_rows(r0, r1).unwrap();
        prop_assert_eq!(part.rows(), r1 - r0);
        for r in r0..r1 {
            prop_assert_eq!(part.row(r - r0), m.row(r));
        }
        // And the same through the serialized v2 wire image.
        let back = Container::from_bytes(&c.to_bytes().unwrap()).unwrap();
        let part2 = back.decode_rows(r0, r1).unwrap();
        prop_assert_eq!(part.data(), part2.data());
    }

    /// Footer row-range pruning is sound and tight: the reported segments
    /// are exactly those whose row range intersects the query.
    #[test]
    fn prop_row_pruning_is_exact(
        seed in 0u64..10_000,
        rows in 1usize..120,
        seg in 1usize..40,
        range in (0usize..200, 0usize..200),
    ) {
        let m = pool_matrix(rows, 4, 0.5, seed);
        let c = Container::encode_with(&m, Scheme::Den, seg, &EncodeOptions::default());
        let bytes = c.to_bytes().unwrap();
        let (footer, _) = parse_v2_footer(&bytes).unwrap();
        let (mut r0, mut r1) = (range.0 % (rows + 1), range.1 % (rows + 1));
        if r0 > r1 {
            std::mem::swap(&mut r0, &mut r1);
        }
        let picked = footer.segments_overlapping_rows(r0 as u64, r1 as u64);
        let leaves = footer.leaves();
        for (i, leaf) in leaves.iter().enumerate() {
            let overlaps = (leaf.row_end as usize) > r0 && (leaf.row_start as usize) < r1;
            prop_assert_eq!(picked.contains(&i), overlaps, "segment {}", i);
        }
    }

    /// Zone-map value pruning is sound: a segment whose zone excludes the
    /// query range really contains no value in it.
    #[test]
    fn prop_zone_pruning_is_sound(
        seed in 0u64..10_000,
        rows in 1usize..100,
        seg in 1usize..30,
        lo in -3.0f64..4.0,
        width in 0.0f64..3.0,
    ) {
        let hi = lo + width;
        let m = pool_matrix(rows, 5, 0.5, seed);
        let c = Container::encode_with(&m, Scheme::Den, seg, &EncodeOptions::default());
        let bytes = c.to_bytes().unwrap();
        let (footer, _) = parse_v2_footer(&bytes).unwrap();
        let kept = footer.segments_with_values_in(lo, hi);
        for (i, leaf) in footer.leaves().iter().enumerate() {
            if kept.contains(&i) {
                continue;
            }
            for r in leaf.row_start as usize..leaf.row_end as usize {
                for &v in m.row(r) {
                    prop_assert!(
                        !(lo..=hi).contains(&v),
                        "pruned segment {} holds {} in [{}, {}]",
                        i, v, lo, hi
                    );
                }
            }
        }
    }

    /// Random byte flips across the whole v2 image never panic (sampled —
    /// the exhaustive sweeps above cover the framing regions).
    #[test]
    fn prop_v2_mutants_never_panic(
        seed in 0u64..2_000,
        flips in prop::collection::vec((0usize..1 << 16, 0u8..8), 1..5),
    ) {
        let m = pool_matrix(17, 5, 0.5, seed);
        let c = Container::encode_with(&m, Scheme::Toc, 6, &EncodeOptions::default());
        let mut bytes = c.to_bytes().unwrap();
        for (pos, bit) in flips {
            let n = bytes.len();
            bytes[pos % n] ^= 1 << bit;
        }
        if let Ok(c) = Container::from_bytes(&bytes) {
            exercise_accepted_mutant(&c);
        }
    }
}

/// A container whose batches disagree on width must refuse to serialize
/// (both versions): the single header/footer `cols` would otherwise lie
/// about every batch after the first.
#[test]
fn mixed_width_batches_refuse_to_serialize() {
    let a = pool_matrix(12, 4, 0.5, 7);
    let mut c = Container::encode_with(&a, Scheme::Den, 6, &EncodeOptions::default());
    let narrow = pool_matrix(6, 3, 0.5, 8);
    c.batches
        .push(Scheme::Den.encode_with(&narrow, &EncodeOptions::default()));

    let expected = toc_formats::FormatError::MixedCols {
        batch: 2,
        got: 3,
        expected: 4,
    };
    assert_eq!(c.to_bytes().unwrap_err(), expected);
    assert_eq!(c.to_bytes_v1().unwrap_err(), expected);

    // Uniform containers keep round-tripping.
    c.batches.pop();
    let bytes = c.to_bytes().unwrap();
    let back = Container::from_bytes(&bytes).unwrap();
    assert_eq!(back.decode().unwrap(), a);
}
