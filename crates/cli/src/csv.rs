//! Minimal CSV reader/writer for numeric matrices.
//!
//! Deliberately small: comma-separated `f64` cells, optional header line
//! (auto-detected: a first line with any non-numeric field is treated as a
//! header), one matrix row per line.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;
use toc_linalg::DenseMatrix;

/// Read a numeric CSV into a dense matrix. Returns `(matrix, header)`.
pub fn read_matrix(path: &Path) -> Result<(DenseMatrix, Option<Vec<String>>), String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut reader = std::io::BufReader::new(file);
    let mut line = String::new();
    let mut rows: Vec<f64> = Vec::new();
    let mut cols = 0usize;
    let mut n_rows = 0usize;
    let mut header: Option<Vec<String>> = None;
    let mut first = true;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            break;
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if first {
            first = false;
            if fields.iter().any(|f| f.parse::<f64>().is_err()) {
                header = Some(fields.iter().map(|s| s.to_string()).collect());
                cols = fields.len();
                continue;
            }
            cols = fields.len();
        }
        if fields.len() != cols {
            return Err(format!(
                "row {} has {} fields, expected {cols}",
                n_rows + 1,
                fields.len()
            ));
        }
        for f in &fields {
            rows.push(
                f.parse::<f64>()
                    .map_err(|e| format!("row {}: bad number {f:?}: {e}", n_rows + 1))?,
            );
        }
        n_rows += 1;
    }
    if n_rows == 0 {
        return Err("empty CSV".into());
    }
    Ok((DenseMatrix::from_vec(n_rows, cols, rows), header))
}

/// Write a dense matrix as CSV (optionally with a header).
pub fn write_matrix(path: &Path, m: &DenseMatrix, header: Option<&[String]>) -> Result<(), String> {
    let file =
        std::fs::File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    let mut w = BufWriter::new(file);
    let emit = |w: &mut BufWriter<std::fs::File>, s: &str| {
        w.write_all(s.as_bytes()).map_err(|e| format!("write: {e}"))
    };
    if let Some(h) = header {
        emit(&mut w, &h.join(","))?;
        emit(&mut w, "\n")?;
    }
    let mut buf = String::new();
    for r in 0..m.rows() {
        buf.clear();
        for (c, v) in m.row(r).iter().enumerate() {
            if c > 0 {
                buf.push(',');
            }
            // Shortest roundtrip formatting.
            buf.push_str(&format!("{v}"));
        }
        buf.push('\n');
        emit(&mut w, &buf)?;
    }
    w.flush().map_err(|e| format!("flush: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("toc-cli-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_without_header() {
        let m = DenseMatrix::from_rows(vec![vec![1.5, 0.0, -2.25], vec![0.0, 3.0, 0.125]]);
        let p = tmp("rt.csv");
        write_matrix(&p, &m, None).unwrap();
        let (back, header) = read_matrix(&p).unwrap();
        assert_eq!(back, m);
        assert!(header.is_none());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn roundtrip_with_header() {
        let m = DenseMatrix::from_rows(vec![vec![1.0, 2.0]]);
        let p = tmp("hdr.csv");
        let hdr = vec!["a".to_string(), "b".to_string()];
        write_matrix(&p, &m, Some(&hdr)).unwrap();
        let (back, header) = read_matrix(&p).unwrap();
        assert_eq!(back, m);
        assert_eq!(header.unwrap(), hdr);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn ragged_rows_rejected() {
        let p = tmp("ragged.csv");
        std::fs::write(&p, "1,2,3\n4,5\n").unwrap();
        assert!(read_matrix(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_number_rejected() {
        let p = tmp("bad.csv");
        std::fs::write(&p, "1,2\n3,x\n").unwrap();
        assert!(read_matrix(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_rejected() {
        let p = tmp("empty.csv");
        std::fs::write(&p, "").unwrap();
        assert!(read_matrix(&p).is_err());
        std::fs::remove_file(&p).ok();
    }
}
