//! Minimal CSV reader/writer for numeric matrices.
//!
//! Deliberately small: comma-separated `f64` cells, optional header line
//! (auto-detected: a first line with any non-numeric field is treated as a
//! header), one matrix row per line.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;
use toc_linalg::DenseMatrix;

/// Stream a numeric CSV row by row without materializing the matrix:
/// `f(row_index, values)` is called once per data row with a reused
/// buffer, so peak memory is one row — the `toc ingest` path. Returns
/// `(rows, cols, header)` with the same header auto-detection and the
/// same structured errors ("row N has X fields, expected C", "row N:
/// bad number ...", "empty CSV") as [`read_matrix`], which is built on
/// top of this.
///
/// Returns `(rows, cols, header)`.
pub type StreamSummary = (usize, usize, Option<Vec<String>>);

/// Per-row callback: `(row_index, fields)`; an `Err` aborts the stream.
pub type RowSink<'a> = &'a mut dyn FnMut(usize, &[f64]) -> Result<(), String>;

pub fn stream_rows(path: &Path, f: RowSink<'_>) -> Result<StreamSummary, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut reader = std::io::BufReader::new(file);
    let mut line = String::new();
    let mut row: Vec<f64> = Vec::new();
    let mut cols = 0usize;
    let mut n_rows = 0usize;
    let mut header: Option<Vec<String>> = None;
    let mut first = true;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            break;
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if first {
            first = false;
            if fields.iter().any(|f| f.parse::<f64>().is_err()) {
                header = Some(fields.iter().map(|s| s.to_string()).collect());
                cols = fields.len();
                continue;
            }
            cols = fields.len();
        }
        if fields.len() != cols {
            return Err(format!(
                "row {} has {} fields, expected {cols}",
                n_rows + 1,
                fields.len()
            ));
        }
        row.clear();
        for fld in &fields {
            row.push(
                fld.parse::<f64>()
                    .map_err(|e| format!("row {}: bad number {fld:?}: {e}", n_rows + 1))?,
            );
        }
        f(n_rows, &row)?;
        n_rows += 1;
    }
    if n_rows == 0 {
        return Err("empty CSV".into());
    }
    Ok((n_rows, cols, header))
}

/// Read a numeric CSV into a dense matrix. Returns `(matrix, header)`.
pub fn read_matrix(path: &Path) -> Result<(DenseMatrix, Option<Vec<String>>), String> {
    let mut data: Vec<f64> = Vec::new();
    let (rows, cols, header) = stream_rows(path, &mut |_, row| {
        data.extend_from_slice(row);
        Ok(())
    })?;
    Ok((DenseMatrix::from_vec(rows, cols, data), header))
}

/// Write a dense matrix as CSV (optionally with a header).
pub fn write_matrix(path: &Path, m: &DenseMatrix, header: Option<&[String]>) -> Result<(), String> {
    let file =
        std::fs::File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    let mut w = BufWriter::new(file);
    let emit = |w: &mut BufWriter<std::fs::File>, s: &str| {
        w.write_all(s.as_bytes()).map_err(|e| format!("write: {e}"))
    };
    if let Some(h) = header {
        emit(&mut w, &h.join(","))?;
        emit(&mut w, "\n")?;
    }
    let mut buf = String::new();
    for r in 0..m.rows() {
        buf.clear();
        for (c, v) in m.row(r).iter().enumerate() {
            if c > 0 {
                buf.push(',');
            }
            // Shortest roundtrip formatting.
            buf.push_str(&format!("{v}"));
        }
        buf.push('\n');
        emit(&mut w, &buf)?;
    }
    w.flush().map_err(|e| format!("flush: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("toc-cli-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_without_header() {
        let m = DenseMatrix::from_rows(vec![vec![1.5, 0.0, -2.25], vec![0.0, 3.0, 0.125]]);
        let p = tmp("rt.csv");
        write_matrix(&p, &m, None).unwrap();
        let (back, header) = read_matrix(&p).unwrap();
        assert_eq!(back, m);
        assert!(header.is_none());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn roundtrip_with_header() {
        let m = DenseMatrix::from_rows(vec![vec![1.0, 2.0]]);
        let p = tmp("hdr.csv");
        let hdr = vec!["a".to_string(), "b".to_string()];
        write_matrix(&p, &m, Some(&hdr)).unwrap();
        let (back, header) = read_matrix(&p).unwrap();
        assert_eq!(back, m);
        assert_eq!(header.unwrap(), hdr);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn stream_rows_visits_every_row_with_shape() {
        let p = tmp("stream.csv");
        std::fs::write(&p, "a,b\n1,2\n3,4\n5,6\n").unwrap();
        let mut seen = Vec::new();
        let (rows, cols, header) = stream_rows(&p, &mut |i, row| {
            seen.push((i, row.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!((rows, cols), (3, 2));
        assert_eq!(header.unwrap(), vec!["a", "b"]);
        assert_eq!(
            seen,
            vec![
                (0, vec![1.0, 2.0]),
                (1, vec![3.0, 4.0]),
                (2, vec![5.0, 6.0]),
            ]
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn ragged_rows_rejected() {
        let p = tmp("ragged.csv");
        std::fs::write(&p, "1,2,3\n4,5\n").unwrap();
        assert!(read_matrix(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_number_rejected() {
        let p = tmp("bad.csv");
        std::fs::write(&p, "1,2\n3,x\n").unwrap();
        assert!(read_matrix(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_rejected() {
        let p = tmp("empty.csv");
        std::fs::write(&p, "").unwrap();
        assert!(read_matrix(&p).is_err());
        std::fs::remove_file(&p).ok();
    }
}
