#![forbid(unsafe_code)]
//! `toc` — command-line front end for tuple-oriented compression.
//!
//! ```text
//! toc gen --preset census --rows 1000 data.csv     generate synthetic data
//! toc compress data.csv data.tocz [--scheme toc]   CSV -> compressed batches
//! toc decompress data.tocz back.csv                compressed -> CSV
//! toc inspect data.tocz                            per-batch statistics
//! toc bench data.csv                               compare all schemes
//! toc train data.csv --model lr --epochs 10        MGD training (last column = label)
//! ```

mod container;
mod csv;
#[cfg(test)]
mod testutil;

use container::Container;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;
use toc_formats::{ClaOptions, EncodeOptions, MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; see `toc help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
toc — tuple-oriented compression for mini-batch SGD

USAGE:
  toc gen --preset <census|imagenet|mnist|kdd99|rcv1|deep1b> --rows <n> <out.csv>
  toc ingest <in.csv> <out.tocz>   [--chunk-rows <n>] [--scheme <s|auto>]
                                   [--checkpoint-every <chunks>] [--resume]
                                   (bounded-memory streaming encode: rows stream through a
                                    reusable chunk workspace — peak memory is one chunk, never
                                    the dataset — each sealed chunk becomes one v2 container
                                    segment with its scheme picked per chunk when --scheme auto
                                    (the default), and the finished stream is a valid seekable
                                    .tocz. Prints a machine-parseable \"ingest:\" stats line.
                                    --checkpoint-every persists a checksummed <out>.tocz.ckpt
                                    sidecar after every N sealed chunks; --resume validates the
                                    sidecar against the partial output, truncates any torn tail
                                    past the checkpointed watermark, and continues the ingest to
                                    a byte-identical container — never re-encoding a sealed
                                    chunk. The sidecar is removed once the footer is written)
  toc compress <in.csv> <out.tocz> [--scheme <den|csr|cvi|dvi|cla|snappy|gzip|ans|toc|auto>] [--segment-rows <n>]
                                   [--container-version <1|2>]
                                   (--codec is accepted as an alias of --scheme, --batch-rows of
                                    --segment-rows; v2 containers carry a seekable layout-tree
                                    footer with per-segment zone maps, v1 is the legacy
                                    decode-everything blob)
  toc decompress <in.tocz> <out.csv> [--rows <a..b>] [--parallel <n>]
                                   (--rows decodes only the segments overlapping rows a..b —
                                    on a v2 container this reads just those segments' bytes;
                                    --parallel decodes touched segments on n threads)
  toc inspect <in.tocz>            (v2: prints the footer's layout tree and zone maps)
  toc bench <in.csv> [--batch-rows <n>]
  toc train <in.csv|in.tocz> [--model <lr|svm|linreg>] [--epochs <n>] [--lr <f>] [--scheme <s>] [--batch-rows <n>]
            [--budget <bytes>] [--shards <n>] [--prefetch <k>] [--mbps <f>]
            [--io <sync|pool|ring>] [--placement <stripe|pack|adaptive>] [--adaptive]
            [--pin] [--pin-map <t0,t1,...>] [--io-threads <n>] [--decode-workers <n>]
            [--follow] [--window <batches>] [--max-pending <chunks>]
            [--poll-ms <n>] [--idle-ms <n>]
            (the last CSV column is the ±1 label; --budget trains over the
             out-of-core sharded spill store: batches beyond the budget
             spill to --shards files and are read back through a
             --prefetch-deep background decode pipeline, optionally under
             an --mbps bandwidth model. --io picks the spill-IO engine:
             sync reads inside each prefetch worker, an async worker pool,
             or the batched ring engine that coalesces adjacent reads;
             --placement pack lays consecutive spilled batches out
             file-adjacent so ring submissions merge, and adaptive
             (shorthand: --adaptive) profiles per-shard bandwidth at
             runtime and re-packs hot batches onto the fastest shards
             between epochs. --pin gives ring threads a stable automatic
             shard assignment and stripes completions into per-decode-
             worker lanes; --pin-map pins shard i to IO thread t_i
             explicitly (exactly one entry per shard, each < --io-threads);
             --io-threads/--decode-workers size the engine (0 = auto).
             A .tocz input trains straight off the container: with
             --budget the sharded store streams v2 segments through the
             seekable reader, one decoded segment in memory at a time.
             --follow (requires --budget) tails the CSV *file itself* —
             even while another process is still appending to it —
             through the bounded-memory ingest pipeline into a *live*
             store while a single online-SGD pass trains concurrently
             over segments as they seal, reporting prequential error once
             per --window batches (default 8) on machine-parseable
             \"window:\" lines. Only newline-terminated lines commit (a
             torn tail mid-write is retried, never half-parsed); a
             truncated/rotated file is re-followed from the top; the
             stream ends after --idle-ms (default 400) with no growth,
             polling every --poll-ms (default 10). --max-pending bounds
             the sealed-chunks-ahead gap between ingest and trainer:
             the producer blocks (reported on the \"backpressure:\" line)
             instead of growing the store unboundedly)

  toc serve <in.csv|in.tocz> [--jobs <n>] [--script <file>] [--max-concurrent <n>]
            [--cache-budget <bytes>] [--model <lr|svm|linreg>] [--epochs <n>] [--lr <f>]
            [--seed <n>] [--shares <s0,s1,...>] [--scheme <s>] [--batch-rows <n>]
            [--budget <bytes>] [--shards <n>] [--mbps <f>] [--io <sync|pool|ring>]
            [--placement <stripe|pack|adaptive>] [--adaptive]
            (multi-tenant mode: run --jobs concurrent training jobs over ONE
             shared spill store (--budget defaults to 0: everything spills)
             and one shared compressed-batch cache of --cache-budget bytes
             (default: a quarter of the spilled bytes) with heat-based
             eviction. --max-concurrent gates admission (0 = unlimited);
             queued jobs wait their turn. Job i trains with seed --seed+i
             and QoS share --shares[i mod len] (default 1): a job's misses
             are throttled to share/mean-share of each shard's measured
             EWMA bandwidth. --script <file> instead defines one job per
             line as key=value tokens (name= model= epochs= lr= seed=
             share=; '#' comments). Prints one machine-parseable
             \"job: key=value ...\" line per job and a \"serve: ...\"
             aggregate line)

  compress/bench/train also accept the CLA co-coding knobs:
    --cla-planner <greedy|sample>   column grouping algorithm (default sample)
    --cla-sample <rows>             planner sample size (default 256)
  `--scheme auto` (compress) picks the smallest-estimate scheme per dataset,
  judging CLA by its planner estimate instead of a full encode probe.
";

/// Options that are plain flags (no value follows them). Everything else
/// starting with `--` consumes the next token as its value.
const BOOL_FLAGS: &[&str] = &["--adaptive", "--pin", "--follow", "--resume"];

/// Fetch `--name value` from an argument list.
fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether the boolean flag `name` (a [`BOOL_FLAGS`] member) was passed.
fn has_flag(args: &[String], name: &str) -> bool {
    debug_assert!(BOOL_FLAGS.contains(&name));
    args.iter().any(|a| a == name)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args.iter() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // Value-less flags don't consume the next token.
            skip = !BOOL_FLAGS.contains(&a.as_str());
            continue;
        }
        out.push(a);
    }
    out
}

/// Parse the CLA planner knobs shared by compress/bench/train.
fn encode_options(args: &[String]) -> Result<EncodeOptions, String> {
    let mut cla = ClaOptions::default();
    if let Some(p) = opt(args, "--cla-planner") {
        cla.planner = p.parse()?;
    }
    if let Some(s) = opt(args, "--cla-sample") {
        cla.sample_rows = s.parse().map_err(|e| format!("--cla-sample: {e}"))?;
        if cla.sample_rows == 0 {
            // An empty sample estimates every column as incompressible and
            // silently produces an uncompressed CLA plan; reject it.
            return Err("--cla-sample must be >= 1".into());
        }
    }
    Ok(EncodeOptions { cla })
}

fn parse_scheme(s: &str) -> Result<Scheme, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "den" => Scheme::Den,
        "csr" => Scheme::Csr,
        "cvi" => Scheme::Cvi,
        "dvi" => Scheme::Dvi,
        "cla" => Scheme::Cla,
        "snappy" => Scheme::Snappy,
        "gzip" => Scheme::Gzip,
        "toc" => Scheme::Toc,
        "toc-varint" => Scheme::TocVarint,
        "ans" => Scheme::GcAns,
        other => return Err(format!("unknown scheme {other:?}")),
    })
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    use toc_data::synth::{generate_preset, DatasetPreset};
    let preset_name = opt(args, "--preset").ok_or("--preset required")?;
    let preset = DatasetPreset::ALL
        .into_iter()
        .find(|p| p.name() == preset_name)
        .ok_or_else(|| format!("unknown preset {preset_name:?}"))?;
    let rows: usize = opt(args, "--rows")
        .ok_or("--rows required")?
        .parse()
        .map_err(|e| format!("{e}"))?;
    let seed: u64 = opt(args, "--seed")
        .map(|s| s.parse().unwrap_or(42))
        .unwrap_or(42);
    let out = positional(args);
    let out: &Path = Path::new(out.first().ok_or("output path required")?);
    let ds = generate_preset(preset, rows, seed);
    // Emit features plus the label as the last column.
    let mut m = DenseMatrix::zeros(ds.x.rows(), ds.x.cols() + 1);
    for r in 0..ds.x.rows() {
        m.row_mut(r)[..ds.x.cols()].copy_from_slice(ds.x.row(r));
        m.set(r, ds.x.cols(), ds.labels[r]);
    }
    csv::write_matrix(out, &m, None)?;
    println!(
        "wrote {} rows x {} cols (+label) to {}",
        ds.x.rows(),
        ds.x.cols(),
        out.display()
    );
    Ok(())
}

fn cmd_ingest(args: &[String]) -> Result<(), String> {
    use toc_data::{ingest_csv_container, CsvContainerJob};
    let pos = positional(args);
    let [input, output] = pos[..] else {
        return Err(
            "usage: toc ingest <in.csv> <out.tocz> [--resume] [--checkpoint-every <chunks>]".into(),
        );
    };
    let chunk_rows: usize = opt(args, "--chunk-rows")
        .map(|s| s.parse().map_err(|e| format!("--chunk-rows: {e}")))
        .transpose()?
        .unwrap_or(250);
    if chunk_rows == 0 {
        return Err("--chunk-rows must be >= 1".into());
    }
    let scheme_arg = opt(args, "--scheme").unwrap_or_else(|| "auto".into());
    let scheme = if scheme_arg.eq_ignore_ascii_case("auto") {
        None // per-chunk pick over Scheme::AUTO_SET
    } else {
        Some(parse_scheme(&scheme_arg)?)
    };
    let opts = encode_options(args)?;
    let resume = has_flag(args, "--resume");
    // --resume implies periodic checkpointing (a resumed run must stay
    // resumable); --checkpoint-every alone makes a fresh run resumable.
    let checkpoint_every: u64 = opt(args, "--checkpoint-every")
        .map(|s| s.parse().map_err(|e| format!("--checkpoint-every: {e}")))
        .transpose()?
        .unwrap_or(if resume { 8 } else { 0 });
    if resume && checkpoint_every == 0 {
        return Err("--resume needs checkpointing; --checkpoint-every must be >= 1".into());
    }
    let out_path = Path::new(output);
    let t0 = Instant::now();

    // Without checkpointing, never leave a truncated container behind —
    // whether ingest errors *or panics*. With checkpointing, the partial
    // output plus its sidecar IS the resume artifact and must survive.
    struct Cleanup<'a> {
        path: &'a Path,
        armed: bool,
    }
    impl Drop for Cleanup<'_> {
        fn drop(&mut self) {
            if self.armed {
                std::fs::remove_file(self.path).ok();
            }
        }
    }
    let mut guard = Cleanup {
        path: out_path,
        armed: checkpoint_every == 0,
    };

    let job = CsvContainerJob {
        csv: Path::new(input).to_path_buf(),
        out: out_path.to_path_buf(),
        chunk_rows,
        scheme,
        encode: opts,
        checkpoint_every,
    };
    let outcome = ingest_csv_container(&job, resume).map_err(|e| e.to_string())?;
    guard.armed = false;
    let elapsed = t0.elapsed();
    let stats = &outcome.stats;
    // Machine-parseable counters (the CLI smoke tests parse this line):
    // key=value pairs only.
    println!(
        "ingest: rows={} cols={} chunks={} chunk-rows={chunk_rows} bytes={} \
         peak-workspace-bytes={} schemes={} resumed-chunks={}",
        stats.rows,
        outcome.cols,
        stats.chunks,
        outcome.total_bytes,
        stats.peak_workspace_bytes,
        stats.scheme_summary(),
        outcome.resumed_chunks,
    );
    println!(
        "wrote {} in {elapsed:.1?}: {} rows x {} cols as {} segments \
         ({} KB wire, peak workspace {} KB)",
        out_path.display(),
        stats.rows,
        outcome.cols,
        stats.chunks,
        outcome.total_bytes / 1024,
        stats.peak_workspace_bytes / 1024,
    );
    Ok(())
}

fn cmd_compress(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [input, output] = pos[..] else {
        return Err("usage: toc compress <in.csv> <out.tocz>".into());
    };
    // `--codec` is accepted as an alias of `--scheme` (the byte-codec
    // schemes like ans/gzip/snappy read naturally as codecs).
    let scheme_arg = opt(args, "--scheme")
        .or_else(|| opt(args, "--codec"))
        .unwrap_or_else(|| "toc".into());
    // `--segment-rows` is the v2 name (segments are the seekable unit);
    // `--batch-rows` stays as an alias for older scripts.
    let batch_rows: usize = opt(args, "--segment-rows")
        .or_else(|| opt(args, "--batch-rows"))
        .map(|s| s.parse().unwrap_or(250))
        .unwrap_or(250);
    let version: u8 = match opt(args, "--container-version").as_deref() {
        None | Some("2") => 2,
        Some("1") => 1,
        Some(v) => return Err(format!("--container-version must be 1 or 2, got {v:?}")),
    };
    let opts = encode_options(args)?;
    let (m, _) = csv::read_matrix(Path::new(input))?;
    let scheme = if scheme_arg.eq_ignore_ascii_case("auto") {
        // Pick on the first batch: CLA is judged by its planner estimate,
        // the others by an encode probe of one batch.
        let probe = m.slice_rows(0, m.rows().min(batch_rows));
        let picked = toc_formats::pick_scheme(&probe, &Scheme::AUTO_SET, &opts);
        println!("auto: picked {}", picked.name());
        picked
    } else {
        parse_scheme(&scheme_arg)?
    };
    let t0 = Instant::now();
    let container = Container::encode_with(&m, scheme, batch_rows, &opts);
    let elapsed = t0.elapsed();
    if version == 1 {
        container.write_v1(Path::new(output))?;
    } else {
        container.write(Path::new(output))?;
    }
    let den = m.den_size_bytes();
    let enc = container.payload_bytes();
    println!(
        "{}: {} rows x {} cols -> {} batches, {} -> {} bytes ({:.1}x) in {:.1?}",
        scheme.name(),
        m.rows(),
        m.cols(),
        container.batches.len(),
        den,
        enc,
        den as f64 / enc as f64,
        elapsed,
    );
    Ok(())
}

/// Parse `--rows a..b` (start may be omitted: `..b` means `0..b`).
fn parse_row_range(s: &str) -> Result<(usize, usize), String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("--rows expects <start>..<end>, got {s:?}"))?;
    let a: usize = if a.is_empty() {
        0
    } else {
        a.parse().map_err(|e| format!("--rows start: {e}"))?
    };
    let b: usize = b.parse().map_err(|e| format!("--rows end: {e}"))?;
    if a > b {
        return Err(format!("--rows start {a} exceeds end {b}"));
    }
    Ok((a, b))
}

/// The version byte of a `.tocz` file (offset 4), without parsing it.
/// Checks the magic first so a non-`.tocz` input is reported as such
/// instead of whatever its fifth byte happens to be.
fn container_version(path: &Path) -> Result<u8, String> {
    use std::io::Read;
    let mut head = [0u8; 5];
    let mut f = std::fs::File::open(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    f.read_exact(&mut head)
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    if u32::from_le_bytes(head[0..4].try_into().unwrap()) != toc_formats::container::MAGIC {
        return Err(format!("{}: not a .tocz container", path.display()));
    }
    Ok(head[4])
}

fn cmd_decompress(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [input, output] = pos[..] else {
        return Err("usage: toc decompress <in.tocz> <out.csv>".into());
    };
    let rows = opt(args, "--rows")
        .map(|s| parse_row_range(&s))
        .transpose()?;
    let parallel: usize = match opt(args, "--parallel") {
        Some(s) => s.parse().map_err(|e| format!("--parallel: {e}"))?,
        None => 1,
    };
    let path = Path::new(input);
    let m = match rows {
        Some((r0, r1)) if container_version(path)? == 2 => {
            // Seekable projection: only the segments overlapping the range
            // are read from disk at all.
            let sc = toc_data::SeekableContainer::open(path)?;
            let m = sc.decode_rows_parallel(r0, r1, parallel)?;
            let s = sc.stats().snapshot();
            println!(
                "seek: {} reads, {} of {} payload bytes",
                s.disk_reads,
                s.bytes_read,
                sc.payload_bytes(),
            );
            m
        }
        Some((r0, r1)) => Container::read(path)?.decode_rows(r0, r1)?,
        None => Container::read(path)?.decode()?,
    };
    csv::write_matrix(Path::new(output), &m, None)?;
    println!(
        "decoded {} rows x {} cols to {}",
        m.rows(),
        m.cols(),
        output
    );
    Ok(())
}

/// Print one layout-tree node (and children) with box-drawing indent,
/// spending from a shared line budget so giant containers stay readable.
fn print_layout_node(node: &toc_formats::container::LayoutNode, depth: usize, budget: &mut isize) {
    if *budget <= 0 {
        if *budget == 0 {
            println!("  {}...", "  ".repeat(depth));
            *budget -= 1;
        }
        return;
    }
    *budget -= 1;
    let kind = match node.scheme {
        Some(tag) => {
            let name = Scheme::ALL
                .iter()
                .find(|s| s.tag() == tag)
                .map(|s| s.name())
                .unwrap_or("?");
            format!("seg[{name}]")
        }
        None => "tree".to_string(),
    };
    println!(
        "  {}{kind} rows {}..{} bytes {}..{} zone[min={} max={} nnz={} distinct~{}]",
        "  ".repeat(depth),
        node.row_start,
        node.row_end,
        node.begin,
        node.end,
        node.zone.min,
        node.zone.max,
        node.zone.nnz,
        node.zone.distinct,
    );
    for c in &node.children {
        print_layout_node(c, depth + 1, budget);
    }
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [input] = pos[..] else {
        return Err("usage: toc inspect <in.tocz>".into());
    };
    let version = container_version(Path::new(input))?;
    if version == 2 {
        let bytes = std::fs::read(Path::new(input)).map_err(|e| format!("read {input}: {e}"))?;
        let (footer, ps) =
            toc_formats::container::parse_v2_footer(&bytes).map_err(|e| format!("{input}: {e}"))?;
        println!(
            "{}: v2, {} segments, {} rows x {} cols, footer {} bytes at {} (tree depth {})",
            input,
            footer.num_segments(),
            footer.total_rows(),
            footer.cols,
            ps.footer_len,
            ps.footer_offset,
            footer.root.depth(),
        );
        println!("layout:");
        let mut budget: isize = 40;
        print_layout_node(&footer.root, 0, &mut budget);
    }
    let container = Container::read(Path::new(input))?;
    println!("{}: {} batches", input, container.batches.len());
    let mut total = 0usize;
    let mut rows = 0usize;
    for (i, b) in container.batches.iter().enumerate() {
        total += b.size_bytes();
        rows += b.rows();
        if i < 8 {
            let extra = if let toc_formats::AnyBatch::Toc(t) = b {
                let s = t.toc().stats();
                format!(
                    " |I|={} uniq={} |D|={} nodes={}",
                    s.first_layer_len, s.unique_values, s.codes_len, s.n_nodes
                )
            } else {
                String::new()
            };
            println!(
                "  batch {i}: {}x{} {} bytes{extra}",
                b.rows(),
                b.cols(),
                b.size_bytes()
            );
        }
    }
    if container.batches.len() > 8 {
        println!("  ... ({} more)", container.batches.len() - 8);
    }
    let cols = container.batches.first().map(|b| b.cols()).unwrap_or(0);
    let den = 16 * container.batches.len() + 8 * rows * cols;
    println!(
        "total: {rows} rows, {total} bytes encoded ({:.1}x vs DEN)",
        den as f64 / total as f64
    );
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [input] = pos[..] else {
        return Err("usage: toc bench <in.csv>".into());
    };
    let batch_rows: usize = opt(args, "--batch-rows")
        .map(|s| s.parse().unwrap_or(250))
        .unwrap_or(250);
    let opts = encode_options(args)?;
    let (m, _) = csv::read_matrix(Path::new(input))?;
    let batch = m.slice_rows(0, m.rows().min(batch_rows));
    let den = batch.den_size_bytes();
    let v: Vec<f64> = (0..batch.cols())
        .map(|i| (i % 5) as f64 * 0.5 - 1.0)
        .collect();
    println!(
        "{}: first {} rows x {} cols (density {:.3})",
        input,
        batch.rows(),
        batch.cols(),
        batch.density()
    );
    println!(
        "{:>8} {:>10} {:>8} {:>12} {:>12}",
        "scheme", "bytes", "ratio", "encode", "A*v"
    );
    for scheme in Scheme::PAPER_SET {
        let t0 = Instant::now();
        let encoded = scheme.encode_with(&batch, &opts);
        let enc_time = t0.elapsed();
        let _ = encoded.matvec(&v);
        let t1 = Instant::now();
        let iters = 10;
        for _ in 0..iters {
            std::hint::black_box(encoded.matvec(&v));
        }
        let op = t1.elapsed() / iters;
        println!(
            "{:>8} {:>10} {:>7.1}x {:>12.1?} {:>12.1?}",
            scheme.name(),
            encoded.size_bytes(),
            den as f64 / encoded.size_bytes() as f64,
            enc_time,
            op,
        );
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    use toc_ml::mgd::{MemoryProvider, MgdConfig, ModelSpec, Trainer};
    use toc_ml::LossKind;
    let pos = positional(args);
    let [input] = pos[..] else {
        return Err("usage: toc train <in.csv>".into());
    };
    let scheme = parse_scheme(&opt(args, "--scheme").unwrap_or_else(|| "toc".into()))?;
    let batch_rows: usize = opt(args, "--batch-rows")
        .map(|s| s.parse().unwrap_or(250))
        .unwrap_or(250);
    let encode_opts = encode_options(args)?;
    let epochs: usize = opt(args, "--epochs")
        .map(|s| s.parse().unwrap_or(10))
        .unwrap_or(10);
    let lr: f64 = opt(args, "--lr")
        .map(|s| s.parse().unwrap_or(0.05))
        .unwrap_or(0.05);
    let model = opt(args, "--model").unwrap_or_else(|| "lr".into());
    let loss = match model.as_str() {
        "lr" => LossKind::Logistic,
        "svm" => LossKind::Hinge,
        "linreg" => LossKind::Squared,
        other => return Err(format!("unknown model {other:?}")),
    };

    // A `.tocz` input trains straight off a compressed container.
    let from_container = input.ends_with(".tocz");

    let trainer = Trainer::new(MgdConfig {
        epochs,
        lr,
        ..Default::default()
    });
    let spec = ModelSpec::Linear(loss);

    let budget = match opt(args, "--budget") {
        Some(b) => Some(b.parse::<usize>().map_err(|e| format!("--budget: {e}"))?),
        None => None,
    };
    let shards: usize = match opt(args, "--shards") {
        Some(s) => s.parse().map_err(|e| format!("--shards: {e}"))?,
        None => 0,
    };
    let prefetch: usize = match opt(args, "--prefetch") {
        Some(s) => s.parse().map_err(|e| format!("--prefetch: {e}"))?,
        None => 0,
    };
    let mbps: Option<f64> = match opt(args, "--mbps") {
        Some(s) => {
            let v: f64 = s.parse().map_err(|e| format!("--mbps: {e}"))?;
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("--mbps must be > 0, got {v}"));
            }
            Some(v)
        }
        None => None,
    };
    let io: toc_data::IoEngineKind = match opt(args, "--io") {
        Some(s) => s.parse()?,
        None => toc_data::IoEngineKind::Sync,
    };
    let mut placement: toc_data::ShardPlacement = match opt(args, "--placement") {
        Some(s) => s.parse()?,
        None => toc_data::ShardPlacement::Stripe,
    };
    if has_flag(args, "--adaptive") {
        if opt(args, "--placement").is_some_and(|p| !p.eq_ignore_ascii_case("adaptive")) {
            return Err("--adaptive conflicts with the explicit --placement".into());
        }
        placement = toc_data::ShardPlacement::Adaptive;
    }
    let pinning = match (has_flag(args, "--pin"), opt(args, "--pin-map")) {
        (true, Some(_)) => {
            return Err("--pin (automatic) and --pin-map (explicit) are mutually exclusive".into())
        }
        (true, None) => toc_data::Pinning::Auto,
        (false, Some(map)) => {
            let map: Vec<usize> = map
                .split(',')
                .map(|t| t.trim().parse().map_err(|e| format!("--pin-map: {e}")))
                .collect::<Result<_, String>>()?;
            toc_data::Pinning::Fixed(map)
        }
        (false, None) => toc_data::Pinning::Off,
    };
    let scheduler = toc_data::SchedulerConfig {
        io_threads: match opt(args, "--io-threads") {
            Some(s) => s.parse().map_err(|e| format!("--io-threads: {e}"))?,
            None => 0,
        },
        decode_workers: match opt(args, "--decode-workers") {
            Some(s) => s.parse().map_err(|e| format!("--decode-workers: {e}"))?,
            None => 0,
        },
        pinning,
    };
    if budget.is_none()
        && (shards > 0
            || prefetch > 0
            || mbps.is_some()
            || opt(args, "--io").is_some()
            || opt(args, "--placement").is_some()
            || has_flag(args, "--adaptive")
            || scheduler != toc_data::SchedulerConfig::default())
    {
        return Err(
            "--shards/--prefetch/--mbps/--io/--placement/--adaptive/--pin/--pin-map/\
             --io-threads/--decode-workers configure the out-of-core store; \
             pass --budget <bytes> to enable it"
                .into(),
        );
    }
    if has_flag(args, "--follow") && budget.is_none() {
        return Err(
            "--follow streams rows into the live out-of-core store; pass --budget <bytes>".into(),
        );
    }
    if opt(args, "--window").is_some() && !has_flag(args, "--follow") {
        return Err("--window only applies with --follow".into());
    }
    for f in ["--max-pending", "--poll-ms", "--idle-ms"] {
        if opt(args, f).is_some() && !has_flag(args, "--follow") {
            return Err(format!("{f} only applies with --follow"));
        }
    }
    if has_flag(args, "--follow") {
        // Follow mode tails the file itself (it may still be growing
        // under a concurrent writer), so nothing is pre-read here.
        if from_container {
            return Err(
                "--follow tails a growing CSV; a .tocz container is already finished".into(),
            );
        }
        let window: usize = opt(args, "--window")
            .map(|s| s.parse().map_err(|e| format!("--window: {e}")))
            .transpose()?
            .unwrap_or(8);
        if window == 0 {
            return Err("--window must be >= 1".into());
        }
        let max_pending: usize = opt(args, "--max-pending")
            .map(|s| s.parse().map_err(|e| format!("--max-pending: {e}")))
            .transpose()?
            .unwrap_or(0);
        let poll_ms: u64 = opt(args, "--poll-ms")
            .map(|s| s.parse().map_err(|e| format!("--poll-ms: {e}")))
            .transpose()?
            .unwrap_or(10);
        let idle_ms: u64 = opt(args, "--idle-ms")
            .map(|s| s.parse().map_err(|e| format!("--idle-ms: {e}")))
            .transpose()?
            .unwrap_or(400);
        if idle_ms == 0 {
            return Err("--idle-ms must be >= 1".into());
        }
        use toc_data::store::StoreConfig;
        let mut config = StoreConfig::new(scheme, batch_rows, budget.expect("validated above"))
            .with_shards(shards)
            .with_prefetch(prefetch)
            .with_io(io)
            .with_placement(placement)
            .with_scheduler(scheduler)
            .with_encode_options(encode_opts)
            .with_max_pending(max_pending);
        if let Some(mbps) = mbps {
            config = config.with_disk_mbps(mbps);
        }
        return train_follow(
            Path::new(input),
            &trainer,
            &spec,
            &config,
            scheme,
            batch_rows,
            encode_opts,
            window,
            &model,
            std::time::Duration::from_millis(poll_ms),
            std::time::Duration::from_millis(idle_ms),
        );
    }

    let full = if from_container {
        Container::read(Path::new(input))?.decode()?
    } else {
        csv::read_matrix(Path::new(input))?.0
    };
    if full.cols() < 2 {
        return Err("need at least one feature column plus the label column".into());
    }
    let d = full.cols() - 1;
    let mut x = DenseMatrix::zeros(full.rows(), d);
    let mut y = Vec::with_capacity(full.rows());
    for r in 0..full.rows() {
        x.row_mut(r).copy_from_slice(&full.row(r)[..d]);
        y.push(if full.get(r, d) >= 0.0 { 1.0 } else { -1.0 });
    }

    let (mut report, encode_time, encoded_bytes) = if let Some(budget) = budget {
        // Out-of-core path: build the sharded spill store and train over
        // it, reporting spill layout and IO statistics.
        use toc_data::store::{ShardedSpillStore, StoreConfig};
        let mut config = StoreConfig::new(scheme, batch_rows, budget)
            .with_shards(shards)
            .with_prefetch(prefetch)
            .with_io(io)
            .with_placement(placement)
            .with_scheduler(scheduler)
            .with_encode_options(encode_opts);
        if let Some(mbps) = mbps {
            config = config.with_disk_mbps(mbps);
        }
        let t0 = Instant::now();
        // Container inputs stream v2 segments through the seekable reader
        // (one decoded segment in memory at a time); batch boundaries
        // match `build` on the decoded matrix exactly.
        let store = if from_container && container_version(Path::new(input))? == 2 {
            ShardedSpillStore::build_from_container(Path::new(input), &config)
        } else {
            ShardedSpillStore::build(&x, &y, &config)
        }
        .map_err(|e| format!("{e}"))?;
        let encode_time = t0.elapsed();
        println!(
            "store: {} in-memory + {} spilled batches across {} shards ({} KB spilled)",
            store.in_memory_batches(),
            store.spilled_batches(),
            store.num_shards(),
            store.spilled_bytes() / 1024,
        );
        let report = trainer.train(&spec, &store, None);
        let s = store.stats().snapshot_stable();
        println!(
            "io: {} reads ({} KB), prefetch {} hits / {} misses, simulated delay {:.1?}",
            s.disk_reads,
            s.bytes_read / 1024,
            s.prefetch_hits,
            s.prefetch_misses,
            std::time::Duration::from_nanos(s.throttle_ns),
        );
        // Machine-parseable engine stats (the CLI smoke tests parse this
        // line): key=value pairs only, one per field.
        println!(
            "io-engine: kind={io} placement={placement} submitted={} completed={} \
             coalesced={} max-in-flight={} lat-p50-us={} lat-p99-us={}",
            s.submitted,
            s.completed,
            s.coalesced_reads,
            s.max_in_flight,
            s.latency_percentile_us(50),
            s.latency_percentile_us(99),
        );
        // Machine-parseable placement/scheduling stats (the CLI smoke
        // tests parse this line too): key=value pairs, list values joined
        // with '/'.
        let p = store.placement_report();
        let join = |it: Vec<String>| {
            if it.is_empty() {
                "-".to_string()
            } else {
                it.join("/")
            }
        };
        println!(
            "placement: policy={} pin={} io-threads={} decode-workers={} rebalances={} \
             migrated={} migrated-kb={} ewma-mbps={} shard-kb={}",
            p.policy,
            p.pinning.name(),
            p.io_threads,
            p.decode_workers,
            p.rebalances,
            p.migrated_batches,
            p.migrated_bytes / 1024,
            join(
                p.shard_ewma_mbps
                    .iter()
                    .map(|m| format!("{m:.1}"))
                    .collect()
            ),
            join(
                p.shard_bytes
                    .iter()
                    .map(|b| (b / 1024).to_string())
                    .collect()
            ),
        );
        let bytes = store.total_bytes();
        (report, encode_time, bytes)
    } else {
        let mut batches = Vec::new();
        let mut start = 0;
        let t0 = Instant::now();
        while start < x.rows() {
            let end = (start + batch_rows).min(x.rows());
            batches.push((
                scheme.encode_with(&x.slice_rows(start, end), &encode_opts),
                y[start..end].to_vec(),
            ));
            start = end;
        }
        let encode_time = t0.elapsed();
        let encoded_bytes: usize = batches.iter().map(|(b, _)| b.size_bytes()).sum();
        let provider = MemoryProvider {
            batches,
            features: d,
        };
        (
            trainer.train(&spec, &provider, None),
            encode_time,
            encoded_bytes,
        )
    };
    let eval = Scheme::Den.encode(&x);
    let err = report.model.error_rate(&eval, &y);
    println!(
        "{model} on {} rows x {d} features [{}]: encode {:.1?} ({} KB), train {:.1?} ({epochs} epochs), training error {:.2}%",
        x.rows(),
        scheme.name(),
        encode_time,
        encoded_bytes / 1024,
        report.train_time,
        err * 100.0,
    );
    Ok(())
}

/// `toc train --follow`: tail the CSV *file itself* — which may still be
/// growing under a concurrent writer — through
/// [`toc_data::follow_rows`] into a *live* streaming store on one
/// thread, while a single online-SGD pass
/// ([`toc_ml::mgd::Trainer::train_online`]) runs concurrently over
/// segments as they seal, reporting prequential error per window. The
/// follower only commits newline-terminated lines (a torn tail mid-write
/// is retried, never half-parsed), re-opens from the top if the file is
/// truncated beneath it, and ends the stream once no new bytes appear
/// for `idle`. The trainer consumes batches in index order, so the loss
/// curve is deterministic in the seed regardless of ingest timing.
#[allow(clippy::too_many_arguments)]
fn train_follow(
    input: &Path,
    trainer: &toc_ml::mgd::Trainer,
    spec: &toc_ml::mgd::ModelSpec,
    config: &toc_data::StoreConfig,
    scheme: Scheme,
    batch_rows: usize,
    encode_opts: EncodeOptions,
    window: usize,
    model: &str,
    poll: std::time::Duration,
    idle: std::time::Duration,
) -> Result<(), String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use toc_data::{follow_rows, CsvStream, FollowOptions, ShardedSpillStore, StoreIngest};

    // The store needs the feature count up front, so wait (up to the
    // idle timeout) for the first complete row to pin the width.
    let cols = {
        let t0 = Instant::now();
        loop {
            let mut s = CsvStream::open(input).map_err(|e| e.to_string())?;
            if let Some((_, row)) = s.next_row().map_err(|e| e.to_string())? {
                break row.len();
            }
            if t0.elapsed() >= idle {
                // True end of a writer-less file: a final unterminated
                // line still counts as a row.
                if let Some((_, row)) = s.finish_partial().map_err(|e| e.to_string())? {
                    break row.len();
                }
                return Err(format!(
                    "{}: no rows appeared within the idle timeout ({idle:?})",
                    input.display()
                ));
            }
            std::thread::sleep(poll);
        }
    };
    if cols < 2 {
        return Err("need at least one feature column plus the label column".into());
    }
    let d = cols - 1;

    let store = ShardedSpillStore::open_streaming(d, config).map_err(|e| format!("{e}"))?;
    let done = AtomicBool::new(false);
    let t0 = Instant::now();
    let (mut report, ingested) = std::thread::scope(|s| {
        let store_ref = &store;
        let done_ref = &done;
        let ingest = s.spawn(move || {
            let run = || -> Result<toc_data::IngestStats, String> {
                let mut ing = StoreIngest::new(store_ref, batch_rows, Some(scheme), encode_opts);
                let opts = FollowOptions {
                    poll,
                    idle_timeout: idle,
                };
                follow_rows(input, &opts, &mut || false, &mut |_, row| {
                    let label = if row[d] >= 0.0 { 1.0 } else { -1.0 };
                    ing.push_row(&row[..d], label).map_err(|e| e.to_string())
                })
                .map_err(|e| e.to_string())?;
                ing.finish().map_err(|e| e.to_string())
            };
            let out = run();
            // Always release the trainer, success or failure — it polls
            // this flag to learn the stream has ended.
            done_ref.store(true, Ordering::Release);
            out
        });
        let report =
            trainer.train_online(spec, &store, window, &mut || !done.load(Ordering::Acquire));
        (report, ingest.join())
    });
    let stats = ingested
        .map_err(|_| "ingest thread panicked".to_string())?
        .map_err(|e| format!("ingest: {e}"))?;
    let wall = t0.elapsed();
    // Machine-parseable counters (the CLI smoke tests parse these
    // lines): key=value pairs only.
    println!(
        "ingest: rows={} cols={cols} chunks={} chunk-rows={batch_rows} bytes={} \
         peak-workspace-bytes={} schemes={}",
        stats.rows,
        stats.chunks,
        stats.encoded_bytes,
        stats.peak_workspace_bytes,
        stats.scheme_summary(),
    );
    let snap = store.stats().snapshot_stable();
    println!(
        "backpressure: max-pending={} peak-pending={} stall-ms={}",
        config.max_pending,
        store.peak_pending_appends(),
        snap.ingest_stall_ns / 1_000_000,
    );
    for w in &report.windows {
        println!(
            "window: idx={} batches={}..{} error={:.4} elapsed-ms={}",
            w.window,
            w.start,
            w.end,
            w.error_rate,
            w.elapsed.as_millis(),
        );
    }
    println!(
        "online: windows={} consumed={} windows-during-ingest={} train-ms={} wall-ms={}",
        report.windows.len(),
        report.consumed,
        report.windows_during_ingest,
        report.train_time.as_millis(),
        wall.as_millis(),
    );
    // The follower saw the file go idle, so it is complete now: re-read
    // it for the final training-error evaluation over every row.
    let (full, _) = csv::read_matrix(input)?;
    let mut x = DenseMatrix::zeros(full.rows(), d);
    let mut y = Vec::with_capacity(full.rows());
    for r in 0..full.rows() {
        x.row_mut(r).copy_from_slice(&full.row(r)[..d]);
        y.push(if full.get(r, d) >= 0.0 { 1.0 } else { -1.0 });
    }
    let eval = Scheme::Den.encode(&x);
    let err = report.model.error_rate(&eval, &y);
    println!(
        "{model} on {} rows x {d} features [{}]: streamed {} segments, online pass {:.1?} \
         ({} windows of {window}), training error {:.2}%",
        x.rows(),
        scheme.name(),
        stats.chunks,
        report.train_time,
        report.windows.len(),
        err * 100.0,
    );
    Ok(())
}

/// Parse one `--script` line (`key=value` tokens) into a job, on top of
/// the command-line defaults.
fn parse_script_job(
    line: &str,
    index: usize,
    defaults: &toc_ml::MgdConfig,
) -> Result<(String, String, toc_ml::MgdConfig, f64), String> {
    let mut name = format!("j{index}");
    let mut model = "lr".to_string();
    let mut config = defaults.clone();
    let mut share = 1.0f64;
    for tok in line.split_whitespace() {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("script line {}: expected key=value, got {tok:?}", index + 1))?;
        let bad = |e| format!("script line {}: {k}: {e}", index + 1);
        match k {
            "name" => name = v.to_string(),
            "model" => model = v.to_string(),
            "epochs" => config.epochs = v.parse().map_err(|e| bad(format!("{e}")))?,
            "lr" => config.lr = v.parse().map_err(|e| bad(format!("{e}")))?,
            "seed" => config.seed = v.parse().map_err(|e| bad(format!("{e}")))?,
            "share" => share = v.parse().map_err(|e| bad(format!("{e}")))?,
            other => {
                return Err(format!(
                "script line {}: unknown key {other:?} (expected name/model/epochs/lr/seed/share)",
                index + 1
            ))
            }
        }
    }
    Ok((name, model, config, share))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use toc_data::serve::{JobServer, JobSpec, ServeConfig};
    use toc_data::store::{ShardedSpillStore, StoreConfig};
    use toc_ml::mgd::{MgdConfig, ModelSpec};
    use toc_ml::LossKind;

    let pos = positional(args);
    let [input] = pos[..] else {
        return Err("usage: toc serve <in.csv|in.tocz> [--jobs <n>] ...".into());
    };
    let scheme = parse_scheme(&opt(args, "--scheme").unwrap_or_else(|| "toc".into()))?;
    let batch_rows: usize = opt(args, "--batch-rows")
        .map(|s| s.parse().unwrap_or(250))
        .unwrap_or(250);
    let encode_opts = encode_options(args)?;
    // Serve is the out-of-core mode: the budget defaults to 0, so every
    // batch spills and the shared cache is what keeps hot ones close.
    let budget: usize = match opt(args, "--budget") {
        Some(b) => b.parse().map_err(|e| format!("--budget: {e}"))?,
        None => 0,
    };
    let shards: usize = match opt(args, "--shards") {
        Some(s) => s.parse().map_err(|e| format!("--shards: {e}"))?,
        None => 0,
    };
    let mbps: Option<f64> = match opt(args, "--mbps") {
        Some(s) => {
            let v: f64 = s.parse().map_err(|e| format!("--mbps: {e}"))?;
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("--mbps must be > 0, got {v}"));
            }
            Some(v)
        }
        None => None,
    };
    let io: toc_data::IoEngineKind = match opt(args, "--io") {
        Some(s) => s.parse()?,
        None => toc_data::IoEngineKind::Sync,
    };
    let mut placement: toc_data::ShardPlacement = match opt(args, "--placement") {
        Some(s) => s.parse()?,
        None => toc_data::ShardPlacement::Stripe,
    };
    if has_flag(args, "--adaptive") {
        if opt(args, "--placement").is_some_and(|p| !p.eq_ignore_ascii_case("adaptive")) {
            return Err("--adaptive conflicts with the explicit --placement".into());
        }
        placement = toc_data::ShardPlacement::Adaptive;
    }
    let max_concurrent: usize = match opt(args, "--max-concurrent") {
        Some(s) => s.parse().map_err(|e| format!("--max-concurrent: {e}"))?,
        None => 0,
    };
    let epochs: usize = opt(args, "--epochs")
        .map(|s| s.parse().unwrap_or(3))
        .unwrap_or(3);
    let lr: f64 = opt(args, "--lr")
        .map(|s| s.parse().unwrap_or(0.05))
        .unwrap_or(0.05);
    let base_seed: u64 = match opt(args, "--seed") {
        Some(s) => s.parse().map_err(|e| format!("--seed: {e}"))?,
        None => 42,
    };
    let shares: Vec<f64> = match opt(args, "--shares") {
        Some(s) => s
            .split(',')
            .map(|t| t.trim().parse().map_err(|e| format!("--shares: {e}")))
            .collect::<Result<_, String>>()?,
        None => vec![1.0],
    };
    if shares.is_empty() || shares.iter().any(|&s| !(s.is_finite() && s > 0.0)) {
        return Err("--shares entries must be finite and > 0".into());
    }

    let loss_for = |model: &str| match model {
        "lr" => Ok(LossKind::Logistic),
        "svm" => Ok(LossKind::Hinge),
        "linreg" => Ok(LossKind::Squared),
        other => Err(format!("unknown model {other:?}")),
    };
    let defaults = MgdConfig {
        epochs,
        lr,
        seed: base_seed,
        record_curve: true,
        ..Default::default()
    };
    // (name, model-name, config, share) per job: either --jobs clones of
    // the command-line job with consecutive seeds, or one job per
    // non-comment script line.
    let protos: Vec<(String, String, MgdConfig, f64)> = match opt(args, "--script") {
        Some(path) => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
            let lines: Vec<&str> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .collect();
            if lines.is_empty() {
                return Err(format!("{path}: no jobs defined"));
            }
            lines
                .iter()
                .enumerate()
                .map(|(i, l)| parse_script_job(l, i, &defaults))
                .collect::<Result<_, String>>()?
        }
        None => {
            let jobs: usize = opt(args, "--jobs")
                .map(|s| s.parse().unwrap_or(4))
                .unwrap_or(4);
            if jobs == 0 {
                return Err("--jobs must be >= 1".into());
            }
            let model = opt(args, "--model").unwrap_or_else(|| "lr".into());
            (0..jobs)
                .map(|i| {
                    let mut config = defaults.clone();
                    config.seed = base_seed + i as u64;
                    (
                        format!("j{i}"),
                        model.clone(),
                        config,
                        shares[i % shares.len()],
                    )
                })
                .collect()
        }
    };

    let from_container = input.ends_with(".tocz");
    let full = if from_container {
        Container::read(Path::new(input))?.decode()?
    } else {
        csv::read_matrix(Path::new(input))?.0
    };
    if full.cols() < 2 {
        return Err("need at least one feature column plus the label column".into());
    }
    let d = full.cols() - 1;
    let mut x = DenseMatrix::zeros(full.rows(), d);
    let mut y = Vec::with_capacity(full.rows());
    for r in 0..full.rows() {
        x.row_mut(r).copy_from_slice(&full.row(r)[..d]);
        y.push(if full.get(r, d) >= 0.0 { 1.0 } else { -1.0 });
    }

    let mut config = StoreConfig::new(scheme, batch_rows, budget)
        .with_shards(shards)
        .with_io(io)
        .with_placement(placement)
        .with_encode_options(encode_opts);
    if let Some(mbps) = mbps {
        config = config.with_disk_mbps(mbps);
    }
    let store =
        std::sync::Arc::new(ShardedSpillStore::build(&x, &y, &config).map_err(|e| format!("{e}"))?);
    println!(
        "store: {} in-memory + {} spilled batches across {} shards ({} KB spilled)",
        store.in_memory_batches(),
        store.spilled_batches(),
        store.num_shards(),
        store.spilled_bytes() / 1024,
    );

    let cache_bytes: usize = match opt(args, "--cache-budget") {
        Some(s) => s.parse().map_err(|e| format!("--cache-budget: {e}"))?,
        None => store.spilled_bytes() / 4,
    };
    let server = JobServer::new(
        std::sync::Arc::clone(&store),
        ServeConfig {
            max_concurrent,
            cache_bytes,
        },
    );

    let eval = Scheme::Den.encode(&x);
    let jobs: Vec<JobSpec> = protos
        .iter()
        .map(|(name, model, config, share)| {
            Ok(JobSpec::new(
                name.clone(),
                ModelSpec::Linear(loss_for(model)?),
                config.clone(),
            )
            .with_share(*share)
            .with_eval(eval.clone(), y.clone()))
        })
        .collect::<Result<_, String>>()?;

    let t0 = Instant::now();
    let outcomes = server.run(jobs);
    let wall = t0.elapsed();

    // Machine-parseable per-job stats (the CLI smoke tests parse these
    // lines): key=value pairs only, one per field.
    for ((_, model, config, _), o) in protos.iter().zip(&outcomes) {
        println!(
            "job: name={} model={model} seed={} share={} epochs={} train-ms={} queue-ms={} \
             qos-ms={} cache-hits={} cache-misses={} batches={} err-pct={:.2}",
            o.name,
            o.seed,
            o.share,
            config.epochs,
            o.train_time.as_millis(),
            o.queue_wait.as_millis(),
            o.qos_wait.as_millis(),
            o.cache_hits,
            o.cache_misses,
            o.batches_visited,
            o.curve.last().copied().unwrap_or(1.0) * 100.0,
        );
    }
    let s = store.stats().snapshot_stable();
    s.assert_consistent();
    let cache = server.cache();
    println!(
        "serve: jobs={} max-concurrent={} peak-concurrent={} cache-budget-kb={} cache-kb={} \
         cache-hits={} cache-misses={} insertions={} evictions={} qos-throttle-ms={} wall-ms={}",
        outcomes.len(),
        max_concurrent,
        server.peak_concurrency(),
        cache_bytes / 1024,
        cache.bytes() / 1024,
        s.cache_hits,
        s.cache_misses,
        cache.insertions(),
        cache.evictions(),
        s.qos_throttle_ns / 1_000_000,
        wall.as_millis(),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_parsing() {
        assert_eq!(parse_scheme("toc").unwrap(), Scheme::Toc);
        assert_eq!(parse_scheme("GZIP").unwrap(), Scheme::Gzip);
        assert_eq!(parse_scheme("ans").unwrap(), Scheme::GcAns);
        assert!(parse_scheme("zstd").is_err());
    }

    #[test]
    fn opt_and_positional() {
        let args: Vec<String> = ["a.csv", "--scheme", "toc", "b.tocz"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(opt(&args, "--scheme").as_deref(), Some("toc"));
        assert_eq!(positional(&args), vec!["a.csv", "b.tocz"]);
    }

    #[test]
    fn boolean_flags_do_not_swallow_positionals() {
        // `--adaptive` and `--pin` take no value: the token after them is
        // still positional.
        let args: Vec<String> = ["--adaptive", "a.csv", "--pin", "--epochs", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(has_flag(&args, "--adaptive"));
        assert!(has_flag(&args, "--pin"));
        assert_eq!(positional(&args), vec!["a.csv"]);
        assert_eq!(opt(&args, "--epochs").as_deref(), Some("3"));
        let none: Vec<String> = vec!["a.csv".into()];
        assert!(!has_flag(&none, "--adaptive"));
    }

    #[test]
    fn adaptive_and_pin_flag_combinations() {
        let csv = crate::testutil::TempPath::new("cli-adaptive", "csv");
        cmd_gen(&[
            "--preset".into(),
            "census".into(),
            "--rows".into(),
            "300".into(),
            csv.arg(),
        ])
        .unwrap();
        let base = |extra: &[&str]| {
            let mut args: Vec<String> = vec![
                csv.arg(),
                "--epochs".into(),
                "2".into(),
                "--budget".into(),
                "0".into(),
                "--shards".into(),
                "2".into(),
            ];
            args.extend(extra.iter().map(|s| s.to_string()));
            args
        };
        // --adaptive shorthand == --placement adaptive; both together OK.
        cmd_train(&base(&["--adaptive"])).unwrap();
        cmd_train(&base(&["--placement", "adaptive", "--adaptive"])).unwrap();
        // Conflicting explicit placement rejected.
        assert!(cmd_train(&base(&["--placement", "pack", "--adaptive"])).is_err());
        // --pin and --pin-map are mutually exclusive; a fixed map must
        // validate against the shard/thread shape.
        assert!(cmd_train(&base(&["--pin", "--pin-map", "0,1"])).is_err());
        assert!(cmd_train(&base(&["--pin-map", "0,x"])).is_err());
        cmd_train(&base(&[
            "--prefetch",
            "2",
            "--io",
            "ring",
            "--pin-map",
            "1,0",
            "--io-threads",
            "2",
            "--decode-workers",
            "2",
        ]))
        .unwrap();
        // Out-of-core flags still demand --budget.
        assert!(cmd_train(&[csv.arg(), "--adaptive".into()]).is_err());
        assert!(cmd_train(&[csv.arg(), "--pin".into()]).is_err());
    }

    #[test]
    fn end_to_end_compress_decompress() {
        let csv_in = crate::testutil::TempPath::new("cli-e2e", "csv");
        let tocz = crate::testutil::TempPath::new("cli-e2e", "tocz");
        let csv_out = crate::testutil::TempPath::new("cli-e2e-out", "csv");
        let m = DenseMatrix::from_rows(
            (0..80)
                .map(|r| {
                    (0..6)
                        .map(|c| if (r + c) % 2 == 0 { 1.5 } else { 0.0 })
                        .collect()
                })
                .collect(),
        );
        crate::csv::write_matrix(csv_in.path(), &m, None).unwrap();
        cmd_compress(&[csv_in.arg(), tocz.arg(), "--batch-rows".into(), "32".into()]).unwrap();
        cmd_inspect(&[tocz.arg()]).unwrap();
        cmd_decompress(&[tocz.arg(), csv_out.arg()]).unwrap();
        let (back, _) = crate::csv::read_matrix(csv_out.path()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn segment_rows_flag_and_v1_container() {
        let csv_in = crate::testutil::TempPath::new("cli-v1", "csv");
        let tocz = crate::testutil::TempPath::new("cli-v1", "tocz");
        let csv_out = crate::testutil::TempPath::new("cli-v1-out", "csv");
        let m = DenseMatrix::from_rows(
            (0..70)
                .map(|r| (0..5).map(|c| ((r * c) % 7) as f64).collect())
                .collect(),
        );
        crate::csv::write_matrix(csv_in.path(), &m, None).unwrap();
        // --segment-rows is the preferred spelling of --batch-rows.
        cmd_compress(&[
            csv_in.arg(),
            tocz.arg(),
            "--segment-rows".into(),
            "16".into(),
        ])
        .unwrap();
        cmd_decompress(&[tocz.arg(), csv_out.arg()]).unwrap();
        assert_eq!(crate::csv::read_matrix(csv_out.path()).unwrap().0, m);
        // Legacy v1 output still round-trips (inspect + decompress).
        cmd_compress(&[
            csv_in.arg(),
            tocz.arg(),
            "--segment-rows".into(),
            "16".into(),
            "--container-version".into(),
            "1".into(),
        ])
        .unwrap();
        cmd_inspect(&[tocz.arg()]).unwrap();
        cmd_decompress(&[tocz.arg(), csv_out.arg()]).unwrap();
        assert_eq!(crate::csv::read_matrix(csv_out.path()).unwrap().0, m);
        assert!(cmd_compress(&[
            csv_in.arg(),
            tocz.arg(),
            "--container-version".into(),
            "3".into()
        ])
        .is_err());
    }

    #[test]
    fn row_range_projection_matches_full_decode() {
        let csv_in = crate::testutil::TempPath::new("cli-rows", "csv");
        let tocz = crate::testutil::TempPath::new("cli-rows", "tocz");
        let full_out = crate::testutil::TempPath::new("cli-rows-full", "csv");
        let part_out = crate::testutil::TempPath::new("cli-rows-part", "csv");
        let m = DenseMatrix::from_rows(
            (0..90)
                .map(|r| (0..4).map(|c| ((r + c) % 5) as f64).collect())
                .collect(),
        );
        crate::csv::write_matrix(csv_in.path(), &m, None).unwrap();
        for version in ["1", "2"] {
            cmd_compress(&[
                csv_in.arg(),
                tocz.arg(),
                "--segment-rows".into(),
                "16".into(),
                "--container-version".into(),
                version.into(),
            ])
            .unwrap();
            cmd_decompress(&[tocz.arg(), full_out.arg()]).unwrap();
            cmd_decompress(&[
                tocz.arg(),
                part_out.arg(),
                "--rows".into(),
                "20..53".into(),
                "--parallel".into(),
                "3".into(),
            ])
            .unwrap();
            let (full, _) = crate::csv::read_matrix(full_out.path()).unwrap();
            let (part, _) = crate::csv::read_matrix(part_out.path()).unwrap();
            assert_eq!(part.rows(), 33, "v{version}");
            for r in 0..33 {
                assert_eq!(part.row(r), full.row(r + 20), "v{version} row {r}");
            }
        }
        assert!(parse_row_range("5..3").is_err());
        assert!(parse_row_range("x..3").is_err());
        assert_eq!(parse_row_range("..7").unwrap(), (0, 7));
    }

    #[test]
    fn gen_then_train() {
        let csv = crate::testutil::TempPath::new("cli-train", "csv");
        cmd_gen(&[
            "--preset".into(),
            "census".into(),
            "--rows".into(),
            "400".into(),
            csv.arg(),
        ])
        .unwrap();
        cmd_train(&[
            csv.arg(),
            "--epochs".into(),
            "4".into(),
            "--lr".into(),
            "0.1".into(),
        ])
        .unwrap();
        // Out-of-core path: zero budget spills every batch across two
        // shards with the prefetch pipeline on.
        cmd_train(&[
            csv.arg(),
            "--epochs".into(),
            "2".into(),
            "--budget".into(),
            "0".into(),
            "--shards".into(),
            "2".into(),
            "--prefetch".into(),
            "2".into(),
        ])
        .unwrap();
        cmd_bench(&[csv.arg()]).unwrap();
    }

    #[test]
    fn train_from_container() {
        let csv = crate::testutil::TempPath::new("cli-train-cz", "csv");
        let tocz = crate::testutil::TempPath::new("cli-train-cz", "tocz");
        cmd_gen(&[
            "--preset".into(),
            "census".into(),
            "--rows".into(),
            "300".into(),
            csv.arg(),
        ])
        .unwrap();
        cmd_compress(&[csv.arg(), tocz.arg(), "--segment-rows".into(), "64".into()]).unwrap();
        // In-memory and out-of-core (streaming build) paths both accept
        // the container directly.
        cmd_train(&[tocz.arg(), "--epochs".into(), "2".into()]).unwrap();
        cmd_train(&[
            tocz.arg(),
            "--epochs".into(),
            "2".into(),
            "--budget".into(),
            "0".into(),
            "--shards".into(),
            "2".into(),
        ])
        .unwrap();
    }

    #[test]
    fn cla_planner_flags_and_auto_scheme() {
        let csv_in = crate::testutil::TempPath::new("cli-cla", "csv");
        let tocz = crate::testutil::TempPath::new("cli-cla", "tocz");
        let csv_out = crate::testutil::TempPath::new("cli-cla-out", "csv");
        let m = toc_data::synth::correlated_matrix(120, 8, 4, 3);
        crate::csv::write_matrix(csv_in.path(), &m, None).unwrap();
        for extra in [
            vec!["--scheme".into(), "cla".into()],
            vec![
                "--scheme".into(),
                "cla".into(),
                "--cla-planner".into(),
                "greedy".into(),
            ],
            vec![
                "--scheme".into(),
                "cla".into(),
                "--cla-planner".into(),
                "sample".into(),
                "--cla-sample".into(),
                "32".into(),
            ],
            vec!["--scheme".into(), "auto".into()],
        ] {
            let mut args = vec![csv_in.arg(), tocz.arg()];
            args.extend(extra);
            cmd_compress(&args).unwrap();
            cmd_decompress(&[tocz.arg(), csv_out.arg()]).unwrap();
            let (back, _) = crate::csv::read_matrix(csv_out.path()).unwrap();
            assert_eq!(back, m);
        }
        assert!(encode_options(&["--cla-planner".into(), "nope".into()]).is_err());
    }
}
