//! The `.tocz` container: a header plus one serialized batch per
//! mini-batch, so whole datasets survive a compress/decompress roundtrip
//! with tuple boundaries (and therefore trainability) intact.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   u32 = 0x544F435A ("TOCZ")
//! version u8  = 1
//! batches u32
//! per batch: u32 byte length, then the tagged MatrixBatch bytes
//! ```

use std::path::Path;
use toc_formats::{AnyBatch, EncodeOptions, FormatError, MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;

const MAGIC: u32 = 0x544F_435A;
const VERSION: u8 = 1;

/// A compressed dataset: an ordered list of encoded mini-batches.
pub struct Container {
    pub batches: Vec<AnyBatch>,
}

impl Container {
    /// Encode `m` into `batch_rows`-row batches with `scheme`.
    pub fn encode_with(
        m: &DenseMatrix,
        scheme: Scheme,
        batch_rows: usize,
        opts: &EncodeOptions,
    ) -> Self {
        let mut batches = Vec::new();
        let mut start = 0;
        while start < m.rows() {
            let end = (start + batch_rows).min(m.rows());
            batches.push(scheme.encode_with(&m.slice_rows(start, end), opts));
            start = end;
        }
        Self { batches }
    }

    /// Decode all batches back into one dense matrix.
    pub fn decode(&self) -> Result<DenseMatrix, String> {
        let total_rows: usize = self.batches.iter().map(|b| b.rows()).sum();
        let cols = self.batches.first().map(|b| b.cols()).unwrap_or(0);
        let mut out = DenseMatrix::zeros(total_rows, cols);
        let mut row = 0;
        for b in &self.batches {
            if b.cols() != cols {
                return Err("inconsistent batch widths".into());
            }
            let dense = b.decode();
            for r in 0..dense.rows() {
                out.row_mut(row).copy_from_slice(dense.row(r));
                row += 1;
            }
        }
        Ok(out)
    }

    /// Total encoded payload size (excluding container framing).
    pub fn payload_bytes(&self) -> usize {
        self.batches.iter().map(|b| b.size_bytes()).sum()
    }

    /// Serialize to a `.tocz` file.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(VERSION);
        out.extend_from_slice(&(self.batches.len() as u32).to_le_bytes());
        for b in &self.batches {
            let bytes = b.to_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        std::fs::write(path, out).map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Load and validate a `.tocz` file.
    pub fn read(path: &Path) -> Result<Self, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parse from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FormatError> {
        let need = |n: usize, pos: usize| {
            if bytes.len() < pos + n {
                Err(FormatError::Corrupt("truncated container".into()))
            } else {
                Ok(())
            }
        };
        need(9, 0)?;
        if u32::from_le_bytes(bytes[0..4].try_into().unwrap()) != MAGIC {
            return Err(FormatError::Corrupt("bad container magic".into()));
        }
        if bytes[4] != VERSION {
            return Err(FormatError::Corrupt("unsupported container version".into()));
        }
        let n = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
        let mut pos = 9usize;
        let mut batches = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            need(4, pos)?;
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            need(len, pos)?;
            batches.push(Scheme::from_bytes(&bytes[pos..pos + len])?);
            pos += len;
        }
        if pos != bytes.len() {
            return Err(FormatError::Corrupt("trailing container bytes".into()));
        }
        Ok(Self { batches })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        let rows: Vec<Vec<f64>> = (0..130)
            .map(|r| {
                (0..12)
                    .map(|c| {
                        if (r + c) % 3 == 0 {
                            (c % 4) as f64
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        DenseMatrix::from_rows(rows)
    }

    #[test]
    fn roundtrip_all_schemes() {
        let m = sample();
        for scheme in [Scheme::Toc, Scheme::Den, Scheme::Gzip, Scheme::Cla] {
            let c = Container::encode_with(&m, scheme, 50, &EncodeOptions::default());
            assert_eq!(c.batches.len(), 3);
            assert_eq!(c.decode().unwrap(), m, "{}", scheme.name());
        }
    }

    #[test]
    fn file_roundtrip() {
        let m = sample();
        let p = std::env::temp_dir().join(format!("toc-container-{}.tocz", std::process::id()));
        let c = Container::encode_with(&m, Scheme::Toc, 64, &EncodeOptions::default());
        c.write(&p).unwrap();
        let back = Container::read(&p).unwrap();
        assert_eq!(back.decode().unwrap(), m);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn corrupt_container_errors() {
        let m = sample();
        let c = Container::encode_with(&m, Scheme::Toc, 64, &EncodeOptions::default());
        let p = std::env::temp_dir().join(format!("toc-container-bad-{}.tocz", std::process::id()));
        c.write(&p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes.truncate(bytes.len() - 3);
        assert!(Container::from_bytes(&bytes).is_err());
        bytes[0] ^= 1;
        assert!(Container::from_bytes(&bytes).is_err());
        std::fs::remove_file(&p).ok();
    }
}
