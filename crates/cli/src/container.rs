//! The `.tocz` container, re-exported from `toc-formats`.
//!
//! The wire format, the v2 layout-tree footer, and all parsing live in
//! [`toc_formats::container`] so that both this CLI and the `toc-data`
//! seekable reader share one implementation. This module keeps the CLI's
//! file-level round-trip tests.

pub use toc_formats::container::Container;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempPath;
    use toc_formats::{EncodeOptions, Scheme};
    use toc_linalg::DenseMatrix;

    fn sample() -> DenseMatrix {
        let rows: Vec<Vec<f64>> = (0..130)
            .map(|r| {
                (0..12)
                    .map(|c| {
                        if (r + c) % 3 == 0 {
                            (c % 4) as f64
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        DenseMatrix::from_rows(rows)
    }

    #[test]
    fn file_roundtrip_v2() {
        let m = sample();
        let p = TempPath::new("container", "tocz");
        let c = Container::encode_with(&m, Scheme::Toc, 64, &EncodeOptions::default());
        c.write(p.path()).unwrap();
        let back = Container::read(p.path()).unwrap();
        assert_eq!(back.decode().unwrap(), m);
        assert!(back.zones().is_some(), "v2 read restores zone maps");
    }

    #[test]
    fn file_roundtrip_v1() {
        let m = sample();
        let p = TempPath::new("container-v1", "tocz");
        let c = Container::encode_with(&m, Scheme::Toc, 64, &EncodeOptions::default());
        c.write_v1(p.path()).unwrap();
        let back = Container::read(p.path()).unwrap();
        assert_eq!(back.decode().unwrap(), m);
        assert!(back.zones().is_none(), "v1 has no footer to restore from");
    }

    #[test]
    fn corrupt_file_errors() {
        let m = sample();
        let c = Container::encode_with(&m, Scheme::Toc, 64, &EncodeOptions::default());
        let p = TempPath::new("container-bad", "tocz");
        c.write(p.path()).unwrap();
        let mut bytes = std::fs::read(p.path()).unwrap();
        bytes.truncate(bytes.len() - 3);
        std::fs::write(p.path(), &bytes).unwrap();
        assert!(Container::read(p.path()).is_err());
    }
}
