//! Test-only helpers for the CLI crate.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

static NEXT_TEMP_ID: AtomicU32 = AtomicU32::new(0);

/// A uniquely named temp file path that removes itself on drop.
///
/// Names combine the process id with a process-global counter, so two
/// tests in one process (same pid!) never collide, and the RAII guard
/// cleans up even when the owning test panics mid-way.
pub struct TempPath {
    path: PathBuf,
}

impl TempPath {
    /// A fresh path `<tmp>/toc-<label>-<pid>-<n>.<ext>` (no file created).
    pub fn new(label: &str, ext: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "toc-{label}-{}-{}.{ext}",
            std::process::id(),
            NEXT_TEMP_ID.fetch_add(1, Ordering::Relaxed),
        ));
        Self { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The path as a `String`, for CLI argument lists.
    pub fn arg(&self) -> String {
        self.path.display().to_string()
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}
