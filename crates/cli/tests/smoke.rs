//! CLI smoke tests: drive the real `toc` binary over a temp dir and
//! assert exit codes plus that the printed `IoStats` lines parse. These
//! are the checks a packaging pipeline would run — everything goes
//! through `std::process::Command`, not library calls.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Output;
use std::sync::atomic::{AtomicU64, Ordering};

fn toc(args: &[&str]) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_toc"))
        .args(args)
        .output()
        .expect("spawn toc binary")
}

fn assert_ok(out: &Output, what: &str) -> String {
    assert!(
        out.status.success(),
        "{what} failed (status {:?}):\nstdout: {}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

fn assert_fails(out: &Output, what: &str) {
    assert!(
        !out.status.success(),
        "{what} unexpectedly succeeded:\n{}",
        String::from_utf8_lossy(&out.stdout),
    );
    assert!(
        !out.stderr.is_empty(),
        "{what} failed without an error message"
    );
}

static NEXT: AtomicU64 = AtomicU64::new(0);

fn temp_path(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "toc-smoke-{}-{}-{tag}.{ext}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Parse a `key=value key=value ...` stats line emitted by `toc train`.
fn parse_kv(line: &str) -> HashMap<String, String> {
    line.split_whitespace()
        .filter_map(|tok| tok.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn gen_csv(rows: usize) -> PathBuf {
    let csv = temp_path("data", "csv");
    let out = toc(&[
        "gen",
        "--preset",
        "census",
        "--rows",
        &rows.to_string(),
        csv.to_str().unwrap(),
    ]);
    assert_ok(&out, "toc gen");
    csv
}

#[test]
fn compress_roundtrip_with_planner_flags() {
    let csv = gen_csv(300);
    let tocz = temp_path("compressed", "tocz");
    let back = temp_path("back", "csv");
    let out = toc(&[
        "compress",
        csv.to_str().unwrap(),
        tocz.to_str().unwrap(),
        "--scheme",
        "cla",
        "--cla-planner",
        "sample",
        "--cla-sample",
        "64",
        "--batch-rows",
        "100",
    ]);
    let stdout = assert_ok(&out, "toc compress");
    assert!(stdout.contains("CLA:"), "unexpected output: {stdout}");
    assert_ok(
        &toc(&["decompress", tocz.to_str().unwrap(), back.to_str().unwrap()]),
        "toc decompress",
    );
    assert_ok(&toc(&["inspect", tocz.to_str().unwrap()]), "toc inspect");
    for p in [csv, tocz, back] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn train_over_async_engines_prints_parseable_io_stats() {
    let csv = gen_csv(400);
    for (io, placement) in [("pool", "stripe"), ("ring", "pack"), ("sync", "stripe")] {
        let out = toc(&[
            "train",
            csv.to_str().unwrap(),
            "--epochs",
            "2",
            "--budget",
            "0",
            "--shards",
            "2",
            "--prefetch",
            "3",
            "--mbps",
            "2000",
            "--io",
            io,
            "--placement",
            placement,
            "--cla-planner",
            "greedy",
        ]);
        let stdout = assert_ok(&out, &format!("toc train --io {io}"));
        assert!(
            stdout.contains("spilled batches across 2 shards"),
            "missing store line: {stdout}"
        );
        // The human io line and the machine io-engine line both parse.
        let io_line = stdout
            .lines()
            .find(|l| l.starts_with("io:"))
            .unwrap_or_else(|| panic!("no io: line in {stdout}"));
        let reads: u64 = io_line
            .split_whitespace()
            .nth(1)
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| panic!("unparseable reads in {io_line:?}"));
        assert!(reads >= 1, "no spill reads counted: {io_line}");

        let engine_line = stdout
            .lines()
            .find(|l| l.starts_with("io-engine:"))
            .unwrap_or_else(|| panic!("no io-engine: line in {stdout}"));
        let kv = parse_kv(engine_line);
        assert_eq!(kv["kind"], io);
        assert_eq!(kv["placement"], placement);
        let submitted: u64 = kv["submitted"].parse().expect("submitted parses");
        let completed: u64 = kv["completed"].parse().expect("completed parses");
        let coalesced: u64 = kv["coalesced"].parse().expect("coalesced parses");
        let max_in_flight: u64 = kv["max-in-flight"].parse().expect("max-in-flight parses");
        let p50: u64 = kv["lat-p50-us"].parse().expect("p50 parses");
        let p99: u64 = kv["lat-p99-us"].parse().expect("p99 parses");
        assert!(completed <= submitted, "{engine_line}");
        assert!(p50 <= p99, "{engine_line}");
        if io == "sync" {
            assert_eq!(submitted, 0, "sync engine must not submit: {engine_line}");
        } else {
            assert!(submitted >= 1, "async engine unused: {engine_line}");
            assert!(max_in_flight >= 1, "{engine_line}");
        }
        let _ = coalesced; // may legitimately be 0 under pool/stripe
    }
    std::fs::remove_file(csv).ok();
}

#[test]
fn adaptive_and_pinned_training_print_parseable_placement_stats() {
    let csv = gen_csv(400);
    // Legs: the --adaptive shorthand with automatic pinning, the explicit
    // --placement adaptive with a fixed pin map on the ring engine, and a
    // pinned non-adaptive run (placement line must still appear).
    let legs: [(&str, Vec<&str>); 3] = [
        ("adaptive+pin", vec!["--adaptive", "--pin", "--io", "pool"]),
        (
            "adaptive+pin-map",
            vec![
                "--placement",
                "adaptive",
                "--io",
                "ring",
                "--pin-map",
                "1,0",
                "--io-threads",
                "2",
                "--decode-workers",
                "2",
            ],
        ),
        (
            "pack+pin",
            vec!["--placement", "pack", "--pin", "--io", "ring"],
        ),
    ];
    for (leg, extra) in legs {
        let mut args = vec![
            "train",
            csv.to_str().unwrap(),
            "--epochs",
            "3",
            "--budget",
            "0",
            "--shards",
            "2",
            "--prefetch",
            "3",
            "--mbps",
            "2000",
        ];
        args.extend(extra.iter());
        let stdout = assert_ok(&toc(&args), &format!("toc train [{leg}]"));
        let line = stdout
            .lines()
            .find(|l| l.starts_with("placement:"))
            .unwrap_or_else(|| panic!("[{leg}] no placement: line in {stdout}"));
        let kv = parse_kv(line);
        let adaptive = leg.starts_with("adaptive");
        assert_eq!(kv["policy"], if adaptive { "adaptive" } else { "pack" });
        assert_eq!(
            kv["pin"],
            if leg.contains("pin-map") {
                "fixed"
            } else {
                "auto"
            },
            "{line}"
        );
        let io_threads: u64 = kv["io-threads"].parse().expect("io-threads parses");
        let decode_workers: u64 = kv["decode-workers"].parse().expect("decode-workers parses");
        assert!(io_threads >= 1, "{line}");
        assert!(decode_workers >= 1, "{line}");
        let rebalances: u64 = kv["rebalances"].parse().expect("rebalances parses");
        let migrated: u64 = kv["migrated"].parse().expect("migrated parses");
        let _migrated_kb: u64 = kv["migrated-kb"].parse().expect("migrated-kb parses");
        if adaptive {
            // 3 epochs over a spilled store with uniform --mbps: every
            // boundary has profiler signal, so passes must have run (the
            // flat profile makes actual migration legitimately rare).
            assert!(rebalances >= 1, "{line}");
        } else {
            assert_eq!(rebalances, 0, "{line}");
            assert_eq!(migrated, 0, "{line}");
        }
        // Slash-separated per-shard lists parse as floats/ints and cover
        // both shards.
        let ewma: Vec<f64> = kv["ewma-mbps"]
            .split('/')
            .map(|t| t.parse().expect("ewma parses"))
            .collect();
        assert_eq!(ewma.len(), 2, "{line}");
        assert!(ewma.iter().all(|&m| m > 0.0), "unobserved shard: {line}");
        let shard_kb: Vec<u64> = kv["shard-kb"]
            .split('/')
            .map(|t| t.parse().expect("shard-kb parses"))
            .collect();
        assert_eq!(shard_kb.len(), 2, "{line}");
    }
    std::fs::remove_file(csv).ok();
}

#[test]
fn seekable_v2_containers_project_inspect_and_train() {
    let csv = gen_csv(300);
    let v2 = temp_path("v2", "tocz");
    let v1 = temp_path("v1", "tocz");
    let back = temp_path("projected", "csv");

    // v2 is the default; --segment-rows sets the seekable unit.
    assert_ok(
        &toc(&[
            "compress",
            csv.to_str().unwrap(),
            v2.to_str().unwrap(),
            "--scheme",
            "toc",
            "--segment-rows",
            "64",
        ]),
        "toc compress --segment-rows",
    );

    // Inspect prints the footer summary and the layout tree.
    let stdout = assert_ok(&toc(&["inspect", v2.to_str().unwrap()]), "toc inspect v2");
    assert!(stdout.contains(": v2,"), "no v2 summary line: {stdout}");
    assert!(stdout.contains("layout:"), "no layout tree: {stdout}");
    assert!(stdout.contains("seg["), "no leaf lines: {stdout}");

    // A row projection must go through the seek path and read only a
    // fraction of the payload; the seek: line is machine-parseable.
    let stdout = assert_ok(
        &toc(&[
            "decompress",
            v2.to_str().unwrap(),
            back.to_str().unwrap(),
            "--rows",
            "64..128",
            "--parallel",
            "2",
        ]),
        "toc decompress --rows",
    );
    let seek = stdout
        .lines()
        .find(|l| l.starts_with("seek:"))
        .unwrap_or_else(|| panic!("no seek: line in {stdout}"));
    let nums: Vec<u64> = seek
        .split(|c: char| !c.is_ascii_digit())
        .filter(|t| !t.is_empty())
        .map(|t| t.parse().unwrap())
        .collect();
    let [reads, bytes_read, payload] = nums[..] else {
        panic!("unparseable seek line: {seek:?}");
    };
    assert!(reads >= 4, "{seek}"); // open is 3 reads + >=1 segment
    assert!(
        bytes_read < payload / 2,
        "projection read most of the payload: {seek}"
    );
    assert!(stdout.contains("decoded 64 rows"), "{stdout}");

    // Training straight off the v2 container exercises the streaming
    // store build (budget 0 => everything re-spills across shards).
    let stdout = assert_ok(
        &toc(&[
            "train",
            v2.to_str().unwrap(),
            "--epochs",
            "1",
            "--budget",
            "0",
            "--shards",
            "2",
            "--prefetch",
            "2",
        ]),
        "toc train <in.tocz>",
    );
    assert!(
        stdout.contains("spilled batches across 2 shards"),
        "missing store line: {stdout}"
    );

    // The v1 escape hatch still writes and round-trips, without a footer.
    assert_ok(
        &toc(&[
            "compress",
            csv.to_str().unwrap(),
            v1.to_str().unwrap(),
            "--container-version",
            "1",
            "--segment-rows",
            "64",
        ]),
        "toc compress --container-version 1",
    );
    let stdout = assert_ok(&toc(&["inspect", v1.to_str().unwrap()]), "toc inspect v1");
    assert!(!stdout.contains(": v2,"), "v1 claimed a footer: {stdout}");
    let stdout = assert_ok(
        &toc(&[
            "decompress",
            v1.to_str().unwrap(),
            back.to_str().unwrap(),
            "--rows",
            "64..128",
        ]),
        "toc decompress v1 --rows",
    );
    assert!(!stdout.contains("seek:"), "v1 has no seek path: {stdout}");
    assert!(stdout.contains("decoded 64 rows"), "{stdout}");

    // Bad flag values exit nonzero.
    assert_fails(
        &toc(&[
            "compress",
            csv.to_str().unwrap(),
            v2.to_str().unwrap(),
            "--container-version",
            "3",
        ]),
        "unknown container version",
    );
    assert_fails(
        &toc(&[
            "decompress",
            v2.to_str().unwrap(),
            back.to_str().unwrap(),
            "--rows",
            "9..3",
        ]),
        "inverted row range",
    );
    for p in [csv, v2, v1, back] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn invalid_pin_maps_and_flag_conflicts_exit_nonzero() {
    let csv = gen_csv(200);
    let base = |extra: &[&str]| {
        // --batch-rows 50 -> 4 spilled batches, so the store really has 2
        // shards and the pin-map length/range checks bite.
        let mut args = vec![
            "train",
            csv.to_str().unwrap(),
            "--epochs",
            "1",
            "--batch-rows",
            "50",
            "--budget",
            "0",
            "--shards",
            "2",
            "--prefetch",
            "2",
        ];
        args.extend(extra.iter());
        toc(&args)
    };
    // Pin map shorter than the shard count.
    assert_fails(&base(&["--io", "ring", "--pin-map", "0"]), "short pin map");
    // Pin map routing to a nonexistent IO thread.
    assert_fails(
        &base(&["--io", "ring", "--pin-map", "0,5", "--io-threads", "2"]),
        "out-of-range pin map",
    );
    // Unparseable pin map.
    assert_fails(&base(&["--pin-map", "0,x"]), "unparseable pin map");
    // --pin and --pin-map together.
    assert_fails(&base(&["--pin", "--pin-map", "0,1"]), "pin + pin-map");
    // --adaptive against a conflicting explicit placement.
    assert_fails(
        &base(&["--adaptive", "--placement", "stripe"]),
        "adaptive vs placement conflict",
    );
    // Scheduler flags without --budget.
    assert_fails(
        &toc(&["train", csv.to_str().unwrap(), "--pin"]),
        "--pin without --budget",
    );
    assert_fails(
        &toc(&["train", csv.to_str().unwrap(), "--adaptive"]),
        "--adaptive without --budget",
    );
    std::fs::remove_file(csv).ok();
}

#[test]
fn out_of_core_flags_require_budget_and_reject_bad_values() {
    let csv = gen_csv(120);
    assert_fails(
        &toc(&["train", csv.to_str().unwrap(), "--io", "ring"]),
        "--io without --budget",
    );
    assert_fails(
        &toc(&[
            "train",
            csv.to_str().unwrap(),
            "--budget",
            "0",
            "--io",
            "uring",
        ]),
        "unknown io engine",
    );
    assert_fails(
        &toc(&[
            "train",
            csv.to_str().unwrap(),
            "--budget",
            "0",
            "--placement",
            "scatter",
        ]),
        "unknown placement",
    );
    assert_fails(
        &toc(&["train", csv.to_str().unwrap(), "--budget", "x"]),
        "unparseable budget",
    );
    assert_fails(
        &toc(&[
            "compress",
            csv.to_str().unwrap(),
            "/tmp/unused.tocz",
            "--scheme",
            "cla",
            "--cla-sample",
            "0",
        ]),
        "zero planner sample",
    );
    assert_fails(&toc(&["frobnicate"]), "unknown subcommand");
    std::fs::remove_file(csv).ok();
}

/// `toc serve`: N jobs over one shared store, per-job `job:` stats lines
/// plus the `serve:` aggregate, all machine-parseable. Admission gating
/// is observable through `peak-concurrent`.
#[test]
fn serve_emits_parseable_job_stats() {
    let csv = gen_csv(400);
    let out = toc(&[
        "serve",
        csv.to_str().unwrap(),
        "--jobs",
        "3",
        "--max-concurrent",
        "2",
        "--shards",
        "2",
        "--batch-rows",
        "50",
        "--mbps",
        "800",
        "--epochs",
        "2",
        "--shares",
        "1,2",
    ]);
    let stdout = assert_ok(&out, "toc serve");
    let jobs: Vec<HashMap<String, String>> = stdout
        .lines()
        .filter(|l| l.starts_with("job: "))
        .map(parse_kv)
        .collect();
    assert_eq!(jobs.len(), 3, "expected 3 job lines:\n{stdout}");
    for (i, j) in jobs.iter().enumerate() {
        assert_eq!(j["name"], format!("j{i}"));
        assert_eq!(j["seed"], (42 + i as u64).to_string(), "seeds are base+i");
        let visited: u64 = j["batches"].parse().expect("batches");
        assert_eq!(visited, 16, "2 epochs x 8 batches:\n{stdout}");
        let hits: u64 = j["cache-hits"].parse().expect("cache-hits");
        let misses: u64 = j["cache-misses"].parse().expect("cache-misses");
        assert_eq!(hits + misses, visited, "every spilled visit is hit or miss");
        let err: f64 = j["err-pct"].parse().expect("err-pct");
        assert!((0.0..=100.0).contains(&err));
    }
    // Shares cycle through --shares.
    assert_eq!(jobs[0]["share"], "1");
    assert_eq!(jobs[1]["share"], "2");

    let serve = stdout
        .lines()
        .find(|l| l.starts_with("serve: "))
        .unwrap_or_else(|| panic!("no serve line:\n{stdout}"));
    let s = parse_kv(serve);
    assert_eq!(s["jobs"], "3");
    let peak: usize = s["peak-concurrent"].parse().expect("peak-concurrent");
    assert!(
        (1..=2).contains(&peak),
        "admission must cap concurrency at 2:\n{stdout}"
    );
    let hits: u64 = s["cache-hits"].parse().expect("serve cache-hits");
    let misses: u64 = s["cache-misses"].parse().expect("serve cache-misses");
    assert_eq!(hits + misses, 3 * 16, "aggregate = sum of per-job visits");
}

/// `toc serve --script`: one job per line with per-job overrides.
#[test]
fn serve_script_mode() {
    let csv = gen_csv(300);
    let script = temp_path("jobs", "txt");
    std::fs::write(
        &script,
        "# two jobs, different models and shares\n\
         name=alpha model=lr epochs=2 seed=7 share=2\n\
         name=beta model=svm epochs=1 lr=0.1\n",
    )
    .unwrap();
    let out = toc(&[
        "serve",
        csv.to_str().unwrap(),
        "--script",
        script.to_str().unwrap(),
        "--batch-rows",
        "100",
        "--shards",
        "2",
    ]);
    let stdout = assert_ok(&out, "toc serve --script");
    let jobs: Vec<HashMap<String, String>> = stdout
        .lines()
        .filter(|l| l.starts_with("job: "))
        .map(parse_kv)
        .collect();
    assert_eq!(jobs.len(), 2, "one job per script line:\n{stdout}");
    assert_eq!(jobs[0]["name"], "alpha");
    assert_eq!(jobs[0]["seed"], "7");
    assert_eq!(jobs[0]["share"], "2");
    assert_eq!(jobs[1]["name"], "beta");
    assert_eq!(jobs[1]["model"], "svm");
    assert_eq!(jobs[1]["epochs"], "1");

    // A bad script line is a clean error, not a bogus run.
    std::fs::write(&script, "name=x bogus-key=1\n").unwrap();
    assert_fails(
        &toc(&[
            "serve",
            csv.to_str().unwrap(),
            "--script",
            script.to_str().unwrap(),
        ]),
        "serve with unknown script key",
    );
}

/// `toc ingest`: stream a CSV through the bounded-memory chunked encoder
/// into a seekable v2 container. The `ingest:` stats line parses, the
/// result is a normal container (`inspect`/`decompress`/`train` all
/// work), and with a fixed scheme the streamed file is byte-identical to
/// the one `toc compress` writes with the same segment size.
#[test]
fn ingest_streams_csv_into_seekable_container() {
    let csv = gen_csv(300);
    let streamed = temp_path("streamed", "tocz");
    let compressed = temp_path("oneshot", "tocz");
    let back = temp_path("ingest-back", "csv");

    let stdout = assert_ok(
        &toc(&[
            "ingest",
            csv.to_str().unwrap(),
            streamed.to_str().unwrap(),
            "--chunk-rows",
            "64",
        ]),
        "toc ingest",
    );
    let line = stdout
        .lines()
        .find(|l| l.starts_with("ingest:"))
        .unwrap_or_else(|| panic!("no ingest: line in {stdout}"));
    let kv = parse_kv(line);
    assert_eq!(kv["rows"], "300", "{line}");
    assert_eq!(kv["chunks"], "5", "{line}"); // ceil(300/64)
    assert_eq!(kv["chunk-rows"], "64", "{line}");
    let cols: usize = kv["cols"].parse().expect("cols parses");
    assert!(cols >= 2, "{line}");
    let bytes: u64 = kv["bytes"].parse().expect("bytes parses");
    assert_eq!(bytes, std::fs::metadata(&streamed).unwrap().len(), "{line}");
    let peak: u64 = kv["peak-workspace-bytes"].parse().expect("peak parses");
    // Bounded: the workspace held ~one chunk, nowhere near the dataset.
    assert!(peak >= 1, "{line}");
    assert!(
        peak < 300 * cols as u64 * 8,
        "workspace held the dataset: {line}"
    );
    assert!(!kv["schemes"].is_empty(), "{line}");

    // The streamed file is a first-class container.
    let stdout = assert_ok(
        &toc(&["inspect", streamed.to_str().unwrap()]),
        "inspect streamed",
    );
    assert!(
        stdout.contains(": v2,"),
        "streamed file is not v2: {stdout}"
    );
    assert_ok(
        &toc(&[
            "decompress",
            streamed.to_str().unwrap(),
            back.to_str().unwrap(),
        ]),
        "decompress streamed",
    );
    assert_ok(
        &toc(&["train", streamed.to_str().unwrap(), "--epochs", "1"]),
        "train off streamed container",
    );

    // Fixed scheme: streaming writes the *same bytes* as the one-shot path.
    assert_ok(
        &toc(&[
            "ingest",
            csv.to_str().unwrap(),
            streamed.to_str().unwrap(),
            "--chunk-rows",
            "64",
            "--scheme",
            "toc",
        ]),
        "toc ingest --scheme toc",
    );
    assert_ok(
        &toc(&[
            "compress",
            csv.to_str().unwrap(),
            compressed.to_str().unwrap(),
            "--scheme",
            "toc",
            "--segment-rows",
            "64",
        ]),
        "toc compress --segment-rows 64",
    );
    assert_eq!(
        std::fs::read(&streamed).unwrap(),
        std::fs::read(&compressed).unwrap(),
        "streamed container differs from the one-shot encode"
    );
    for p in [csv, streamed, compressed, back] {
        std::fs::remove_file(p).ok();
    }
}

/// Malformed CSV input to `toc ingest` exits nonzero with the structured
/// row-level error and leaves no truncated output file behind.
#[test]
fn ingest_rejects_malformed_csv_and_removes_partial_output() {
    let bad = temp_path("bad", "csv");
    let out_path = temp_path("bad-out", "tocz");
    // Row 2 has a non-numeric cell; with --chunk-rows 1 the first row has
    // already been sealed and written when the error hits.
    std::fs::write(&bad, "1,2\n3,x\n").unwrap();
    let out = toc(&[
        "ingest",
        bad.to_str().unwrap(),
        out_path.to_str().unwrap(),
        "--chunk-rows",
        "1",
    ]);
    assert_fails(&out, "ingest of malformed CSV");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("row 2") && stderr.contains("bad number"),
        "expected the structured row error, got: {stderr}"
    );
    assert!(
        !out_path.exists(),
        "a truncated container was left behind on error"
    );

    // Ragged rows report the offending row and shape.
    std::fs::write(&bad, "1,2,3\n4,5\n").unwrap();
    let out = toc(&["ingest", bad.to_str().unwrap(), out_path.to_str().unwrap()]);
    assert_fails(&out, "ingest of ragged CSV");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("row 2 has 2 fields, expected 3"),
        "expected the shape error, got: {stderr}"
    );
    assert!(!out_path.exists(), "partial output survived a shape error");
    std::fs::remove_file(&bad).ok();
}

/// `toc ingest --resume`: kill a checkpointing run mid-stream (via the
/// library's kill seam — same code path the binary runs), then let the
/// real binary resume it. The resumed container must be byte-identical
/// to an uninterrupted binary run and the sidecar must be gone.
#[test]
fn ingest_resume_completes_killed_run_byte_identically() {
    use toc_data::ingest::{ingest_csv_container_killable, KillPoint};
    use toc_data::{sidecar_path, CsvContainerJob};

    let csv = gen_csv(300);
    let full = temp_path("full", "tocz");
    let killed = temp_path("killed", "tocz");

    assert_ok(
        &toc(&[
            "ingest",
            csv.to_str().unwrap(),
            full.to_str().unwrap(),
            "--chunk-rows",
            "64",
            "--checkpoint-every",
            "2",
        ]),
        "uninterrupted checkpointing ingest",
    );
    assert!(!sidecar_path(&full).exists(), "sidecar survived success");
    let expect = std::fs::read(&full).unwrap();

    // Same configuration the binary derives from these flags.
    let job = CsvContainerJob {
        csv: csv.clone(),
        out: killed.clone(),
        chunk_rows: 64,
        scheme: None,
        encode: Default::default(),
        checkpoint_every: 2,
    };
    let outcome =
        ingest_csv_container_killable(&job, false, Some(KillPoint::AfterSealedChunk { chunks: 3 }))
            .unwrap();
    assert!(outcome.killed.is_some(), "kill point did not fire");
    assert!(sidecar_path(&killed).exists(), "no sidecar to resume from");

    let stdout = assert_ok(
        &toc(&[
            "ingest",
            csv.to_str().unwrap(),
            killed.to_str().unwrap(),
            "--chunk-rows",
            "64",
            "--checkpoint-every",
            "2",
            "--resume",
        ]),
        "toc ingest --resume",
    );
    let kv = parse_kv(
        stdout
            .lines()
            .find(|l| l.starts_with("ingest:"))
            .unwrap_or_else(|| panic!("no ingest: line in {stdout}")),
    );
    assert_eq!(kv["rows"], "300", "{stdout}");
    assert_eq!(kv["chunks"], "5", "{stdout}");
    let resumed: u64 = kv["resumed-chunks"].parse().expect("resumed-chunks parses");
    // Killed after chunk 3, last checkpoint at chunk 2: two chunks survive.
    assert_eq!(resumed, 2, "{stdout}");
    assert_eq!(
        std::fs::read(&killed).unwrap(),
        expect,
        "resumed container differs from the uninterrupted one"
    );
    assert!(!sidecar_path(&killed).exists(), "sidecar survived resume");

    // --resume with checkpointing explicitly disabled is a flag error.
    assert_fails(
        &toc(&[
            "ingest",
            csv.to_str().unwrap(),
            killed.to_str().unwrap(),
            "--resume",
            "--checkpoint-every",
            "0",
        ]),
        "--resume with --checkpoint-every 0",
    );
    for p in [csv, full, killed] {
        std::fs::remove_file(p).ok();
    }
}

/// With checkpointing active, a mid-stream error must *keep* the partial
/// output and sidecar (they are the resume artifact); fixing the source
/// past the checkpoint and rerunning with --resume completes the
/// container without re-reading the already-ingested prefix.
#[test]
fn ingest_error_with_checkpointing_leaves_resumable_state() {
    use toc_data::sidecar_path;

    let csv = temp_path("fixable", "csv");
    let out_path = temp_path("fixable-out", "tocz");
    let fresh = temp_path("fixable-fresh", "tocz");
    // Rows 1–2 each seal a chunk and checkpoint; row 3 is garbage.
    std::fs::write(&csv, "1,2\n3,4\n5,x\n7,8\n").unwrap();
    let out = toc(&[
        "ingest",
        csv.to_str().unwrap(),
        out_path.to_str().unwrap(),
        "--chunk-rows",
        "1",
        "--checkpoint-every",
        "1",
    ]);
    assert_fails(&out, "ingest of broken CSV with checkpointing");
    assert!(
        out_path.exists(),
        "checkpointed partial output must survive the error"
    );
    assert!(
        sidecar_path(&out_path).exists(),
        "sidecar must survive the error"
    );

    // Fix the bad cell. Bytes before the checkpointed source offset are
    // untouched, so the resume continues instead of restarting.
    std::fs::write(&csv, "1,2\n3,4\n5,6\n7,8\n").unwrap();
    let stdout = assert_ok(
        &toc(&[
            "ingest",
            csv.to_str().unwrap(),
            out_path.to_str().unwrap(),
            "--chunk-rows",
            "1",
            "--resume",
            "--checkpoint-every",
            "1",
        ]),
        "resume after fixing the CSV",
    );
    let kv = parse_kv(
        stdout
            .lines()
            .find(|l| l.starts_with("ingest:"))
            .unwrap_or_else(|| panic!("no ingest: line in {stdout}")),
    );
    assert_eq!(kv["rows"], "4", "{stdout}");
    let resumed: u64 = kv["resumed-chunks"].parse().expect("resumed-chunks");
    assert_eq!(resumed, 2, "both pre-error chunks restored: {stdout}");
    assert!(!sidecar_path(&out_path).exists());

    // The repaired file matches a from-scratch ingest of the fixed CSV.
    assert_ok(
        &toc(&[
            "ingest",
            csv.to_str().unwrap(),
            fresh.to_str().unwrap(),
            "--chunk-rows",
            "1",
        ]),
        "fresh ingest of the fixed CSV",
    );
    assert_eq!(
        std::fs::read(&out_path).unwrap(),
        std::fs::read(&fresh).unwrap(),
        "resumed-after-fix container differs from a fresh ingest"
    );
    for p in [csv, out_path, fresh] {
        std::fs::remove_file(p).ok();
    }
}

/// `toc train --follow` against a file another process is appending to:
/// the trainer tails the CSV on disk, ingests rows as they land, and the
/// final summary covers everything that was ever written.
#[test]
fn train_follow_tails_a_file_grown_by_another_process() {
    use std::io::Write as _;

    let csv = temp_path("tail", "csv");
    let total = 400usize;
    let row = |r: usize| {
        let y = if r.is_multiple_of(3) { 1 } else { -1 };
        format!(
            "{},{},{},{y}\n",
            (r % 7) as f64 * 0.5,
            (r % 11) as f64 - 5.0,
            (r % 3) as f64,
        )
    };
    let mut head = String::from("f0,f1,f2,y\n");
    for r in 0..150 {
        head.push_str(&row(r));
    }
    std::fs::write(&csv, &head).unwrap();

    let child = std::process::Command::new(env!("CARGO_BIN_EXE_toc"))
        .args([
            "train",
            csv.to_str().unwrap(),
            "--follow",
            "--budget",
            "0",
            "--shards",
            "2",
            "--batch-rows",
            "50",
            "--window",
            "2",
            "--max-pending",
            "2",
            "--poll-ms",
            "2",
            "--idle-ms",
            "400",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn toc train --follow");

    // Grow the file from this process while the trainer tails it.
    let mut f = std::fs::OpenOptions::new().append(true).open(&csv).unwrap();
    for burst in 0..5 {
        std::thread::sleep(std::time::Duration::from_millis(40));
        let lo = 150 + burst * 50;
        for r in lo..lo + 50 {
            f.write_all(row(r).as_bytes()).unwrap();
        }
        f.flush().unwrap();
    }
    drop(f);

    let out = child.wait_with_output().expect("toc train --follow exits");
    let stdout = assert_ok(&out, "toc train --follow (live tail)");
    let ingest = parse_kv(
        stdout
            .lines()
            .find(|l| l.starts_with("ingest:"))
            .unwrap_or_else(|| panic!("no ingest: line in {stdout}")),
    );
    assert_eq!(ingest["rows"], total.to_string(), "{stdout}");
    assert_eq!(ingest["chunks"], "8", "{stdout}"); // 400 / 50
    let bp = parse_kv(
        stdout
            .lines()
            .find(|l| l.starts_with("backpressure:"))
            .unwrap_or_else(|| panic!("no backpressure: line in {stdout}")),
    );
    assert_eq!(bp["max-pending"], "2", "{stdout}");
    let peak: usize = bp["peak-pending"].parse().expect("peak-pending parses");
    assert!(peak <= 2, "producer outran its budget: {stdout}");
    let _stall: u64 = bp["stall-ms"].parse().expect("stall-ms parses");
    let online = parse_kv(
        stdout
            .lines()
            .find(|l| l.starts_with("online:"))
            .unwrap_or_else(|| panic!("no online: line in {stdout}")),
    );
    assert_eq!(online["consumed"], "8", "{stdout}");
    assert!(stdout.contains("training error"), "{stdout}");

    // Follow-only flags are rejected without --follow, and a finished
    // container cannot be tailed.
    assert_fails(
        &toc(&[
            "train",
            csv.to_str().unwrap(),
            "--budget",
            "0",
            "--max-pending",
            "2",
        ]),
        "--max-pending without --follow",
    );
    std::fs::remove_file(csv).ok();
}

/// `toc train --follow`: rows stream into a live store while the online
/// pass trains concurrently; the ingest:/window:/online: lines parse and
/// tile the stream, and the flag interacts correctly with --budget.
#[test]
fn train_follow_streams_and_reports_windows() {
    let csv = gen_csv(400);
    let stdout = assert_ok(
        &toc(&[
            "train",
            csv.to_str().unwrap(),
            "--follow",
            "--budget",
            "0",
            "--shards",
            "2",
            "--batch-rows",
            "50",
            "--window",
            "3",
        ]),
        "toc train --follow",
    );
    let ingest = parse_kv(
        stdout
            .lines()
            .find(|l| l.starts_with("ingest:"))
            .unwrap_or_else(|| panic!("no ingest: line in {stdout}")),
    );
    assert_eq!(ingest["rows"], "400", "{stdout}");
    assert_eq!(ingest["chunks"], "8", "{stdout}"); // 400 / 50
    let windows: Vec<HashMap<String, String>> = stdout
        .lines()
        .filter(|l| l.starts_with("window:"))
        .map(parse_kv)
        .collect();
    assert_eq!(windows.len(), 3, "8 batches / window 3 => 3+3+2:\n{stdout}");
    // Windows tile the batch stream back to back.
    let mut expect_start = 0usize;
    for (i, w) in windows.iter().enumerate() {
        let (start, end) = w["batches"]
            .split_once("..")
            .unwrap_or_else(|| panic!("unparseable window range: {w:?}"));
        assert_eq!(start.parse::<usize>().unwrap(), expect_start, "window {i}");
        expect_start = end.parse().unwrap();
        let err: f64 = w["error"].parse().expect("window error parses");
        assert!((0.0..=1.0).contains(&err), "window {i}: {err}");
    }
    assert_eq!(expect_start, 8, "windows did not cover the stream");
    let online = parse_kv(
        stdout
            .lines()
            .find(|l| l.starts_with("online:"))
            .unwrap_or_else(|| panic!("no online: line in {stdout}")),
    );
    assert_eq!(online["windows"], "3", "{stdout}");
    assert_eq!(online["consumed"], "8", "{stdout}");
    let during: usize = online["windows-during-ingest"].parse().expect("during");
    assert!(during <= 3, "{stdout}");
    assert!(
        stdout.contains("training error"),
        "no final summary line: {stdout}"
    );

    // The follower always reports its backpressure counters (unbounded
    // here: max-pending=0).
    let bp = parse_kv(
        stdout
            .lines()
            .find(|l| l.starts_with("backpressure:"))
            .unwrap_or_else(|| panic!("no backpressure: line in {stdout}")),
    );
    assert_eq!(bp["max-pending"], "0", "{stdout}");
    let _peak: usize = bp["peak-pending"].parse().expect("peak-pending parses");

    // Flag plumbing: --follow needs --budget, --window needs --follow,
    // and a finished .tocz container cannot be tailed.
    assert_fails(
        &toc(&["train", csv.to_str().unwrap(), "--follow"]),
        "--follow without --budget",
    );
    assert_fails(
        &toc(&[
            "train",
            csv.to_str().unwrap(),
            "--budget",
            "0",
            "--window",
            "4",
        ]),
        "--window without --follow",
    );
    let tocz = temp_path("follow", "tocz");
    assert_ok(
        &toc(&["compress", csv.to_str().unwrap(), tocz.to_str().unwrap()]),
        "compress for follow rejection",
    );
    assert_fails(
        &toc(&["train", tocz.to_str().unwrap(), "--follow", "--budget", "0"]),
        "--follow on a .tocz container",
    );
    for p in [csv, tocz] {
        std::fs::remove_file(p).ok();
    }
}

/// A non-`.tocz` input to a container-reading path must be reported as
/// "not a .tocz container", not as a bogus "unsupported version N" taken
/// from whatever its fifth byte happens to be.
#[test]
fn non_container_input_reports_bad_magic() {
    let csv = gen_csv(50);
    let out = toc(&["inspect", csv.to_str().unwrap()]);
    assert_fails(&out, "inspect on a CSV");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("not a .tocz container"),
        "expected a magic-check error, got: {stderr}"
    );
    assert!(
        !stderr.contains("unsupported"),
        "must not misreport a CSV as an unsupported container version: {stderr}"
    );
}
