//! CLI smoke tests: drive the real `toc` binary over a temp dir and
//! assert exit codes plus that the printed `IoStats` lines parse. These
//! are the checks a packaging pipeline would run — everything goes
//! through `std::process::Command`, not library calls.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Output;
use std::sync::atomic::{AtomicU64, Ordering};

fn toc(args: &[&str]) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_toc"))
        .args(args)
        .output()
        .expect("spawn toc binary")
}

fn assert_ok(out: &Output, what: &str) -> String {
    assert!(
        out.status.success(),
        "{what} failed (status {:?}):\nstdout: {}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

fn assert_fails(out: &Output, what: &str) {
    assert!(
        !out.status.success(),
        "{what} unexpectedly succeeded:\n{}",
        String::from_utf8_lossy(&out.stdout),
    );
    assert!(
        !out.stderr.is_empty(),
        "{what} failed without an error message"
    );
}

static NEXT: AtomicU64 = AtomicU64::new(0);

fn temp_path(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "toc-smoke-{}-{}-{tag}.{ext}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Parse a `key=value key=value ...` stats line emitted by `toc train`.
fn parse_kv(line: &str) -> HashMap<String, String> {
    line.split_whitespace()
        .filter_map(|tok| tok.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn gen_csv(rows: usize) -> PathBuf {
    let csv = temp_path("data", "csv");
    let out = toc(&[
        "gen",
        "--preset",
        "census",
        "--rows",
        &rows.to_string(),
        csv.to_str().unwrap(),
    ]);
    assert_ok(&out, "toc gen");
    csv
}

#[test]
fn compress_roundtrip_with_planner_flags() {
    let csv = gen_csv(300);
    let tocz = temp_path("compressed", "tocz");
    let back = temp_path("back", "csv");
    let out = toc(&[
        "compress",
        csv.to_str().unwrap(),
        tocz.to_str().unwrap(),
        "--scheme",
        "cla",
        "--cla-planner",
        "sample",
        "--cla-sample",
        "64",
        "--batch-rows",
        "100",
    ]);
    let stdout = assert_ok(&out, "toc compress");
    assert!(stdout.contains("CLA:"), "unexpected output: {stdout}");
    assert_ok(
        &toc(&["decompress", tocz.to_str().unwrap(), back.to_str().unwrap()]),
        "toc decompress",
    );
    assert_ok(&toc(&["inspect", tocz.to_str().unwrap()]), "toc inspect");
    for p in [csv, tocz, back] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn train_over_async_engines_prints_parseable_io_stats() {
    let csv = gen_csv(400);
    for (io, placement) in [("pool", "stripe"), ("ring", "pack"), ("sync", "stripe")] {
        let out = toc(&[
            "train",
            csv.to_str().unwrap(),
            "--epochs",
            "2",
            "--budget",
            "0",
            "--shards",
            "2",
            "--prefetch",
            "3",
            "--mbps",
            "2000",
            "--io",
            io,
            "--placement",
            placement,
            "--cla-planner",
            "greedy",
        ]);
        let stdout = assert_ok(&out, &format!("toc train --io {io}"));
        assert!(
            stdout.contains("spilled batches across 2 shards"),
            "missing store line: {stdout}"
        );
        // The human io line and the machine io-engine line both parse.
        let io_line = stdout
            .lines()
            .find(|l| l.starts_with("io:"))
            .unwrap_or_else(|| panic!("no io: line in {stdout}"));
        let reads: u64 = io_line
            .split_whitespace()
            .nth(1)
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| panic!("unparseable reads in {io_line:?}"));
        assert!(reads >= 1, "no spill reads counted: {io_line}");

        let engine_line = stdout
            .lines()
            .find(|l| l.starts_with("io-engine:"))
            .unwrap_or_else(|| panic!("no io-engine: line in {stdout}"));
        let kv = parse_kv(engine_line);
        assert_eq!(kv["kind"], io);
        assert_eq!(kv["placement"], placement);
        let submitted: u64 = kv["submitted"].parse().expect("submitted parses");
        let completed: u64 = kv["completed"].parse().expect("completed parses");
        let coalesced: u64 = kv["coalesced"].parse().expect("coalesced parses");
        let max_in_flight: u64 = kv["max-in-flight"].parse().expect("max-in-flight parses");
        let p50: u64 = kv["lat-p50-us"].parse().expect("p50 parses");
        let p99: u64 = kv["lat-p99-us"].parse().expect("p99 parses");
        assert!(completed <= submitted, "{engine_line}");
        assert!(p50 <= p99, "{engine_line}");
        if io == "sync" {
            assert_eq!(submitted, 0, "sync engine must not submit: {engine_line}");
        } else {
            assert!(submitted >= 1, "async engine unused: {engine_line}");
            assert!(max_in_flight >= 1, "{engine_line}");
        }
        let _ = coalesced; // may legitimately be 0 under pool/stripe
    }
    std::fs::remove_file(csv).ok();
}

#[test]
fn out_of_core_flags_require_budget_and_reject_bad_values() {
    let csv = gen_csv(120);
    assert_fails(
        &toc(&["train", csv.to_str().unwrap(), "--io", "ring"]),
        "--io without --budget",
    );
    assert_fails(
        &toc(&[
            "train",
            csv.to_str().unwrap(),
            "--budget",
            "0",
            "--io",
            "uring",
        ]),
        "unknown io engine",
    );
    assert_fails(
        &toc(&[
            "train",
            csv.to_str().unwrap(),
            "--budget",
            "0",
            "--placement",
            "scatter",
        ]),
        "unknown placement",
    );
    assert_fails(
        &toc(&["train", csv.to_str().unwrap(), "--budget", "x"]),
        "unparseable budget",
    );
    assert_fails(
        &toc(&[
            "compress",
            csv.to_str().unwrap(),
            "/tmp/unused.tocz",
            "--scheme",
            "cla",
            "--cla-sample",
            "0",
        ]),
        "zero planner sample",
    );
    assert_fails(&toc(&["frobnicate"]), "unknown subcommand");
    std::fs::remove_file(csv).ok();
}
