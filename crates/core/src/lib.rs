#![forbid(unsafe_code)]
//! # toc-core — Tuple-Oriented Compression
//!
//! Implementation of the TOC lossless matrix compression scheme and its
//! decompression-free compressed matrix kernels, after Li et al.,
//! *Tuple-oriented Compression for Large-scale Mini-batch Stochastic
//! Gradient Descent*, SIGMOD 2019.
//!
//! The pipeline has three layers (paper §3, Figure 3):
//!
//! 1. **Sparse encoding** ([`toc_linalg::SparseRows`]): zeros are elided and
//!    each cell becomes a column index:value pair.
//! 2. **Logical encoding** ([`encode::logical_encode`]): an LZW-inspired
//!    prefix-tree dictionary over *sequences of pairs*, respecting tuple
//!    boundaries; each tuple becomes a short vector of tree-node indexes.
//! 3. **Physical encoding** ([`batch::TocBatch`]): bit packing and value
//!    indexing compress the integers and doubles into one byte buffer.
//!
//! Matrix operations (`A·v`, `v·A`, `A·M`, `M·A`, `A.*c`) execute directly
//! on the compressed buffer ([`ops`], paper §4) after rebuilding the
//! parent-pointer decode tree `C'` ([`tree::DecodeTree`]).
//!
//! ```
//! use toc_core::TocBatch;
//! use toc_linalg::DenseMatrix;
//!
//! let batch = DenseMatrix::from_rows(vec![
//!     vec![1.1, 2.0, 3.0, 1.4],
//!     vec![1.1, 2.0, 3.0, 0.0],
//!     vec![0.0, 1.1, 3.0, 1.4],
//!     vec![1.1, 2.0, 0.0, 0.0],
//! ]);
//! let toc = TocBatch::encode(&batch);
//! // Lossless:
//! assert_eq!(toc.decode(), batch);
//! // Decompression-free matrix ops:
//! let y = toc.matvec(&[1.0, 1.0, 1.0, 1.0]).unwrap();
//! assert_eq!(y, batch.matvec(&[1.0, 1.0, 1.0, 1.0]));
//! ```

pub mod batch;
pub mod elementwise;
pub mod encode;
pub mod error;
pub mod hash;
pub mod ops;
pub mod physical;
pub mod tree;

pub use batch::{KernelScratch, PhysicalCodec, TocBatch, TocStats, TocView};
pub use encode::{logical_encode, LogicalEncoded};
pub use error::TocError;
pub use tree::{DecodeTree, TreeScratch};
