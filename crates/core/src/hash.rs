//! A small FxHash-style hasher for the prefix-tree child lookup.
//!
//! The encoder performs one hash-map probe per column index:value pair
//! (§3.1.2 is `O(|B|)` only if each probe is O(1) and cheap). The std
//! `SipHash` is a poor fit for short fixed-size keys, so we ship the
//! well-known Fx multiply-rotate hash (as used by rustc) in ~30 lines
//! instead of pulling an external crate.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; not HashDoS-resistant, which is acceptable for
/// compression dictionaries built from trusted in-process data.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32, u64), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 2, (i as u64) << 32), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m[&(i, i * 2, (i as u64) << 32)], i);
        }
        assert_eq!(m.get(&(1, 1, 1)), None);
    }

    #[test]
    fn hasher_distinguishes_field_order() {
        fn h(a: u32, b: u32) -> u64 {
            let mut hs = FxHasher::default();
            hs.write_u32(a);
            hs.write_u32(b);
            hs.finish()
        }
        assert_ne!(h(1, 2), h(2, 1));
    }

    #[test]
    fn write_bytes_handles_remainder() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        // Different lengths that zero-pad to the same word may collide, but
        // the hasher must at least be deterministic.
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3]);
        assert_eq!(a.finish(), c.finish());
        let _ = b.finish();
    }
}
