//! Logical encoding (§3.1): the LZW-inspired prefix-tree encoding algorithm
//! (Algorithm 1) that turns a sparse-encoded table `B` into the encoded
//! table `D` plus the first layer of the prefix tree `I`.
//!
//! Unlike LZW, tuple boundaries are preserved: each tuple is encoded
//! separately (the dictionary is shared across tuples) and the compression
//! unit is a whole column index:value pair, never a byte.

use crate::hash::FxHashMap;
use toc_linalg::sparse::{ColVal, SparseRows};

/// Output of the logical encoding step: everything needed to run compressed
/// kernels or to apply the physical encoding. Matches the paper's `(I, D)`
/// with explicit row boundaries.
#[derive(Clone, Debug)]
pub struct LogicalEncoded {
    /// Number of matrix rows.
    pub rows: usize,
    /// Number of matrix columns.
    pub cols: usize,
    /// `I`: the unique column index:value pairs in first-occurrence order.
    /// Tree node `i + 1` has key `first_layer[i]` (node 0 is the root).
    pub first_layer: Vec<ColVal>,
    /// `D`, concatenated: prefix-tree node indexes for all tuples.
    pub codes: Vec<u32>,
    /// Tuple start indexes into `codes`; length `rows + 1`, first element 0.
    pub row_offsets: Vec<u32>,
    /// Total prefix-tree node count (root + first layer + added nodes).
    pub n_nodes: u32,
}

impl LogicalEncoded {
    /// Codes of tuple `r`.
    #[inline]
    pub fn row_codes(&self, r: usize) -> &[u32] {
        &self.codes[self.row_offsets[r] as usize..self.row_offsets[r + 1] as usize]
    }
}

/// Dictionary key for a prefix-tree child: (parent node, column, value bits).
/// Values are keyed by their IEEE-754 bit pattern so the scheme stays
/// lossless for every representable double.
type ChildKey = (u32, u32, u64);

/// Algorithm 1 (`PrefixTreeEncode`): encode the sparse table `B`.
///
/// Phase I seeds the tree with every distinct column index:value pair as a
/// child of the root. Phase II scans each tuple, repeatedly taking the
/// longest prefix of the remaining tuple that exists in the tree
/// (`LongestMatchFromTree`), emitting that node's index, and growing the
/// tree by one node so later tuples (and later positions of this tuple) can
/// reuse the extended sequence.
///
/// Runs in `O(|B|)` where `|B|` is the number of column index:value pairs.
pub fn logical_encode(sparse: &SparseRows) -> LogicalEncoded {
    let mut child: FxHashMap<ChildKey, u32> = FxHashMap::default();
    let mut first_layer: Vec<ColVal> = Vec::new();

    // Phase I: initialize the first layer with all unique pairs.
    for p in sparse.pairs() {
        let key: ChildKey = (0, p.col, p.val.to_bits());
        child.entry(key).or_insert_with(|| {
            first_layer.push(*p);
            first_layer.len() as u32 // node indexes start at 1; 0 is the root
        });
    }

    let mut next_idx = first_layer.len() as u32 + 1;
    let mut codes: Vec<u32> = Vec::new();
    let mut row_offsets: Vec<u32> = Vec::with_capacity(sparse.rows() + 1);
    row_offsets.push(0);

    // Phase II: encode each tuple with longest matches, growing the tree.
    for r in 0..sparse.rows() {
        let t = sparse.row(r);
        let mut i = 0usize;
        while i < t.len() {
            // LongestMatchFromTree(t, i, C): the first element always
            // matches thanks to phase I.
            let mut n = child[&(0, t[i].col, t[i].val.to_bits())];
            let mut j = i + 1;
            while j < t.len() {
                match child.get(&(n, t[j].col, t[j].val.to_bits())) {
                    Some(&n2) => {
                        n = n2;
                        j += 1;
                    }
                    None => break,
                }
            }
            codes.push(n);
            if j < t.len() {
                // Extend the tree with the sequence `seq(n) ++ t[j]`.
                child.insert((n, t[j].col, t[j].val.to_bits()), next_idx);
                next_idx += 1;
            }
            i = j;
        }
        row_offsets.push(codes.len() as u32);
    }

    LogicalEncoded {
        rows: sparse.rows(),
        cols: sparse.cols(),
        first_layer,
        codes,
        row_offsets,
        n_nodes: next_idx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toc_linalg::DenseMatrix;

    /// The Figure 3 running example (columns are 0-based here, the paper is
    /// 1-based).
    fn fig3_matrix() -> DenseMatrix {
        DenseMatrix::from_rows(vec![
            vec![1.1, 2.0, 3.0, 1.4],
            vec![1.1, 2.0, 3.0, 0.0],
            vec![0.0, 1.1, 3.0, 1.4],
            vec![1.1, 2.0, 0.0, 0.0],
        ])
    }

    #[test]
    fn fig3_first_layer() {
        let enc = logical_encode(&SparseRows::encode(&fig3_matrix()));
        let expect = [
            (0u32, 1.1),
            (1, 2.0),
            (2, 3.0),
            (3, 1.4),
            (1, 1.1), // R3's 2:1.1 (paper is 1-based)
        ];
        assert_eq!(enc.first_layer.len(), expect.len());
        for (got, want) in enc.first_layer.iter().zip(expect) {
            assert_eq!((got.col, got.val), want);
        }
    }

    #[test]
    fn fig3_encoded_table() {
        // Table D in Figure 3: R1=[1,2,3,4], R2=[6,3], R3=[5,8], R4=[6].
        let enc = logical_encode(&SparseRows::encode(&fig3_matrix()));
        assert_eq!(enc.row_codes(0), &[1, 2, 3, 4]);
        assert_eq!(enc.row_codes(1), &[6, 3]);
        assert_eq!(enc.row_codes(2), &[5, 8]);
        assert_eq!(enc.row_codes(3), &[6]);
        // Tuple start indexes from Figure 3: 0 4 6 8 (9).
        assert_eq!(enc.row_offsets, vec![0, 4, 6, 8, 9]);
        // Nodes 0..=10 exist after encoding (Table 2 adds 6..=10).
        assert_eq!(enc.n_nodes, 11);
    }

    #[test]
    fn empty_matrix() {
        let m = DenseMatrix::zeros(3, 4);
        let enc = logical_encode(&SparseRows::encode(&m));
        assert!(enc.first_layer.is_empty());
        assert!(enc.codes.is_empty());
        assert_eq!(enc.row_offsets, vec![0, 0, 0, 0]);
        assert_eq!(enc.n_nodes, 1);
    }

    #[test]
    fn identical_rows_collapse_to_single_codes() {
        // After warm-up, a repeated full row is a single code.
        let rows: Vec<Vec<f64>> = (0..6).map(|_| vec![1.0, 2.0, 3.0, 4.0]).collect();
        let enc = logical_encode(&SparseRows::encode(&DenseMatrix::from_rows(rows)));
        // Row 0: [1] [2] [3] [4]; row 1: [1,2] [3,4]; row 2: [1,2,3] [4] or
        // similar; eventually a row encodes as one code.
        let last = enc.row_codes(5);
        assert_eq!(
            last.len(),
            1,
            "steady state should be a single code, got {last:?}"
        );
    }

    #[test]
    fn second_identical_row_reuses_grown_sequences() {
        // Row 0 encodes its 6 distinct pairs as first-layer nodes 1..=6 and
        // grows pair-chains 7..=11. Row 1 then matches two-pair sequences:
        // [7, 9, 11].
        let row = vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0];
        let m = DenseMatrix::from_rows(vec![row.clone(), row]);
        let enc = logical_encode(&SparseRows::encode(&m));
        assert_eq!(enc.row_codes(0), &[1, 2, 3, 4, 5, 6]);
        assert_eq!(enc.row_codes(1), &[7, 9, 11]);
    }

    #[test]
    fn codes_only_reference_nodes_completed_before_use() {
        // Because columns strictly increase within a tuple, a node added
        // while encoding a row can never be referenced later in the same
        // row; every emitted code names a node that already exists, so
        // code < counter at the moment of emission (the decoder in
        // Algorithm 2 only needs code <= counter).
        let mut rows = Vec::new();
        for r in 0..40 {
            rows.push(
                (0..30)
                    .map(|c| {
                        if (c + r) % 4 == 0 {
                            ((c * r) % 5) as f64 + 1.0
                        } else {
                            0.0
                        }
                    })
                    .collect::<Vec<f64>>(),
            );
        }
        let enc = logical_encode(&SparseRows::encode(&DenseMatrix::from_rows(rows)));
        let mut counter = enc.first_layer.len() as u32 + 1;
        for r in 0..enc.rows {
            let codes = enc.row_codes(r);
            for (j, &c) in codes.iter().enumerate() {
                assert!(c >= 1 && c < counter, "row {r} code {j}");
                if j + 1 < codes.len() {
                    counter += 1; // a node is added after every non-final match
                }
            }
        }
        assert_eq!(counter, enc.n_nodes);
    }

    #[test]
    fn distinct_values_in_same_column_get_distinct_nodes() {
        let m = DenseMatrix::from_rows(vec![vec![1.0], vec![2.0]]);
        let enc = logical_encode(&SparseRows::encode(&m));
        assert_eq!(enc.first_layer.len(), 2);
        assert_eq!(enc.row_codes(0), &[1]);
        assert_eq!(enc.row_codes(1), &[2]);
    }

    #[test]
    fn linear_complexity_smoke() {
        // 2000 identical sparse rows should produce ~1 code per row in the
        // steady state and far fewer pairs in I than in B.
        let row: Vec<f64> = (0..50)
            .map(|c| {
                if c % 3 == 0 {
                    (c % 7) as f64 + 1.0
                } else {
                    0.0
                }
            })
            .collect();
        let rows: Vec<Vec<f64>> = (0..2000).map(|_| row.clone()).collect();
        let sparse = SparseRows::encode(&DenseMatrix::from_rows(rows));
        let enc = logical_encode(&sparse);
        assert!(enc.codes.len() < sparse.num_pairs() / 4);
    }
}
