//! Error type for parsing and validating TOC physical buffers.

/// Errors raised when reading untrusted TOC bytes or executing kernels with
/// mismatched dimensions. Corrupt input must surface as an error, never a
/// panic (failure-injection tests rely on this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TocError {
    /// The buffer does not follow the TOC physical layout.
    Corrupt(String),
    /// An operand's dimensions do not match the encoded matrix.
    Dimension {
        expected: usize,
        got: usize,
        what: &'static str,
    },
    /// The buffer uses an unsupported format version or codec id.
    Unsupported(String),
}

impl std::fmt::Display for TocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TocError::Corrupt(msg) => write!(f, "corrupt TOC buffer: {msg}"),
            TocError::Dimension {
                expected,
                got,
                what,
            } => {
                write!(
                    f,
                    "dimension mismatch for {what}: expected {expected}, got {got}"
                )
            }
            TocError::Unsupported(msg) => write!(f, "unsupported TOC feature: {msg}"),
        }
    }
}

impl std::error::Error for TocError {}

pub(crate) fn corrupt(msg: impl Into<String>) -> TocError {
    TocError::Corrupt(msg.into())
}
