//! Physical encoding primitives (§3.2): bit packing of small non-negative
//! integers and the raw `f64` value array used by value indexing.
//!
//! Bit packing stores each integer of an array in
//! `ceil((floor(log2 max) + 1) / 8)` bytes (1, 2, 3 or 4), with a header
//! carrying the element count and the byte width, exactly as described in
//! the paper. Readers access elements in place (§4.1.1): a 3-byte integer is
//! widened into a `u32` with the leading byte masked to zero.

use crate::error::{corrupt, TocError};

/// Byte width needed to bit-pack integers up to `max` (paper's formula;
/// an empty array / `max == 0` packs with width 1).
#[inline]
pub fn width_for(max: u32) -> u8 {
    match max {
        0..=0xFF => 1,
        0x100..=0xFFFF => 2,
        0x1_0000..=0xFF_FFFF => 3,
        _ => 4,
    }
}

/// Append a little-endian `u32`.
#[inline]
pub fn write_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Write a bit-packed integer array: `u32` count, `u8` width, payload.
pub fn write_packed_ints(buf: &mut Vec<u8>, vals: &[u32]) {
    let max = vals.iter().copied().max().unwrap_or(0);
    let w = width_for(max);
    write_u32(
        buf,
        u32::try_from(vals.len()).expect("array too large for u32 count"),
    );
    buf.push(w);
    buf.reserve(vals.len() * w as usize);
    match w {
        1 => {
            for &v in vals {
                buf.push(v as u8);
            }
        }
        2 => {
            for &v in vals {
                buf.extend_from_slice(&(v as u16).to_le_bytes());
            }
        }
        3 => {
            for &v in vals {
                buf.extend_from_slice(&v.to_le_bytes()[..3]);
            }
        }
        _ => {
            for &v in vals {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
}

/// Write an integer array with LEB128 varints: `u32` count, `u8` marker 0,
/// `u32` payload byte length, payload. This is the optional Varint physical
/// codec the paper lists as future work (§3.2).
pub fn write_varint_ints(buf: &mut Vec<u8>, vals: &[u32]) {
    write_u32(
        buf,
        u32::try_from(vals.len()).expect("array too large for u32 count"),
    );
    buf.push(0); // width marker 0 = varint
    let len_pos = buf.len();
    write_u32(buf, 0); // payload length back-patched below
    for &v in vals {
        let mut x = v;
        loop {
            let byte = (x & 0x7F) as u8;
            x >>= 7;
            if x == 0 {
                buf.push(byte);
                break;
            }
            buf.push(byte | 0x80);
        }
    }
    let payload = (buf.len() - len_pos - 4) as u32;
    buf[len_pos..len_pos + 4].copy_from_slice(&payload.to_le_bytes());
}

/// Write the unique-value array: `u32` count then `count` little-endian f64s.
pub fn write_f64s(buf: &mut Vec<u8>, vals: &[f64]) {
    write_u32(buf, u32::try_from(vals.len()).expect("too many values"));
    for &v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Sequential reader over a physical buffer with bounds-checked primitives.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub fn read_u8(&mut self) -> Result<u8, TocError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| corrupt("unexpected end of buffer"))?;
        self.pos += 1;
        Ok(b)
    }

    pub fn read_u16(&mut self) -> Result<u16, TocError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes(s.try_into().unwrap()))
    }

    pub fn read_u32(&mut self) -> Result<u32, TocError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], TocError> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a packed or varint integer array written by
    /// [`write_packed_ints`] / [`write_varint_ints`].
    pub fn read_ints(&mut self) -> Result<IntSlice<'a>, TocError> {
        let count = self.read_u32()? as usize;
        let width = self.read_u8()?;
        match width {
            1..=4 => {
                let payload = self.take(count * width as usize)?;
                Ok(match width {
                    1 => IntSlice::W1(payload),
                    2 => IntSlice::W2(payload),
                    3 => IntSlice::W3(payload),
                    _ => IntSlice::W4(payload),
                })
            }
            0 => {
                let payload_len = self.read_u32()? as usize;
                let payload = self.take(payload_len)?;
                let mut out = Vec::with_capacity(count);
                let mut pos = 0usize;
                for _ in 0..count {
                    let mut x: u32 = 0;
                    let mut shift = 0u32;
                    loop {
                        let byte = *payload
                            .get(pos)
                            .ok_or_else(|| corrupt("truncated varint"))?;
                        pos += 1;
                        if shift >= 32 {
                            return Err(corrupt("varint overflows u32"));
                        }
                        x |= ((byte & 0x7F) as u32) << shift;
                        if byte & 0x80 == 0 {
                            break;
                        }
                        shift += 7;
                    }
                    out.push(x);
                }
                if pos != payload.len() {
                    return Err(corrupt("trailing bytes in varint payload"));
                }
                Ok(IntSlice::Owned(out))
            }
            w => Err(corrupt(format!("invalid int width {w}"))),
        }
    }

    /// Read an f64 array written by [`write_f64s`].
    pub fn read_f64s(&mut self) -> Result<F64Slice<'a>, TocError> {
        let count = self.read_u32()? as usize;
        let payload = self.take(count * 8)?;
        Ok(F64Slice { bytes: payload })
    }
}

/// A read-only view over a (possibly bit-packed) integer array.
#[derive(Clone, Debug)]
pub enum IntSlice<'a> {
    W1(&'a [u8]),
    W2(&'a [u8]),
    W3(&'a [u8]),
    W4(&'a [u8]),
    /// Decoded varint payload (the varint codec has no random access).
    Owned(Vec<u32>),
}

impl IntSlice<'_> {
    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            IntSlice::W1(b) => b.len(),
            IntSlice::W2(b) => b.len() / 2,
            IntSlice::W3(b) => b.len() / 3,
            IntSlice::W4(b) => b.len() / 4,
            IntSlice::Owned(v) => v.len(),
        }
    }

    /// True if the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element access (§4.1.1: seek to the element, widen to u32).
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match self {
            IntSlice::W1(b) => b[i] as u32,
            IntSlice::W2(b) => u16::from_le_bytes([b[2 * i], b[2 * i + 1]]) as u32,
            IntSlice::W3(b) => u32::from_le_bytes([b[3 * i], b[3 * i + 1], b[3 * i + 2], 0]),
            IntSlice::W4(b) => {
                u32::from_le_bytes([b[4 * i], b[4 * i + 1], b[4 * i + 2], b[4 * i + 3]])
            }
            IntSlice::Owned(v) => v[i],
        }
    }

    /// Iterate all elements in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Visit elements `start..end` with one width dispatch for the whole
    /// range (the hot-loop accessor used by the compressed kernels —
    /// per-element `get` would pay the enum match on every code).
    #[inline]
    pub fn for_each_range(&self, start: usize, end: usize, mut f: impl FnMut(u32)) {
        match self {
            IntSlice::W1(b) => {
                for &x in &b[start..end] {
                    f(x as u32);
                }
            }
            IntSlice::W2(b) => {
                for ch in b[2 * start..2 * end].chunks_exact(2) {
                    f(u16::from_le_bytes([ch[0], ch[1]]) as u32);
                }
            }
            IntSlice::W3(b) => {
                for ch in b[3 * start..3 * end].chunks_exact(3) {
                    f(u32::from_le_bytes([ch[0], ch[1], ch[2], 0]));
                }
            }
            IntSlice::W4(b) => {
                for ch in b[4 * start..4 * end].chunks_exact(4) {
                    f(u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]));
                }
            }
            IntSlice::Owned(v) => {
                for &x in &v[start..end] {
                    f(x);
                }
            }
        }
    }

    /// Append elements `start..end` to `out` (bulk decode for row scans).
    #[inline]
    pub fn extend_into(&self, start: usize, end: usize, out: &mut Vec<u32>) {
        out.reserve(end - start);
        self.for_each_range(start, end, |x| out.push(x));
    }
}

/// A read-only view over a little-endian `f64` array.
#[derive(Clone, Debug)]
pub struct F64Slice<'a> {
    bytes: &'a [u8],
}

impl F64Slice<'_> {
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len() / 8
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        f64::from_le_bytes(self.bytes[8 * i..8 * i + 8].try_into().unwrap())
    }

    /// Decode the whole array (used by `scale`, which rewrites it).
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_formula_matches_paper() {
        assert_eq!(width_for(0), 1);
        assert_eq!(width_for(4), 1);
        assert_eq!(width_for(255), 1);
        assert_eq!(width_for(256), 2);
        assert_eq!(width_for(65535), 2);
        assert_eq!(width_for(65536), 3);
        assert_eq!(width_for(0xFF_FFFF), 3);
        assert_eq!(width_for(0x100_0000), 4);
        assert_eq!(width_for(u32::MAX), 4);
    }

    fn roundtrip_packed(vals: &[u32]) {
        let mut buf = Vec::new();
        write_packed_ints(&mut buf, vals);
        let mut cur = Cursor::new(&buf);
        let s = cur.read_ints().unwrap();
        assert_eq!(s.len(), vals.len());
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(s.get(i), v, "index {i}");
        }
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn packed_roundtrips_all_widths() {
        roundtrip_packed(&[]);
        roundtrip_packed(&[0, 1, 2, 255]);
        roundtrip_packed(&[256, 65535, 7]);
        roundtrip_packed(&[65536, 123, 0xFF_FFFF]);
        roundtrip_packed(&[0x100_0000, u32::MAX, 5]);
    }

    #[test]
    fn packed_width_is_minimal() {
        let mut buf = Vec::new();
        write_packed_ints(&mut buf, &[1, 2, 3, 4]);
        // 4 count + 1 width + 4 payload
        assert_eq!(buf.len(), 9);
    }

    fn roundtrip_varint(vals: &[u32]) {
        let mut buf = Vec::new();
        write_varint_ints(&mut buf, vals);
        let mut cur = Cursor::new(&buf);
        let s = cur.read_ints().unwrap();
        assert_eq!(s.len(), vals.len());
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(s.get(i), v);
        }
    }

    #[test]
    fn varint_roundtrips() {
        roundtrip_varint(&[]);
        roundtrip_varint(&[0, 1, 127, 128, 16383, 16384, u32::MAX]);
    }

    #[test]
    fn varint_is_smaller_for_tiny_values() {
        let vals: Vec<u32> = (0..100).map(|i| i % 100).collect();
        let mut p = Vec::new();
        write_packed_ints(&mut p, &vals);
        let mut v = Vec::new();
        write_varint_ints(&mut v, &vals);
        // Same here (both 1 byte/elem), but varint must not explode.
        assert!(v.len() <= p.len() + 8);
    }

    #[test]
    fn f64s_roundtrip_bit_exact() {
        let vals = [1.5, -0.0, f64::NAN, f64::INFINITY, 3.14e-300];
        let mut buf = Vec::new();
        write_f64s(&mut buf, &vals);
        let mut cur = Cursor::new(&buf);
        let s = cur.read_f64s().unwrap();
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(s.get(i).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_buffer_is_an_error() {
        let mut buf = Vec::new();
        write_packed_ints(&mut buf, &[1, 2, 3]);
        buf.truncate(buf.len() - 1);
        let mut cur = Cursor::new(&buf);
        assert!(cur.read_ints().is_err());
    }

    #[test]
    fn invalid_width_is_an_error() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 1);
        buf.push(9); // bogus width
        buf.push(0);
        assert!(Cursor::new(&buf).read_ints().is_err());
    }

    #[test]
    fn truncated_varint_is_an_error() {
        let mut buf = Vec::new();
        write_varint_ints(&mut buf, &[u32::MAX]);
        // chop payload but keep declared lengths inconsistent
        let declared = buf.len();
        buf.truncate(declared - 2);
        assert!(Cursor::new(&buf).read_ints().is_err());
    }
}
