//! Compressed matrix-operation execution (§4): kernels that run directly on
//! the TOC output without decompressing the mini-batch.
//!
//! Every kernel scans the encoded table `D` and the decoding tree `C'` at
//! most once, so runtime is `O(|I| + |D|)` (times the width of `M` for the
//! matrix-matrix variants) instead of `O(nnz)` — the computational
//! redundancy removed by compression is also removed from the compute.

use crate::batch::TocView;
use crate::tree::DecodeTree;
use toc_linalg::dense::reset_vec;
use toc_linalg::sparse::{ColVal, SparseRows};
use toc_linalg::DenseMatrix;

/// Algorithm 4, `A · v`.
///
/// Dynamic programming over the tree: `H[i] = key_i · v + H[parent(i)]`
/// evaluates `F(i) = seq(i) · v` for every node in one forward scan (node
/// indexes are topologically ordered because children are created after
/// their parents). The result row `r` is then the sum of `H` over the row's
/// codes.
pub fn matvec(view: &TocView<'_>, tree: &DecodeTree, v: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    matvec_into(view, tree, v, &mut Vec::new(), &mut out);
    out
}

/// [`matvec`] with a caller-owned `H` accumulator and output buffer.
pub fn matvec_into(
    view: &TocView<'_>,
    tree: &DecodeTree,
    v: &[f64],
    h: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    debug_assert_eq!(v.len(), view.cols);
    let n = tree.len();
    reset_vec(h, n);
    for i in 1..n {
        h[i] = tree.key_val[i] * v[tree.key_col[i] as usize] + h[tree.parent[i] as usize];
    }
    reset_vec(out, view.rows);
    for (r, o) in out.iter_mut().enumerate() {
        let (s, e) = view.row_range(r);
        let mut acc = 0.0;
        view.for_each_code_in(s, e, |c| acc += h[c as usize]);
        *o = acc;
    }
}

/// Algorithm 5, `v · A`.
///
/// First scan `D` to accumulate `G(i) = Σ v[r]` over all occurrences of
/// code `i`; then scan `C'` **backwards**, pushing each node's weight onto
/// its parent so that every node's weight ends up multiplied into exactly
/// the pairs of its sequence.
pub fn vecmat(view: &TocView<'_>, tree: &DecodeTree, v: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    vecmat_into(view, tree, v, &mut Vec::new(), &mut out);
    out
}

/// [`vecmat`] with a caller-owned `G` accumulator and output buffer.
pub fn vecmat_into(
    view: &TocView<'_>,
    tree: &DecodeTree,
    v: &[f64],
    h: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    debug_assert_eq!(v.len(), view.rows);
    let n = tree.len();
    reset_vec(h, n);
    for (r, &w) in v.iter().enumerate() {
        let (s, e) = view.row_range(r);
        view.for_each_code_in(s, e, |c| h[c as usize] += w);
    }
    reset_vec(out, view.cols);
    for i in (1..n).rev() {
        let w = h[i];
        if w != 0.0 {
            out[tree.key_col[i] as usize] += tree.key_val[i] * w;
            h[tree.parent[i] as usize] += w;
        }
    }
}

/// Algorithm 7 (Appendix B.1), `A · M` with uncompressed `M` (`cols × p`).
///
/// `H` is `len(C') × p`: row `i` holds `seq(i) · M`. The innermost loop
/// runs over `M`'s columns for cache-friendly sequential access.
pub fn matmat(view: &TocView<'_>, tree: &DecodeTree, m: &DenseMatrix) -> DenseMatrix {
    let mut out = DenseMatrix::default();
    matmat_into(view, tree, m, &mut Vec::new(), &mut out);
    out
}

/// [`matmat`] with a caller-owned `H` accumulator and output matrix.
pub fn matmat_into(
    view: &TocView<'_>,
    tree: &DecodeTree,
    m: &DenseMatrix,
    h: &mut Vec<f64>,
    out: &mut DenseMatrix,
) {
    debug_assert_eq!(m.rows(), view.cols);
    let p = m.cols();
    let n = tree.len();
    reset_vec(h, n * p);
    for i in 1..n {
        let key_val = tree.key_val[i];
        let mrow = m.row(tree.key_col[i] as usize);
        let parent = tree.parent[i] as usize;
        // Split to satisfy the borrow checker: parent < i always.
        let (head, tail) = h.split_at_mut(i * p);
        let hp = &head[parent * p..parent * p + p];
        let hi = &mut tail[..p];
        for ((o, &mp), &pp) in hi.iter_mut().zip(mrow).zip(hp) {
            *o = key_val * mp + pp;
        }
    }
    out.reset(view.rows, p);
    for r in 0..view.rows {
        let (s, e) = view.row_range(r);
        let orow = out.row_mut(r);
        view.for_each_code_in(s, e, |c| {
            let hrow = &h[c as usize * p..c as usize * p + p];
            for (o, &x) in orow.iter_mut().zip(hrow) {
                *o += x;
            }
        });
    }
}

/// Algorithm 8 (Appendix B.2), `M · A` with uncompressed `M` (`p × rows`).
///
/// `H` is stored node-major (`len(C') × p`, i.e. transposed relative to the
/// output) so that the `D` scan writes one contiguous stripe per code.
pub fn matmat_left(view: &TocView<'_>, tree: &DecodeTree, m: &DenseMatrix) -> DenseMatrix {
    let mut out = DenseMatrix::default();
    matmat_left_into(view, tree, m, &mut Vec::new(), &mut out);
    out
}

/// [`matmat_left`] with a caller-owned `H` accumulator and output matrix.
pub fn matmat_left_into(
    view: &TocView<'_>,
    tree: &DecodeTree,
    m: &DenseMatrix,
    h: &mut Vec<f64>,
    out: &mut DenseMatrix,
) {
    debug_assert_eq!(m.cols(), view.rows);
    let p = m.rows();
    let n = tree.len();
    reset_vec(h, n * p);
    for r in 0..view.rows {
        let (s, e) = view.row_range(r);
        view.for_each_code_in(s, e, |code| {
            let code = code as usize;
            let stripe = &mut h[code * p..code * p + p];
            for (q, sv) in stripe.iter_mut().enumerate() {
                *sv += m.get(q, r);
            }
        });
    }
    out.reset(p, view.cols);
    for i in (1..n).rev() {
        let col = tree.key_col[i] as usize;
        let key_val = tree.key_val[i];
        let parent = tree.parent[i] as usize;
        let (head, tail) = h.split_at_mut(i * p);
        let hi = &tail[..p];
        let hp = &mut head[parent * p..parent * p + p];
        for q in 0..p {
            let w = hi[q];
            if w != 0.0 {
                out.set(q, col, out.get(q, col) + key_val * w);
                hp[q] += w;
            }
        }
    }
}

/// Decode directly into a caller-owned dense matrix: the zero-allocation
/// counterpart of `decode_sparse().decode()`. `stack` and `row_codes` are
/// reusable scratch buffers.
pub fn decode_into(
    view: &TocView<'_>,
    tree: &DecodeTree,
    stack: &mut Vec<(u32, f64)>,
    row_codes: &mut Vec<u32>,
    out: &mut DenseMatrix,
) {
    out.reset(view.rows, view.cols);
    for r in 0..view.rows {
        let (s, e) = view.row_range(r);
        row_codes.clear();
        view.codes_into(s, e, row_codes);
        for &code in row_codes.iter() {
            stack.clear();
            let mut cur = code;
            while cur != 0 {
                stack.push((tree.key_col[cur as usize], tree.key_val[cur as usize]));
                cur = tree.parent[cur as usize];
            }
            for &(col, val) in stack.iter().rev() {
                out.set(r, col as usize, val);
            }
        }
    }
}

/// Full decode to sparse rows (the core of Algorithm 6): backtrack every
/// code through `C'` with a reusable scratch stack; total work is linear in
/// the number of decoded pairs.
pub fn decode_sparse(view: &TocView<'_>) -> SparseRows {
    let tree = DecodeTree::build_trusted(view);
    let mut pairs: Vec<ColVal> = Vec::new();
    let mut offsets: Vec<usize> = Vec::with_capacity(view.rows + 1);
    offsets.push(0);
    let mut scratch: Vec<(u32, f64)> = Vec::new();
    let mut row_codes: Vec<u32> = Vec::new();
    for r in 0..view.rows {
        let (s, e) = view.row_range(r);
        row_codes.clear();
        view.codes_into(s, e, &mut row_codes);
        for &code in &row_codes {
            scratch.clear();
            let mut cur = code;
            while cur != 0 {
                scratch.push((tree.key_col[cur as usize], tree.key_val[cur as usize]));
                cur = tree.parent[cur as usize];
            }
            for &(col, val) in scratch.iter().rev() {
                pairs.push(ColVal { col, val });
            }
        }
        offsets.push(pairs.len());
    }
    SparseRows::from_parts(view.rows, view.cols, pairs, offsets)
}

/// Partial decode: materialize only the selected rows (in the given
/// order) as sparse rows, without touching the rest of the batch. Useful
/// for sampling-style access patterns (e.g. shuffle-always MGD, §2.1.3):
/// cost is one `C'` build plus work linear in the *selected* pairs.
pub fn gather_rows(view: &TocView<'_>, rows: &[usize]) -> SparseRows {
    let tree = DecodeTree::build_trusted(view);
    let mut pairs: Vec<ColVal> = Vec::new();
    let mut offsets: Vec<usize> = Vec::with_capacity(rows.len() + 1);
    offsets.push(0);
    let mut scratch: Vec<(u32, f64)> = Vec::new();
    let mut row_codes: Vec<u32> = Vec::new();
    for &r in rows {
        assert!(r < view.rows, "row {r} out of range");
        let (s, e) = view.row_range(r);
        row_codes.clear();
        view.codes_into(s, e, &mut row_codes);
        for &code in &row_codes {
            scratch.clear();
            let mut cur = code;
            while cur != 0 {
                scratch.push((tree.key_col[cur as usize], tree.key_val[cur as usize]));
                cur = tree.parent[cur as usize];
            }
            for &(col, val) in scratch.iter().rev() {
                pairs.push(ColVal { col, val });
            }
        }
        offsets.push(pairs.len());
    }
    SparseRows::from_parts(rows.len(), view.cols, pairs, offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::TocBatch;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use toc_linalg::dense::max_abs_diff_vec;

    fn random_redundant(rng: &mut StdRng, rows: usize, cols: usize, density: f64) -> DenseMatrix {
        // A value pool plus repeated row motifs to exercise deep trees.
        let pool: Vec<f64> = (0..5).map(|i| (i as f64) * 0.75 - 1.5).collect();
        let motifs: Vec<Vec<f64>> = (0..4)
            .map(|_| {
                (0..cols)
                    .map(|_| {
                        if rng.gen::<f64>() < density {
                            pool[rng.gen_range(0..pool.len())]
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let rows_data: Vec<Vec<f64>> = (0..rows)
            .map(|_| {
                if rng.gen::<f64>() < 0.7 {
                    motifs[rng.gen_range(0..motifs.len())].clone()
                } else {
                    (0..cols)
                        .map(|_| {
                            if rng.gen::<f64>() < density {
                                pool[rng.gen_range(0..pool.len())]
                            } else {
                                0.0
                            }
                        })
                        .collect()
                }
            })
            .collect();
        DenseMatrix::from_rows(rows_data)
    }

    fn check_all_ops(a: &DenseMatrix) {
        let toc = TocBatch::encode(a);
        let v: Vec<f64> = (0..a.cols()).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let w: Vec<f64> = (0..a.rows()).map(|i| ((i * 11 % 5) as f64) - 2.0).collect();
        assert!(max_abs_diff_vec(&toc.matvec(&v).unwrap(), &a.matvec(&v)) < 1e-9);
        assert!(max_abs_diff_vec(&toc.vecmat(&w).unwrap(), &a.vecmat(&w)) < 1e-9);
        let mut rng = StdRng::seed_from_u64(1);
        let m_right = DenseMatrix::random(&mut rng, a.cols(), 7, -1.0, 1.0);
        let m_left = DenseMatrix::random(&mut rng, 6, a.rows(), -1.0, 1.0);
        assert!(
            toc.matmat(&m_right)
                .unwrap()
                .max_abs_diff(&a.matmat(&m_right))
                < 1e-9
        );
        assert!(
            toc.matmat_left(&m_left)
                .unwrap()
                .max_abs_diff(&a.matmat_left(&m_left))
                < 1e-9
        );
        assert_eq!(toc.decode(), *a);
    }

    #[test]
    fn all_ops_match_dense_reference_across_sparsity() {
        let mut rng = StdRng::seed_from_u64(2024);
        for density in [0.05, 0.25, 0.5, 0.9] {
            let a = random_redundant(&mut rng, 50, 30, density);
            check_all_ops(&a);
        }
    }

    #[test]
    fn ops_on_fig3() {
        let a = DenseMatrix::from_rows(vec![
            vec![1.1, 2.0, 3.0, 1.4],
            vec![1.1, 2.0, 3.0, 0.0],
            vec![0.0, 1.1, 3.0, 1.4],
            vec![1.1, 2.0, 0.0, 0.0],
        ]);
        check_all_ops(&a);
        // Hand-computed A·[1,1,1,1]: rows sums.
        let toc = TocBatch::encode(&a);
        let r = toc.matvec(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(max_abs_diff_vec(&r, &[7.5, 6.1, 5.5, 3.1]) < 1e-12);
    }

    #[test]
    fn ops_on_all_zero_matrix() {
        let a = DenseMatrix::zeros(10, 6);
        check_all_ops(&a);
    }

    #[test]
    fn ops_on_single_row_and_single_col() {
        check_all_ops(&DenseMatrix::from_rows(vec![vec![1.0, 0.0, 2.0, 0.0, 2.0]]));
        check_all_ops(&DenseMatrix::from_rows(vec![
            vec![1.0],
            vec![0.0],
            vec![1.0],
            vec![2.0],
        ]));
    }

    #[test]
    fn ops_with_empty_rows_interleaved() {
        let a = DenseMatrix::from_rows(vec![
            vec![0.0, 0.0, 0.0],
            vec![1.0, 2.0, 0.0],
            vec![0.0, 0.0, 0.0],
            vec![1.0, 2.0, 0.0],
            vec![0.0, 0.0, 0.0],
        ]);
        check_all_ops(&a);
    }

    #[test]
    fn matvec_uses_each_code_weight_once() {
        // Two identical rows share codes; v·A must weight each row by its
        // own coefficient.
        let a = DenseMatrix::from_rows(vec![vec![2.0, 0.0, 1.0], vec![2.0, 0.0, 1.0]]);
        let toc = TocBatch::encode(&a);
        let out = toc.vecmat(&[10.0, 1.0]).unwrap();
        assert_eq!(out, vec![22.0, 0.0, 11.0]);
    }

    #[test]
    fn dense_matrix_full_density_roundtrip_ops() {
        let mut rng = StdRng::seed_from_u64(5);
        // Fully dense with few distinct values (value-index heavy).
        let mut a = DenseMatrix::zeros(20, 15);
        for r in 0..20 {
            for c in 0..15 {
                a.set(r, c, ((r + c) % 3) as f64 + 0.5);
            }
        }
        check_all_ops(&a);
        let _ = rng.gen::<f64>();
    }

    #[test]
    fn gather_rows_matches_dense_gather() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = random_redundant(&mut rng, 30, 18, 0.35);
        let toc = TocBatch::encode(&a);
        let idx = [7usize, 0, 29, 7, 15];
        let got = gather_rows(&toc.view(), &idx).decode();
        let want = a.gather_rows(&idx);
        assert_eq!(got, want);
    }

    #[test]
    fn decode_sparse_matches_direct_sparse_encoding() {
        let mut rng = StdRng::seed_from_u64(88);
        let a = random_redundant(&mut rng, 35, 22, 0.3);
        let toc = TocBatch::encode(&a);
        assert_eq!(toc.decode_sparse(), SparseRows::encode(&a));
    }
}
