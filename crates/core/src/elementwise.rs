//! Sparse-safe element-wise operations and compressed aggregates.
//!
//! §4.2 presents `A .* c` and `A.^2` as the sparse-safe class: zeros stay
//! zero, so only the unique-value array of the physical encoding needs
//! rewriting — `O(|values|)` regardless of the matrix size. This module
//! generalizes that to any zero-preserving map and adds the aggregate
//! reductions ("more workloads that can execute directly on TOC outputs",
//! §8 future work): row/column sums run in one `D`/`C'` scan by reusing
//! the multiplication kernels with implicit all-ones vectors.

use crate::batch::TocBatch;
use crate::tree::DecodeTree;

impl TocBatch {
    /// Apply a zero-preserving function to every element (sparse-safe
    /// element-wise op). The caller must ensure `f(0) == 0`; violating it
    /// silently produces the sparse-unsafe semantics of applying `f` only
    /// to the stored non-zeros. Only the unique-value array is rewritten.
    pub fn map_sparse_safe(&mut self, f: impl Fn(f64) -> f64) {
        self.rewrite_values(f);
    }

    /// `A.^2` (the paper's square example): sparse-safe in place.
    pub fn square(&mut self) {
        self.map_sparse_safe(|v| v * v);
    }

    /// `abs(A)`: sparse-safe in place.
    pub fn abs(&mut self) {
        self.map_sparse_safe(f64::abs);
    }

    /// Row sums (`A · 1`) with one scan of `C'` and `D`.
    pub fn row_sums(&self) -> Vec<f64> {
        let view = self.view();
        let tree = DecodeTree::build_trusted(&view);
        let n = tree.len();
        // H[i] = sum of values of seq(i).
        let mut h = vec![0.0f64; n];
        for i in 1..n {
            h[i] = tree.key_val[i] + h[tree.parent[i] as usize];
        }
        let mut out = vec![0.0f64; view.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let (s, e) = view.row_range(r);
            let mut acc = 0.0;
            view.for_each_code_in(s, e, |c| acc += h[c as usize]);
            *o = acc;
        }
        out
    }

    /// Column sums (`1 · A`) with one scan of `D` and a backward scan of
    /// `C'` (Algorithm 5 with an implicit all-ones vector).
    pub fn col_sums(&self) -> Vec<f64> {
        let view = self.view();
        let tree = DecodeTree::build_trusted(&view);
        let n = tree.len();
        let mut h = vec![0.0f64; n];
        for r in 0..view.rows {
            let (s, e) = view.row_range(r);
            view.for_each_code_in(s, e, |c| h[c as usize] += 1.0);
        }
        let mut out = vec![0.0f64; view.cols];
        for i in (1..n).rev() {
            let w = h[i];
            if w != 0.0 {
                out[tree.key_col[i] as usize] += tree.key_val[i] * w;
                h[tree.parent[i] as usize] += w;
            }
        }
        out
    }

    /// Number of stored non-zeros per row, computed from `C'` depths.
    pub fn nnz_per_row(&self) -> Vec<usize> {
        let view = self.view();
        let tree = DecodeTree::build_trusted(&view);
        let n = tree.len();
        let mut depth = vec![0usize; n];
        for i in 1..n {
            depth[i] = depth[tree.parent[i] as usize] + 1;
        }
        let mut out = vec![0usize; view.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let (s, e) = view.row_range(r);
            let mut acc = 0usize;
            view.for_each_code_in(s, e, |c| acc += depth[c as usize]);
            *o = acc;
        }
        out
    }

    /// Squared Frobenius norm: one pass over `C'` via the `A.^2` identity
    /// (sum of squares of stored values weighted by their occurrence
    /// counts).
    pub fn frobenius_sq(&self) -> f64 {
        let view = self.view();
        let tree = DecodeTree::build_trusted(&view);
        let n = tree.len();
        // Occurrence count per node, pushed down from codes.
        let mut h = vec![0.0f64; n];
        for r in 0..view.rows {
            let (s, e) = view.row_range(r);
            view.for_each_code_in(s, e, |c| h[c as usize] += 1.0);
        }
        let mut total = 0.0;
        for i in (1..n).rev() {
            let w = h[i];
            if w != 0.0 {
                total += tree.key_val[i] * tree.key_val[i] * w;
                h[tree.parent[i] as usize] += w;
            }
        }
        total
    }

    /// Column means (standardization workloads): `col_sums / rows`.
    pub fn col_means(&self) -> Vec<f64> {
        let rows = self.rows() as f64;
        self.col_sums().into_iter().map(|s| s / rows).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toc_linalg::DenseMatrix;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(vec![
            vec![1.5, 0.0, -2.0, 1.5],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![1.5, -2.0, -2.0, 0.0],
            vec![1.5, 0.0, -2.0, 1.5],
        ])
    }

    #[test]
    fn square_matches_dense() {
        let a = sample();
        let mut toc = TocBatch::encode(&a);
        toc.square();
        let want =
            DenseMatrix::from_vec(a.rows(), a.cols(), a.data().iter().map(|v| v * v).collect());
        assert_eq!(toc.decode(), want);
    }

    #[test]
    fn abs_matches_dense() {
        let a = sample();
        let mut toc = TocBatch::encode(&a);
        toc.abs();
        let want = DenseMatrix::from_vec(
            a.rows(),
            a.cols(),
            a.data().iter().map(|v| v.abs()).collect(),
        );
        assert_eq!(toc.decode(), want);
    }

    #[test]
    fn row_and_col_sums_match_dense() {
        let a = sample();
        let toc = TocBatch::encode(&a);
        let want_rows: Vec<f64> = (0..a.rows()).map(|r| a.row(r).iter().sum()).collect();
        let want_cols = a.vecmat(&vec![1.0; a.rows()]);
        assert_eq!(toc.row_sums(), want_rows);
        let got_cols = toc.col_sums();
        for (g, w) in got_cols.iter().zip(&want_cols) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn nnz_per_row_matches() {
        let a = sample();
        let toc = TocBatch::encode(&a);
        assert_eq!(toc.nnz_per_row(), vec![3, 0, 3, 3]);
    }

    #[test]
    fn frobenius_matches_dense() {
        let a = sample();
        let toc = TocBatch::encode(&a);
        let want: f64 = a.data().iter().map(|v| v * v).sum();
        assert!((toc.frobenius_sq() - want).abs() < 1e-12);
    }

    #[test]
    fn col_means_match() {
        let a = sample();
        let toc = TocBatch::encode(&a);
        let means = toc.col_means();
        for (c, m) in means.iter().enumerate() {
            let want: f64 = (0..a.rows()).map(|r| a.get(r, c)).sum::<f64>() / a.rows() as f64;
            assert!((m - want).abs() < 1e-12, "col {c}");
        }
    }

    #[test]
    fn aggregates_on_random_matrices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..5 {
            let rows = rng.gen_range(1..40);
            let cols = rng.gen_range(1..30);
            let mut a = DenseMatrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    if rng.gen::<f64>() < 0.4 {
                        a.set(r, c, (rng.gen_range(1..5) as f64) * 0.5);
                    }
                }
            }
            let toc = TocBatch::encode(&a);
            let want_fro: f64 = a.data().iter().map(|v| v * v).sum();
            assert!((toc.frobenius_sq() - want_fro).abs() < 1e-9);
            let want_rows: Vec<f64> = (0..rows).map(|r| a.row(r).iter().sum()).collect();
            let got_rows = toc.row_sums();
            for (g, w) in got_rows.iter().zip(&want_rows) {
                assert!((g - w).abs() < 1e-9);
            }
        }
    }
}
