//! The `TocBatch`: a mini-batch compressed with the full TOC pipeline
//! (sparse + logical + physical encoding) stored as a single byte buffer.
//!
//! Physical layout (all integers little-endian):
//!
//! ```text
//! magic   u32  = 0x544F4321 ("TOC!")
//! version u8   = 1
//! codec   u8   (0 = bit packing, 1 = varint)
//! pad     u16  = 0
//! rows    u32
//! cols    u32
//! [I column indexes]   int array (len = |I|)
//! [unique values]      u32 count + count * 8 bytes f64   (value indexing)
//! [I value indexes]    int array (len = |I|)
//! [D codes]            int array (concatenated tuples)
//! [tuple start idx]    int array (rows + 1 entries)
//! ```
//!
//! "int array" is the bit-packed (or varint) format of
//! [`crate::physical`]. Kernels read `I` and `D` directly from this buffer
//! through [`TocView`]; nothing is decompressed.

use crate::encode::{logical_encode, LogicalEncoded};
use crate::error::{corrupt, TocError};
use crate::hash::FxHashMap;
use crate::physical::{
    write_f64s, write_packed_ints, write_u32, write_varint_ints, Cursor, F64Slice, IntSlice,
};
use toc_linalg::sparse::{ColVal, SparseRows};
use toc_linalg::DenseMatrix;

const MAGIC: u32 = 0x544F_4321;
const VERSION: u8 = 1;

/// Physical integer codec used inside a [`TocBatch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PhysicalCodec {
    /// Fixed-width bit packing (the paper's §3.2 default).
    #[default]
    BitPack,
    /// LEB128 varints (the paper's suggested extension). Denser for skewed
    /// index distributions, but loses in-place random access: the view
    /// materializes decoded arrays.
    Varint,
}

/// A TOC-compressed mini-batch.
///
/// ```
/// use toc_linalg::DenseMatrix;
/// use toc_core::TocBatch;
///
/// let a = DenseMatrix::from_rows(vec![
///     vec![1.1, 2.0, 3.0, 1.4],
///     vec![1.1, 2.0, 3.0, 0.0],
/// ]);
/// let toc = TocBatch::encode(&a);
/// assert_eq!(toc.decode(), a);
/// assert_eq!(toc.matvec(&[1.0; 4]).unwrap(), a.matvec(&[1.0; 4]));
/// ```
#[derive(Clone, PartialEq)]
pub struct TocBatch {
    bytes: Vec<u8>,
    rows: usize,
    cols: usize,
}

impl std::fmt::Debug for TocBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TocBatch({}x{}, {} bytes)",
            self.rows,
            self.cols,
            self.bytes.len()
        )
    }
}

impl TocBatch {
    /// Compress a dense mini-batch with the default bit-packing codec.
    pub fn encode(dense: &DenseMatrix) -> Self {
        Self::encode_with(dense, PhysicalCodec::BitPack)
    }

    /// Compress with an explicit physical codec.
    pub fn encode_with(dense: &DenseMatrix, codec: PhysicalCodec) -> Self {
        Self::from_sparse(&SparseRows::encode(dense), codec)
    }

    /// Compress an already sparse-encoded table.
    pub fn from_sparse(sparse: &SparseRows, codec: PhysicalCodec) -> Self {
        let logical = logical_encode(sparse);
        Self::from_logical(&logical, codec)
    }

    /// Apply the physical encoding (§3.2) to a logical encoding.
    pub fn from_logical(logical: &LogicalEncoded, codec: PhysicalCodec) -> Self {
        // Value indexing: unique values in first-occurrence order, keyed by
        // bit pattern for losslessness.
        let mut uniq: FxHashMap<u64, u32> = FxHashMap::default();
        let mut values: Vec<f64> = Vec::new();
        let mut validx: Vec<u32> = Vec::with_capacity(logical.first_layer.len());
        let mut cols_arr: Vec<u32> = Vec::with_capacity(logical.first_layer.len());
        for p in &logical.first_layer {
            let id = *uniq.entry(p.val.to_bits()).or_insert_with(|| {
                values.push(p.val);
                values.len() as u32 - 1
            });
            validx.push(id);
            cols_arr.push(p.col);
        }

        let mut bytes = Vec::new();
        write_u32(&mut bytes, MAGIC);
        bytes.push(VERSION);
        bytes.push(match codec {
            PhysicalCodec::BitPack => 0,
            PhysicalCodec::Varint => 1,
        });
        bytes.extend_from_slice(&0u16.to_le_bytes());
        write_u32(&mut bytes, logical.rows as u32);
        write_u32(&mut bytes, logical.cols as u32);

        let write_ints = |buf: &mut Vec<u8>, vals: &[u32]| match codec {
            PhysicalCodec::BitPack => write_packed_ints(buf, vals),
            PhysicalCodec::Varint => write_varint_ints(buf, vals),
        };
        write_ints(&mut bytes, &cols_arr);
        write_f64s(&mut bytes, &values);
        write_ints(&mut bytes, &validx);
        write_ints(&mut bytes, &logical.codes);
        write_ints(&mut bytes, &logical.row_offsets);

        Self {
            bytes,
            rows: logical.rows,
            cols: logical.cols,
        }
    }

    /// Number of matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Compressed size in bytes (the numerator of the paper's compression
    /// ratio is `DenseMatrix::den_size_bytes`; this is the denominator).
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The raw physical buffer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The physical integer codec this batch was encoded with (stored in
    /// the buffer header, so it survives serialization).
    pub fn codec(&self) -> PhysicalCodec {
        match self.bytes.get(5) {
            Some(1) => PhysicalCodec::Varint,
            _ => PhysicalCodec::BitPack,
        }
    }

    /// Serialize (the batch *is* its physical bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.bytes.clone()
    }

    /// Deserialize and fully validate an untrusted buffer.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, TocError> {
        let (rows, cols) = {
            let view = parse_view(&bytes)?;
            validate_view(&view)?;
            (view.rows, view.cols)
        };
        Ok(Self { bytes, rows, cols })
    }

    /// Parse the buffer into a scan-ready view (cheap; no decompression).
    pub fn view(&self) -> TocView<'_> {
        parse_view(&self.bytes).expect("internally produced TocBatch must parse")
    }

    /// Parse with validation (for buffers created via [`Self::from_bytes`]
    /// this repeats the checks; exposed for tests).
    pub fn try_view(&self) -> Result<TocView<'_>, TocError> {
        let v = parse_view(&self.bytes)?;
        validate_view(&v)?;
        Ok(v)
    }

    /// Sparse-safe element-wise multiply by a scalar (Algorithm 3):
    /// rewrites only the unique-value array in place.
    pub fn scale(&mut self, c: f64) {
        self.rewrite_values(|v| v * c);
    }

    /// Rewrite the unique-value array in place with `f` (the shared core
    /// of all sparse-safe element-wise operations).
    pub(crate) fn rewrite_values(&mut self, f: impl Fn(f64) -> f64) {
        let (start, count) =
            locate_values_section(&self.bytes).expect("internally produced TocBatch must parse");
        for i in 0..count {
            let off = start + 8 * i;
            let v = f64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap());
            self.bytes[off..off + 8].copy_from_slice(&f(v).to_le_bytes());
        }
    }

    /// Decode to the sparse-row representation.
    pub fn decode_sparse(&self) -> SparseRows {
        crate::ops::decode_sparse(&self.view())
    }

    /// Partial decode of selected rows, in order (duplicates allowed).
    /// Cost: one `C'` build plus work linear in the selected pairs.
    pub fn gather_rows(&self, rows: &[usize]) -> SparseRows {
        crate::ops::gather_rows(&self.view(), rows)
    }

    /// Fully decode to dense (needed only by sparse-unsafe ops).
    pub fn decode(&self) -> DenseMatrix {
        self.decode_sparse().decode()
    }

    /// `A · v` on the compressed representation (Algorithm 4).
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, TocError> {
        let view = self.view();
        if v.len() != view.cols {
            return Err(TocError::Dimension {
                expected: view.cols,
                got: v.len(),
                what: "A·v",
            });
        }
        let tree = crate::tree::DecodeTree::build_trusted(&view);
        Ok(crate::ops::matvec(&view, &tree, v))
    }

    /// `v · A` on the compressed representation (Algorithm 5).
    pub fn vecmat(&self, v: &[f64]) -> Result<Vec<f64>, TocError> {
        let view = self.view();
        if v.len() != view.rows {
            return Err(TocError::Dimension {
                expected: view.rows,
                got: v.len(),
                what: "v·A",
            });
        }
        let tree = crate::tree::DecodeTree::build_trusted(&view);
        Ok(crate::ops::vecmat(&view, &tree, v))
    }

    /// `A · M` on the compressed representation (Algorithm 7).
    pub fn matmat(&self, m: &DenseMatrix) -> Result<DenseMatrix, TocError> {
        let view = self.view();
        if m.rows() != view.cols {
            return Err(TocError::Dimension {
                expected: view.cols,
                got: m.rows(),
                what: "A·M",
            });
        }
        let tree = crate::tree::DecodeTree::build_trusted(&view);
        Ok(crate::ops::matmat(&view, &tree, m))
    }

    /// `M · A` on the compressed representation (Algorithm 8).
    pub fn matmat_left(&self, m: &DenseMatrix) -> Result<DenseMatrix, TocError> {
        let view = self.view();
        if m.cols() != view.rows {
            return Err(TocError::Dimension {
                expected: view.rows,
                got: m.cols(),
                what: "M·A",
            });
        }
        let tree = crate::tree::DecodeTree::build_trusted(&view);
        Ok(crate::ops::matmat_left(&view, &tree, m))
    }

    /// Sparse-unsafe `A .+ c` (Algorithm 6): full decode, then apply.
    pub fn add_scalar(&self, c: f64) -> DenseMatrix {
        self.decode().add_scalar(c)
    }

    /// `A · v` into caller-owned buffers: rebuilds `C'` and runs the kernel
    /// entirely inside `ws`, performing no heap allocation in steady state.
    pub fn matvec_into(
        &self,
        v: &[f64],
        out: &mut Vec<f64>,
        ws: &mut KernelScratch,
    ) -> Result<(), TocError> {
        let view = self.view();
        if v.len() != view.cols {
            return Err(TocError::Dimension {
                expected: view.cols,
                got: v.len(),
                what: "A·v",
            });
        }
        crate::tree::DecodeTree::build_trusted_into(&view, &mut ws.tree, &mut ws.tree_scratch);
        crate::ops::matvec_into(&view, &ws.tree, v, &mut ws.h, out);
        Ok(())
    }

    /// `v · A` into caller-owned buffers (see [`Self::matvec_into`]).
    pub fn vecmat_into(
        &self,
        v: &[f64],
        out: &mut Vec<f64>,
        ws: &mut KernelScratch,
    ) -> Result<(), TocError> {
        let view = self.view();
        if v.len() != view.rows {
            return Err(TocError::Dimension {
                expected: view.rows,
                got: v.len(),
                what: "v·A",
            });
        }
        crate::tree::DecodeTree::build_trusted_into(&view, &mut ws.tree, &mut ws.tree_scratch);
        crate::ops::vecmat_into(&view, &ws.tree, v, &mut ws.h, out);
        Ok(())
    }

    /// `A · M` into caller-owned buffers (see [`Self::matvec_into`]).
    pub fn matmat_into(
        &self,
        m: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut KernelScratch,
    ) -> Result<(), TocError> {
        let view = self.view();
        if m.rows() != view.cols {
            return Err(TocError::Dimension {
                expected: view.cols,
                got: m.rows(),
                what: "A·M",
            });
        }
        crate::tree::DecodeTree::build_trusted_into(&view, &mut ws.tree, &mut ws.tree_scratch);
        crate::ops::matmat_into(&view, &ws.tree, m, &mut ws.h, out);
        Ok(())
    }

    /// `M · A` into caller-owned buffers (see [`Self::matvec_into`]).
    pub fn matmat_left_into(
        &self,
        m: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut KernelScratch,
    ) -> Result<(), TocError> {
        let view = self.view();
        if m.cols() != view.rows {
            return Err(TocError::Dimension {
                expected: view.rows,
                got: m.cols(),
                what: "M·A",
            });
        }
        crate::tree::DecodeTree::build_trusted_into(&view, &mut ws.tree, &mut ws.tree_scratch);
        crate::ops::matmat_left_into(&view, &ws.tree, m, &mut ws.h, out);
        Ok(())
    }

    /// Full decode into a caller-owned dense matrix (see
    /// [`Self::matvec_into`]).
    pub fn decode_into(&self, out: &mut DenseMatrix, ws: &mut KernelScratch) {
        let view = self.view();
        crate::tree::DecodeTree::build_trusted_into(&view, &mut ws.tree, &mut ws.tree_scratch);
        crate::ops::decode_into(&view, &ws.tree, &mut ws.stack, &mut ws.row_codes, out);
    }

    /// Encoding statistics, for inspection and ablation reporting.
    pub fn stats(&self) -> TocStats {
        let view = self.view();
        let mut nonempty = 0usize;
        for r in 0..view.rows {
            let (s, e) = view.row_range(r);
            if e > s {
                nonempty += 1;
            }
        }
        TocStats {
            rows: view.rows,
            cols: view.cols,
            first_layer_len: view.first_layer_len(),
            unique_values: view.values.len(),
            codes_len: view.codes.len(),
            n_nodes: 1 + view.first_layer_len() + (view.codes.len() - nonempty),
            size_bytes: self.bytes.len(),
        }
    }
}

/// Reusable scratch for the zero-allocation TOC kernel entry points
/// (`TocBatch::{matvec,vecmat,matmat,matmat_left,decode}_into`): holds the
/// decode tree `C'`, its rebuild scratch, the per-kernel `H`/`G`
/// accumulator, and the decode backtracking buffers. One instance serves
/// any number of batches of any shape; buffers grow to the high-water mark
/// and are reused thereafter.
#[derive(Clone, Debug, Default)]
pub struct KernelScratch {
    tree: DecodeTree,
    tree_scratch: crate::tree::TreeScratch,
    h: Vec<f64>,
    stack: Vec<(u32, f64)>,
    row_codes: Vec<u32>,
}

use crate::tree::DecodeTree;

/// Summary statistics of a compressed batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TocStats {
    pub rows: usize,
    pub cols: usize,
    /// `|I|`: distinct column index:value pairs.
    pub first_layer_len: usize,
    /// Distinct values after value indexing.
    pub unique_values: usize,
    /// `|D|`: total emitted codes.
    pub codes_len: usize,
    /// Prefix-tree node count (root included).
    pub n_nodes: usize,
    pub size_bytes: usize,
}

/// Scan-ready view over the physical buffer: the encoded table `D`, the
/// first layer `I` (via value indexing), and tuple boundaries.
pub struct TocView<'a> {
    pub rows: usize,
    pub cols: usize,
    pub(crate) i_cols: IntSlice<'a>,
    pub(crate) i_validx: IntSlice<'a>,
    pub(crate) values: F64Slice<'a>,
    pub(crate) codes: IntSlice<'a>,
    pub(crate) offsets: IntSlice<'a>,
}

impl TocView<'_> {
    /// `|I|`.
    #[inline]
    pub fn first_layer_len(&self) -> usize {
        self.i_cols.len()
    }

    /// The `i`-th (0-based) first-layer pair; tree node `i + 1`.
    #[inline]
    pub fn first_layer(&self, i: usize) -> ColVal {
        ColVal {
            col: self.i_cols.get(i),
            val: self.values.get(self.i_validx.get(i) as usize),
        }
    }

    /// Total number of codes in `D`.
    #[inline]
    pub fn codes_len(&self) -> usize {
        self.codes.len()
    }

    /// The `k`-th code of the concatenated encoded table.
    #[inline]
    pub fn code(&self, k: usize) -> u32 {
        self.codes.get(k)
    }

    /// Code range `[start, end)` of tuple `r`.
    #[inline]
    pub fn row_range(&self, r: usize) -> (usize, usize) {
        (
            self.offsets.get(r) as usize,
            self.offsets.get(r + 1) as usize,
        )
    }

    /// Visit codes `start..end` with a single width dispatch (hot path of
    /// every kernel's `D` scan).
    #[inline]
    pub fn for_each_code_in(&self, start: usize, end: usize, f: impl FnMut(u32)) {
        self.codes.for_each_range(start, end, f);
    }

    /// Bulk-append codes `start..end` to `out`.
    #[inline]
    pub fn codes_into(&self, start: usize, end: usize, out: &mut Vec<u32>) {
        self.codes.extend_into(start, end, out);
    }
}

fn parse_view(bytes: &[u8]) -> Result<TocView<'_>, TocError> {
    let mut cur = Cursor::new(bytes);
    if cur.read_u32()? != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = cur.read_u8()?;
    if version != VERSION {
        return Err(TocError::Unsupported(format!("version {version}")));
    }
    let codec = cur.read_u8()?;
    if codec > 1 {
        return Err(TocError::Unsupported(format!("codec {codec}")));
    }
    let pad = cur.read_u16()?;
    if pad != 0 {
        return Err(corrupt("nonzero header padding"));
    }
    let rows = cur.read_u32()? as usize;
    let cols = cur.read_u32()? as usize;
    let i_cols = cur.read_ints()?;
    let values = cur.read_f64s()?;
    let i_validx = cur.read_ints()?;
    let codes = cur.read_ints()?;
    let offsets = cur.read_ints()?;
    if cur.remaining() != 0 {
        return Err(corrupt("trailing bytes"));
    }
    Ok(TocView {
        rows,
        cols,
        i_cols,
        i_validx,
        values,
        codes,
        offsets,
    })
}

fn validate_view(view: &TocView<'_>) -> Result<(), TocError> {
    if view.i_cols.len() != view.i_validx.len() {
        return Err(corrupt("I column/value-index length mismatch"));
    }
    for i in 0..view.i_validx.len() {
        if view.i_validx.get(i) as usize >= view.values.len() {
            return Err(corrupt("value index out of range"));
        }
        if view.i_cols.get(i) as usize >= view.cols {
            return Err(corrupt("column index out of range"));
        }
    }
    if view.offsets.len() != view.rows + 1 {
        return Err(corrupt("offset table length mismatch"));
    }
    let mut prev = 0u32;
    for r in 0..view.offsets.len() {
        let o = view.offsets.get(r);
        if r == 0 && o != 0 {
            return Err(corrupt("first offset must be 0"));
        }
        if o < prev {
            return Err(corrupt("offsets must be non-decreasing"));
        }
        prev = o;
    }
    if prev as usize != view.codes.len() {
        return Err(corrupt("last offset must equal code count"));
    }
    // Structural code validation is performed by DecodeTree::build, which
    // replays the dictionary growth; run it once here.
    crate::tree::DecodeTree::build(view)?;
    Ok(())
}

/// Locate `(payload_start, value_count)` of the unique-value section.
fn locate_values_section(bytes: &[u8]) -> Result<(usize, usize), TocError> {
    let mut cur = Cursor::new(bytes);
    let _ = cur.read_u32()?; // magic
    let _ = cur.read_u8()?;
    let _ = cur.read_u8()?;
    let _ = cur.read_u16()?;
    let _ = cur.read_u32()?;
    let _ = cur.read_u32()?;
    let _ = cur.read_ints()?; // I cols
    let count = cur.read_u32()? as usize;
    Ok((cur.position(), count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fig3() -> DenseMatrix {
        DenseMatrix::from_rows(vec![
            vec![1.1, 2.0, 3.0, 1.4],
            vec![1.1, 2.0, 3.0, 0.0],
            vec![0.0, 1.1, 3.0, 1.4],
            vec![1.1, 2.0, 0.0, 0.0],
        ])
    }

    fn random_sparse(
        rng: &mut StdRng,
        rows: usize,
        cols: usize,
        density: f64,
        pool: usize,
    ) -> DenseMatrix {
        let vals: Vec<f64> = (0..pool).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen::<f64>() < density {
                    m.set(r, c, vals[rng.gen_range(0..pool)]);
                }
            }
        }
        m
    }

    #[test]
    fn fig3_value_indexing() {
        // Figure 3: values array [1.1, 2, 3, 1.4], value indexes [0,1,2,3,0].
        let toc = TocBatch::encode(&fig3());
        let view = toc.view();
        assert_eq!(view.values.to_vec(), vec![1.1, 2.0, 3.0, 1.4]);
        let idx: Vec<u32> = view.i_validx.iter().collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 0]);
        let cols: Vec<u32> = view.i_cols.iter().collect();
        assert_eq!(cols, vec![0, 1, 2, 3, 1]); // paper 1-based: 1 2 3 4 2
    }

    #[test]
    fn fig3_physical_sections() {
        let toc = TocBatch::encode(&fig3());
        let view = toc.view();
        let codes: Vec<u32> = view.codes.iter().collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 6, 3, 5, 8, 6]);
        let offs: Vec<u32> = view.offsets.iter().collect();
        assert_eq!(offs, vec![0, 4, 6, 8, 9]);
    }

    #[test]
    fn roundtrip_both_codecs() {
        let mut rng = StdRng::seed_from_u64(42);
        for density in [0.0, 0.1, 0.5, 1.0] {
            let a = random_sparse(&mut rng, 30, 20, density, 6);
            for codec in [PhysicalCodec::BitPack, PhysicalCodec::Varint] {
                let toc = TocBatch::encode_with(&a, codec);
                assert_eq!(toc.decode(), a, "density {density} codec {codec:?}");
            }
        }
    }

    #[test]
    fn serialization_roundtrip_with_validation() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_sparse(&mut rng, 25, 15, 0.4, 5);
        let toc = TocBatch::encode(&a);
        let restored = TocBatch::from_bytes(toc.to_bytes()).unwrap();
        assert_eq!(restored, toc);
        assert_eq!(restored.decode(), a);
    }

    #[test]
    fn corrupt_buffers_error_not_panic() {
        let toc = TocBatch::encode(&fig3());
        let good = toc.to_bytes();
        // Bad magic.
        let mut b = good.clone();
        b[0] ^= 0xFF;
        assert!(TocBatch::from_bytes(b).is_err());
        // Truncations at every prefix length must not panic.
        for len in 0..good.len() {
            let _ = TocBatch::from_bytes(good[..len].to_vec());
        }
        // Single-byte corruption anywhere must not panic (may or may not
        // error; decode of an accepted buffer must not panic either).
        for i in 0..good.len() {
            let mut b = good.clone();
            b[i] = b[i].wrapping_add(1);
            if let Ok(t) = TocBatch::from_bytes(b) {
                let _ = t.decode();
            }
        }
    }

    #[test]
    fn scale_rewrites_values_in_place() {
        let a = fig3();
        let mut toc = TocBatch::encode(&a);
        let before = toc.size_bytes();
        toc.scale(2.5);
        assert_eq!(toc.size_bytes(), before);
        let mut expect = a.clone();
        expect.scale(2.5);
        assert_eq!(toc.decode(), expect);
    }

    #[test]
    fn scale_by_zero_is_safe() {
        let mut toc = TocBatch::encode(&fig3());
        toc.scale(0.0);
        assert_eq!(toc.decode(), {
            let mut m = fig3();
            m.scale(0.0);
            m
        });
    }

    #[test]
    fn add_scalar_matches_dense() {
        let a = fig3();
        let toc = TocBatch::encode(&a);
        assert_eq!(toc.add_scalar(1.5), a.add_scalar(1.5));
    }

    #[test]
    fn stats_match_fig3() {
        let toc = TocBatch::encode(&fig3());
        let s = toc.stats();
        assert_eq!(s.first_layer_len, 5);
        assert_eq!(s.unique_values, 4);
        assert_eq!(s.codes_len, 9);
        assert_eq!(s.n_nodes, 11);
    }

    #[test]
    fn dimension_mismatch_errors() {
        let toc = TocBatch::encode(&fig3());
        assert!(matches!(
            toc.matvec(&[1.0; 3]),
            Err(TocError::Dimension { .. })
        ));
        assert!(matches!(
            toc.vecmat(&[1.0; 5]),
            Err(TocError::Dimension { .. })
        ));
    }

    #[test]
    fn compresses_redundant_data_well() {
        // 250 rows drawn from 4 distinct row patterns: TOC should be far
        // smaller than DEN and also smaller than raw CSR pairs.
        let patterns: Vec<Vec<f64>> = vec![
            (0..60)
                .map(|c| if c % 3 == 0 { 1.5 } else { 0.0 })
                .collect(),
            (0..60)
                .map(|c| if c % 4 == 0 { 2.5 } else { 0.0 })
                .collect(),
            (0..60)
                .map(|c| if c % 5 == 0 { 1.5 } else { 0.0 })
                .collect(),
            (0..60)
                .map(|c| if c % 6 == 0 { 3.5 } else { 0.0 })
                .collect(),
        ];
        let rows: Vec<Vec<f64>> = (0..250).map(|r| patterns[r % 4].clone()).collect();
        let a = DenseMatrix::from_rows(rows);
        let toc = TocBatch::encode(&a);
        let den = a.den_size_bytes();
        assert!(
            (den as f64) / (toc.size_bytes() as f64) > 20.0,
            "ratio {}",
            den as f64 / toc.size_bytes() as f64
        );
    }

    #[test]
    fn varint_codec_kernels_agree_with_bitpack() {
        let mut rng = StdRng::seed_from_u64(77);
        let a = random_sparse(&mut rng, 40, 25, 0.3, 4);
        let v: Vec<f64> = (0..25).map(|i| (i as f64).sin()).collect();
        let b1 = TocBatch::encode_with(&a, PhysicalCodec::BitPack);
        let b2 = TocBatch::encode_with(&a, PhysicalCodec::Varint);
        assert_eq!(b1.matvec(&v).unwrap(), b2.matvec(&v).unwrap());
    }
}
