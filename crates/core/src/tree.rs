//! The decoding prefix tree `C'` (Algorithm 2, §4.1.2).
//!
//! `C'` is a simplified variant of the encoding tree `C`: every node keeps
//! its key (a column index:value pair) and the index of its *parent*, but no
//! child pointers. It is rebuilt from `(I, D)` by replaying the dictionary
//! growth of Algorithm 1: for every adjacent code pair `(D[i][j],
//! D[i][j+1])` a node was added whose parent is `D[i][j]` and whose key is
//! the first pair of the sequence represented by `D[i][j+1]`.

use crate::batch::TocView;
use crate::error::{corrupt, TocError};

/// Parent-pointer prefix tree used by all compressed kernels.
///
/// Stored as parallel arrays indexed by node id; id 0 is the root (its key
/// slot is unused and holds `(0, 0.0)`). For node `i >= 1`:
/// `seq(i) = seq(parent[i]) ++ (key_col[i], key_val[i])`.
#[derive(Clone, Debug, Default)]
pub struct DecodeTree {
    pub key_col: Vec<u32>,
    pub key_val: Vec<f64>,
    pub parent: Vec<u32>,
}

/// Reusable scratch for [`DecodeTree::build_trusted_into`]: holds the `F`
/// array and the per-row code buffer so that rebuilding `C'` for every
/// kernel call performs no heap allocation in steady state.
#[derive(Clone, Debug, Default)]
pub struct TreeScratch {
    first: Vec<u32>,
    row_codes: Vec<u32>,
}

impl DecodeTree {
    /// Number of nodes, root included (`len(C')` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Algorithm 2 (`BuildPrefixTree`): rebuild `C'` from the view's
    /// `(I, D)`. Also validates that every code in `D` references a node
    /// that exists at the time it is replayed, which makes this the
    /// structural integrity check for untrusted buffers.
    pub fn build(view: &TocView<'_>) -> Result<DecodeTree, TocError> {
        let mut tree = DecodeTree::default();
        let mut scratch = TreeScratch::default();
        Self::build_impl::<true>(view, &mut tree, &mut scratch)?;
        Ok(tree)
    }

    /// [`Self::build`] without per-code validation, for buffers that were
    /// already validated once (every op on a `TocBatch` rebuilds `C'`, so
    /// revalidating on each kernel call would tax the hot path).
    pub fn build_trusted(view: &TocView<'_>) -> DecodeTree {
        let mut tree = DecodeTree::default();
        let mut scratch = TreeScratch::default();
        Self::build_impl::<false>(view, &mut tree, &mut scratch)
            .expect("trusted batch must replay");
        tree
    }

    /// [`Self::build_trusted`] into caller-owned buffers: the tree arrays
    /// and the scratch are cleared and refilled, reusing their allocations.
    /// This is the zero-allocation entry point of the workspace kernel API.
    pub fn build_trusted_into(
        view: &TocView<'_>,
        tree: &mut DecodeTree,
        scratch: &mut TreeScratch,
    ) {
        Self::build_impl::<false>(view, tree, scratch).expect("trusted batch must replay");
    }

    fn build_impl<const VALIDATE: bool>(
        view: &TocView<'_>,
        tree: &mut DecodeTree,
        scratch: &mut TreeScratch,
    ) -> Result<(), TocError> {
        let n_first = view.first_layer_len();
        // Upper bound on node count: root + |I| + one node per adjacent
        // code pair.
        let mut nonempty = 0usize;
        for r in 0..view.rows {
            let (s, e) = view.row_range(r);
            if e > s {
                nonempty += 1;
            }
        }
        let capacity = 1 + n_first + view.codes_len().saturating_sub(nonempty);

        let key_col = &mut tree.key_col;
        let key_val = &mut tree.key_val;
        let parent = &mut tree.parent;
        // F: the *node index* of the first pair of each node's sequence
        // (a first-layer node; 0 for the root). Keys of new nodes are then
        // plain array reads instead of physical-layer lookups.
        let first = &mut scratch.first;
        key_col.clear();
        key_val.clear();
        parent.clear();
        first.clear();
        key_col.reserve(capacity);
        key_val.reserve(capacity);
        parent.reserve(capacity);
        first.reserve(capacity);

        // Root.
        key_col.push(0);
        key_val.push(0.0);
        parent.push(0);
        first.push(0);

        // Phase I: first layer.
        for i in 0..n_first {
            let p = view.first_layer(i);
            key_col.push(p.col);
            key_val.push(p.val);
            parent.push(0);
            first.push(i as u32 + 1);
        }

        // Phase II: replay D.
        let mut idx_seq_num = n_first as u32 + 1;
        let row_codes = &mut scratch.row_codes;
        for r in 0..view.rows {
            let (s, e) = view.row_range(r);
            if e <= s {
                continue;
            }
            row_codes.clear();
            view.codes_into(s, e, row_codes);
            // Each code is validated as it is encountered; the final (or
            // only) code of the row is checked after the pair loop.
            let mut a = row_codes[0];
            for j in 0..row_codes.len() - 1 {
                let b = row_codes[j + 1];
                if VALIDATE {
                    if a == 0 || a >= idx_seq_num {
                        return Err(corrupt(format!(
                            "row {r}: code {a} references unknown node"
                        )));
                    }
                    // `b` may reference the node being added right now (the
                    // LZW self-reference pattern); Algorithm 2 sets F before
                    // reading it, which the push order below reproduces.
                    if b == 0 || b > idx_seq_num {
                        return Err(corrupt(format!(
                            "row {r}: code {b} references unknown node"
                        )));
                    }
                }
                parent.push(a);
                first.push(first[a as usize]);
                let key_node = first[b as usize] as usize;
                let kc = key_col[key_node];
                let kv = key_val[key_node];
                key_col.push(kc);
                key_val.push(kv);
                idx_seq_num += 1;
                a = b;
            }
            if VALIDATE {
                let last = *row_codes.last().expect("non-empty row");
                if last == 0 || last >= idx_seq_num {
                    return Err(corrupt(format!("row {r}: trailing code {last} unknown")));
                }
            }
        }

        Ok(())
    }

    /// Materialize the full sequence of node `n`, root-to-node order.
    /// Used by the sparse-unsafe decode path (Algorithm 6) and tests.
    pub fn sequence(&self, n: u32) -> Vec<(u32, f64)> {
        let mut rev = Vec::new();
        let mut cur = n;
        while cur != 0 {
            rev.push((self.key_col[cur as usize], self.key_val[cur as usize]));
            cur = self.parent[cur as usize];
        }
        rev.reverse();
        rev
    }

    /// Depth of node `n` (sequence length).
    pub fn depth(&self, n: u32) -> usize {
        let mut d = 0;
        let mut cur = n;
        while cur != 0 {
            d += 1;
            cur = self.parent[cur as usize];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::TocBatch;
    use toc_linalg::DenseMatrix;

    fn fig3_tree() -> DecodeTree {
        let a = DenseMatrix::from_rows(vec![
            vec![1.1, 2.0, 3.0, 1.4],
            vec![1.1, 2.0, 3.0, 0.0],
            vec![0.0, 1.1, 3.0, 1.4],
            vec![1.1, 2.0, 0.0, 0.0],
        ]);
        let toc = TocBatch::encode(&a);
        DecodeTree::build(&toc.view()).unwrap()
    }

    #[test]
    fn table4_parent_pointers() {
        // Table 4 of the paper (1-based columns there; 0-based here):
        // Index:      1  2  3  4  5  6  7  8  9  10
        // ParentIdx:  0  0  0  0  0  1  2  3  6  5
        let t = fig3_tree();
        assert_eq!(t.len(), 11);
        assert_eq!(&t.parent[1..], &[0, 0, 0, 0, 0, 1, 2, 3, 6, 5]);
    }

    #[test]
    fn table4_keys() {
        // Keys (paper): 1:1.1 2:2 3:3 4:1.4 2:1.1 | 2:2 3:3 4:1.4 3:3 3:3
        let t = fig3_tree();
        let keys: Vec<(u32, f64)> = (1..11).map(|i| (t.key_col[i], t.key_val[i])).collect();
        assert_eq!(
            keys,
            vec![
                (0, 1.1),
                (1, 2.0),
                (2, 3.0),
                (3, 1.4),
                (1, 1.1),
                (1, 2.0),
                (2, 3.0),
                (3, 1.4),
                (2, 3.0),
                (2, 3.0),
            ]
        );
    }

    #[test]
    fn sequences_match_table2() {
        // Node 9 represents [1:1.1, 2:2, 3:3]; node 10 is [2:1.1, 3:3].
        let t = fig3_tree();
        assert_eq!(t.sequence(9), vec![(0, 1.1), (1, 2.0), (2, 3.0)]);
        assert_eq!(t.sequence(10), vec![(1, 1.1), (2, 3.0)]);
        assert_eq!(t.sequence(6), vec![(0, 1.1), (1, 2.0)]);
        assert_eq!(t.depth(9), 3);
    }

    #[test]
    fn rebuild_matches_encoder_for_random_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..10 {
            let rows = rng.gen_range(1..40);
            let cols = rng.gen_range(1..30);
            let mut m = DenseMatrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    if rng.gen::<f64>() < 0.4 {
                        m.set(r, c, ((rng.gen_range(0..4) * 7) as f64) / 2.0 + 0.5);
                    }
                }
            }
            let toc = TocBatch::encode(&m);
            let view = toc.view();
            let tree = DecodeTree::build(&view).unwrap();
            // Decoding each row's codes through the tree reproduces the
            // sparse rows exactly.
            let sparse = toc_linalg::SparseRows::encode(&m);
            for r in 0..rows {
                let (s, e) = view.row_range(r);
                let mut pairs = Vec::new();
                for k in s..e {
                    pairs.extend(tree.sequence(view.code(k)));
                }
                let expect: Vec<(u32, f64)> =
                    sparse.row(r).iter().map(|p| (p.col, p.val)).collect();
                assert_eq!(pairs, expect, "row {r}");
            }
        }
    }
}
