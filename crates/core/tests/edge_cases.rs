//! Edge-case integration tests for the TOC core: degenerate shapes,
//! zero-width multiplications, and extreme value regimes.

use toc_core::{DecodeTree, TocBatch};
use toc_linalg::DenseMatrix;

#[test]
fn one_by_one_matrices() {
    for v in [0.0, 1.0, -3.5, f64::MIN_POSITIVE] {
        let a = DenseMatrix::from_vec(1, 1, vec![v]);
        let toc = TocBatch::encode(&a);
        assert_eq!(toc.decode(), a);
        assert_eq!(toc.matvec(&[2.0]).unwrap(), a.matvec(&[2.0]));
    }
}

#[test]
fn zero_width_right_operand() {
    let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![0.0, 3.0]]);
    let toc = TocBatch::encode(&a);
    let m = DenseMatrix::zeros(2, 0);
    let out = toc.matmat(&m).unwrap();
    assert_eq!((out.rows(), out.cols()), (2, 0));
}

#[test]
fn zero_height_left_operand() {
    let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![0.0, 3.0]]);
    let toc = TocBatch::encode(&a);
    let m = DenseMatrix::zeros(0, 2);
    let out = toc.matmat_left(&m).unwrap();
    assert_eq!((out.rows(), out.cols()), (0, 2));
}

#[test]
fn single_column_many_rows() {
    let a = DenseMatrix::from_vec(1000, 1, (0..1000).map(|i| (i % 3) as f64).collect());
    let toc = TocBatch::encode(&a);
    assert_eq!(toc.decode(), a);
    // One column means every tuple is at most one pair: the tree stays at
    // depth <= 1 and D has exactly nnz codes.
    let stats = toc.stats();
    assert_eq!(stats.codes_len, a.nnz());
    assert!(stats.first_layer_len <= 2);
}

#[test]
fn wide_single_row() {
    let a = DenseMatrix::from_vec(1, 5000, (0..5000).map(|i| ((i % 4) as f64) * 0.5).collect());
    let toc = TocBatch::encode(&a);
    assert_eq!(toc.decode(), a);
    let v = vec![1.0; 5000];
    let diff = (toc.matvec(&v).unwrap()[0] - a.matvec(&v)[0]).abs();
    assert!(diff < 1e-6);
}

#[test]
fn extreme_magnitudes_survive() {
    let a = DenseMatrix::from_rows(vec![vec![1e308, 1e-308, 0.0], vec![1e308, 1e-308, -1e300]]);
    let toc = TocBatch::encode(&a);
    let back = toc.decode();
    for (x, y) in a.data().iter().zip(back.data()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn nan_payloads_are_preserved() {
    // NaNs are unusual in training data but must not be corrupted.
    let nan1 = f64::from_bits(0x7FF8_0000_0000_0001);
    let nan2 = f64::from_bits(0x7FF8_0000_0000_0002);
    let a = DenseMatrix::from_rows(vec![vec![nan1, 1.0], vec![nan2, 1.0]]);
    let toc = TocBatch::encode(&a);
    let back = toc.decode();
    assert_eq!(back.get(0, 0).to_bits(), nan1.to_bits());
    assert_eq!(back.get(1, 0).to_bits(), nan2.to_bits());
    // NaNs with different payloads must be distinct dictionary entries.
    assert_eq!(toc.stats().unique_values, 3);
}

#[test]
fn tree_depth_grows_linearly_with_repeats() {
    // LZW-style growth: each re-occurrence of a sequence extends the
    // longest match by roughly one pair, so k identical rows of n pairs
    // yield a deepest node of depth ~k+1 (capped at n) and the per-row
    // code count shrinks towards n / depth.
    let row: Vec<f64> = (0..16).map(|i| (i % 2 + 1) as f64).collect();
    let repeats = 6;
    let rows: Vec<Vec<f64>> = (0..repeats).map(|_| row.clone()).collect();
    let toc = TocBatch::encode(&DenseMatrix::from_rows(rows));
    let view = toc.view();
    let tree = DecodeTree::build(&view).unwrap();
    let max_depth = (1..tree.len() as u32).map(|n| tree.depth(n)).max().unwrap();
    assert!(
        (repeats..=16).contains(&max_depth),
        "expected linear depth growth, got {max_depth}"
    );
    // Later rows need fewer codes than the first (16 singles).
    let (s0, e0) = view.row_range(0);
    let (s5, e5) = view.row_range(repeats - 1);
    assert_eq!(e0 - s0, 16);
    assert!(e5 - s5 <= 6, "last row used {} codes", e5 - s5);
}

#[test]
fn scale_then_serialize_roundtrip() {
    let a = DenseMatrix::from_rows(vec![vec![1.5, 0.0, 2.5], vec![2.5, 1.5, 0.0]]);
    let mut toc = TocBatch::encode(&a);
    toc.scale(-0.5);
    let restored = TocBatch::from_bytes(toc.to_bytes()).unwrap();
    let mut want = a;
    want.scale(-0.5);
    assert_eq!(restored.decode(), want);
}

#[test]
fn many_small_batches_are_independent() {
    // Encoding shares nothing between batches: each buffer decodes alone.
    let mut batches = Vec::new();
    for k in 0..50 {
        let a = DenseMatrix::from_vec(4, 6, (0..24).map(|i| ((i + k) % 5) as f64 * 0.25).collect());
        batches.push((TocBatch::encode(&a), a));
    }
    for (toc, a) in batches {
        assert_eq!(toc.decode(), a);
    }
}
