//! Property-based tests for the TOC pipeline: lossless roundtrips and
//! kernel-vs-oracle equality on arbitrary matrices across sparsity regimes.

use proptest::prelude::*;
use toc_core::{PhysicalCodec, TocBatch};
use toc_linalg::dense::max_abs_diff_vec;
use toc_linalg::DenseMatrix;

/// Strategy: a matrix whose cells are drawn from a small value pool (TOC's
/// target regime) with the given density.
fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = DenseMatrix> {
    (1..=max_rows, 1..=max_cols, 0.0f64..=1.0).prop_flat_map(|(rows, cols, density)| {
        let pool = prop::collection::vec(-100.0f64..100.0, 1..6);
        (
            Just(rows),
            Just(cols),
            pool,
            prop::collection::vec(0.0f64..1.0, rows * cols),
            prop::collection::vec(0usize..5, rows * cols),
            Just(density),
        )
            .prop_map(|(rows, cols, pool, coins, picks, density)| {
                let data = coins
                    .iter()
                    .zip(&picks)
                    .map(|(&coin, &pick)| {
                        if coin < density {
                            pool[pick % pool.len()]
                        } else {
                            0.0
                        }
                    })
                    .collect();
                DenseMatrix::from_vec(rows, cols, data)
            })
    })
}

/// Matrices with fully arbitrary (possibly non-finite-free) doubles.
fn wild_matrix_strategy() -> impl Strategy<Value = DenseMatrix> {
    (1usize..20, 1usize..20).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(
            prop_oneof![
                Just(0.0f64),
                -1e300f64..1e300,
                Just(-0.0f64),
                Just(f64::MIN_POSITIVE),
            ],
            rows * cols,
        )
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_lossless(a in matrix_strategy(40, 30)) {
        let toc = TocBatch::encode(&a);
        prop_assert_eq!(toc.decode(), a);
    }

    #[test]
    fn roundtrip_is_lossless_wild_values(a in wild_matrix_strategy()) {
        let toc = TocBatch::encode(&a);
        let back = toc.decode();
        // Bit-exact comparison, except that sparse encoding canonicalizes
        // -0.0 to +0.0 (zeros are elided and re-materialized as +0.0).
        for (x, y) in a.data().iter().zip(back.data()) {
            if *x == 0.0 {
                prop_assert_eq!(*y, 0.0);
            } else {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn varint_codec_is_also_lossless(a in matrix_strategy(30, 20)) {
        let toc = TocBatch::encode_with(&a, PhysicalCodec::Varint);
        prop_assert_eq!(toc.decode(), a);
    }

    #[test]
    fn serialization_roundtrip(a in matrix_strategy(25, 20)) {
        let toc = TocBatch::encode(&a);
        let restored = TocBatch::from_bytes(toc.to_bytes()).unwrap();
        prop_assert_eq!(restored.decode(), a);
    }

    #[test]
    fn matvec_matches_oracle(a in matrix_strategy(30, 25), seed in 0u64..1000) {
        let v: Vec<f64> = (0..a.cols()).map(|i| ((i as u64 * 2654435761 + seed) % 17) as f64 - 8.0).collect();
        let toc = TocBatch::encode(&a);
        let got = toc.matvec(&v).unwrap();
        let want = a.matvec(&v);
        prop_assert!(max_abs_diff_vec(&got, &want) < 1e-6 * (1.0 + a.cols() as f64));
    }

    #[test]
    fn vecmat_matches_oracle(a in matrix_strategy(30, 25), seed in 0u64..1000) {
        let v: Vec<f64> = (0..a.rows())
            .map(|i| ((i as u64).wrapping_mul(11400714819323198485).wrapping_add(seed) % 13) as f64 - 6.0)
            .collect();
        let toc = TocBatch::encode(&a);
        let got = toc.vecmat(&v).unwrap();
        let want = a.vecmat(&v);
        prop_assert!(max_abs_diff_vec(&got, &want) < 1e-6 * (1.0 + a.rows() as f64));
    }

    #[test]
    fn matmat_matches_oracle(a in matrix_strategy(20, 15), p in 1usize..8) {
        let m = DenseMatrix::from_vec(
            a.cols(), p,
            (0..a.cols() * p).map(|i| ((i * 7919) % 23) as f64 * 0.25 - 2.5).collect(),
        );
        let toc = TocBatch::encode(&a);
        let got = toc.matmat(&m).unwrap();
        prop_assert!(got.max_abs_diff(&a.matmat(&m)) < 1e-6);
    }

    #[test]
    fn matmat_left_matches_oracle(a in matrix_strategy(20, 15), p in 1usize..8) {
        let m = DenseMatrix::from_vec(
            p, a.rows(),
            (0..a.rows() * p).map(|i| ((i * 104729) % 19) as f64 * 0.5 - 4.0).collect(),
        );
        let toc = TocBatch::encode(&a);
        let got = toc.matmat_left(&m).unwrap();
        prop_assert!(got.max_abs_diff(&a.matmat_left(&m)) < 1e-6);
    }

    #[test]
    fn scale_commutes_with_decode(a in matrix_strategy(20, 15), c in -10.0f64..10.0) {
        let mut toc = TocBatch::encode(&a);
        toc.scale(c);
        let mut want = a.clone();
        want.scale(c);
        prop_assert!(toc.decode().max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = TocBatch::from_bytes(bytes);
    }

    #[test]
    fn compressed_size_never_catastrophically_larger(a in matrix_strategy(30, 20)) {
        // TOC may be larger than DEN on tiny or adversarial inputs, but
        // must stay within a small constant factor of the sparse pair count.
        let toc = TocBatch::encode(&a);
        let bound = 64 + 16 * a.nnz() + 5 * a.rows() + a.rows() * a.cols();
        prop_assert!(toc.size_bytes() <= bound, "{} > {}", toc.size_bytes(), bound);
    }
}
