#![forbid(unsafe_code)]
//! # toc-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (run with
//! `cargo run -p toc-bench --release --bin <name> [-- --key=value ...]`),
//! plus Criterion benches for the microbenchmark figures. This library
//! holds the shared plumbing: timing, aligned table printing, command-line
//! overrides, and the end-to-end MGD runner used by Tables 6–7 and
//! Figures 9–10.

use std::time::{Duration, Instant};
use toc_data::store::{MiniBatchStore, StoreConfig};
use toc_data::synth::Dataset;
use toc_formats::Scheme;
use toc_ml::mgd::{BatchProvider, MgdConfig, ModelSpec, Trainer};
use toc_ml::LossKind;

/// Time a closure once.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Average wall time of `f` over enough iterations to exceed ~20 ms
/// (bounded by `max_iters`), after one warm-up call.
pub fn time_avg<R>(max_iters: usize, mut f: impl FnMut() -> R) -> Duration {
    std::hint::black_box(f());
    let mut iters = 0usize;
    let t0 = Instant::now();
    while iters < max_iters && (iters < 3 || t0.elapsed() < Duration::from_millis(20)) {
        std::hint::black_box(f());
        iters += 1;
    }
    t0.elapsed() / iters.max(1) as u32
}

/// Parse `--name=value` from the process arguments, with a default.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let prefix = format!("--{name}=");
    for a in std::env::args() {
        if let Some(v) = a.strip_prefix(&prefix) {
            if let Ok(parsed) = v.parse() {
                return parsed;
            }
            eprintln!("warning: could not parse {a}, using default");
        }
    }
    default
}

/// Today's UTC date as `YYYY-MM-DD`, computed straight from the system
/// clock (no chrono in the workspace). Days-to-civil conversion follows
/// the standard era-based algorithm.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Append one run entry to a `BENCH_*.json` history file (read-modify-
/// write). The convention: a static header object whose LAST key is
/// `"history": [ ... ]`, one dated entry per benchmark run, so committed
/// baselines accumulate per PR instead of being overwritten.
///
/// If `path` already holds a history file, `entry` is spliced in before
/// the array's closing bracket (the two-space-indented `]` that closes
/// the top-level array — deeper-nested arrays inside entries are
/// indented further and never match). Otherwise the file is created as
/// `fresh_header` + the one-entry history. `entry` must be the complete
/// JSON object for this run, indented four spaces, no trailing newline
/// or comma; `fresh_header` must open the top-level object and end just
/// before the `"history"` key (trailing `,\n` included).
pub fn append_history(path: &str, fresh_header: &str, entry: &str) -> std::io::Result<()> {
    const CLOSE: &str = "\n  ]\n}";
    let entry = entry.trim_end();
    let out = match std::fs::read_to_string(path) {
        Ok(existing) if existing.contains("\"history\": [") => {
            let i = existing.rfind(CLOSE).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{path}: history file has no closing bracket"),
                )
            })?;
            format!("{},\n{entry}{}", &existing[..i], &existing[i..])
        }
        _ => format!("{fresh_header}  \"history\": [\n{entry}\n  ]\n}}\n"),
    };
    std::fs::write(path, out)
}

/// Minimal aligned-table printer for harness output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(&widths) {
                s.push_str(&format!("{c:>w$}  ", w = w));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Human-friendly duration (matches the unit scales in the paper's plots).
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}us")
    } else if us < 1e6 {
        format!("{:.1}ms", us / 1000.0)
    } else {
        format!("{:.2}s", us / 1e6)
    }
}

/// Format a ratio with one decimal.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.1}x")
}

/// Throughput in MB/s for `bytes` moved in `d`.
pub fn mb_per_s(bytes: usize, d: Duration) -> f64 {
    bytes as f64 / 1e6 / d.as_secs_f64().max(1e-12)
}

/// The three end-to-end workloads of §5.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    Nn,
    Lr,
    Svm,
}

impl Workload {
    pub const ALL: [Workload; 3] = [Workload::Nn, Workload::Lr, Workload::Svm];

    pub fn name(self) -> &'static str {
        match self {
            Workload::Nn => "NN",
            Workload::Lr => "LR",
            Workload::Svm => "SVM",
        }
    }

    /// Model spec for a dataset with `classes` classes. The NN uses two
    /// hidden layers (scaled down from the paper's 200/50 to keep the
    /// harness fast; override with `--hidden1/--hidden2`).
    pub fn spec(self, classes: usize, hidden: (usize, usize)) -> ModelSpec {
        match self {
            Workload::Nn => ModelSpec::NeuralNet {
                hidden: vec![hidden.0, hidden.1],
                outputs: if classes == 2 { 1 } else { classes },
            },
            Workload::Lr => {
                if classes == 2 {
                    ModelSpec::Linear(LossKind::Logistic)
                } else {
                    ModelSpec::OneVsRest {
                        loss: LossKind::Logistic,
                        classes,
                    }
                }
            }
            Workload::Svm => {
                if classes == 2 {
                    ModelSpec::Linear(LossKind::Hinge)
                } else {
                    ModelSpec::OneVsRest {
                        loss: LossKind::Hinge,
                        classes,
                    }
                }
            }
        }
    }
}

/// Result of one end-to-end MGD run.
pub struct EndToEndResult {
    pub train_time: Duration,
    pub spilled_batches: usize,
    pub total_batches: usize,
    pub encoded_bytes: usize,
}

/// Build a store for `scheme` and train `workload` on it (the Tables 6–7 /
/// Figures 9–10 inner loop). `memory_budget` mimics the machine RAM of the
/// paper's setups and `disk_mbps` the spill-storage bandwidth (0 = raw
/// file IO only); training time includes the disk IO of spilled batches
/// but not the one-time encoding cost, matching §5.3.
pub fn end_to_end(
    ds: &Dataset,
    scheme: Scheme,
    workload: Workload,
    memory_budget: usize,
    epochs: usize,
    hidden: (usize, usize),
    disk_mbps: f64,
) -> EndToEndResult {
    let mut config = StoreConfig::new(scheme, 250, memory_budget);
    if disk_mbps > 0.0 {
        config = config.with_disk_mbps(disk_mbps);
    }
    let store = MiniBatchStore::build(&ds.x, &ds.labels, &config).expect("store build");
    let trainer = Trainer::new(MgdConfig {
        epochs,
        lr: 0.05,
        ..Default::default()
    });
    let spec = workload.spec(ds.classes, hidden);
    let report = trainer.train(&spec, &store, None);
    EndToEndResult {
        train_time: report.train_time,
        spilled_batches: store.spilled_batches(),
        total_batches: store.num_batches(),
        encoded_bytes: store.total_bytes(),
    }
}

/// Wall-clock time for `threads` concurrent visitors to sweep every batch
/// of `provider` once (batch indices striped across visitors). This is
/// the read-path microbenchmark behind the `store_scaling` binary: on a
/// spilled store it measures exactly how much the visitors serialize on
/// the spill IO.
pub fn sweep_store(provider: &(dyn BatchProvider + Sync), threads: usize) -> Duration {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut i = t;
                while i < provider.num_batches() {
                    provider.visit(i, &mut |b, _| {
                        use toc_formats::MatrixBatch;
                        std::hint::black_box(b.size_bytes());
                    });
                    i += threads;
                }
            });
        }
    });
    t0.elapsed()
}

/// Compression ratio of `scheme` on a dense batch (DEN bytes / encoded
/// bytes), as defined in §5.1.
pub fn compression_ratio(batch: &toc_linalg::DenseMatrix, scheme: Scheme) -> f64 {
    use toc_formats::MatrixBatch;
    let encoded = scheme.encode(batch);
    batch.den_size_bytes() as f64 / encoded.size_bytes() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use toc_data::synth::{generate_preset, DatasetPreset};

    #[test]
    fn table_prints_aligned() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["1", "2"]);
        t.print();
    }

    #[test]
    fn today_is_iso_shaped() {
        let d = today_utc();
        assert_eq!(d.len(), 10, "{d}");
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
        let year: i64 = d[..4].parse().unwrap();
        assert!(year >= 2024, "{d}");
        let month: u32 = d[5..7].parse().unwrap();
        assert!((1..=12).contains(&month), "{d}");
        let day: u32 = d[8..10].parse().unwrap();
        assert!((1..=31).contains(&day), "{d}");
    }

    #[test]
    fn history_appends_without_clobbering() {
        let path = std::env::temp_dir().join(format!("toc-bench-hist-{}.json", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        std::fs::remove_file(&path).ok();
        let header = "{\n  \"bench\": \"t\",\n";
        // First run creates the file; nested arrays in an entry must not
        // confuse the splice point.
        append_history(
            &path,
            header,
            "    {\"run\": 1, \"sweep\": [\n      {\"x\": 1}\n    ]}",
        )
        .unwrap();
        append_history(&path, header, "    {\"run\": 2}").unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            got,
            "{\n  \"bench\": \"t\",\n  \"history\": [\n    {\"run\": 1, \"sweep\": [\n      {\"x\": 1}\n    ]},\n    {\"run\": 2}\n  ]\n}\n"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.0us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
        assert_eq!(fmt_ratio(12.34), "12.3x");
    }

    #[test]
    fn end_to_end_smoke() {
        let ds = generate_preset(DatasetPreset::Kdd99Like, 500, 1);
        let r = end_to_end(&ds, Scheme::Toc, Workload::Lr, usize::MAX, 2, (8, 4), 0.0);
        assert_eq!(r.spilled_batches, 0);
        assert_eq!(r.total_batches, 2);
        assert!(r.train_time > Duration::ZERO);
    }

    #[test]
    fn workload_specs() {
        assert!(matches!(
            Workload::Lr.spec(2, (8, 4)),
            ModelSpec::Linear(LossKind::Logistic)
        ));
        assert!(matches!(
            Workload::Svm.spec(10, (8, 4)),
            ModelSpec::OneVsRest {
                loss: LossKind::Hinge,
                classes: 10
            }
        ));
        assert!(matches!(
            Workload::Nn.spec(10, (8, 4)),
            ModelSpec::NeuralNet { outputs: 10, .. }
        ));
    }

    #[test]
    fn sweep_store_reads_every_spilled_batch_once() {
        let ds = generate_preset(DatasetPreset::CensusLike, 500, 9);
        let store =
            MiniBatchStore::build(&ds.x, &ds.labels, &StoreConfig::new(Scheme::Toc, 100, 0))
                .expect("store build");
        let d = sweep_store(&store, 4);
        assert!(d > Duration::ZERO);
        assert_eq!(
            store.stats().snapshot().disk_reads,
            store.num_batches() as u64
        );
    }

    #[test]
    fn compression_ratio_sane() {
        let ds = generate_preset(DatasetPreset::Kdd99Like, 250, 2);
        assert!(compression_ratio(&ds.x, Scheme::Toc) > 10.0);
        assert!((compression_ratio(&ds.x, Scheme::Den) - 1.0).abs() < 1e-9);
    }
}
