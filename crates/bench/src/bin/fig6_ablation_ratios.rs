//! Figure 6: ablation of the TOC encoding components — compression ratios
//! of TOC_SPARSE, TOC_SPARSE_AND_LOGICAL and TOC_FULL on varying-size
//! mini-batches.
//!
//! Expected shape: each added component improves the ratio; the logical
//! step's gain is large on kdd/census, small on mnist.

use toc_bench::{arg, compression_ratio, Table};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::Scheme;

fn main() {
    let seed: u64 = arg("seed", 42);
    let sizes = [50usize, 100, 150, 200, 250];
    const VARIANTS: [Scheme; 3] = [Scheme::TocSparse, Scheme::TocSparseLogical, Scheme::Toc];
    println!("# Figure 6 — TOC ablation compression ratios\n");
    for preset in DatasetPreset::ALL {
        println!("## dataset: {}", preset.name());
        let ds = generate_preset(preset, *sizes.last().unwrap(), seed);
        let mut table = Table::new(vec![
            "rows".to_string(),
            "TOC_SPARSE".to_string(),
            "TOC_SPARSE_AND_LOGICAL".to_string(),
            "TOC_FULL".to_string(),
        ]);
        for &rows in &sizes {
            let batch = ds.x.slice_rows(0, rows);
            let mut cells = vec![rows.to_string()];
            for scheme in VARIANTS {
                cells.push(format!("{:.1}", compression_ratio(&batch, scheme)));
            }
            table.row(cells);
        }
        table.print();
        println!();
    }
}
