//! Table 7: end-to-end MGD runtimes for NN / LR / SVM on the census-like
//! and kdd99-like datasets (Appendix D.2). Same harness as Table 6.
//!
//! Expected shape: kdd99's extreme redundancy makes the TOC speedups the
//! largest of the whole evaluation at the out-of-core scale (the paper
//! reports up to 17.8x / 18.3x for LR / SVM).

use toc_bench::{arg, end_to_end, fmt_duration, Table, Workload};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::Scheme;

/// Table 6/7 compare these rows (the paper's end-to-end tables exclude CLA).
const END_TO_END_SET: [Scheme; 7] = [
    Scheme::Den,
    Scheme::Csr,
    Scheme::Cvi,
    Scheme::Dvi,
    Scheme::Snappy,
    Scheme::Gzip,
    Scheme::Toc,
];

fn main() {
    println!("# Table 7 — end-to-end MGD runtimes (census-like, kdd99-like)\n");
    let small_rows: usize = arg("small-rows", 2000);
    let large_rows: usize = arg("large-rows", 10000);
    let epochs: usize = arg("epochs", 2);
    let h1: usize = arg("hidden1", 32);
    let h2: usize = arg("hidden2", 16);
    let seed: u64 = arg("seed", 42);
    let mbps: f64 = arg("mbps", 150.0);

    for preset in [DatasetPreset::CensusLike, DatasetPreset::Kdd99Like] {
        for (scale_name, rows) in [("small", small_rows), ("large", large_rows)] {
            let ds = generate_preset(preset, rows, seed);
            let budget = if scale_name == "small" {
                usize::MAX
            } else {
                use toc_formats::MatrixBatch;
                let toc_bytes: usize = ds
                    .minibatches(250)
                    .iter()
                    .map(|(x, _)| Scheme::Toc.encode(x).size_bytes())
                    .sum();
                toc_bytes * 22 / 10
            };
            println!("## {}{} ({} rows)", preset.name(), scale_name, rows);
            let mut table = Table::new(vec!["scheme", "NN", "LR", "SVM", "spilled/total"]);
            for scheme in END_TO_END_SET {
                let mut cells = vec![scheme.name().to_string()];
                let mut spill_info = String::new();
                for workload in Workload::ALL {
                    let r = end_to_end(&ds, scheme, workload, budget, epochs, (h1, h2), mbps);
                    cells.push(fmt_duration(r.train_time));
                    spill_info = format!("{}/{}", r.spilled_batches, r.total_batches);
                }
                cells.push(spill_info);
                table.row(cells);
            }
            table.print();
            println!();
        }
    }
}
