//! Figure 7: compression ratios on large mini-batches — the batch is a
//! growing percentage of the whole dataset (100% = batch gradient
//! descent).
//!
//! Expected shape: TOC becomes *more* competitive as batches grow (deeper
//! dictionary reuse), overtaking everything at 100% on the
//! moderate-sparsity datasets.

use toc_bench::{arg, compression_ratio, Table};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::Scheme;

fn main() {
    let rows: usize = arg("rows", 4000);
    let seed: u64 = arg("seed", 42);
    let percents = [5usize, 10, 20, 40, 80, 100];
    println!("# Figure 7 — compression ratios on large mini-batches ({rows} total rows)\n");
    for preset in DatasetPreset::MODERATE {
        println!("## dataset: {}", preset.name());
        let ds = generate_preset(preset, rows, seed);
        let mut table = Table::new(
            std::iter::once("pct".to_string())
                .chain(Scheme::PAPER_SET.iter().map(|s| s.name().to_string()))
                .collect(),
        );
        for &pct in &percents {
            let take = (rows * pct / 100).max(1);
            let batch = ds.x.slice_rows(0, take);
            let mut cells = vec![format!("{pct}%")];
            for scheme in Scheme::PAPER_SET {
                cells.push(format!("{:.1}", compression_ratio(&batch, scheme)));
            }
            table.row(cells);
        }
        table.print();
        println!();
    }
}
