//! Figure 8: average runtimes of the five matrix-operation classes on
//! compressed 250-row mini-batches, per scheme and dataset.
//!
//! Expected shape: value-indexed schemes (DVI/CVI/TOC) make `A*c` nearly
//! free; GC schemes are orders of magnitude slower on everything (full
//! decompression per op); TOC is fastest on `A*M`/`M*A` for the
//! moderate-sparsity datasets; CSR/DEN win on rcv1/deep1b.

use std::time::Duration;
use toc_bench::{arg, fmt_duration, time_avg, Table};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::{AnyBatch, MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;

const OPS: [&str; 5] = ["A*c", "A*v", "A*M", "v*A", "M*A"];

fn run_op(batch: &AnyBatch, op: &str, v: &[f64], w: &[f64], mr: &DenseMatrix, ml: &DenseMatrix) {
    match op {
        "A*c" => {
            let mut b = batch.clone();
            b.scale(1.000001);
        }
        "A*v" => {
            std::hint::black_box(batch.matvec(v));
        }
        "A*M" => {
            std::hint::black_box(batch.matmat(mr));
        }
        "v*A" => {
            std::hint::black_box(batch.vecmat(w));
        }
        "M*A" => {
            std::hint::black_box(batch.matmat_left(ml));
        }
        _ => unreachable!(),
    }
}

fn main() {
    let rows: usize = arg("rows", 250);
    let iters: usize = arg("iters", 30);
    let seed: u64 = arg("seed", 42);
    println!("# Figure 8 — matrix operation runtimes on compressed {rows}-row batches\n");
    for preset in DatasetPreset::ALL {
        let ds = generate_preset(preset, rows, seed);
        let cols = ds.x.cols();
        let v: Vec<f64> = (0..cols).map(|i| ((i % 7) as f64) - 3.0).collect();
        let w: Vec<f64> = (0..rows).map(|i| ((i % 5) as f64) - 2.0).collect();
        // M has 20 columns/rows, per §5.2.
        let mr = DenseMatrix::from_vec(
            cols,
            20,
            (0..cols * 20).map(|i| ((i % 11) as f64) * 0.25).collect(),
        );
        let ml = DenseMatrix::from_vec(
            20,
            rows,
            (0..rows * 20)
                .map(|i| ((i % 13) as f64) * 0.5 - 3.0)
                .collect(),
        );
        println!("## dataset: {} ({} cols)", preset.name(), cols);
        let mut table = Table::new(
            std::iter::once("scheme".to_string())
                .chain(OPS.iter().map(|o| o.to_string()))
                .collect(),
        );
        for scheme in Scheme::PAPER_SET {
            let batch = scheme.encode(&ds.x);
            let mut cells = vec![scheme.name().to_string()];
            for op in OPS {
                // CLA in SystemML does not support A*M (paper footnote);
                // ours does, so no exclusions are needed.
                let d: Duration = time_avg(iters, || run_op(&batch, op, &v, &w, &mr, &ml));
                cells.push(fmt_duration(d));
            }
            table.row(cells);
        }
        table.print();
        println!();
    }
}
