//! Figure 10: ablation of TOC components in the end-to-end MGD loop —
//! DEN vs TOC_SPARSE vs TOC_SPARSE_AND_LOGICAL vs TOC_FULL under the
//! Figure 9 memory budget.
//!
//! Expected shape: each encoding component shifts the spill point further
//! right and lowers the runtime at scale.

use toc_bench::{arg, end_to_end, fmt_duration, Table, Workload};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::{MatrixBatch, Scheme};

fn main() {
    let epochs: usize = arg("epochs", 2);
    let seed: u64 = arg("seed", 42);
    let mbps: f64 = arg("mbps", 150.0);
    let max_rows: usize = arg("max-rows", 8000);
    let sweep: Vec<usize> = [1usize, 2, 4, 8]
        .iter()
        .map(|k| k * max_rows / 8)
        .filter(|&r| r > 0)
        .collect();
    const VARIANTS: [Scheme; 4] = [
        Scheme::Den,
        Scheme::TocSparse,
        Scheme::TocSparseLogical,
        Scheme::Toc,
    ];

    let probe = generate_preset(DatasetPreset::ImagenetLike, max_rows / 2, seed);
    let budget: usize = probe
        .minibatches(250)
        .iter()
        .map(|(x, _)| Scheme::Toc.encode(x).size_bytes())
        .sum::<usize>()
        * 4;

    println!("# Figure 10 — TOC ablation, end-to-end MGD runtimes (imagenet-like)\n");
    for workload in [Workload::Nn, Workload::Lr] {
        println!("## workload: {}", workload.name());
        let mut table = Table::new(
            std::iter::once("rows".to_string())
                .chain(VARIANTS.iter().map(|s| s.name().to_string()))
                .collect(),
        );
        for &rows in &sweep {
            let ds = generate_preset(DatasetPreset::ImagenetLike, rows, seed);
            let mut cells = vec![rows.to_string()];
            for scheme in VARIANTS {
                let r = end_to_end(&ds, scheme, workload, budget, epochs, (32, 16), mbps);
                let marker = if r.spilled_batches > 0 { "*" } else { "" };
                cells.push(format!("{}{}", fmt_duration(r.train_time), marker));
            }
            table.row(cells);
        }
        table.print();
        println!("(* = spilled to disk)\n");
    }
}
