//! Out-of-core read-path scaling: the mutexed-era single-file store vs.
//! the sharded store vs. sharded + prefetch, across schemes.
//!
//! Everything spills (budget 0) and reads go through the simulated
//! bandwidth model, so the numbers isolate how the three read paths
//! behave when IO is the wall: the single-file store serializes readers
//! on one device clock, sharding gives each of N devices its own clock
//! (aggregate bandwidth scales with N), and prefetch additionally
//! overlaps the decode+IO of upcoming batches with the visitor's work.
//!
//! ```text
//! cargo run -p toc-bench --release --bin store_scaling -- \
//!     --rows=3000 --threads=8 --mbps=400 --shards=4 --prefetch=8
//! ```

use toc_bench::{arg, fmt_duration, sweep_store, Table};
use toc_data::store::{MiniBatchStore, ShardedSpillStore, StoreConfig};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::Scheme;

fn main() {
    let rows: usize = arg("rows", 3000);
    let batch_rows: usize = arg("batch-rows", 250);
    let threads: usize = arg("threads", 8);
    let mbps: f64 = arg("mbps", 400.0);
    let shards: usize = arg("shards", 0); // 0 = available parallelism
    let prefetch: usize = arg("prefetch", 8);
    let ds = generate_preset(DatasetPreset::CensusLike, rows, 1);
    println!(
        "store_scaling: {rows} rows x {} cols, batch_rows={batch_rows}, budget=0 (all spilled), \
         disk={mbps} MB/s, {threads} visitor threads",
        ds.x.cols()
    );

    let mut table = Table::new(vec![
        "scheme", "store", "spill MB", "1T sweep", "nT sweep", "speedup", "pf hit%",
    ]);
    for scheme in [Scheme::Den, Scheme::Csr, Scheme::Gzip, Scheme::Toc] {
        let base = StoreConfig::new(scheme, batch_rows, 0).with_disk_mbps(mbps);

        // (a) single-file store: one device clock for every reader.
        let store = MiniBatchStore::build(&ds.x, &ds.labels, &base).expect("store build");
        let spill_mb = store.spilled_bytes() as f64 / 1e6;
        let seq = sweep_store(&store, 1);
        let par = sweep_store(&store, threads);
        table.row(vec![
            scheme.name().to_string(),
            "1-file".into(),
            format!("{spill_mb:.1}"),
            fmt_duration(seq),
            fmt_duration(par),
            format!("{:.1}x", seq.as_secs_f64() / par.as_secs_f64()),
            "-".into(),
        ]);
        drop(store);

        // (b) sharded: N independent device clocks, lock-free reads.
        let cfg = base.clone().with_shards(shards);
        let store = ShardedSpillStore::build(&ds.x, &ds.labels, &cfg).expect("store build");
        let seq = sweep_store(&store, 1);
        let par = sweep_store(&store, threads);
        table.row(vec![
            scheme.name().to_string(),
            format!("sharded({})", store.num_shards()),
            format!("{:.1}", store.spilled_bytes() as f64 / 1e6),
            fmt_duration(seq),
            fmt_duration(par),
            format!("{:.1}x", seq.as_secs_f64() / par.as_secs_f64()),
            "-".into(),
        ]);
        drop(store);

        // (c) sharded + prefetch: background workers decode ahead.
        let cfg = base.clone().with_shards(shards).with_prefetch(prefetch);
        let store = ShardedSpillStore::build(&ds.x, &ds.labels, &cfg).expect("store build");
        let seq = sweep_store(&store, 1);
        let par = sweep_store(&store, threads);
        let s = store.stats().snapshot();
        let visits = (s.prefetch_hits + s.prefetch_misses).max(1);
        table.row(vec![
            scheme.name().to_string(),
            format!("sharded({})+pf{}", store.num_shards(), prefetch),
            format!("{:.1}", store.spilled_bytes() as f64 / 1e6),
            fmt_duration(seq),
            fmt_duration(par),
            format!("{:.1}x", seq.as_secs_f64() / par.as_secs_f64()),
            format!("{:.0}%", 100.0 * s.prefetch_hits as f64 / visits as f64),
        ]);
    }
    table.print();
    println!(
        "(1T/nT sweep = wall time for 1/{threads} concurrent visitors to visit every batch once; \
         pf hit% = spilled visits served by the prefetch pipeline)"
    );
}
