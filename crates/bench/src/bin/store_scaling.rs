//! Out-of-core read-path scaling: the mutexed-era single-file store vs.
//! the sharded store vs. sharded + prefetch (sync, async pool, async
//! ring), across schemes.
//!
//! Everything spills (budget 0) and reads go through the simulated
//! bandwidth model, so the numbers isolate how the read paths behave
//! when IO is the wall: the single-file store serializes readers on one
//! device clock, sharding gives each of N devices its own clock
//! (aggregate bandwidth scales with N), prefetch overlaps the decode+IO
//! of upcoming batches with the visitor's work, and the async engines
//! additionally split submission from completion so read latency no
//! longer serializes with decode inside each prefetch worker — the ring
//! engine also coalesces file-adjacent reads into one request.
//!
//! The binary ends with two acceptance gates (both assert, so CI fails
//! loudly on a regression): the ring engine must beat single-worker
//! synchronous prefetch by ≥ 1.3× throughput on the seeded multi-shard
//! workload, and adaptive placement must beat static pack by ≥ 1.15×
//! epoch throughput on the seeded *asymmetric-bandwidth* workload (one
//! fast shard, three slow ones — the heterogeneity the profiler exists
//! to discover).
//!
//! ```text
//! cargo run -p toc-bench --release --bin store_scaling -- \
//!     --rows=3000 --threads=8 --mbps=400 --shards=4 --prefetch=8 --io=ring
//! ```

use toc_bench::{arg, fmt_duration, mb_per_s, sweep_store, Table};
use toc_data::store::{
    IoEngineKind, MiniBatchStore, ShardPlacement, ShardedSpillStore, StoreConfig,
};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::Scheme;

fn main() {
    let rows: usize = arg("rows", 3000);
    let batch_rows: usize = arg("batch-rows", 250);
    let threads: usize = arg("threads", 8);
    let mbps: f64 = arg("mbps", 400.0);
    let shards: usize = arg("shards", 0); // 0 = available parallelism
    let prefetch: usize = arg("prefetch", 8);
    let io: IoEngineKind = arg("io", "ring".to_string()).parse().expect("--io");
    let ds = generate_preset(DatasetPreset::CensusLike, rows, 1);
    println!(
        "store_scaling: {rows} rows x {} cols, batch_rows={batch_rows}, budget=0 (all spilled), \
         disk={mbps} MB/s, {threads} visitor threads",
        ds.x.cols()
    );

    let mut table = Table::new(vec![
        "scheme",
        "store",
        "spill MB",
        "1T sweep",
        "nT sweep",
        "speedup",
        "pf hit%",
        "coalesced",
    ]);
    for scheme in [Scheme::Den, Scheme::Csr, Scheme::Gzip, Scheme::Toc] {
        let base = StoreConfig::new(scheme, batch_rows, 0).with_disk_mbps(mbps);

        // (a) single-file store: one device clock for every reader.
        let store = MiniBatchStore::build(&ds.x, &ds.labels, &base).expect("store build");
        let spill_mb = store.spilled_bytes() as f64 / 1e6;
        let seq = sweep_store(&store, 1);
        let par = sweep_store(&store, threads);
        table.row(vec![
            scheme.name().to_string(),
            "1-file".into(),
            format!("{spill_mb:.1}"),
            fmt_duration(seq),
            fmt_duration(par),
            format!("{:.1}x", seq.as_secs_f64() / par.as_secs_f64()),
            "-".into(),
            "-".into(),
        ]);
        drop(store);

        // (b) sharded: N independent device clocks, lock-free reads.
        let cfg = base.clone().with_shards(shards);
        let store = ShardedSpillStore::build(&ds.x, &ds.labels, &cfg).expect("store build");
        let seq = sweep_store(&store, 1);
        let par = sweep_store(&store, threads);
        table.row(vec![
            scheme.name().to_string(),
            format!("sharded({})", store.num_shards()),
            format!("{:.1}", store.spilled_bytes() as f64 / 1e6),
            fmt_duration(seq),
            fmt_duration(par),
            format!("{:.1}x", seq.as_secs_f64() / par.as_secs_f64()),
            "-".into(),
            "-".into(),
        ]);
        drop(store);

        // (c) sharded + prefetch, each IO path: sync workers, async pool,
        // async ring (ring rides the pack placement so adjacent reads
        // exist to coalesce).
        for (engine, placement) in [
            (IoEngineKind::Sync, ShardPlacement::Stripe),
            (IoEngineKind::Pool, ShardPlacement::Stripe),
            (io, ShardPlacement::Pack),
        ] {
            let cfg = base
                .clone()
                .with_shards(shards)
                .with_prefetch(prefetch)
                .with_io(engine)
                .with_placement(placement);
            let store = ShardedSpillStore::build(&ds.x, &ds.labels, &cfg).expect("store build");
            let seq = sweep_store(&store, 1);
            let par = sweep_store(&store, threads);
            let s = store.stats().snapshot_stable();
            let visits = (s.prefetch_hits + s.prefetch_misses).max(1);
            table.row(vec![
                scheme.name().to_string(),
                format!(
                    "sharded({})+pf{}/{}{}",
                    store.num_shards(),
                    prefetch,
                    engine,
                    if placement == ShardPlacement::Pack {
                        "+pack"
                    } else {
                        ""
                    }
                ),
                format!("{:.1}", store.spilled_bytes() as f64 / 1e6),
                fmt_duration(seq),
                fmt_duration(par),
                format!("{:.1}x", seq.as_secs_f64() / par.as_secs_f64()),
                format!("{:.0}%", 100.0 * s.prefetch_hits as f64 / visits as f64),
                format!("{}", s.coalesced_reads),
            ]);
        }
    }
    table.print();
    println!(
        "(1T/nT sweep = wall time for 1/{threads} concurrent visitors to visit every batch once; \
         pf hit% = spilled visits served by the prefetch pipeline; \
         coalesced = reads that rode along a merged ring read)"
    );

    overlap_acceptance_gate();
    adaptive_acceptance_gate();
}

/// Acceptance gate for adaptive placement (ISSUE 5): on the seeded
/// asymmetric-bandwidth workload — shard 0 at 400 MB/s, shards 1–3 at
/// 25 MB/s — adaptive placement must reach ≥ 1.15× the steady-state
/// epoch throughput of static pack placement. Both stores run the same
/// pool-engine prefetch pipeline; the only difference is where the bytes
/// live. Static pack spreads them evenly, so every epoch waits on the
/// slow devices; adaptive profiles the shards during the warm-up epochs
/// and re-packs hot bytes onto the fast device in proportion to measured
/// bandwidth.
fn adaptive_acceptance_gate() {
    let rows = 6000;
    let batch_rows = 100;
    let shard_mbps = vec![400.0, 25.0, 25.0, 25.0];
    let ds = generate_preset(DatasetPreset::CensusLike, rows, 1);
    let base = StoreConfig::new(Scheme::Den, batch_rows, 0)
        .with_shards(4)
        .with_prefetch(8)
        .with_io(IoEngineKind::Pool)
        .with_shard_mbps(shard_mbps.clone());

    // Steady-state epoch time: warm epochs first (the adaptive store
    // profiles and migrates there; end_epoch is what the trainer fires),
    // then time two epochs over the settled layout.
    let epoch_time = |store: &ShardedSpillStore| {
        use toc_ml::mgd::BatchProvider;
        for _ in 0..2 {
            let _ = sweep_store(store, 1);
            store.end_epoch();
        }
        let mut total = std::time::Duration::ZERO;
        for _ in 0..2 {
            total += sweep_store(store, 1);
            store.end_epoch();
        }
        total / 2
    };

    let pack_store = ShardedSpillStore::build(
        &ds.x,
        &ds.labels,
        &base.clone().with_placement(ShardPlacement::Pack),
    )
    .expect("store build");
    let bytes = pack_store.spilled_bytes();
    let pack_time = epoch_time(&pack_store);
    let pack_tp = mb_per_s(bytes, pack_time);
    drop(pack_store);

    let adaptive_store = ShardedSpillStore::build(
        &ds.x,
        &ds.labels,
        &base.with_placement(ShardPlacement::Adaptive),
    )
    .expect("store build");
    let adaptive_time = epoch_time(&adaptive_store);
    let adaptive_tp = mb_per_s(bytes, adaptive_time);
    let rep = adaptive_store.placement_report();
    adaptive_store.stats().snapshot_stable().assert_consistent();
    drop(adaptive_store);

    let ratio = adaptive_tp / pack_tp;
    println!(
        "adaptive acceptance: pack {pack_tp:.1} MB/s ({}), adaptive {adaptive_tp:.1} MB/s ({}), \
         ratio {ratio:.2}x (gate: >= 1.15x); {} batches / {} KB migrated over {} rebalances, \
         fast-shard share {:.0}%",
        fmt_duration(pack_time),
        fmt_duration(adaptive_time),
        rep.migrated_batches,
        rep.migrated_bytes / 1024,
        rep.rebalances,
        100.0 * rep.shard_bytes[0] as f64 / rep.shard_bytes.iter().sum::<u64>().max(1) as f64,
    );
    assert!(
        ratio >= 1.15,
        "adaptive placement regression: only {ratio:.2}x over static pack on the \
         asymmetric-bandwidth workload"
    );
}

/// Acceptance gate for the async engine (ISSUE 4): on the seeded
/// multi-shard workload, the ring engine must reach ≥ 1.3× the
/// throughput of single-worker synchronous prefetch. The workload is
/// fixed (independent of the CLI overrides above) so the gate measures
/// the same thing on every run; the bandwidth model makes IO the wall,
/// which is exactly the regime overlap is supposed to win.
fn overlap_acceptance_gate() {
    let rows = 2000;
    let batch_rows = 100;
    let mbps = 80.0;
    let ds = generate_preset(DatasetPreset::CensusLike, rows, 1);
    let base = StoreConfig::new(Scheme::Den, batch_rows, 0)
        .with_shards(4)
        .with_disk_mbps(mbps);

    // Single-worker synchronous prefetch: depth 1 = one worker whose
    // read blocks serialize with its decodes.
    let sync_store = ShardedSpillStore::build(&ds.x, &ds.labels, &base.clone().with_prefetch(1))
        .expect("store build");
    let sync_time = sweep_store(&sync_store, 1);
    let bytes = sync_store.spilled_bytes();
    let sync_tp = mb_per_s(bytes, sync_time);
    drop(sync_store);

    // Ring engine: lookahead submissions keep reads in flight on all four
    // shard clocks while decode workers drain completions.
    let ring_cfg = base
        .with_prefetch(8)
        .with_io(IoEngineKind::Ring)
        .with_placement(ShardPlacement::Pack);
    let ring_store = ShardedSpillStore::build(&ds.x, &ds.labels, &ring_cfg).expect("store build");
    let ring_time = sweep_store(&ring_store, 1);
    let ring_tp = mb_per_s(bytes, ring_time);
    let s = ring_store.stats().snapshot_stable();
    s.assert_consistent();
    drop(ring_store);

    let ratio = ring_tp / sync_tp;
    println!(
        "overlap acceptance: sync1 {:.1} MB/s ({}), ring {:.1} MB/s ({}), \
         ratio {ratio:.2}x (gate: >= 1.30x), coalesced {} of {} completions",
        sync_tp,
        fmt_duration(sync_time),
        ring_tp,
        fmt_duration(ring_time),
        s.coalesced_reads,
        s.completed,
    );
    assert!(
        ratio >= 1.3,
        "overlap regression: ring engine only {ratio:.2}x over single-worker sync prefetch"
    );
}
