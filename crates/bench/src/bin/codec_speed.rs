//! Machine-readable codec benchmark: per-scheme encode/decode throughput
//! and compression ratio over the seeded preset mini-batches, appended
//! as one dated entry to the `BENCH_codec.json` history at the repo root
//! (override with `--out=`).
//!
//! The committed copy of that file is the recorded baseline for this
//! machine class — one entry per PR that ran the bench, so codec-speed
//! movement is visible over time instead of each run overwriting the
//! last. Add an entry with
//!
//! ```text
//! cargo run -p toc-bench --release --bin codec_speed
//! ```
//!
//! whenever a codec change moves the numbers. The JSON is hand-rolled
//! (no serde in the workspace): per entry, a flat object per scheme with
//! MB/s and ratio aggregated over every preset (throughput weighted by
//! dense bytes), plus the per-preset breakdown.

use toc_bench::{append_history, arg, mb_per_s, time_avg, today_utc};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::{MatrixBatch, Scheme};

/// Schemes worth tracking over time: the paper's headline formats plus
/// the byte-compressed baselines and the ANS entropy coder.
const SCHEMES: [Scheme; 7] = [
    Scheme::Den,
    Scheme::Csr,
    Scheme::Cvi,
    Scheme::Snappy,
    Scheme::Gzip,
    Scheme::GcAns,
    Scheme::Toc,
];

const HEADER: &str = "{\n  \"bench\": \"codec_speed\",\n  \"units\": {\"throughput\": \"MB/s of dense payload\", \"ratio\": \"dense bytes / encoded bytes\"},\n";

struct Measurement {
    preset: &'static str,
    encode_mb_s: f64,
    decode_mb_s: f64,
    ratio: f64,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let rows: usize = arg("rows", 250);
    let iters: usize = arg("iters", 20);
    let seed: u64 = arg("seed", 42);
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_codec.json");
    let out_path: String = arg("out", default_out.to_string());

    let datasets: Vec<_> = DatasetPreset::ALL
        .iter()
        .map(|&p| (p.name(), generate_preset(p, rows, seed)))
        .collect();

    let mut entry = String::new();
    entry.push_str(&format!(
        "    {{\"date\": \"{}\", \"rows\": {rows}, \"seed\": {seed}, \"schemes\": [\n",
        today_utc()
    ));

    for (si, scheme) in SCHEMES.iter().enumerate() {
        let mut per: Vec<Measurement> = Vec::new();
        let mut total_bytes = 0usize;
        let mut enc_time = 0.0f64;
        let mut dec_time = 0.0f64;
        let mut enc_bytes = 0usize;
        for (name, ds) in &datasets {
            let den_bytes = ds.x.den_size_bytes();
            let e = time_avg(iters, || std::hint::black_box(scheme.encode(&ds.x)));
            let encoded = scheme.encode(&ds.x);
            let d = time_avg(iters, || std::hint::black_box(encoded.decode()));
            per.push(Measurement {
                preset: name,
                encode_mb_s: mb_per_s(den_bytes, e),
                decode_mb_s: mb_per_s(den_bytes, d),
                ratio: den_bytes as f64 / encoded.size_bytes() as f64,
            });
            total_bytes += den_bytes;
            enc_time += e.as_secs_f64();
            dec_time += d.as_secs_f64();
            enc_bytes += encoded.size_bytes();
        }
        let agg_enc = total_bytes as f64 / 1e6 / enc_time.max(1e-12);
        let agg_dec = total_bytes as f64 / 1e6 / dec_time.max(1e-12);
        let agg_ratio = total_bytes as f64 / enc_bytes as f64;
        println!(
            "{:8}  encode {agg_enc:8.1} MB/s  decode {agg_dec:8.1} MB/s  ratio {agg_ratio:6.2}x",
            scheme.name()
        );
        entry.push_str(&format!(
            "      {{\"scheme\": \"{}\", \"encode_mb_s\": {:.1}, \"decode_mb_s\": {:.1}, \"ratio\": {:.3}, \"per_dataset\": [\n",
            json_escape(scheme.name()),
            agg_enc,
            agg_dec,
            agg_ratio
        ));
        for (pi, m) in per.iter().enumerate() {
            entry.push_str(&format!(
                "        {{\"dataset\": \"{}\", \"encode_mb_s\": {:.1}, \"decode_mb_s\": {:.1}, \"ratio\": {:.3}}}{}\n",
                json_escape(m.preset),
                m.encode_mb_s,
                m.decode_mb_s,
                m.ratio,
                if pi + 1 < per.len() { "," } else { "" }
            ));
        }
        entry.push_str(&format!(
            "      ]}}{}\n",
            if si + 1 < SCHEMES.len() { "," } else { "" }
        ));
    }
    entry.push_str("    ]}");

    append_history(&out_path, HEADER, &entry)
        .unwrap_or_else(|e| panic!("append to {out_path}: {e}"));
    println!("\nappended entry to {out_path}");
}
