//! Random-access read path of the seekable `.tocz` v2 container:
//! full-scan vs. one-segment vs. selective row-range decode, single
//! worker vs. parallel, with the bytes actually read reported from the
//! reader's own [`IoStats`].
//!
//! Ends with the PR's two acceptance gates (both assert, so CI fails
//! loudly on a regression):
//!
//! 1. **Random access**: decoding one segment of a 64-segment container
//!    — including opening the file — must read at most 2× that
//!    segment's bytes. A reader that drags in neighbours or rescans the
//!    payload to find a segment fails this immediately.
//! 2. **Zone-map pruning**: a selective row-range query must skip at
//!    least 90% of the segments via the layout-tree footer alone.
//!
//! ```text
//! cargo run -p toc-bench --release --bin seek_bench -- \
//!     --rows=65536 --cols=16 --segments=64 --scheme=toc
//! ```

use std::time::Instant;
use toc_bench::{arg, fmt_duration, mb_per_s, Table};
use toc_data::SeekableContainer;
use toc_formats::container::Container;
use toc_formats::{EncodeOptions, Scheme};
use toc_linalg::DenseMatrix;

/// Deterministic pool-valued matrix (no rand dependency in bins).
fn synth(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let pool = [0.0, 0.5, 1.5, -2.0, 3.25, 0.0, 7.5, 0.0];
    let data = (0..rows * cols)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            pool[(s % pool.len() as u64) as usize]
        })
        .collect();
    DenseMatrix::from_vec(rows, cols, data)
}

fn main() {
    let rows: usize = arg("rows", 65_536);
    let cols: usize = arg("cols", 16);
    let segments: usize = arg("segments", 64);
    let workers: usize = arg("workers", 4);
    let scheme_name: String = arg("scheme", "toc".to_string());
    let scheme = match scheme_name.as_str() {
        "toc" => Scheme::Toc,
        "den" => Scheme::Den,
        "csr" => Scheme::Csr,
        "cla" => Scheme::Cla,
        other => panic!("--scheme={other}: expected toc|den|csr|cla"),
    };
    let seg_rows = rows.div_ceil(segments);

    let m = synth(rows, cols, 42);
    let dir = std::env::temp_dir();
    let path = dir.join(format!("toc-seek-bench-{}.tocz", std::process::id()));
    let t = Instant::now();
    Container::encode_with(&m, scheme, seg_rows, &EncodeOptions::default())
        .write(&path)
        .unwrap();
    let write_t = t.elapsed();
    let file_len = std::fs::metadata(&path).unwrap().len();
    println!(
        "seek_bench: {rows} rows x {cols} cols, {segments} segments of {seg_rows} rows, \
         scheme={scheme:?}, file {file_len} bytes (written in {})",
        fmt_duration(write_t)
    );

    let mut table = Table::new(vec![
        "access",
        "rows",
        "bytes read",
        "of file",
        "time",
        "MB/s",
    ]);
    let mut run = |name: &str, r0: usize, r1: usize, workers: usize| -> (u64, u64) {
        let t = Instant::now();
        let sc = SeekableContainer::open(&path).unwrap();
        let part = sc.decode_rows_parallel(r0, r1, workers).unwrap();
        let elapsed = t.elapsed();
        assert_eq!(part.rows(), r1 - r0);
        let snap = sc.stats().snapshot();
        table.row(vec![
            name.to_string(),
            format!("{}..{}", r0, r1),
            format!("{}", snap.bytes_read),
            format!("{:.1}%", snap.bytes_read as f64 * 100.0 / file_len as f64),
            fmt_duration(elapsed),
            format!("{:.0}", mb_per_s(snap.bytes_read as usize, elapsed)),
        ]);
        (snap.bytes_read, snap.disk_reads)
    };

    run("full scan", 0, rows, 1);
    run(&format!("full scan x{workers}"), 0, rows, workers);
    let mid = segments / 2;
    let (one_seg_bytes, one_seg_reads) = run(
        "one segment",
        mid * seg_rows,
        ((mid + 1) * seg_rows).min(rows),
        1,
    );
    run("128-row slice", rows / 3, rows / 3 + 128, 1);
    table.print();

    // Gate 1: random access is bounded by the touched segment.
    let sc = SeekableContainer::open(&path).unwrap();
    let leaf = &sc.footer().leaves()[mid];
    let seg_bytes = leaf.end - leaf.begin;
    println!(
        "\ngate 1 (random access): one-segment decode read {one_seg_bytes} bytes \
         in {one_seg_reads} reads; segment is {seg_bytes} bytes (limit 2x)"
    );
    assert!(
        one_seg_bytes <= 2 * seg_bytes,
        "random-access gate failed: {one_seg_bytes} > 2 * {seg_bytes}"
    );

    // Gate 2: a selective row range prunes >= 90% of segments in the
    // footer, before any payload IO.
    let r0 = (mid * seg_rows) as u64;
    let touched = sc.footer().segments_overlapping_rows(r0, r0 + 128);
    let skipped = segments - touched.len();
    println!(
        "gate 2 (zone pruning): 128-row query touches {} of {segments} segments \
         ({skipped} skipped; limit >= 90%)",
        touched.len()
    );
    assert!(
        skipped * 10 >= segments * 9,
        "pruning gate failed: only {skipped} of {segments} segments skipped"
    );

    println!("seek_bench: all acceptance gates passed");
    std::fs::remove_file(&path).ok();
}
