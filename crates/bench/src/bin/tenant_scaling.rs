//! Multi-tenant scaling: N training jobs over ONE shared spill store and
//! one shared heat-aware compressed-batch cache, concurrent vs. serial.
//!
//! Everything spills (budget 0) under a deliberately slow simulated
//! device, so IO is the wall. Run serially (`max_concurrent=1`), each
//! job's synchronous miss reads keep at most one shard clock busy at a
//! time and the aggregate crawls. Run concurrently, the jobs spread
//! across all shard clocks and the shared cache turns every batch one
//! tenant already paid to read into a free hit for the other seven —
//! that is the multi-tenant dividend the paper's "compress once, serve
//! many consumers" premise predicts.
//!
//! The binary ends with an acceptance gate (asserted, run in CI): on the
//! seeded workload, 8 concurrent jobs must finish ≥ 2× faster than the
//! same 8 jobs run serially — and every job's final weights must be
//! byte-identical between the two runs (the serial leg doubles as the
//! solo reference).
//!
//! ```text
//! cargo run -p toc-bench --release --bin tenant_scaling -- \
//!     --rows=4800 --jobs=8 --shards=4 --mbps=50
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use toc_bench::{append_history, arg, fmt_duration, today_utc, Table};
use toc_data::serve::{JobServer, JobSpec, ServeConfig};
use toc_data::store::{ShardedSpillStore, StoreConfig};
use toc_data::synth::{generate_preset, Dataset, DatasetPreset};
use toc_formats::Scheme;
use toc_ml::mgd::{MgdConfig, ModelSpec};
use toc_ml::LossKind;

const BATCH_ROWS: usize = 100;
const EPOCHS: usize = 3;

fn jobs_for(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            JobSpec::new(
                format!("j{i}"),
                ModelSpec::Linear(LossKind::Logistic),
                MgdConfig {
                    epochs: EPOCHS,
                    lr: 0.2,
                    seed: 42 + i as u64,
                    record_curve: false,
                    shuffle_batches: true,
                },
            )
        })
        .collect()
}

/// Build a fresh store + server and run the job set; returns the wall
/// time and the outcomes. Each call gets its own store so the serial and
/// concurrent legs start from identical cold state.
fn run_fleet(
    ds: &Dataset,
    shards: usize,
    mbps: f64,
    cache_bytes: usize,
    max_concurrent: usize,
    n_jobs: usize,
) -> (Duration, Vec<toc_data::serve::JobOutcome>, u64) {
    let config = StoreConfig::new(Scheme::Den, BATCH_ROWS, 0)
        .with_shards(shards)
        .with_disk_mbps(mbps);
    let store =
        Arc::new(ShardedSpillStore::build(&ds.x, &ds.labels, &config).expect("build store"));
    let server = JobServer::new(
        Arc::clone(&store),
        ServeConfig {
            max_concurrent,
            cache_bytes,
        },
    );
    let t0 = Instant::now();
    let outcomes = server.run(jobs_for(n_jobs));
    let wall = t0.elapsed();
    store.stats().snapshot_stable().assert_consistent();
    (wall, outcomes, server.cache().evictions())
}

fn main() {
    let rows: usize = arg("rows", 4800);
    let jobs: usize = arg("jobs", 8);
    let shards: usize = arg("shards", 4);
    let mbps: f64 = arg("mbps", 50.0);
    let ds = generate_preset(DatasetPreset::CensusLike, rows, 1);
    let probe = StoreConfig::new(Scheme::Den, BATCH_ROWS, 0).with_shards(shards);
    let spilled = ShardedSpillStore::build(&ds.x, &ds.labels, &probe)
        .expect("probe store")
        .spilled_bytes();
    let cache_bytes = spilled / 4;
    println!(
        "tenant_scaling: {rows} rows x {} cols, {jobs} jobs x {EPOCHS} epochs, {shards} shards \
         @ {mbps} MB/s, {} KB spilled, cache {} KB",
        ds.x.cols(),
        spilled / 1024,
        cache_bytes / 1024,
    );

    let mut table = Table::new(vec![
        "concurrent",
        "wall",
        "agg epochs/s",
        "cache hit%",
        "qos wait",
        "evictions",
    ]);
    let mut sweep = String::new();
    for max_concurrent in [1usize, 2, 4, jobs] {
        let (wall, outcomes, evictions) =
            run_fleet(&ds, shards, mbps, cache_bytes, max_concurrent, jobs);
        let hits: u64 = outcomes.iter().map(|o| o.cache_hits).sum();
        let misses: u64 = outcomes.iter().map(|o| o.cache_misses).sum();
        let qos: Duration = outcomes.iter().map(|o| o.qos_wait).sum();
        let hit_pct = 100.0 * hits as f64 / (hits + misses).max(1) as f64;
        let agg = (jobs * EPOCHS) as f64 / wall.as_secs_f64();
        table.row(vec![
            max_concurrent.to_string(),
            fmt_duration(wall),
            format!("{agg:.1}"),
            format!("{hit_pct:.0}%"),
            fmt_duration(qos),
            evictions.to_string(),
        ]);
        sweep.push_str(&format!(
            "        {{\"concurrent\": {max_concurrent}, \"wall_ms\": {:.1}, \"agg_epochs_s\": {agg:.1}, \"cache_hit_pct\": {hit_pct:.0}, \"evictions\": {evictions}}},\n",
            wall.as_secs_f64() * 1e3,
        ));
    }
    table.print();

    let (serial_wall, conc_wall, ratio) =
        tenant_acceptance_gate(&ds, jobs, shards, mbps, cache_bytes);

    // Append this run to the per-PR history baseline (read-modify-write,
    // never overwriting earlier entries).
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tenant.json");
    let out_path: String = arg("out", default_out.to_string());
    let header = "{\n  \"bench\": \"tenant_scaling\",\n  \"units\": {\n    \"wall_ms\": \"wall time for the whole fleet\",\n    \"agg_epochs_s\": \"jobs * epochs / wall\",\n    \"cache_hit_pct\": \"fleet-wide cache hits / (hits + misses)\",\n    \"gate_ratio\": \"serial wall / concurrent wall (asserted >= 2.0)\"\n  },\n";
    let entry = format!(
        "    {{\n      \"date\": \"{}\",\n      \"rows\": {rows},\n      \"jobs\": {jobs},\n      \"shards\": {shards},\n      \"mbps\": {mbps},\n      \"gate_ratio\": {ratio:.2},\n      \"serial_wall_ms\": {:.1},\n      \"concurrent_wall_ms\": {:.1},\n      \"weights_bit_identical\": true,\n      \"sweep\": [\n{}      ]\n    }}",
        today_utc(),
        serial_wall.as_secs_f64() * 1e3,
        conc_wall.as_secs_f64() * 1e3,
        sweep.trim_end_matches(",\n").to_string() + "\n",
    );
    append_history(&out_path, header, &entry)
        .unwrap_or_else(|e| panic!("append to {out_path}: {e}"));
    println!("appended entry to {out_path}");
}

/// The asserted gate: 8 concurrent jobs ≥ 2× the serial aggregate on the
/// seeded workload, with bit-identical per-job weights either way.
/// Returns the measured walls and ratio for the history entry.
fn tenant_acceptance_gate(
    ds: &Dataset,
    jobs: usize,
    shards: usize,
    mbps: f64,
    cache_bytes: usize,
) -> (Duration, Duration, f64) {
    let (serial_wall, serial, _) = run_fleet(ds, shards, mbps, cache_bytes, 1, jobs);
    let (conc_wall, concurrent, _) = run_fleet(ds, shards, mbps, cache_bytes, jobs, jobs);
    for (s, c) in serial.iter().zip(&concurrent) {
        assert!(
            s.weights == c.weights,
            "job {} weights diverged between serial and concurrent runs",
            s.name,
        );
    }
    let ratio = serial_wall.as_secs_f64() / conc_wall.as_secs_f64();
    println!(
        "gate: serial {} vs {} concurrent {} -> {ratio:.2}x (weights bit-identical)",
        fmt_duration(serial_wall),
        jobs,
        fmt_duration(conc_wall),
    );
    assert!(
        ratio >= 2.0,
        "{jobs} concurrent jobs only {ratio:.2}x faster than serial (need >= 2.0x)"
    );
    (serial_wall, conc_wall, ratio)
}
