//! Figure 5: compression ratios of all eight schemes on mini-batches of
//! 50–250 rows across the six dataset presets.
//!
//! Expected shape (paper): TOC best on census/imagenet/kdd; Gzip best on
//! mnist; CSR ≈ TOC on rcv1; nobody compresses deep1b.

use toc_bench::{arg, compression_ratio, Table};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::Scheme;

fn main() {
    let seed: u64 = arg("seed", 42);
    let sizes: Vec<usize> = vec![50, 100, 150, 200, 250];
    println!("# Figure 5 — compression ratios on mini-batches (higher is better)\n");
    for preset in DatasetPreset::ALL {
        println!("## dataset: {}", preset.name());
        let ds = generate_preset(preset, *sizes.last().unwrap(), seed);
        let mut table = Table::new(
            std::iter::once("rows".to_string())
                .chain(Scheme::PAPER_SET.iter().map(|s| s.name().to_string()))
                .collect(),
        );
        for &rows in &sizes {
            let batch = ds.x.slice_rows(0, rows);
            let mut cells = vec![rows.to_string()];
            for scheme in Scheme::PAPER_SET {
                cells.push(format!("{:.1}", compression_ratio(&batch, scheme)));
            }
            table.row(cells);
        }
        table.print();
        println!();
    }
}
