//! Figure 11: test error rate as a function of wall-clock training time
//! on the mnist-like dataset, comparing our store+TOC pipeline (the
//! BismarckTOC analog) against DEN and CSR pipelines under a constrained
//! memory budget.
//!
//! Expected shape: with the budget binding, the TOC curve reaches any
//! given error level first because its batches stay in memory.

use toc_bench::{arg, Table};
use toc_data::store::{MiniBatchStore, StoreConfig};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::{MatrixBatch, Scheme};
use toc_ml::mgd::{MgdConfig, ModelSpec, Trainer};
use toc_ml::LossKind;

/// Row-range view of a generated dataset (train/test split must share the
/// generation's motifs and labeling scorers).
fn split(ds: &toc_data::synth::Dataset, start: usize, end: usize) -> toc_data::synth::Dataset {
    toc_data::synth::Dataset {
        x: ds.x.slice_rows(start, end),
        labels: ds.labels[start..end].to_vec(),
        classes: ds.classes,
    }
}

fn main() {
    let rows: usize = arg("rows", 4000);
    let epochs: usize = arg("epochs", 6);
    let seed: u64 = arg("seed", 42);
    let eval_rows = (rows / 5).max(1);
    let full = generate_preset(DatasetPreset::MnistLike, rows + eval_rows, seed);
    let ds = split(&full, 0, rows);
    let eval_ds = split(&full, rows, rows + eval_rows);
    let eval_batch = Scheme::Den.encode(&eval_ds.x);

    // Budget: 3x the TOC footprint (TOC resident, DEN/CSR spill).
    let budget: usize = ds
        .minibatches(250)
        .iter()
        .map(|(x, _)| Scheme::Toc.encode(x).size_bytes())
        .sum::<usize>()
        * 22
        / 10;

    println!("# Figure 11 — test error vs training time (mnist-like, {rows} rows)\n");
    for (wl_name, spec) in [
        (
            "LR",
            ModelSpec::OneVsRest {
                loss: LossKind::Logistic,
                classes: ds.classes,
            },
        ),
        (
            "NN",
            ModelSpec::NeuralNet {
                hidden: vec![32, 16],
                outputs: ds.classes,
            },
        ),
    ] {
        println!("## workload: {wl_name}");
        let mut table = Table::new(vec!["scheme", "epoch", "time", "error%"]);
        for scheme in [Scheme::Den, Scheme::Csr, Scheme::Toc] {
            let store = MiniBatchStore::build(
                &ds.x,
                &ds.labels,
                &StoreConfig::new(scheme, 250, budget).with_disk_mbps(arg("mbps", 150.0)),
            )
            .expect("store");
            let trainer = Trainer::new(MgdConfig {
                epochs,
                lr: 0.2,
                record_curve: true,
                ..Default::default()
            });
            let report = trainer.train(&spec, &store, Some((&eval_batch, &eval_ds.labels)));
            for point in &report.curve {
                table.row(vec![
                    format!(
                        "{}{}",
                        scheme.name(),
                        if store.spilled_batches() > 0 { "*" } else { "" }
                    ),
                    point.epoch.to_string(),
                    format!("{:.2}s", point.elapsed.as_secs_f64()),
                    format!("{:.1}", point.error_rate * 100.0),
                ]);
            }
        }
        table.print();
        println!("(* = spilled to disk)\n");
    }
}
