//! Figure 9: end-to-end MGD runtime as a function of dataset size
//! (imagenet-like rows sweep) under a fixed memory budget — the spilling
//! crossover plot.
//!
//! Expected shape: all schemes track each other while resident; once a
//! scheme's footprint crosses the budget its curve bends up sharply; TOC
//! bends last (or never, within the sweep).

use toc_bench::{arg, end_to_end, fmt_duration, Table, Workload};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::{MatrixBatch, Scheme};

/// The paper's end-to-end comparisons exclude CLA.
const END_TO_END_SET: [Scheme; 7] = [
    Scheme::Den,
    Scheme::Csr,
    Scheme::Cvi,
    Scheme::Dvi,
    Scheme::Snappy,
    Scheme::Gzip,
    Scheme::Toc,
];

fn main() {
    let epochs: usize = arg("epochs", 2);
    let seed: u64 = arg("seed", 42);
    let mbps: f64 = arg("mbps", 150.0);
    let max_rows: usize = arg("max-rows", 8000);
    let sweep: Vec<usize> = [1usize, 2, 4, 8]
        .iter()
        .map(|k| k * max_rows / 8)
        .filter(|&r| r > 0)
        .collect();

    // Fixed budget: the TOC footprint at half the max scale — large sizes
    // spill for the wide formats, never for TOC.
    let probe = generate_preset(DatasetPreset::ImagenetLike, max_rows / 2, seed);
    let budget: usize = probe
        .minibatches(250)
        .iter()
        .map(|(x, _)| Scheme::Toc.encode(x).size_bytes())
        .sum::<usize>()
        * 4;

    println!(
        "# Figure 9 — MGD runtime vs dataset size (imagenet-like, budget {} KB)\n",
        budget / 1024
    );
    for workload in [Workload::Nn, Workload::Lr] {
        println!("## workload: {}", workload.name());
        let mut table = Table::new(
            std::iter::once("rows".to_string())
                .chain(END_TO_END_SET.iter().map(|s| s.name().to_string()))
                .collect(),
        );
        for &rows in &sweep {
            let ds = generate_preset(DatasetPreset::ImagenetLike, rows, seed);
            let mut cells = vec![rows.to_string()];
            for scheme in END_TO_END_SET {
                let r = end_to_end(&ds, scheme, workload, budget, epochs, (32, 16), mbps);
                let marker = if r.spilled_batches > 0 { "*" } else { "" };
                cells.push(format!("{}{}", fmt_duration(r.train_time), marker));
            }
            table.row(cells);
        }
        table.print();
        println!("(* = spilled to disk)\n");
    }
}
