//! CLA planner comparison: greedy left-to-right vs the sample-based
//! co-coding planner, on the wide/correlated synthetic matrices where the
//! paper's fig5/fig6 measure compression layouts.
//!
//! For each matrix the table reports the compression ratio (DEN bytes /
//! encoded bytes), the number of column groups, and encode throughput.
//! Expected shape: on the correlated 64-column matrix the sampled planner
//! wins the ratio outright (greedy merges independent neighbors and can't
//! reach the distant partner columns); on the census-like categorical
//! matrix greedy wins slightly — its adjacent merges are exact while the
//! planner pays for estimates — and encodes an order of magnitude faster.
//!
//! ```text
//! cargo run -p toc-bench --release --bin planner_ratio [-- --rows=4096 --sample=256 --seed=42]
//! ```

use toc_bench::{arg, fmt_duration, time_avg, Table};
use toc_data::synth::{correlated_matrix, generate_preset, DatasetPreset};
use toc_formats::cla::{planner, ClaBatch, ClaOptions, ClaPlanner};
use toc_formats::MatrixBatch;
use toc_linalg::DenseMatrix;

fn main() {
    let rows: usize = arg("rows", 4096);
    let sample: usize = arg("sample", 256);
    let seed: u64 = arg("seed", 42);

    let wide = correlated_matrix(rows, 64, 16, seed);
    let narrow = {
        // Adjacent correlation: column pairs (2k, 2k+1) are copies.
        // Greedy finds the pairs but keeps merging past them (the joint
        // dictionary still fits the cap), so the planner wins here too.
        let half = correlated_matrix(rows, 8, 4, seed ^ 1);
        let mut m = DenseMatrix::zeros(rows, 8);
        for r in 0..rows {
            for k in 0..4 {
                m.set(r, 2 * k, half.get(r, k));
                m.set(r, 2 * k + 1, half.get(r, k + 4));
            }
        }
        m
    };
    let census = generate_preset(DatasetPreset::CensusLike, rows.min(1024), seed).x;
    let cases: [(&str, &DenseMatrix); 3] =
        [("corr64", &wide), ("narrow8", &narrow), ("census", &census)];

    println!("# CLA planner comparison — greedy vs sample-merge (sample={sample}, rows={rows})\n");
    let mut table = Table::new(vec![
        "matrix", "planner", "ratio", "groups", "encode", "plan_est",
    ]);
    let mut wide_ratios = (0.0f64, 0.0f64);
    for (name, m) in cases {
        let den = m.den_size_bytes() as f64;
        for planner_kind in [ClaPlanner::Greedy, ClaPlanner::SampleMerge] {
            let opts = ClaOptions {
                planner: planner_kind,
                sample_rows: sample,
            };
            let b = ClaBatch::encode_with(m, &opts);
            assert_eq!(b.decode(), *m, "{name}/{}", planner_kind.name());
            let ratio = den / b.size_bytes() as f64;
            let enc = time_avg(50, || {
                std::hint::black_box(ClaBatch::encode_with(std::hint::black_box(m), &opts))
            });
            let est = match planner_kind {
                ClaPlanner::Greedy => "-".to_string(),
                ClaPlanner::SampleMerge => {
                    format!("{:.1}x", den / planner::plan(m, &opts).est_bytes as f64)
                }
            };
            if name == "corr64" {
                match planner_kind {
                    ClaPlanner::Greedy => wide_ratios.0 = ratio,
                    ClaPlanner::SampleMerge => wide_ratios.1 = ratio,
                }
            }
            table.row(vec![
                name.to_string(),
                planner_kind.name().to_string(),
                format!("{ratio:.1}x"),
                b.num_groups().to_string(),
                fmt_duration(enc),
                est,
            ]);
        }
    }
    table.print();

    let (greedy, sampled) = wide_ratios;
    println!(
        "\ncorr64: sampled {sampled:.1}x vs greedy {greedy:.1}x — {}",
        if sampled > greedy {
            "sampled planner wins"
        } else {
            "REGRESSION: sampled planner must beat greedy here"
        }
    );
    assert!(
        sampled > greedy,
        "sampled planner must achieve a strictly better ratio on corr64"
    );
}
