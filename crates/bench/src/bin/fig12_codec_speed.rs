//! Figure 12: compression and decompression times of Snappy*, Gzip* and
//! TOC on 250-row mini-batches from each dataset.
//!
//! Expected shape: TOC compresses faster than Gzip* but slower than
//! Snappy*; TOC decompresses faster than both.

use toc_bench::{arg, fmt_duration, time_avg, Table};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::{MatrixBatch, Scheme};

fn main() {
    let rows: usize = arg("rows", 250);
    let iters: usize = arg("iters", 20);
    let seed: u64 = arg("seed", 42);
    const CODECS: [Scheme; 3] = [Scheme::Snappy, Scheme::Gzip, Scheme::Toc];
    println!("# Figure 12 — compression / decompression time of a {rows}-row mini-batch\n");
    let mut comp = Table::new(vec!["dataset", "Snappy*", "Gzip*", "TOC"]);
    let mut decomp = Table::new(vec!["dataset", "Snappy*", "Gzip*", "TOC"]);
    for preset in DatasetPreset::ALL {
        let ds = generate_preset(preset, rows, seed);
        let mut crow = vec![preset.name().to_string()];
        let mut drow = vec![preset.name().to_string()];
        for scheme in CODECS {
            let c = time_avg(iters, || std::hint::black_box(scheme.encode(&ds.x)));
            crow.push(fmt_duration(c));
            let encoded = scheme.encode(&ds.x);
            let d = time_avg(iters, || std::hint::black_box(encoded.decode()));
            drow.push(fmt_duration(d));
        }
        comp.row(crow);
        decomp.row(drow);
    }
    println!("## compression time");
    comp.print();
    println!("\n## decompression time");
    decomp.print();
}
