//! Figure 12: compression and decompression times of Snappy*, Gzip*, TOC
//! and ANS on 250-row mini-batches from each dataset.
//!
//! Expected shape: TOC compresses faster than Gzip* but slower than
//! Snappy*; TOC decompresses faster than both.
//!
//! The binary ends with the **decode throughput gate**: the chunked /
//! table-driven decode kernels (word-refill BitReader + LUT Huffman in
//! Gzip*, lane-unpacked CVI/DVI) must reach >= `--gate=2.0` times the
//! aggregate throughput of the scalar reference kernels retained in the
//! same binary (`decompress_into_scalar`, `decode_into_scalar`,
//! `matvec_into_scalar`) on the seeded CVI/GC-heavy workload below. CI
//! runs this in release; a kernel regression fails the step and the full
//! comparison table lands in the job log. ANS has no pre-existing scalar
//! reference, so it is reported but excluded from the gate ratio.

use std::time::Duration;
use toc_bench::{arg, fmt_duration, mb_per_s, time_avg, Table};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::cvi::{CviBatch, DviBatch};
use toc_formats::{MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;

fn main() {
    let rows: usize = arg("rows", 250);
    let iters: usize = arg("iters", 20);
    let seed: u64 = arg("seed", 42);
    let gate: f64 = arg("gate", 2.0);
    const CODECS: [Scheme; 4] = [Scheme::Snappy, Scheme::Gzip, Scheme::Toc, Scheme::GcAns];
    println!("# Figure 12 — compression / decompression time of a {rows}-row mini-batch\n");
    let mut comp = Table::new(vec!["dataset", "Snappy*", "Gzip*", "TOC", "ANS"]);
    let mut decomp = Table::new(vec!["dataset", "Snappy*", "Gzip*", "TOC", "ANS"]);
    for preset in DatasetPreset::ALL {
        let ds = generate_preset(preset, rows, seed);
        let mut crow = vec![preset.name().to_string()];
        let mut drow = vec![preset.name().to_string()];
        for scheme in CODECS {
            let c = time_avg(iters, || std::hint::black_box(scheme.encode(&ds.x)));
            crow.push(fmt_duration(c));
            let encoded = scheme.encode(&ds.x);
            let d = time_avg(iters, || std::hint::black_box(encoded.decode()));
            drow.push(fmt_duration(d));
        }
        comp.row(crow);
        decomp.row(drow);
    }
    println!("## compression time");
    comp.print();
    println!("\n## decompression time");
    decomp.print();

    decode_gate(rows, iters, seed, gate);
}

/// One fast-vs-scalar comparison leg of the gate workload.
struct Leg {
    name: String,
    bytes: usize,
    fast: Duration,
    scalar: Duration,
}

/// The decode throughput gate: aggregate wall time of the scalar
/// reference kernels divided by the chunked/table-driven kernels, over
/// every preset's mini-batch. Gzip* decompression of the dense payload is
/// the heaviest leg by design (the LUT-Huffman + word-refill win), with
/// CVI/DVI decode and matvec alongside.
fn decode_gate(rows: usize, iters: usize, seed: u64, gate: f64) {
    println!("\n## decode throughput gate (chunked/table kernels vs scalar reference)");
    let mut legs: Vec<Leg> = Vec::new();
    let mut ans_bytes = 0usize;
    let mut ans_time = Duration::ZERO;
    for preset in DatasetPreset::ALL {
        let ds = generate_preset(preset, rows, seed);
        let payload: Vec<u8> = ds.x.data().iter().flat_map(|v| v.to_le_bytes()).collect();

        // Gzip*: full deflate stream of the dense batch payload.
        let deflated = toc_gc::deflate::compress(&payload);
        let mut out = Vec::new();
        let fast = time_avg(iters, || {
            toc_gc::deflate::decompress_into(std::hint::black_box(&deflated), &mut out).unwrap();
        });
        let scalar = time_avg(iters, || {
            toc_gc::deflate::decompress_into_scalar(std::hint::black_box(&deflated), &mut out)
                .unwrap();
        });
        assert_eq!(
            out,
            payload,
            "{}: deflate fast/scalar disagree",
            preset.name()
        );
        legs.push(Leg {
            name: format!("{}/gzip*", preset.name()),
            bytes: payload.len(),
            fast,
            scalar,
        });

        // ANS decode throughput on the same payload (informational: the
        // codec is new in this revision, so there is no scalar reference
        // to gate against).
        let ansed = toc_gc::ans::compress(&payload);
        ans_time += time_avg(iters, || {
            toc_gc::ans::decompress_into(std::hint::black_box(&ansed), &mut out).unwrap();
        });
        ans_bytes += payload.len();

        // CVI / DVI: full decode and matvec, chunked lane kernels vs the
        // per-element scalar references.
        let cvi = CviBatch::encode(&ds.x);
        let dvi = DviBatch::encode(&ds.x);
        let v: Vec<f64> = (0..ds.x.cols()).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut m = DenseMatrix::default();
        let mut mv = Vec::new();
        let den_bytes = ds.x.den_size_bytes();
        let checks: [(&str, usize, Duration, Duration); 4] = [
            (
                "cvi-decode",
                den_bytes,
                time_avg(iters, || cvi.decode_into(&mut m)),
                time_avg(iters, || cvi.decode_into_scalar(&mut m)),
            ),
            (
                "cvi-matvec",
                den_bytes,
                time_avg(iters, || cvi.matvec_into(&v, &mut mv)),
                time_avg(iters, || cvi.matvec_into_scalar(&v, &mut mv)),
            ),
            (
                "dvi-decode",
                den_bytes,
                time_avg(iters, || dvi.decode_into(&mut m)),
                time_avg(iters, || dvi.decode_into_scalar(&mut m)),
            ),
            (
                "dvi-matvec",
                den_bytes,
                time_avg(iters, || dvi.matvec_into(&v, &mut mv)),
                time_avg(iters, || dvi.matvec_into_scalar(&v, &mut mv)),
            ),
        ];
        for (kind, bytes, fast, scalar) in checks {
            legs.push(Leg {
                name: format!("{}/{kind}", preset.name()),
                bytes,
                fast,
                scalar,
            });
        }
    }

    let mut t = Table::new(vec!["leg", "scalar", "fast", "speedup", "fast MB/s"]);
    let mut fast_total = Duration::ZERO;
    let mut scalar_total = Duration::ZERO;
    for leg in &legs {
        fast_total += leg.fast;
        scalar_total += leg.scalar;
        t.row(vec![
            leg.name.clone(),
            fmt_duration(leg.scalar),
            fmt_duration(leg.fast),
            format!(
                "{:.2}x",
                leg.scalar.as_secs_f64() / leg.fast.as_secs_f64().max(1e-12)
            ),
            format!("{:.0}", mb_per_s(leg.bytes, leg.fast)),
        ]);
    }
    t.print();
    let speedup = scalar_total.as_secs_f64() / fast_total.as_secs_f64().max(1e-12);
    println!(
        "\naggregate decode speedup: {speedup:.2}x (scalar {} -> fast {}); \
         ANS decode {:.0} MB/s (informational)",
        fmt_duration(scalar_total),
        fmt_duration(fast_total),
        mb_per_s(ans_bytes, ans_time),
    );
    assert!(
        speedup >= gate,
        "decode gate FAILED: aggregate speedup {speedup:.2}x < required {gate:.1}x"
    );
    println!("decode gate PASSED (>= {gate:.1}x)");
}
