//! Streaming-ingestion scaling: prove the encode pipeline is
//! bounded-memory and live.
//!
//! The pitch of `toc ingest` / `StoreIngest` is that encoding never
//! materializes the dataset: rows stream through one reusable
//! chunk-sized workspace, each sealed chunk goes straight to the spill
//! store, and a trainer can consume sealed segments while later rows are
//! still arriving. This bench measures both claims and *asserts* them
//! (run in CI):
//!
//! 1. **Bounded memory.** Ingest the same drifting synthetic stream at
//!    1x, 4x and 16x the base row count. Peak encode-workspace bytes at
//!    16x must stay within 1.1x of the 1x run — growth in rows must not
//!    leak into the workspace.
//! 2. **Liveness.** At the largest scale, run ingestion on one thread
//!    while `Trainer::train_online` follows the same store. The trainer
//!    must close at least one prequential window *while ingestion is
//!    still appending*, and must end having consumed every sealed chunk.
//! 3. **Backpressure.** With `--max-pending` set, a producer racing a
//!    deliberately slow consumer must never hold more than the budget of
//!    unconsumed sealed chunks (and must demonstrably have stalled);
//!    against a consumer that keeps up, the bounded run's throughput
//!    must stay within 10% of the unbounded run.
//! 4. **Resume.** A checkpointing CSV→container ingest killed mid-stream
//!    and resumed must produce a container byte-identical to the
//!    uninterrupted run.
//!
//! Each run appends one dated entry to the `BENCH_ingest.json` history
//! at the repo root (override with `--out=`).
//!
//! ```text
//! cargo run -p toc-bench --release --bin ingest_scaling -- \
//!     --rows=1500 --chunk-rows=100 --shards=3 --window=4
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use toc_bench::{append_history, arg, fmt_ratio, today_utc, Table};
use toc_data::store::{ShardedSpillStore, StoreConfig};
use toc_data::synth::drifting_matrix;
use toc_data::{IngestStats, StoreIngest};
use toc_formats::{EncodeOptions, Scheme};
use toc_ml::mgd::{MgdConfig, ModelSpec, Trainer};
use toc_ml::LossKind;

const COLS: usize = 12;
const DISTINCT: usize = 6;
const SEED: u64 = 42;
const GROWTH: &[usize] = &[1, 4, 16];

const HEADER: &str = "{\n  \"bench\": \"ingest_scaling\",\n  \"units\": {\n    \"peak_workspace_bytes\": \"high-water mark of the reusable encode workspace\",\n    \"peak_ratio\": \"peak at largest scale / peak at base scale (asserted <= 1.1)\",\n    \"ingest_mb_s\": \"dense payload MB/s through push_row -> seal -> append\",\n    \"bp_peak_pending\": \"max unconsumed sealed chunks under --max-pending (asserted <= budget)\",\n    \"bp_throughput_ratio\": \"bounded/unbounded MB/s with a keeping-up consumer (asserted >= 0.9)\",\n    \"resume_bytes\": \"container size after kill+resume (asserted == uninterrupted)\"\n  },\n";

struct ScalePoint {
    rows: usize,
    stats: IngestStats,
    mb_s: f64,
}

/// Stream `rows` synthetic rows through a fresh live store and return
/// the ingest stats plus dense-payload throughput.
fn run_scale(rows: usize, chunk_rows: usize, shards: usize) -> ScalePoint {
    let m = drifting_matrix(rows, COLS, DISTINCT, SEED);
    let config = StoreConfig::new(Scheme::Toc, chunk_rows, 0).with_shards(shards);
    let store = ShardedSpillStore::open_streaming(COLS, &config).expect("open streaming store");
    let mut ing = StoreIngest::new(&store, chunk_rows, None, EncodeOptions::default());
    let t0 = Instant::now();
    for r in 0..rows {
        ing.push_row(m.row(r), (r % 2) as f64).expect("push row");
    }
    let stats = ing.finish().expect("finish ingest");
    let elapsed = t0.elapsed();
    ScalePoint {
        rows,
        mb_s: (rows * COLS * 8) as f64 / 1e6 / elapsed.as_secs_f64().max(1e-12),
        stats,
    }
}

/// The liveness leg: ingest the largest stream on one thread while a
/// trainer follows the store online. Returns
/// (windows, windows_during_ingest, consumed, chunks).
fn run_liveness(
    rows: usize,
    chunk_rows: usize,
    shards: usize,
    window: usize,
) -> (usize, usize, usize, u64) {
    let m = drifting_matrix(rows, COLS, DISTINCT, SEED);
    let config = StoreConfig::new(Scheme::Toc, chunk_rows, 0).with_shards(shards);
    let store = ShardedSpillStore::open_streaming(COLS, &config).expect("open streaming store");
    let trainer = Trainer::new(MgdConfig {
        epochs: 1,
        lr: 0.2,
        seed: SEED,
        record_curve: false,
        shuffle_batches: false,
    });
    let spec = ModelSpec::Linear(LossKind::Logistic);
    let done = AtomicBool::new(false);

    let (report, stats) = std::thread::scope(|s| {
        let store_ref = &store;
        let done_ref = &done;
        let m_ref = &m;
        let ingest = s.spawn(move || {
            let run = || -> std::io::Result<IngestStats> {
                let mut ing =
                    StoreIngest::new(store_ref, chunk_rows, None, EncodeOptions::default());
                for r in 0..rows {
                    ing.push_row(m_ref.row(r), (r % 2) as f64)?;
                    // Stretch the stream so "trainer keeps up with a
                    // producer" is actually exercised, not a no-op
                    // because ingest finished before the first window.
                    if r % chunk_rows == chunk_rows - 1 {
                        std::thread::sleep(std::time::Duration::from_micros(400));
                    }
                }
                ing.finish()
            };
            let out = run();
            done_ref.store(true, Ordering::Release);
            out
        });
        let report =
            trainer.train_online(&spec, &store, window, &mut || !done.load(Ordering::Acquire));
        let stats = ingest
            .join()
            .expect("ingest thread panicked")
            .expect("ingest failed");
        (report, stats)
    });

    (
        report.windows.len(),
        report.windows_during_ingest,
        report.consumed,
        stats.chunks,
    )
}

/// Gate-3 helper: stream `rows` through a live store with an optional
/// pending budget while a consumer thread drains sealed chunks in order,
/// sleeping `consumer_lag` between visits. Returns (MB/s, peak pending,
/// stall ns).
fn run_backpressure(
    rows: usize,
    chunk_rows: usize,
    shards: usize,
    budget: usize,
    consumer_lag: std::time::Duration,
) -> (f64, usize, u64) {
    let m = drifting_matrix(rows, COLS, DISTINCT, SEED);
    let mut config = StoreConfig::new(Scheme::Toc, chunk_rows, 0).with_shards(shards);
    if budget > 0 {
        config = config.with_max_pending(budget);
    }
    let store = ShardedSpillStore::open_streaming(COLS, &config).expect("open streaming store");
    let done = AtomicBool::new(false);
    let mut mb_s = 0.0;
    std::thread::scope(|s| {
        let store_ref = &store;
        let done_ref = &done;
        let m_ref = &m;
        let producer = s.spawn(move || {
            let mut ing = StoreIngest::new(store_ref, chunk_rows, None, EncodeOptions::default());
            let t0 = Instant::now();
            for r in 0..rows {
                ing.push_row(m_ref.row(r), (r % 2) as f64)
                    .expect("push row");
            }
            ing.finish().expect("finish ingest");
            let dt = t0.elapsed().as_secs_f64().max(1e-12);
            done_ref.store(true, Ordering::Release);
            (rows * COLS * 8) as f64 / 1e6 / dt
        });
        use toc_ml::mgd::BatchProvider;
        let mut next = 0usize;
        loop {
            if next < store_ref.num_batches() {
                store_ref.visit(next, &mut |_, _| {});
                next += 1;
                if !consumer_lag.is_zero() {
                    std::thread::sleep(consumer_lag);
                }
            } else if done_ref.load(Ordering::Acquire) && next >= store_ref.num_batches() {
                break;
            } else {
                std::thread::yield_now();
            }
        }
        mb_s = producer.join().expect("producer panicked");
    });
    let stall = store.stats().snapshot_stable().ingest_stall_ns;
    (mb_s, store.peak_pending_appends(), stall)
}

/// Gate-4 helper: write a CSV, ingest it uninterrupted, then kill a
/// checkpointing run mid-stream and resume. Returns (uninterrupted
/// bytes, resumed bytes, chunks restored from the checkpoint).
fn run_resume_gate(rows: usize, chunk_rows: usize) -> (u64, u64, u64) {
    use std::io::Write as _;
    use toc_data::ingest::{ingest_csv_container_killable, KillPoint};
    use toc_data::{ingest_csv_container, sidecar_path, CsvContainerJob};

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let csv = dir.join(format!("toc-bench-resume-{pid}.csv"));
    let full = dir.join(format!("toc-bench-resume-full-{pid}.tocz"));
    let killed = dir.join(format!("toc-bench-resume-killed-{pid}.tocz"));

    let m = drifting_matrix(rows, COLS, DISTINCT, SEED);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&csv).expect("create csv"));
    for r in 0..rows {
        let line = m
            .row(r)
            .iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(f, "{line}").expect("write csv row");
    }
    f.into_inner().expect("flush csv").sync_all().ok();

    let job = |out: &std::path::Path| CsvContainerJob {
        csv: csv.clone(),
        out: out.to_path_buf(),
        chunk_rows,
        scheme: None,
        encode: EncodeOptions::default(),
        checkpoint_every: 2,
    };
    let baseline = ingest_csv_container(&job(&full), false).expect("uninterrupted ingest");
    let chunks = baseline.stats.chunks;
    let kill_at = (chunks / 2).max(1);
    let outcome = ingest_csv_container_killable(
        &job(&killed),
        false,
        Some(KillPoint::AfterSealedChunk { chunks: kill_at }),
    )
    .expect("killable ingest");
    assert!(outcome.killed.is_some(), "kill point never fired");
    let resumed = ingest_csv_container(&job(&killed), true).expect("resumed ingest");
    assert!(
        !sidecar_path(&killed).exists(),
        "sidecar survived a successful resume"
    );
    let full_bytes = std::fs::metadata(&full).expect("stat full").len();
    let killed_bytes = std::fs::metadata(&killed).expect("stat resumed").len();
    let identical =
        std::fs::read(&full).expect("read full") == std::fs::read(&killed).expect("read resumed");
    for p in [&csv, &full, &killed] {
        std::fs::remove_file(p).ok();
    }
    assert!(
        identical,
        "resumed container ({killed_bytes} B) differs from uninterrupted ({full_bytes} B)"
    );
    (full_bytes, killed_bytes, resumed.resumed_chunks)
}

fn main() {
    let rows: usize = arg("rows", 1500);
    let chunk_rows: usize = arg("chunk-rows", 100);
    let shards: usize = arg("shards", 3);
    let window: usize = arg("window", 4);
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    let out_path: String = arg("out", default_out.to_string());

    println!(
        "ingest_scaling: base {rows} rows x {COLS} cols, chunk {chunk_rows}, {shards} shards, \
         scales {GROWTH:?}"
    );

    let mut table = Table::new(vec![
        "scale",
        "rows",
        "chunks",
        "encoded KB",
        "peak ws KB",
        "MB/s",
        "schemes",
    ]);
    let mut points: Vec<ScalePoint> = Vec::new();
    for &g in GROWTH {
        let p = run_scale(rows * g, chunk_rows, shards);
        table.row(vec![
            format!("{g}x"),
            p.rows.to_string(),
            p.stats.chunks.to_string(),
            (p.stats.encoded_bytes / 1024).to_string(),
            format!("{:.1}", p.stats.peak_workspace_bytes as f64 / 1024.0),
            format!("{:.1}", p.mb_s),
            p.stats.scheme_summary(),
        ]);
        points.push(p);
    }
    table.print();

    // Gate 1: bounded memory. The workspace high-water mark is set by
    // chunk geometry, never by how many rows flow through it.
    let peak_small = points.first().unwrap().stats.peak_workspace_bytes;
    let peak_large = points.last().unwrap().stats.peak_workspace_bytes;
    let peak_ratio = peak_large as f64 / peak_small as f64;
    println!(
        "gate: peak workspace {peak_small} B at 1x vs {peak_large} B at 16x -> {}",
        fmt_ratio(peak_ratio),
    );
    assert!(
        peak_ratio <= 1.1,
        "encode workspace grew {peak_ratio:.3}x while rows grew 16x (need <= 1.1x)"
    );

    // Gate 2: liveness. The online trainer must make progress while
    // ingestion is still appending, and drain every sealed chunk.
    let largest = rows * GROWTH.last().unwrap();
    let (windows, during, consumed, chunks) = run_liveness(largest, chunk_rows, shards, window);
    println!(
        "gate: online trainer closed {during}/{windows} windows during ingest, \
         consumed {consumed}/{chunks} chunks"
    );
    assert!(
        during >= 1,
        "trainer closed no windows while ingestion was live (windows={windows})"
    );
    assert_eq!(
        consumed, chunks as usize,
        "trainer consumed {consumed} of {chunks} sealed chunks"
    );

    // Gate 3: backpressure. Against a consumer an order of magnitude
    // slower than the producer the pending window must be capped at the
    // budget (with observable stall time); against a consumer that keeps
    // up, the bound must cost < 10% throughput (best of 3 runs to damp
    // noise).
    let budget: usize = arg("max-pending", 4);
    let lag = std::time::Duration::from_millis(10);
    let (_, peak_pending, stall_ns) = run_backpressure(rows, chunk_rows, shards, budget, lag);
    println!(
        "gate: backpressure budget {budget} -> peak pending {peak_pending}, \
         stalled {:.1} ms against a slow consumer",
        stall_ns as f64 / 1e6,
    );
    assert!(
        peak_pending <= budget,
        "producer held {peak_pending} unconsumed chunks past the budget of {budget}"
    );
    assert!(
        stall_ns > 0,
        "a producer racing a 10ms/chunk consumer never stalled — the bound is not engaging"
    );
    let mut bp_ratio: f64 = 0.0;
    for _ in 0..3 {
        let (free_mb_s, _, _) =
            run_backpressure(rows, chunk_rows, shards, 0, std::time::Duration::ZERO);
        let (bound_mb_s, _, _) =
            run_backpressure(rows, chunk_rows, shards, budget, std::time::Duration::ZERO);
        bp_ratio = bp_ratio.max(bound_mb_s / free_mb_s);
        if bp_ratio >= 0.9 {
            break;
        }
    }
    println!(
        "gate: bounded/unbounded throughput with a keeping-up consumer -> {}",
        fmt_ratio(bp_ratio),
    );
    assert!(
        bp_ratio >= 0.9,
        "max-pending={budget} cost {:.1}% throughput against a consumer that keeps up",
        (1.0 - bp_ratio) * 100.0,
    );

    // Gate 4: crash-safe resume. Kill a checkpointing CSV ingest halfway
    // and resume it; the container must be byte-identical.
    let (resume_bytes, _, restored) = run_resume_gate(rows, chunk_rows);
    println!(
        "gate: kill+resume reproduced the {resume_bytes}-byte container bit-exactly \
         ({restored} chunks restored from the checkpoint)"
    );

    // Append this run to the per-PR history baseline.
    let mut sweep = String::new();
    for (i, p) in points.iter().enumerate() {
        sweep.push_str(&format!(
            "        {{\"scale\": {}, \"rows\": {}, \"chunks\": {}, \"encoded_bytes\": {}, \"peak_workspace_bytes\": {}, \"ingest_mb_s\": {:.1}}}{}\n",
            GROWTH[i], p.rows, p.stats.chunks, p.stats.encoded_bytes,
            p.stats.peak_workspace_bytes, p.mb_s,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    let entry = format!(
        "    {{\n      \"date\": \"{}\",\n      \"rows_base\": {rows},\n      \"cols\": {COLS},\n      \"chunk_rows\": {chunk_rows},\n      \"shards\": {shards},\n      \"peak_ratio\": {peak_ratio:.3},\n      \"liveness\": {{\"window\": {window}, \"windows\": {windows}, \"windows_during_ingest\": {during}, \"consumed\": {consumed}}},\n      \"backpressure\": {{\"budget\": {budget}, \"peak_pending\": {peak_pending}, \"stall_ms\": {:.1}, \"throughput_ratio\": {bp_ratio:.3}}},\n      \"resume\": {{\"bytes\": {resume_bytes}, \"restored_chunks\": {restored}, \"identical\": true}},\n      \"sweep\": [\n{sweep}      ]\n    }}",
        today_utc(),
        stall_ns as f64 / 1e6,
    );
    append_history(&out_path, HEADER, &entry)
        .unwrap_or_else(|e| panic!("append to {out_path}: {e}"));
    println!("appended entry to {out_path}");
}
