//! Table 6: end-to-end MGD runtimes for NN / LR / SVM on the
//! imagenet-like and mnist-like datasets, at an in-memory scale and at an
//! out-of-core scale.
//!
//! The paper's 15 GB machine is modeled by a memory budget set *between*
//! the TOC footprint and the baseline footprints at the large scale, so
//! TOC (and the GC schemes) stay resident while DEN/CSR/CVI/DVI spill —
//! exactly the Imagenet25m/Mnist25m regime.
//!
//! Expected shape: small scale — CVI and TOC fastest; large scale — TOC
//! clearly fastest, DEN worst, GC schemes resident but slowed by
//! per-batch decompression.

use toc_bench::{arg, end_to_end, fmt_duration, Table, Workload};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::Scheme;

/// Table 6/7 compare these rows (the paper's end-to-end tables exclude CLA).
const END_TO_END_SET: [Scheme; 7] = [
    Scheme::Den,
    Scheme::Csr,
    Scheme::Cvi,
    Scheme::Dvi,
    Scheme::Snappy,
    Scheme::Gzip,
    Scheme::Toc,
];

fn run_table(presets: &[DatasetPreset]) {
    let small_rows: usize = arg("small-rows", 1500);
    let large_rows: usize = arg("large-rows", 6000);
    let epochs: usize = arg("epochs", 2);
    let h1: usize = arg("hidden1", 32);
    let h2: usize = arg("hidden2", 16);
    let seed: u64 = arg("seed", 42);
    let mbps: f64 = arg("mbps", 150.0);

    for &preset in presets {
        for (scale_name, rows) in [("small", small_rows), ("large", large_rows)] {
            let ds = generate_preset(preset, rows, seed);
            // Budget: small scale fits everything; large scale fits ~3x the
            // TOC footprint (TOC and usually GC stay resident, LMC spills).
            let budget = if scale_name == "small" {
                usize::MAX
            } else {
                use toc_formats::MatrixBatch;
                let toc_bytes: usize = ds
                    .minibatches(250)
                    .iter()
                    .map(|(x, _)| Scheme::Toc.encode(x).size_bytes())
                    .sum();
                toc_bytes * 22 / 10
            };
            println!(
                "## {}{} ({} rows, budget {})",
                preset.name(),
                scale_name,
                rows,
                if budget == usize::MAX {
                    "unbounded".to_string()
                } else {
                    format!("{} KB", budget / 1024)
                },
            );
            let mut table = Table::new(vec!["scheme", "NN", "LR", "SVM", "spilled/total"]);
            for scheme in END_TO_END_SET {
                let mut cells = vec![scheme.name().to_string()];
                let mut spill_info = String::new();
                for workload in Workload::ALL {
                    let r = end_to_end(&ds, scheme, workload, budget, epochs, (h1, h2), mbps);
                    cells.push(fmt_duration(r.train_time));
                    spill_info = format!("{}/{}", r.spilled_batches, r.total_batches);
                }
                cells.push(spill_info);
                table.row(cells);
            }
            table.print();
            println!();
        }
    }
}

fn main() {
    println!("# Table 6 — end-to-end MGD runtimes (imagenet-like, mnist-like)\n");
    run_table(&[DatasetPreset::ImagenetLike, DatasetPreset::MnistLike]);
}
