//! Figure 2: optimization efficiencies of BGD, SGD, and MGD with different
//! mini-batch sizes — accuracy as a function of epochs for a one-hidden-
//! layer neural network on the mnist-like dataset.
//!
//! Expected shape: MGD with a few hundred rows converges in the fewest
//! epochs and is stabler than SGD; BGD (100% batches) converges slowest
//! per epoch.

use toc_bench::{arg, Table};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::Scheme;
use toc_ml::mgd::{targets_for_nn, MemoryProvider};
use toc_ml::models::NeuralNet;
use toc_ml::BatchProvider;

fn main() {
    let rows: usize = arg("rows", 1500);
    let epochs: usize = arg("epochs", 12);
    let hidden: usize = arg("hidden", 32);
    let seed: u64 = arg("seed", 42);
    let ds = generate_preset(DatasetPreset::MnistLike, rows, seed);
    let classes = ds.classes;

    // Batch-size regimes of Figure 2. SGD (|B|=1) is epoch-equivalent but
    // much slower per epoch, so it uses a reduced row count via --rows.
    let variants: Vec<(String, usize)> = vec![
        ("SGD".into(), 1),
        ("MGD (250 rows)".into(), 250),
        ("MGD-20%".into(), (rows / 5).max(1)),
        ("MGD-50%".into(), rows / 2),
        ("MGD-80%".into(), rows * 4 / 5),
        ("BGD".into(), rows),
    ];

    let eval = Scheme::Den.encode(&ds.x);
    let targets = targets_for_nn(&ds.labels, classes);

    println!("# Figure 2 — optimizer efficiency (accuracy vs epochs), NN with one hidden layer\n");
    let mut table = Table::new(
        std::iter::once("epoch".to_string())
            .chain(variants.iter().map(|(n, _)| n.clone()))
            .collect(),
    );

    // Train all variants in lockstep so rows are per-epoch.
    let mut nets: Vec<NeuralNet> = variants
        .iter()
        .map(|_| NeuralNet::new(ds.x.cols(), &[hidden], classes, seed))
        .collect();
    let providers: Vec<MemoryProvider> = variants
        .iter()
        .map(|(_, bs)| {
            let batches = ds
                .minibatches(*bs)
                .into_iter()
                .map(|(x, y)| (Scheme::Toc.encode(&x), y))
                .collect();
            MemoryProvider {
                batches,
                features: ds.x.cols(),
            }
        })
        .collect();

    // A single fixed learning rate across variants, as in the paper's
    // comparison: SGD becomes noisy/unstable, large batches make slow
    // per-epoch progress, and MGD with a few hundred rows balances both.
    let lr: f64 = arg("lr", 0.35);
    let lrs: Vec<f64> = variants.iter().map(|_| lr).collect();

    for epoch in 1..=epochs {
        for ((nn, provider), lr) in nets.iter_mut().zip(&providers).zip(&lrs) {
            for i in 0..provider.num_batches() {
                provider.visit(i, &mut |batch, labels| {
                    let t = targets_for_nn(labels, nn.outputs);
                    nn.update_batch(batch, &t, *lr);
                });
            }
        }
        let mut cells = vec![epoch.to_string()];
        for nn in nets.iter_mut() {
            cells.push(format!("{:.3}", nn.accuracy(&eval, &targets)));
        }
        table.row(cells);
    }
    table.print();
}
