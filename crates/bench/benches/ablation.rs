//! Ablation microbenchmarks for the design choices called out in
//! DESIGN.md:
//!
//! * encoding pipeline stages (sparse → logical → physical),
//! * physical integer codec (bit packing vs. varint) for both size and
//!   kernel speed,
//! * decode-tree construction with and without structural validation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use toc_core::{logical_encode, DecodeTree, PhysicalCodec, TocBatch};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_linalg::SparseRows;

fn bench_ablation(c: &mut Criterion) {
    let ds = generate_preset(DatasetPreset::CensusLike, 250, 42);
    let sparse = SparseRows::encode(&ds.x);
    let logical = logical_encode(&sparse);
    let bitpack = TocBatch::encode_with(&ds.x, PhysicalCodec::BitPack);
    let varint = TocBatch::encode_with(&ds.x, PhysicalCodec::Varint);
    let v: Vec<f64> = (0..ds.x.cols()).map(|i| (i % 7) as f64).collect();

    // Report the size trade-off once, in the bench output.
    println!(
        "sizes: bitpack={}B varint={}B (DEN={}B)",
        bitpack.size_bytes(),
        varint.size_bytes(),
        ds.x.den_size_bytes()
    );

    let mut group = c.benchmark_group("ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100));

    // Pipeline stages.
    group.bench_function("encode/sparse_only", |b| {
        b.iter(|| SparseRows::encode(&ds.x))
    });
    group.bench_function("encode/sparse_logical", |b| {
        b.iter(|| logical_encode(&SparseRows::encode(&ds.x)))
    });
    group.bench_function("encode/full_bitpack", |b| {
        b.iter(|| TocBatch::encode_with(&ds.x, PhysicalCodec::BitPack))
    });
    group.bench_function("encode/full_varint", |b| {
        b.iter(|| TocBatch::encode_with(&ds.x, PhysicalCodec::Varint))
    });
    group.bench_function("encode/physical_only", |b| {
        b.iter(|| TocBatch::from_logical(&logical, PhysicalCodec::BitPack))
    });

    // Kernel speed per physical codec.
    group.bench_function("matvec/bitpack", |b| b.iter(|| bitpack.matvec(&v).unwrap()));
    group.bench_function("matvec/varint", |b| b.iter(|| varint.matvec(&v).unwrap()));

    // Decode-tree construction: validated vs trusted.
    let view = bitpack.view();
    group.bench_function("tree/build_validated", |b| {
        b.iter(|| DecodeTree::build(&view).unwrap())
    });
    group.bench_function("tree/build_trusted", |b| {
        b.iter(|| DecodeTree::build_trusted(&view))
    });

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
