//! Criterion version of Figure 12: compression and decompression speed of
//! Snappy*, Gzip* and TOC on 250-row mini-batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::{MatrixBatch, Scheme};

fn bench_codecs(c: &mut Criterion) {
    let rows = 250usize;
    for preset in [
        DatasetPreset::CensusLike,
        DatasetPreset::ImagenetLike,
        DatasetPreset::Kdd99Like,
    ] {
        let ds = generate_preset(preset, rows, 42);
        let mut group = c.benchmark_group(format!("fig12/{}", preset.name()));
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(400))
            .warm_up_time(Duration::from_millis(100));
        for scheme in [Scheme::Snappy, Scheme::Gzip, Scheme::Toc] {
            group.bench_function(BenchmarkId::new("compress", scheme.name()), |b| {
                b.iter(|| scheme.encode(&ds.x))
            });
            let encoded = scheme.encode(&ds.x);
            group.bench_function(BenchmarkId::new("decompress", scheme.name()), |b| {
                b.iter(|| encoded.decode())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
