//! Allocating vs. workspace (`*_into`) kernel API comparison.
//!
//! Two levels:
//!
//! * **Kernel level** — `matvec` / `matmat` per scheme, allocating output
//!   per call vs. reusing caller-owned buffers (plus format-level scratch:
//!   GC decompression staging, TOC decode-tree rebuilds).
//! * **Epoch level** — one full MGD epoch of logistic regression through
//!   `step` (throwaway workspace per batch) vs. `step_ws` (one workspace
//!   for the run), the configuration `Trainer` uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::{ExecScratch, MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;
use toc_ml::mgd::{step, step_ws, MemoryProvider, TrainedModel};
use toc_ml::workspace::ExecWorkspace;
use toc_ml::{LinearModel, LossKind};

fn bench_kernels(c: &mut Criterion) {
    let ds = generate_preset(DatasetPreset::CensusLike, 250, 42);
    let cols = ds.x.cols();
    let v: Vec<f64> = (0..cols).map(|i| ((i % 7) as f64) - 3.0).collect();
    let mr = DenseMatrix::from_vec(
        cols,
        16,
        (0..cols * 16).map(|i| ((i % 11) as f64) * 0.25).collect(),
    );

    let mut group = c.benchmark_group("workspace_api/kernels");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100));
    for scheme in [Scheme::Den, Scheme::Csr, Scheme::Toc, Scheme::Gzip] {
        let batch = scheme.encode(&ds.x);
        group.bench_function(BenchmarkId::new("matvec_alloc", scheme.name()), |b| {
            b.iter(|| batch.matvec(&v))
        });
        let mut out = Vec::new();
        let mut ws = ExecScratch::default();
        group.bench_function(BenchmarkId::new("matvec_into", scheme.name()), |b| {
            b.iter(|| {
                batch.matvec_into_ws(&v, &mut out, &mut ws);
                out.len()
            })
        });
        group.bench_function(BenchmarkId::new("matmat_alloc", scheme.name()), |b| {
            b.iter(|| batch.matmat(&mr))
        });
        let mut mout = DenseMatrix::default();
        group.bench_function(BenchmarkId::new("matmat_into", scheme.name()), |b| {
            b.iter(|| {
                batch.matmat_into_ws(&mr, &mut mout, &mut ws);
                mout.rows()
            })
        });
    }
    group.finish();
}

fn bench_epoch(c: &mut Criterion) {
    let ds = generate_preset(DatasetPreset::CensusLike, 1000, 7);
    let d = ds.x.cols();
    let batch_rows = 100;
    let mut group = c.benchmark_group("workspace_api/epoch_lr");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(100));
    for scheme in [Scheme::Den, Scheme::Toc, Scheme::Gzip] {
        let mut batches = Vec::new();
        let mut start = 0;
        while start < ds.x.rows() {
            let end = (start + batch_rows).min(ds.x.rows());
            batches.push((
                scheme.encode(&ds.x.slice_rows(start, end)),
                ds.labels[start..end].to_vec(),
            ));
            start = end;
        }
        let provider = MemoryProvider {
            batches,
            features: d,
        };
        group.bench_function(BenchmarkId::new("step_alloc", scheme.name()), |b| {
            let mut model = TrainedModel::Linear(LinearModel::new(d, LossKind::Logistic));
            b.iter(|| {
                for (batch, y) in &provider.batches {
                    step(&mut model, batch, y, 0.05);
                }
            })
        });
        group.bench_function(BenchmarkId::new("step_ws", scheme.name()), |b| {
            let mut model = TrainedModel::Linear(LinearModel::new(d, LossKind::Logistic));
            let mut ws = ExecWorkspace::new();
            b.iter(|| {
                for (batch, y) in &provider.batches {
                    step_ws(&mut model, batch, y, 0.05, &mut ws);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_epoch);
criterion_main!(benches);
