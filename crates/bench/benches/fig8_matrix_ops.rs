//! Criterion version of Figure 8: matrix-operation latency on compressed
//! 250-row mini-batches. Three representative datasets (census-like =
//! TOC's home turf, mnist-like = weak logical gains, deep-like = dense
//! incompressible) × all eight schemes × five operation classes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::{MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;

fn bench_ops(c: &mut Criterion) {
    let rows = 250usize;
    for preset in [
        DatasetPreset::CensusLike,
        DatasetPreset::MnistLike,
        DatasetPreset::DeepLike,
    ] {
        let ds = generate_preset(preset, rows, 42);
        let cols = ds.x.cols();
        let v: Vec<f64> = (0..cols).map(|i| ((i % 7) as f64) - 3.0).collect();
        let w: Vec<f64> = (0..rows).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mr = DenseMatrix::from_vec(
            cols,
            20,
            (0..cols * 20).map(|i| ((i % 11) as f64) * 0.25).collect(),
        );
        let ml = DenseMatrix::from_vec(
            20,
            rows,
            (0..rows * 20)
                .map(|i| ((i % 13) as f64) * 0.5 - 3.0)
                .collect(),
        );

        let mut group = c.benchmark_group(format!("fig8/{}", preset.name()));
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(400))
            .warm_up_time(Duration::from_millis(100));
        for scheme in Scheme::PAPER_SET {
            let batch = scheme.encode(&ds.x);
            group.bench_function(BenchmarkId::new("A_mul_c", scheme.name()), |b| {
                b.iter(|| {
                    let mut bb = batch.clone();
                    bb.scale(1.000001);
                    bb
                })
            });
            group.bench_function(BenchmarkId::new("A_mul_v", scheme.name()), |b| {
                b.iter(|| batch.matvec(&v))
            });
            group.bench_function(BenchmarkId::new("v_mul_A", scheme.name()), |b| {
                b.iter(|| batch.vecmat(&w))
            });
            group.bench_function(BenchmarkId::new("A_mul_M", scheme.name()), |b| {
                b.iter(|| batch.matmat(&mr))
            });
            group.bench_function(BenchmarkId::new("M_mul_A", scheme.name()), |b| {
                b.iter(|| batch.matmat_left(&ml))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
