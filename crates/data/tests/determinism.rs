//! End-to-end determinism: the same seed must produce a **bit-identical**
//! training run regardless of where the batches physically live or which
//! IO path serves them. Eight store configurations — in-memory, single
//! spill file, sharded, sharded+sync-prefetch, async pool, async ring,
//! adaptive placement over asymmetric shards, and adaptive+ring with a
//! fixed pin map — feed the identical batch stream, so the final weights
//! *and* the per-epoch error trajectory must agree with `==`, not a
//! tolerance. The adaptive legs migrate batches between shards mid-run
//! (the trainer fires `end_epoch` after every pass), which must never
//! change a byte of what the trainer sees.

use toc_data::store::{
    IoEngineKind, Pinning, SchedulerConfig, ShardPlacement, ShardedSpillStore, StoreConfig,
};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_data::{DeviceProfile, MiniBatchStore};
use toc_formats::Scheme;
use toc_ml::mgd::{BatchProvider, MgdConfig, ModelSpec, Trainer};
use toc_ml::LossKind;

struct Run {
    name: &'static str,
    weights: Vec<f64>,
    curve: Vec<f64>,
}

fn train(
    name: &'static str,
    provider: &dyn BatchProvider,
    eval: (&toc_formats::AnyBatch, &[f64]),
) -> Run {
    let trainer = Trainer::new(MgdConfig {
        epochs: 6,
        lr: 0.25,
        record_curve: true,
        shuffle_batches: true, // per-epoch random visit order must also agree
        ..Default::default()
    });
    let report = trainer.train(&ModelSpec::Linear(LossKind::Logistic), provider, Some(eval));
    Run {
        name,
        weights: report.model.weights(),
        curve: report.curve.iter().map(|p| p.error_rate).collect(),
    }
}

#[test]
fn loss_trajectory_is_bit_identical_across_store_configs() {
    let ds = generate_preset(DatasetPreset::CensusLike, 480, 13);
    let scheme = Scheme::Toc;
    let batch_rows = 60;
    let eval_batch = Scheme::Den.encode(&ds.x);
    let eval = (&eval_batch, ds.labels.as_slice());

    let mut runs: Vec<Run> = Vec::new();

    // (1) In-memory reference.
    {
        let provider = toc_ml::mgd::MemoryProvider {
            batches: (0..8)
                .map(|i| {
                    (
                        scheme.encode(&ds.x.slice_rows(i * batch_rows, (i + 1) * batch_rows)),
                        ds.labels[i * batch_rows..(i + 1) * batch_rows].to_vec(),
                    )
                })
                .collect(),
            features: ds.x.cols(),
        };
        runs.push(train("in-memory", &provider, eval));
    }

    // (2) Single spill file, everything on disk.
    {
        let store =
            MiniBatchStore::build(&ds.x, &ds.labels, &StoreConfig::new(scheme, batch_rows, 0))
                .unwrap();
        assert_eq!(store.spilled_batches(), 8);
        runs.push(train("single-file", &store, eval));
    }

    // (3)–(8) Sharded variants.
    let sharded_configs: [(&'static str, StoreConfig); 6] = [
        (
            "sharded",
            StoreConfig::new(scheme, batch_rows, 0).with_shards(3),
        ),
        (
            "sharded+prefetch",
            StoreConfig::new(scheme, batch_rows, 0)
                .with_shards(3)
                .with_prefetch(3),
        ),
        (
            "async-pool",
            StoreConfig::new(scheme, batch_rows, 0)
                .with_shards(3)
                .with_prefetch(3)
                .with_io(IoEngineKind::Pool),
        ),
        (
            "async-ring",
            StoreConfig::new(scheme, batch_rows, 0)
                .with_shards(3)
                .with_prefetch(3)
                .with_io(IoEngineKind::Ring)
                .with_placement(ShardPlacement::Pack),
        ),
        // Adaptive placement over asymmetric shards: the 10× bandwidth
        // skew forces real migrations at every epoch boundary while the
        // trainer is mid-run.
        (
            "adaptive-pool",
            StoreConfig::new(scheme, batch_rows, 0)
                .with_shards(3)
                .with_prefetch(3)
                .with_io(IoEngineKind::Pool)
                .with_placement(ShardPlacement::Adaptive)
                .with_shard_mbps(vec![900.0, 90.0, 90.0])
                .with_scheduler(SchedulerConfig {
                    io_threads: 2,
                    decode_workers: 2,
                    pinning: Pinning::Auto,
                }),
        ),
        (
            "adaptive-ring-pinned",
            StoreConfig::new(scheme, batch_rows, 0)
                .with_shards(3)
                .with_prefetch(3)
                .with_io(IoEngineKind::Ring)
                .with_placement(ShardPlacement::Adaptive)
                .with_shard_profiles(vec![
                    DeviceProfile::stable(900.0),
                    DeviceProfile::degrading(400.0, 0.1),
                    DeviceProfile::stable(90.0),
                ])
                .with_scheduler(SchedulerConfig {
                    io_threads: 2,
                    decode_workers: 3,
                    pinning: Pinning::Fixed(vec![0, 1, 0]),
                }),
        ),
    ];
    for (name, config) in sharded_configs {
        let store = ShardedSpillStore::build(&ds.x, &ds.labels, &config).unwrap();
        assert_eq!(store.spilled_batches(), 8, "{name}");
        runs.push(train(name, &store, eval));
        store.stats().snapshot_stable().assert_consistent();
    }

    // The model must actually have learned something (guards against all
    // six agreeing on garbage), and every run must agree bitwise.
    let reference = &runs[0];
    assert!(
        *reference.curve.last().unwrap() < 0.35,
        "reference run did not converge: {:?}",
        reference.curve
    );
    for run in &runs[1..] {
        assert_eq!(
            run.weights, reference.weights,
            "{} diverged from {} in final weights",
            run.name, reference.name
        );
        assert_eq!(
            run.curve, reference.curve,
            "{} diverged from {} in the loss trajectory",
            run.name, reference.name
        );
    }
}
