//! End-to-end determinism: the same seed must produce a **bit-identical**
//! training run regardless of where the batches physically live or which
//! IO path serves them. Eight store configurations — in-memory, single
//! spill file, sharded, sharded+sync-prefetch, async pool, async ring,
//! adaptive placement over asymmetric shards, and adaptive+ring with a
//! fixed pin map — feed the identical batch stream, so the final weights
//! *and* the per-epoch error trajectory must agree with `==`, not a
//! tolerance. The adaptive legs migrate batches between shards mid-run
//! (the trainer fires `end_epoch` after every pass), which must never
//! change a byte of what the trainer sees.

use toc_data::store::{
    IoEngineKind, Pinning, SchedulerConfig, ShardPlacement, ShardedSpillStore, StoreConfig,
};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_data::{DeviceProfile, MiniBatchStore};
use toc_formats::Scheme;
use toc_ml::mgd::{BatchProvider, MgdConfig, ModelSpec, Trainer};
use toc_ml::LossKind;

struct Run {
    name: &'static str,
    weights: Vec<f64>,
    curve: Vec<f64>,
}

fn train(
    name: &'static str,
    provider: &dyn BatchProvider,
    eval: (&toc_formats::AnyBatch, &[f64]),
) -> Run {
    let trainer = Trainer::new(MgdConfig {
        epochs: 6,
        lr: 0.25,
        record_curve: true,
        shuffle_batches: true, // per-epoch random visit order must also agree
        ..Default::default()
    });
    let report = trainer.train(&ModelSpec::Linear(LossKind::Logistic), provider, Some(eval));
    Run {
        name,
        weights: report.model.weights(),
        curve: report.curve.iter().map(|p| p.error_rate).collect(),
    }
}

#[test]
fn loss_trajectory_is_bit_identical_across_store_configs() {
    let ds = generate_preset(DatasetPreset::CensusLike, 480, 13);
    let scheme = Scheme::Toc;
    let batch_rows = 60;
    let eval_batch = Scheme::Den.encode(&ds.x);
    let eval = (&eval_batch, ds.labels.as_slice());

    let mut runs: Vec<Run> = Vec::new();

    // (1) In-memory reference.
    {
        let provider = toc_ml::mgd::MemoryProvider {
            batches: (0..8)
                .map(|i| {
                    (
                        scheme.encode(&ds.x.slice_rows(i * batch_rows, (i + 1) * batch_rows)),
                        ds.labels[i * batch_rows..(i + 1) * batch_rows].to_vec(),
                    )
                })
                .collect(),
            features: ds.x.cols(),
        };
        runs.push(train("in-memory", &provider, eval));
    }

    // (2) Single spill file, everything on disk.
    {
        let store =
            MiniBatchStore::build(&ds.x, &ds.labels, &StoreConfig::new(scheme, batch_rows, 0))
                .unwrap();
        assert_eq!(store.spilled_batches(), 8);
        runs.push(train("single-file", &store, eval));
    }

    // (3)–(8) Sharded variants.
    let sharded_configs: [(&'static str, StoreConfig); 6] = [
        (
            "sharded",
            StoreConfig::new(scheme, batch_rows, 0).with_shards(3),
        ),
        (
            "sharded+prefetch",
            StoreConfig::new(scheme, batch_rows, 0)
                .with_shards(3)
                .with_prefetch(3),
        ),
        (
            "async-pool",
            StoreConfig::new(scheme, batch_rows, 0)
                .with_shards(3)
                .with_prefetch(3)
                .with_io(IoEngineKind::Pool),
        ),
        (
            "async-ring",
            StoreConfig::new(scheme, batch_rows, 0)
                .with_shards(3)
                .with_prefetch(3)
                .with_io(IoEngineKind::Ring)
                .with_placement(ShardPlacement::Pack),
        ),
        // Adaptive placement over asymmetric shards: the 10× bandwidth
        // skew forces real migrations at every epoch boundary while the
        // trainer is mid-run.
        (
            "adaptive-pool",
            StoreConfig::new(scheme, batch_rows, 0)
                .with_shards(3)
                .with_prefetch(3)
                .with_io(IoEngineKind::Pool)
                .with_placement(ShardPlacement::Adaptive)
                .with_shard_mbps(vec![900.0, 90.0, 90.0])
                .with_scheduler(SchedulerConfig {
                    io_threads: 2,
                    decode_workers: 2,
                    pinning: Pinning::Auto,
                }),
        ),
        (
            "adaptive-ring-pinned",
            StoreConfig::new(scheme, batch_rows, 0)
                .with_shards(3)
                .with_prefetch(3)
                .with_io(IoEngineKind::Ring)
                .with_placement(ShardPlacement::Adaptive)
                .with_shard_profiles(vec![
                    DeviceProfile::stable(900.0),
                    DeviceProfile::degrading(400.0, 0.1),
                    DeviceProfile::stable(90.0),
                ])
                .with_scheduler(SchedulerConfig {
                    io_threads: 2,
                    decode_workers: 3,
                    pinning: Pinning::Fixed(vec![0, 1, 0]),
                }),
        ),
    ];
    for (name, config) in sharded_configs {
        let store = ShardedSpillStore::build(&ds.x, &ds.labels, &config).unwrap();
        assert_eq!(store.spilled_batches(), 8, "{name}");
        runs.push(train(name, &store, eval));
        store.stats().snapshot_stable().assert_consistent();
    }

    // The model must actually have learned something (guards against all
    // six agreeing on garbage), and every run must agree bitwise.
    let reference = &runs[0];
    assert!(
        *reference.curve.last().unwrap() < 0.35,
        "reference run did not converge: {:?}",
        reference.curve
    );
    for run in &runs[1..] {
        assert_eq!(
            run.weights, reference.weights,
            "{} diverged from {} in final weights",
            run.name, reference.name
        );
        assert_eq!(
            run.curve, reference.curve,
            "{} diverged from {} in the loss trajectory",
            run.name, reference.name
        );
    }
}

/// Multi-tenant determinism: 8 jobs with distinct seeds train
/// concurrently over ONE shared adaptive store — ring engine replaced by
/// the fault-injecting double, asymmetric degrading devices, adaptive
/// migrations firing at every epoch boundary of every job, and a shared
/// compressed-batch cache small enough to churn. Every job's final
/// weights AND loss curve must be `==` to its solo run on a fresh store
/// of the same configuration: concurrency, cache hits, eviction timing,
/// QoS throttling and injected faults may change *when* bytes are read,
/// never *which* bytes the trainer sees.
#[test]
fn concurrent_tenants_train_bit_identical_to_solo() {
    use std::sync::Arc;
    use toc_data::serve::{JobServer, JobSpec, ServeConfig};
    use toc_data::FaultPlan;

    let ds = generate_preset(DatasetPreset::CensusLike, 480, 13);
    let scheme = Scheme::Toc;
    let batch_rows = 60;
    let eval_batch = Scheme::Den.encode(&ds.x);
    let config = || {
        StoreConfig::new(scheme, batch_rows, 0)
            .with_shards(3)
            .with_prefetch(3)
            .with_io(IoEngineKind::Ring)
            .with_placement(ShardPlacement::Adaptive)
            .with_shard_profiles(vec![
                DeviceProfile::stable(900.0),
                DeviceProfile::degrading(400.0, 0.1),
                DeviceProfile::stable(90.0),
            ])
            .with_fault_plan(FaultPlan::seeded(0xBEEF))
    };
    let job = |i: usize| {
        JobSpec::new(
            format!("tenant{i}"),
            ModelSpec::Linear(LossKind::Logistic),
            MgdConfig {
                epochs: 4,
                lr: 0.25,
                seed: 42 + 7 * i as u64,
                record_curve: true,
                shuffle_batches: true,
            },
        )
        .with_share(1.0 + (i % 3) as f64)
        .with_eval(eval_batch.clone(), ds.labels.clone())
    };

    let store = Arc::new(ShardedSpillStore::build(&ds.x, &ds.labels, &config()).unwrap());
    assert_eq!(store.spilled_batches(), 8);
    let server = JobServer::new(
        Arc::clone(&store),
        ServeConfig {
            max_concurrent: 8,
            // Half the spilled bytes: tenants keep evicting each other's
            // entries, so hit/miss interleavings vary run to run.
            cache_bytes: store.spilled_bytes() / 2,
        },
    );
    let outcomes = server.run((0..8).map(job).collect());
    store.stats().snapshot_stable().assert_consistent();
    assert_eq!(server.peak_concurrency(), 8);

    // Solo references: each job alone on a fresh store of the same
    // configuration, driven by the plain Trainer through the prefetch
    // pipeline + fault-injecting engine (a different read path entirely).
    for (i, outcome) in outcomes.iter().enumerate() {
        let spec = job(i);
        let solo_store = ShardedSpillStore::build(&ds.x, &ds.labels, &config()).unwrap();
        let trainer = Trainer::new(spec.config.clone());
        let report = trainer.train(
            &spec.model,
            &solo_store,
            Some((&eval_batch, ds.labels.as_slice())),
        );
        solo_store.stats().snapshot_stable().assert_consistent();
        assert_eq!(
            outcome.weights,
            report.model.weights(),
            "{} diverged from its solo run in final weights",
            outcome.name
        );
        let solo_curve: Vec<f64> = report.curve.iter().map(|p| p.error_rate).collect();
        assert_eq!(
            outcome.curve, solo_curve,
            "{} diverged from its solo run in the loss trajectory",
            outcome.name
        );
    }
    // Distinct seeds must actually produce distinct runs (guards against
    // a provider that ignores the job's shuffle stream).
    assert!(
        outcomes[0].weights != outcomes[1].weights,
        "jobs with different seeds produced identical weights"
    );
}

/// Online training over a *streaming* store must be bit-identical to the
/// same online pass over a fully materialized store: the live run
/// ingests chunks through the fault-injecting append path (chunked short
/// writes + latency) while the online trainer, TWO extra tenant reader
/// threads, and the adaptive migrator (repointing sealed segments across
/// asymmetric shards at every window boundary) all run concurrently.
/// Ingest timing, injected write faults, concurrent readers and
/// migrations may change *when* a segment is consumed or *where* its
/// bytes live — never the per-window loss curve or the final weights.
#[test]
fn online_training_over_streaming_store_matches_materialized() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use toc_data::{FaultPlan, StoreIngest};
    use toc_formats::EncodeOptions;
    use toc_ml::mgd::OnlineReport;

    let ds = generate_preset(DatasetPreset::CensusLike, 480, 13);
    let scheme = Scheme::Toc;
    let batch_rows = 60; // chunk == batch: 8 sealed segments
    let window = 3;
    let trainer = Trainer::new(MgdConfig {
        epochs: 1,
        lr: 0.25,
        ..Default::default()
    });
    let spec = ModelSpec::Linear(LossKind::Logistic);
    let config = || {
        StoreConfig::new(scheme, batch_rows, 0)
            .with_shards(3)
            .with_placement(ShardPlacement::Adaptive)
            .with_shard_profiles(vec![
                DeviceProfile::stable(900.0),
                DeviceProfile::degrading(400.0, 0.1),
                DeviceProfile::stable(90.0),
            ])
            .with_fault_plan(FaultPlan::seeded(0xF011))
    };

    // Reference: the identical online pass over a store built the
    // ordinary materialized way (stream already "ended" at batch 0).
    let materialized = ShardedSpillStore::build(&ds.x, &ds.labels, &config()).unwrap();
    let reference = trainer.train_online(&spec, &materialized, window, &mut || false);
    assert_eq!(reference.consumed, 8);

    // Live run: ingest, online trainer, two tenant readers, migrator.
    let store = ShardedSpillStore::open_streaming(ds.x.cols(), &config()).unwrap();
    let done = AtomicBool::new(false);
    let live = std::thread::scope(|s| {
        let store_ref = &store;
        let ds_ref = &ds;
        let done_ref = &done;
        s.spawn(move || {
            let run = || -> std::io::Result<()> {
                let mut ing = StoreIngest::new(
                    store_ref,
                    batch_rows,
                    Some(scheme),
                    EncodeOptions::default(),
                );
                for r in 0..ds_ref.x.rows() {
                    ing.push_row(ds_ref.x.row(r), ds_ref.labels[r])?;
                    if r % batch_rows == 0 {
                        // Stretch the stream out so the trainer visibly
                        // catches up and waits on unsealed chunks.
                        std::thread::sleep(std::time::Duration::from_micros(300));
                    }
                }
                ing.finish().map(|_| ())
            };
            let out = run();
            // Release the trainer even if an append failed.
            done_ref.store(true, Ordering::Release);
            out.unwrap();
        });
        let readers: Vec<_> = (0..2)
            .map(|i| {
                s.spawn(move || {
                    while store_ref.num_batches() == 0 {
                        std::thread::yield_now();
                    }
                    let tenant = Trainer::new(MgdConfig {
                        epochs: 2,
                        lr: 0.1,
                        seed: 7 + i,
                        shuffle_batches: true,
                        ..Default::default()
                    });
                    tenant.train(&ModelSpec::Linear(LossKind::Logistic), store_ref, None);
                })
            })
            .collect();
        let report = trainer.train_online(&spec, store_ref, window, &mut || {
            !done.load(Ordering::Acquire)
        });
        for r in readers {
            r.join().unwrap();
        }
        report
    });

    assert_eq!(live.consumed, reference.consumed);
    assert_eq!(
        live.model.weights(),
        reference.model.weights(),
        "streaming-built store diverged from the materialized run"
    );
    let curve = |r: &OnlineReport| -> Vec<(usize, usize, f64)> {
        r.windows
            .iter()
            .map(|w| (w.start, w.end, w.error_rate))
            .collect()
    };
    assert_eq!(
        curve(&live),
        curve(&reference),
        "per-window prequential loss curves diverged"
    );
    // The reference actually learned (guards against agreeing on garbage).
    assert!(
        reference.windows.last().unwrap().error_rate < 0.40,
        "online pass did not converge: {:?}",
        curve(&reference)
    );
}
