//! Crash-safe ingestion: the kill-point matrix.
//!
//! The resumable CSV → container driver is interrupted at every modeled
//! crash window — rows staged but unsealed, a chunk sealed but not yet
//! checkpointed, a checkpoint just persisted, the footer written but the
//! sidecar not yet cleaned up — at *every* chunk boundary, plus
//! fault-injected torn writes past the watermark. In every case the
//! resumed run must produce a container **byte-identical** to an
//! uninterrupted run over the same source. The store-side analogue pins
//! the same property for `StoreIngest` + `ShardedSpillStore`
//! checkpoint/resume, and the backpressure seam is exercised end to end.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use toc_data::ingest::{
    ingest_csv_container, ingest_csv_container_killable, sidecar_path, CsvContainerJob,
    IngestCheckpoint, IngestError, KillPoint, StoreIngest,
};
use toc_data::store::{ShardedSpillStore, StoreCheckpoint, StoreConfig};
use toc_data::synth::drifting_matrix;
use toc_formats::{EncodeOptions, MatrixBatch, Scheme};
use toc_ml::mgd::BatchProvider;

/// Self-cleaning scratch directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let d = std::env::temp_dir().join(format!(
            "toc-ingest-resume-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        std::fs::create_dir_all(&d).unwrap();
        Self(d)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Deterministic numeric CSV with a header, mild value drift (so
/// auto-pick changes its mind across chunks), and a torn-looking but
/// newline-terminated final row.
fn write_csv(path: &Path, rows: usize, cols: usize) {
    let m = drifting_matrix(rows, cols, 4, 13);
    let mut out = String::new();
    out.push_str(
        &(0..cols)
            .map(|c| format!("f{c}"))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for r in 0..rows {
        let line = m
            .row(r)
            .iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&line);
        out.push('\n');
    }
    std::fs::write(path, out).unwrap();
}

fn job(csv: &Path, out: &Path, checkpoint_every: u64) -> CsvContainerJob {
    CsvContainerJob {
        csv: csv.to_path_buf(),
        out: out.to_path_buf(),
        chunk_rows: 20,
        scheme: None, // per-chunk auto-pick: deterministic in the staged rows
        encode: EncodeOptions::default(),
        checkpoint_every,
    }
}

/// Reference bytes from an uninterrupted run (checkpointing on, so the
/// sidecar lifecycle is part of what's being compared).
fn baseline(dir: &TempDir, csv: &Path) -> Vec<u8> {
    let out = dir.path("baseline.tocz");
    let outcome = ingest_csv_container(&job(csv, &out, 2), false).unwrap();
    assert!(outcome.killed.is_none());
    assert!(
        !sidecar_path(&out).exists(),
        "sidecar must be cleaned up on success"
    );
    std::fs::read(&out).unwrap()
}

#[test]
fn checkpointing_does_not_change_the_container_bytes() {
    let dir = TempDir::new("plain");
    let csv = dir.path("in.csv");
    write_csv(&csv, 137, 6);
    let with_ckpt = baseline(&dir, &csv);
    let out = dir.path("nockpt.tocz");
    ingest_csv_container(&job(&csv, &out, 0), false).unwrap();
    assert_eq!(std::fs::read(&out).unwrap(), with_ckpt);
    assert!(!sidecar_path(&out).exists());
}

/// Kill at a given point, then resume; the result must be byte-identical
/// to the uninterrupted baseline. Optionally smears garbage past the
/// file's kill-time length first (a torn write racing the crash).
fn kill_and_resume(dir: &TempDir, csv: &Path, tag: &str, kp: KillPoint, torn: Option<&[u8]>) {
    let expect = baseline(dir, csv);
    let out = dir.path(&format!("killed-{tag}.tocz"));
    let j = job(csv, &out, 2);
    let outcome = ingest_csv_container_killable(&j, false, Some(kp)).unwrap();
    assert_eq!(outcome.killed, Some(kp), "kill point {kp:?} did not fire");
    if let Some(garbage) = torn {
        let mut f = std::fs::OpenOptions::new().append(true).open(&out).unwrap();
        f.write_all(garbage).unwrap();
    }
    let resumed = ingest_csv_container(&j, true).unwrap();
    assert!(resumed.killed.is_none());
    assert_eq!(
        std::fs::read(&out).unwrap(),
        expect,
        "resume after {kp:?} (torn: {}) is not byte-identical",
        torn.is_some(),
    );
    assert_eq!(resumed.stats.rows, 137);
    assert_eq!(resumed.stats.chunks, 7); // 6 × 20 + 17
    assert!(
        !sidecar_path(&out).exists(),
        "sidecar survived a successful resume after {kp:?}"
    );
}

#[test]
fn resume_is_byte_identical_after_kill_at_every_chunk_boundary() {
    let dir = TempDir::new("matrix");
    let csv = dir.path("in.csv");
    write_csv(&csv, 137, 6);
    // 137 rows / 20-row chunks = 7 chunks; checkpoints land after chunks
    // 2, 4, 6. Kill right after every seal (sidecar lags the file) and
    // right after every checkpoint (sidecar exactly matches the file).
    for chunks in 1..=6 {
        kill_and_resume(
            &dir,
            &csv,
            &format!("seal{chunks}"),
            KillPoint::AfterSealedChunk { chunks },
            None,
        );
    }
    for chunks in [2, 4, 6] {
        kill_and_resume(
            &dir,
            &csv,
            &format!("ckpt{chunks}"),
            KillPoint::AfterCheckpoint { chunks },
            None,
        );
    }
}

#[test]
fn resume_is_byte_identical_after_staged_rows_and_footer_kills() {
    let dir = TempDir::new("edges");
    let csv = dir.path("in.csv");
    write_csv(&csv, 137, 6);
    // Rows staged past the last seal live only in the workspace; the
    // resume re-reads them from the CSV.
    kill_and_resume(
        &dir,
        &csv,
        "staged",
        KillPoint::AfterStagedRows {
            chunks: 3,
            staged: 7,
        },
        None,
    );
    // Crash between footer write and sidecar cleanup: the output is
    // already complete and must be recognized as such, not re-ingested.
    kill_and_resume(&dir, &csv, "footer", KillPoint::AfterFooter, None);
}

#[test]
fn resume_truncates_fault_injected_torn_writes_past_the_watermark() {
    let dir = TempDir::new("torn");
    let csv = dir.path("in.csv");
    write_csv(&csv, 137, 6);
    // Garbage past the sealed watermark models a chunk write that was
    // racing the crash: a partial segment prefix, pure noise, and a
    // single stray byte.
    kill_and_resume(
        &dir,
        &csv,
        "torn-a",
        KillPoint::AfterCheckpoint { chunks: 2 },
        Some(&[0xAB; 97]),
    );
    kill_and_resume(
        &dir,
        &csv,
        "torn-b",
        KillPoint::AfterCheckpoint { chunks: 4 },
        Some(&[0x00; 1]),
    );
    // After a seal *without* a checkpoint the sidecar is stale: both the
    // torn garbage and the un-checkpointed sealed chunk must be
    // truncated and re-ingested.
    kill_and_resume(
        &dir,
        &csv,
        "torn-c",
        KillPoint::AfterSealedChunk { chunks: 3 },
        Some(&[0x5A; 33]),
    );
}

#[test]
fn resume_without_sidecar_restarts_cleanly() {
    let dir = TempDir::new("nosidecar");
    let csv = dir.path("in.csv");
    write_csv(&csv, 137, 6);
    let expect = baseline(&dir, &csv);
    let out = dir.path("out.tocz");
    let j = job(&csv, &out, 2);
    // Killed after chunk 1: no checkpoint has been written yet, so the
    // partial file has no sidecar — resume must restart from scratch.
    let outcome =
        ingest_csv_container_killable(&j, false, Some(KillPoint::AfterSealedChunk { chunks: 1 }))
            .unwrap();
    assert!(outcome.killed.is_some());
    assert!(!sidecar_path(&out).exists());
    let resumed = ingest_csv_container(&j, true).unwrap();
    assert_eq!(resumed.resumed_chunks, 0, "nothing was resumable");
    assert_eq!(std::fs::read(&out).unwrap(), expect);
}

#[test]
fn resume_rejects_corrupt_sidecar_and_changed_config() {
    let dir = TempDir::new("reject");
    let csv = dir.path("in.csv");
    write_csv(&csv, 137, 6);
    let out = dir.path("out.tocz");
    let j = job(&csv, &out, 2);
    ingest_csv_container_killable(&j, false, Some(KillPoint::AfterCheckpoint { chunks: 4 }))
        .unwrap();
    let sc = sidecar_path(&out);

    // Changed chunk size: the config hash no longer matches.
    let mut changed = job(&csv, &out, 2);
    changed.chunk_rows = 25;
    match ingest_csv_container(&changed, true) {
        Err(IngestError::Checkpoint(m)) => assert!(m.contains("config hash"), "{m}"),
        other => panic!("changed config must be rejected, got {other:?}"),
    }

    // A flipped bit fails the sidecar checksum.
    let mut bytes = std::fs::read(&sc).unwrap();
    bytes[10] ^= 0x20;
    std::fs::write(&sc, &bytes).unwrap();
    match ingest_csv_container(&j, true) {
        Err(IngestError::Checkpoint(m)) => assert!(m.contains("checksum"), "{m}"),
        other => panic!("corrupt sidecar must be rejected, got {other:?}"),
    }

    // A file shorter than the watermark cannot be resumed.
    bytes[10] ^= 0x20;
    std::fs::write(&sc, &bytes).unwrap();
    let keep = std::fs::read(&out).unwrap();
    std::fs::write(&out, &keep[..40]).unwrap();
    match ingest_csv_container(&j, true) {
        Err(IngestError::Checkpoint(m)) => assert!(m.contains("watermark"), "{m}"),
        other => panic!("short output must be rejected, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Store-side checkpoint/resume.

fn store_rows(store: &ShardedSpillStore) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..store.num_batches() {
        store.visit(i, &mut |b, ls| {
            let d = b.decode();
            for r in 0..d.rows() {
                rows.push(d.row(r).to_vec());
            }
            labels.extend_from_slice(ls);
        });
    }
    (rows, labels)
}

#[test]
fn store_checkpoint_resume_matches_uninterrupted_run() {
    let cols = 5;
    let chunk = 16;
    let total = 200;
    let m = drifting_matrix(total, cols, 4, 7);
    let label = |r: usize| if r.is_multiple_of(3) { 1.0 } else { -1.0 };
    let config = StoreConfig::new(Scheme::Toc, chunk, 0).with_shards(2);

    // Uninterrupted reference.
    let reference = ShardedSpillStore::open_streaming(cols, &config).unwrap();
    let mut ing = StoreIngest::new(
        &reference,
        chunk,
        Some(Scheme::Toc),
        EncodeOptions::default(),
    );
    for r in 0..total {
        ing.push_row(m.row(r), label(r)).unwrap();
    }
    ing.finish().unwrap();
    let (ref_rows, ref_labels) = store_rows(&reference);
    assert_eq!(ref_rows.len(), total);

    // Interrupted run: checkpoint after 6 chunks (96 rows), seal one
    // more chunk past the checkpoint, then crash with a torn shard
    // write.
    let store = ShardedSpillStore::open_streaming(cols, &config).unwrap();
    let mut ing = StoreIngest::new(&store, chunk, Some(Scheme::Toc), EncodeOptions::default());
    let mut ck = None;
    for r in 0..112 {
        ing.push_row(m.row(r), label(r)).unwrap();
        if r + 1 == 96 {
            ck = Some(ing.checkpoint(96));
        }
    }
    let ck = ck.unwrap();
    drop(ing);
    // The sidecar round-trips through bytes like the real artifact does.
    let ck = IngestCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
    let sck = StoreCheckpoint::from_bytes(&ck.state).unwrap();
    assert_eq!(sck.num_segments(), 6);
    let shard0 = sck.shard_paths()[0].clone();
    let shard_dir = shard0.parent().unwrap().to_path_buf();
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&shard0)
            .unwrap();
        f.write_all(&[0xCD; 61]).unwrap();
    }
    // Crash: the process dies without dropping the store, so the shard
    // files survive on disk.
    std::mem::forget(store);

    let resumed = ShardedSpillStore::open_streaming_resume(cols, &config, &sck).unwrap();
    assert_eq!(resumed.num_batches(), 6, "only checkpointed chunks survive");
    let mut ing = StoreIngest::resume(
        &resumed,
        chunk,
        Some(Scheme::Toc),
        EncodeOptions::default(),
        &ck,
    )
    .unwrap();
    for r in 96..total {
        ing.push_row(m.row(r), label(r)).unwrap();
    }
    let stats = ing.finish().unwrap();
    assert_eq!(stats.rows, total as u64);
    assert_eq!(stats.chunks, (total / chunk) as u64 + 1);

    let (rows, labels) = store_rows(&resumed);
    assert_eq!(rows, ref_rows, "resumed store decodes different rows");
    assert_eq!(labels, ref_labels, "resumed store has different labels");
    drop(resumed);
    // The forgotten store's directory is not owned by the resumed one;
    // clean it up by hand.
    std::fs::remove_dir_all(&shard_dir).ok();
}

#[test]
fn store_resume_rejects_outrun_sidecar_and_wrong_kind() {
    let cols = 4;
    let config = StoreConfig::new(Scheme::Toc, 8, 0).with_shards(2);
    let m = drifting_matrix(64, cols, 3, 5);
    let store = ShardedSpillStore::open_streaming(cols, &config).unwrap();
    let mut ing = StoreIngest::new(&store, 8, Some(Scheme::Toc), EncodeOptions::default());
    for r in 0..64 {
        ing.push_row(m.row(r), 1.0).unwrap();
    }
    let ck = ing.checkpoint(64);
    drop(ing);
    let sck = StoreCheckpoint::from_bytes(&ck.state).unwrap();
    // Truncate a shard *below* the checkpoint cursor: the sidecar now
    // outruns the data, which must be refused (resuming would read
    // garbage as sealed segments).
    let shard0 = sck.shard_paths()[0].clone();
    let len = std::fs::metadata(&shard0).unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&shard0)
        .unwrap();
    f.set_len(len - 1).unwrap();
    assert!(
        ShardedSpillStore::open_streaming_resume(cols, &config, &sck).is_err(),
        "a sidecar that outruns its shard data must be rejected"
    );
    f.set_len(len).unwrap();

    // A container-kind checkpoint is refused by the store resume.
    let mut wrong = ck.clone();
    wrong.kind = toc_data::CheckpointKind::Container;
    let resumed = ShardedSpillStore::open_streaming_resume(cols, &config, &sck).unwrap();
    assert!(StoreIngest::resume(
        &resumed,
        8,
        Some(Scheme::Toc),
        EncodeOptions::default(),
        &wrong
    )
    .is_err());
}

// ---------------------------------------------------------------------------
// Backpressure and appender serialization.

#[test]
fn backpressure_bounds_pending_chunks_and_records_stall_time() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let cols = 4;
    let chunk = 8;
    let chunks = 40usize;
    let budget = 4usize;
    let m = drifting_matrix(chunks * chunk, cols, 3, 9);
    let config = StoreConfig::new(Scheme::Toc, chunk, 0)
        .with_shards(2)
        .with_max_pending(budget);
    let store = ShardedSpillStore::open_streaming(cols, &config).unwrap();
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let store_ref = &store;
        let done_ref = &done;
        s.spawn(move || {
            let mut ing = StoreIngest::new(
                store_ref,
                chunk,
                Some(Scheme::Toc),
                EncodeOptions::default(),
            );
            for r in 0..chunks * chunk {
                ing.push_row(m.row(r), 1.0).unwrap();
            }
            ing.finish().unwrap();
            done_ref.store(true, Ordering::Release);
        });
        // Slow consumer: visit batches in order as they appear, pausing
        // between visits so the producer runs ahead and hits the budget.
        let mut next = 0usize;
        loop {
            if next < store_ref.num_batches() {
                store_ref.visit(next, &mut |_, _| {});
                next += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            } else if done_ref.load(Ordering::Acquire) && next >= store_ref.num_batches() {
                break;
            } else {
                std::thread::yield_now();
            }
        }
    });
    assert_eq!(store.num_batches(), chunks);
    assert!(
        store.peak_pending_appends() <= budget,
        "peak pending {} exceeded the budget {budget}",
        store.peak_pending_appends()
    );
    let snap = store.stats().snapshot_stable();
    assert!(
        snap.ingest_stall_ns > 0,
        "a producer 10× faster than the consumer never stalled"
    );
    assert_eq!(store.pending_appends(), 0, "all chunks consumed");
}

#[test]
fn concurrent_raw_appends_serialize_without_losing_batches() {
    let cols = 3;
    let config = StoreConfig::new(Scheme::Toc, 4, 0).with_shards(2);
    let store = ShardedSpillStore::open_streaming(cols, &config).unwrap();
    let m = drifting_matrix(4, cols, 2, 3);
    let batch = Scheme::Toc.encode(&m).to_bytes();
    let per_thread = 32usize;
    std::thread::scope(|s| {
        for _ in 0..4 {
            let store_ref = &store;
            let batch_ref = &batch;
            s.spawn(move || {
                for _ in 0..per_thread {
                    store_ref.append_sealed(batch_ref, vec![1.0; 4]).unwrap();
                }
            });
        }
    });
    assert_eq!(store.num_batches(), 4 * per_thread);
    let (batches, bytes) = store.appended_snapshot();
    assert_eq!(batches, 4 * per_thread);
    assert_eq!(bytes, (batch.len() * 4 * per_thread) as u64);
    // Every appended batch decodes from its recorded extent.
    for i in 0..store.num_batches() {
        store.visit(i, &mut |b, _| {
            assert_eq!(b.decode().rows(), 4);
        });
    }
}

#[test]
fn stats_snapshot_never_reports_bytes_ahead_of_batches() {
    // `appended_snapshot` pairs the counters under the append lock: a
    // racing sampler must never see bytes from an append whose batch
    // count it did not see.
    let cols = 3;
    let config = StoreConfig::new(Scheme::Toc, 4, 0).with_shards(2);
    let store = ShardedSpillStore::open_streaming(cols, &config).unwrap();
    let m = drifting_matrix(4, cols, 2, 3);
    let batch = Scheme::Toc.encode(&m).to_bytes();
    let total = 64usize;
    std::thread::scope(|s| {
        let store_ref = &store;
        let batch_ref = &batch;
        let writer = s.spawn(move || {
            for _ in 0..total {
                store_ref.append_sealed(batch_ref, vec![1.0; 4]).unwrap();
            }
        });
        let mut last = (0usize, 0u64);
        while !writer.is_finished() {
            let (n, b) = store_ref.appended_snapshot();
            assert_eq!(
                b,
                (n * batch.len()) as u64,
                "snapshot tore: {n} batches but {b} bytes"
            );
            assert!(n >= last.0 && b >= last.1, "counters went backwards");
            last = (n, b);
        }
        writer.join().unwrap();
    });
    let (n, b) = store.appended_snapshot();
    assert_eq!(n, total);
    assert_eq!(b, (total * batch.len()) as u64);
}
