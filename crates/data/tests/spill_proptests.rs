//! Property tests for the out-of-core path: arbitrary (scheme ×
//! batch_rows × budget × shards × prefetch × io engine) configurations
//! round-trip through spill with decode-equality against the source
//! matrix, for both the single-file and the sharded store.

use proptest::prelude::*;
use toc_data::store::{IoEngineKind, MiniBatchStore, ShardedSpillStore, StoreConfig};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::{MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;
use toc_ml::mgd::BatchProvider;

/// Visit every batch twice (the second pass exercises the re-read path)
/// and assert exact decode- and label-equality with the source.
fn assert_roundtrip(
    provider: &dyn BatchProvider,
    x: &DenseMatrix,
    labels: &[f64],
    batch_rows: usize,
) {
    for _epoch in 0..2 {
        for i in 0..provider.num_batches() {
            let start = i * batch_rows;
            let end = (start + batch_rows).min(x.rows());
            provider.visit(i, &mut |b, y| {
                assert_eq!(b.decode(), x.slice_rows(start, end), "batch {i}");
                assert_eq!(y, &labels[start..end], "labels {i}");
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn spilled_batches_roundtrip(
        scheme_idx in 0usize..Scheme::PAPER_SET.len(),
        rows in 60usize..240,
        batch_rows in 1usize..97,
        budget_pct in 0usize..=120,
        shards in 1usize..5,
        prefetch in 0usize..4,
        io_idx in 0usize..3,
    ) {
        let scheme = Scheme::PAPER_SET[scheme_idx];
        let io = [IoEngineKind::Sync, IoEngineKind::Pool, IoEngineKind::Ring][io_idx];
        let ds = generate_preset(DatasetPreset::CensusLike, rows, 17);
        let n_batches = rows.div_ceil(batch_rows);

        // Scale the budget off the true footprint so every case exercises
        // a meaningful memory/disk split (0% = all spilled, >100% = none).
        let probe = MiniBatchStore::build(
            &ds.x,
            &ds.labels,
            &StoreConfig::new(scheme, batch_rows, usize::MAX),
        )
        .unwrap();
        let budget = probe.total_bytes() * budget_pct / 100;

        let config = StoreConfig::new(scheme, batch_rows, budget)
            .with_shards(shards)
            .with_prefetch(prefetch)
            .with_io(io);
        let flat = MiniBatchStore::build(&ds.x, &ds.labels, &config).unwrap();
        let sharded = ShardedSpillStore::build(&ds.x, &ds.labels, &config).unwrap();

        prop_assert_eq!(flat.num_batches(), n_batches);
        prop_assert_eq!(sharded.num_batches(), n_batches);
        // Both stores make the same memory/disk split decision.
        prop_assert_eq!(flat.spilled_batches(), sharded.spilled_batches());
        prop_assert_eq!(flat.total_bytes(), sharded.total_bytes());
        if budget_pct == 0 {
            prop_assert_eq!(flat.spilled_batches(), n_batches);
        }

        assert_roundtrip(&flat, &ds.x, &ds.labels, batch_rows);
        assert_roundtrip(&sharded, &ds.x, &ds.labels, batch_rows);

        // IO totals are exact: two sweeps read every spilled byte twice
        // (plus whatever the prefetcher read ahead but nobody consumed).
        let spilled_visits = 2 * flat.spilled_batches() as u64;
        let snap = flat.stats().snapshot();
        prop_assert_eq!(snap.disk_reads, spilled_visits);
        prop_assert_eq!(snap.bytes_read, 2 * flat.spilled_bytes() as u64);
        let snap = sharded.stats().snapshot_stable();
        snap.assert_consistent();
        prop_assert_eq!(snap.spill_requests,
                        if prefetch > 0 { spilled_visits } else { 0 });
        prop_assert_eq!(snap.prefetch_hits + snap.prefetch_misses,
                        if prefetch > 0 { spilled_visits } else { 0 });
        // Every spilled visit consumed one physical read or rode along a
        // coalesced one (the ring engine may merge adjacent reads).
        prop_assert!(snap.disk_reads + snap.coalesced_reads >= spilled_visits);
    }
}
