//! Property tests for the out-of-core path: arbitrary (scheme ×
//! batch_rows × budget × shards × prefetch × io engine) configurations
//! round-trip through spill with decode-equality against the source
//! matrix, for both the single-file and the sharded store — plus the
//! placement-plan laws every policy (build-time stripe/pack/adaptive and
//! the runtime adaptive planner) must satisfy: cover every batch exactly
//! once, stay inside the shard range, respect capacity when feasible,
//! and be a deterministic function of their inputs.

use proptest::prelude::*;
use toc_data::store::{
    place_spilled, plan_adaptive, IoEngineKind, MiniBatchStore, ShardPlacement, ShardedSpillStore,
    StoreConfig,
};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::{MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;
use toc_ml::mgd::BatchProvider;

/// Visit every batch twice (the second pass exercises the re-read path)
/// and assert exact decode- and label-equality with the source.
fn assert_roundtrip(
    provider: &dyn BatchProvider,
    x: &DenseMatrix,
    labels: &[f64],
    batch_rows: usize,
) {
    for _epoch in 0..2 {
        for i in 0..provider.num_batches() {
            let start = i * batch_rows;
            let end = (start + batch_rows).min(x.rows());
            provider.visit(i, &mut |b, y| {
                assert_eq!(b.decode(), x.slice_rows(start, end), "batch {i}");
                assert_eq!(y, &labels[start..end], "labels {i}");
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn spilled_batches_roundtrip(
        scheme_idx in 0usize..Scheme::PAPER_SET.len(),
        rows in 60usize..240,
        batch_rows in 1usize..97,
        budget_pct in 0usize..=120,
        shards in 1usize..5,
        prefetch in 0usize..4,
        io_idx in 0usize..3,
    ) {
        let scheme = Scheme::PAPER_SET[scheme_idx];
        let io = [IoEngineKind::Sync, IoEngineKind::Pool, IoEngineKind::Ring][io_idx];
        let ds = generate_preset(DatasetPreset::CensusLike, rows, 17);
        let n_batches = rows.div_ceil(batch_rows);

        // Scale the budget off the true footprint so every case exercises
        // a meaningful memory/disk split (0% = all spilled, >100% = none).
        let probe = MiniBatchStore::build(
            &ds.x,
            &ds.labels,
            &StoreConfig::new(scheme, batch_rows, usize::MAX),
        )
        .unwrap();
        let budget = probe.total_bytes() * budget_pct / 100;

        let config = StoreConfig::new(scheme, batch_rows, budget)
            .with_shards(shards)
            .with_prefetch(prefetch)
            .with_io(io);
        let flat = MiniBatchStore::build(&ds.x, &ds.labels, &config).unwrap();
        let sharded = ShardedSpillStore::build(&ds.x, &ds.labels, &config).unwrap();

        prop_assert_eq!(flat.num_batches(), n_batches);
        prop_assert_eq!(sharded.num_batches(), n_batches);
        // Both stores make the same memory/disk split decision.
        prop_assert_eq!(flat.spilled_batches(), sharded.spilled_batches());
        prop_assert_eq!(flat.total_bytes(), sharded.total_bytes());
        if budget_pct == 0 {
            prop_assert_eq!(flat.spilled_batches(), n_batches);
        }

        assert_roundtrip(&flat, &ds.x, &ds.labels, batch_rows);
        assert_roundtrip(&sharded, &ds.x, &ds.labels, batch_rows);

        // IO totals are exact: two sweeps read every spilled byte twice
        // (plus whatever the prefetcher read ahead but nobody consumed).
        let spilled_visits = 2 * flat.spilled_batches() as u64;
        let snap = flat.stats().snapshot();
        prop_assert_eq!(snap.disk_reads, spilled_visits);
        prop_assert_eq!(snap.bytes_read, 2 * flat.spilled_bytes() as u64);
        let snap = sharded.stats().snapshot_stable();
        snap.assert_consistent();
        prop_assert_eq!(snap.spill_requests,
                        if prefetch > 0 { spilled_visits } else { 0 });
        prop_assert_eq!(snap.prefetch_hits + snap.prefetch_misses,
                        if prefetch > 0 { spilled_visits } else { 0 });
        // Every spilled visit consumed one physical read or rode along a
        // coalesced one (the ring engine may merge adjacent reads).
        prop_assert!(snap.disk_reads + snap.coalesced_reads >= spilled_visits);
    }

    /// Build-time placement plans: every batch assigned exactly once to a
    /// real shard, deterministically, for all three policies; pack-style
    /// policies leave no shard empty when there are enough batches.
    #[test]
    fn build_time_placement_plans_cover_all_batches(
        sizes in prop::collection::vec(1usize..5000, 1..150),
        n_shards in 1usize..6,
    ) {
        let n_shards = n_shards.min(sizes.len());
        for placement in [
            ShardPlacement::Stripe,
            ShardPlacement::Pack,
            ShardPlacement::Adaptive,
        ] {
            let plan = place_spilled(&sizes, n_shards, placement);
            // Exactly once: one assignment per batch, all in range.
            prop_assert_eq!(plan.len(), sizes.len(), "{}", placement);
            prop_assert!(plan.iter().all(|&s| s < n_shards), "{}: {:?}", placement, plan);
            // Deterministic.
            prop_assert_eq!(&plan, &place_spilled(&sizes, n_shards, placement), "{}", placement);
            // No shard starves at build time (the stores rely on this so
            // every device gets profiler observations in epoch one).
            for s in 0..n_shards {
                prop_assert!(plan.contains(&s), "{}: shard {} empty: {:?}", placement, s, plan);
            }
        }
    }

    /// The runtime adaptive planner: covers every batch exactly once,
    /// never leaves the shard range, respects byte capacities whenever
    /// the instance is feasible, is deterministic, and sends more bytes
    /// to a strictly faster shard than to a strictly slower one on
    /// uniform workloads.
    #[test]
    fn adaptive_plans_cover_respect_capacity_and_are_deterministic(
        sizes in prop::collection::vec(1usize..4000, 1..150),
        shard_seed in prop::collection::vec((1u64..2000, 0u64..40), 1..6),
        headroom in 1usize..4,
    ) {
        let n_shards = shard_seed.len();
        let mbps: Vec<f64> = shard_seed.iter().map(|&(m, _)| m as f64).collect();
        let hotness: Vec<u64> = sizes.iter().enumerate().map(|(i, _)| (i as u64 * 7) % 13).collect();
        let total: u64 = sizes.iter().map(|&s| s as u64).sum();
        let max_size = sizes.iter().copied().max().unwrap_or(0) as u64;
        // Feasible capacities: an even split plus the largest batch of
        // headroom per shard always admits a full assignment.
        let capacity: Vec<u64> = (0..n_shards)
            .map(|_| total.div_ceil(n_shards as u64) + headroom as u64 * max_size)
            .collect();
        let plan = plan_adaptive(&sizes, &hotness, &mbps, &capacity);
        prop_assert_eq!(plan.len(), sizes.len());
        prop_assert!(plan.iter().all(|&s| s < n_shards));
        // Capacity respected on this feasible instance.
        let mut load = vec![0u64; n_shards];
        for (&s, &sz) in plan.iter().zip(&sizes) {
            load[s] += sz as u64;
        }
        for s in 0..n_shards {
            prop_assert!(load[s] <= capacity[s], "shard {} over capacity: {} > {}", s, load[s], capacity[s]);
        }
        // Deterministic.
        prop_assert_eq!(&plan, &plan_adaptive(&sizes, &hotness, &mbps, &capacity));
        // Monotone in speed (uniform batches, unconstrained): a shard
        // measured at >=4x another's bandwidth must carry at least as
        // many bytes.
        if sizes.len() >= 8 {
            let uniform = vec![64usize; sizes.len()];
            let flat = vec![1u64; sizes.len()];
            let open = vec![u64::MAX; n_shards];
            let plan_u = plan_adaptive(&uniform, &flat, &mbps, &open);
            let mut load_u = vec![0u64; n_shards];
            for &s in &plan_u {
                load_u[s] += 64;
            }
            for a in 0..n_shards {
                for b in 0..n_shards {
                    if mbps[a] >= 4.0 * mbps[b] {
                        prop_assert!(
                            load_u[a] >= load_u[b],
                            "shard {} ({} MB/s) carries {} < shard {} ({} MB/s) with {}",
                            a, mbps[a], load_u[a], b, mbps[b], load_u[b]
                        );
                    }
                }
            }
        }
    }
}
