//! Fault-injection suite for the async spill-IO pipeline.
//!
//! The `FaultyIo` double serves every prefetch read through injectable
//! latency, chunked short reads, `EINTR`-style retry spins, and
//! out-of-order completion release. The property under test: **no
//! interleaving the double can produce may change a single byte** of what
//! the prefetcher hands the trainer — the spilled visit stream must be
//! bit-identical to the encoded source, and a `Trainer` run over the
//! faulty store must land on bit-identical weights to an in-memory run.

use proptest::prelude::*;
use toc_data::store::{ShardedSpillStore, StoreConfig};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_data::testing::FaultPlan;
use toc_formats::{MatrixBatch, Scheme};
use toc_ml::mgd::BatchProvider;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary fault schedules × store shapes: every visit returns the
    /// exact encoded bytes, single- and multi-threaded, and the IO
    /// accounting invariant holds.
    #[test]
    fn batches_are_bit_identical_under_any_interleaving(
        scheme_idx in 0usize..3,
        rows in 150usize..400,
        batch_rows in 23usize..90,
        shards in 1usize..5,
        depth in 1usize..5,
        seed in 0u64..1u64 << 48,
        max_latency_us in 0u64..300,
        chunked in proptest::prelude::any::<bool>(),
        eintr_per_mille in 0u32..400,
        reorder_window in 0usize..4,
    ) {
        let scheme = [Scheme::Toc, Scheme::Gzip, Scheme::Cla][scheme_idx];
        let ds = generate_preset(DatasetPreset::CensusLike, rows, 31);
        let n_batches = rows.div_ceil(batch_rows);
        let expected: Vec<Vec<u8>> = (0..n_batches)
            .map(|i| {
                let end = ((i + 1) * batch_rows).min(rows);
                scheme.encode(&ds.x.slice_rows(i * batch_rows, end)).to_bytes()
            })
            .collect();

        let plan = FaultPlan {
            seed,
            max_latency_us,
            chunked_reads: chunked,
            eintr_per_mille,
            reorder_window,
            ..FaultPlan::default()
        };
        let config = StoreConfig::new(scheme, batch_rows, 0)
            .with_shards(shards)
            .with_prefetch(depth)
            .with_fault_plan(plan.clone());
        let store = ShardedSpillStore::build(&ds.x, &ds.labels, &config).unwrap();
        prop_assert_eq!(store.spilled_batches(), n_batches);

        // Two single-visitor epochs (the second re-reads everything), then
        // a 4-thread concurrent sweep.
        for _epoch in 0..2 {
            #[allow(clippy::needless_range_loop)] // i indexes store, expected, labels in lockstep
            for i in 0..store.num_batches() {
                store.visit(i, &mut |b, labels| {
                    assert_eq!(b.to_bytes(), expected[i], "batch {i}");
                    let end = ((i + 1) * batch_rows).min(rows);
                    assert_eq!(labels, &ds.labels[i * batch_rows..end]);
                });
            }
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = &store;
                let expected = &expected;
                s.spawn(move || {
                    let mut i = t;
                    while i < store.num_batches() {
                        store.visit(i, &mut |b, _| {
                            assert_eq!(b.to_bytes(), expected[i], "batch {i}");
                        });
                        i += 4;
                    }
                });
            }
        });

        let visits = (3 * n_batches) as u64;
        let s = store.stats().snapshot_stable();
        s.assert_consistent();
        prop_assert_eq!(s.spill_requests, visits);
        prop_assert_eq!(s.prefetch_hits + s.prefetch_misses, visits);
        prop_assert!(s.disk_reads + s.coalesced_reads >= visits, "{:?}", s);
        // The engine was actually exercised (every store here spills).
        prop_assert!(s.submitted >= 1);
    }
}

/// A long-ish run with every fault cranked up: the trainer's result must
/// be bit-identical to training over the same batches in memory, and the
/// injected faults must demonstrably have fired.
#[test]
fn trainer_is_bit_identical_under_heavy_faults() {
    use toc_ml::mgd::{MemoryProvider, MgdConfig, ModelSpec, Trainer};
    use toc_ml::LossKind;

    let ds = generate_preset(DatasetPreset::CensusLike, 500, 7);
    let batch_rows = 50;
    let scheme = Scheme::Toc;

    let reference = MemoryProvider {
        batches: (0..10)
            .map(|i| {
                (
                    scheme.encode(&ds.x.slice_rows(i * batch_rows, (i + 1) * batch_rows)),
                    ds.labels[i * batch_rows..(i + 1) * batch_rows].to_vec(),
                )
            })
            .collect(),
        features: ds.x.cols(),
    };

    let plan = FaultPlan {
        seed: 0xDEAD_BEEF,
        max_latency_us: 400,
        chunked_reads: true,
        eintr_per_mille: 500,
        reorder_window: 3,
        ..FaultPlan::default()
    };
    let fault_stats = plan.stats.clone();
    let config = StoreConfig::new(scheme, batch_rows, 0)
        .with_shards(3)
        .with_prefetch(4)
        .with_fault_plan(plan);
    let store = ShardedSpillStore::build(&ds.x, &ds.labels, &config).unwrap();

    let trainer = Trainer::new(MgdConfig {
        epochs: 6,
        lr: 0.2,
        shuffle_batches: true, // random visit order stresses the lookahead
        ..Default::default()
    });
    let spec = ModelSpec::Linear(LossKind::Logistic);
    let from_store = trainer.train(&spec, &store, None);
    let from_memory = trainer.train(&spec, &reference, None);
    assert_eq!(
        from_store.model.weights(),
        from_memory.model.weights(),
        "fault-injected spill reads perturbed training"
    );

    let s = store.stats().snapshot_stable();
    s.assert_consistent();
    assert_eq!(s.spill_requests, 6 * 10);
    // The gauntlet actually ran: chunked short reads happened, and with
    // 500‰ per chunk the EINTR spin fired with overwhelming probability.
    use std::sync::atomic::Ordering;
    assert!(
        fault_stats.chunked_requests.load(Ordering::Relaxed) >= 1,
        "no chunked reads fired"
    );
    assert!(
        fault_stats.eintr_retries.load(Ordering::Relaxed) >= 1,
        "no EINTR retries fired"
    );
    assert!(
        fault_stats.delayed_us.load(Ordering::Relaxed) >= 1,
        "no latency injected"
    );
}

/// Streaming ingestion through the fault-injecting append path: every
/// `append_sealed` write goes out as 2–4 chunked short writes with
/// latency and EINTR-style spins injected between them, yet a segment,
/// once sealed (visible through `num_batches`), must decode to exactly
/// the rows that were staged — short writes may fragment *how* bytes
/// land, never *which* bytes a reader sees.
#[test]
fn ingest_under_write_faults_seals_decodable_segments() {
    use toc_data::synth::drifting_matrix;
    use toc_data::StoreIngest;
    use toc_formats::EncodeOptions;

    let plan = FaultPlan {
        seed: 0xF00D_F00D,
        max_latency_us: 200,
        eintr_per_mille: 500,
        ..FaultPlan::default() // chunked_writes defaults to on
    };
    let fault_stats = plan.stats.clone();
    let chunk_rows = 40;
    let config = StoreConfig::new(Scheme::Toc, chunk_rows, 0)
        .with_shards(3)
        .with_fault_plan(plan);
    let store = ShardedSpillStore::open_streaming(6, &config).unwrap();

    let m = drifting_matrix(200, 6, 3, 21);
    let labels: Vec<f64> = (0..200)
        .map(|r| if r % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    let mut ing = StoreIngest::new(&store, chunk_rows, None, EncodeOptions::default());
    for (r, &label) in labels.iter().enumerate() {
        ing.push_row(m.row(r), label).unwrap();
    }
    let stats = ing.finish().unwrap();
    assert_eq!(stats.chunks, 5);
    assert_eq!(store.num_batches(), 5);

    // The write gauntlet actually fired.
    use std::sync::atomic::Ordering;
    assert!(
        fault_stats.chunked_writes.load(Ordering::Relaxed) >= 1,
        "no chunked short writes fired"
    );
    assert!(
        fault_stats.delayed_us.load(Ordering::Relaxed) >= 1,
        "no append latency injected"
    );

    // Every sealed segment reads back bit-exact.
    let mut seen = 0usize;
    for i in 0..store.num_batches() {
        store.visit(i, &mut |b, y| {
            let d = b.decode();
            let end = seen + d.rows();
            assert_eq!(d, m.slice_rows(seen, end), "segment {i}");
            assert_eq!(y, &labels[seen..end], "labels {i}");
            seen = end;
        });
    }
    assert_eq!(seen, 200);
}

/// The full streaming triangle under faults: a writer process appends a
/// CSV in torn bursts (rows split across writes), a follower tails the
/// file on disk and pushes rows through `StoreIngest` with the
/// fault-injecting chunked-write append path, and a reader keeps calling
/// `end_epoch` so `Adaptive` rebalance repeatedly races the in-flight
/// appends. Nothing the race can produce may drop, duplicate, reorder or
/// corrupt a row.
#[test]
fn tail_follow_races_adaptive_rebalance_under_faults() {
    use std::io::Write as _;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;
    use toc_data::synth::drifting_matrix;
    use toc_data::{follow_rows, FollowOptions, StoreIngest};
    use toc_formats::EncodeOptions;

    let total = 240;
    let cols = 5; // 4 features + trailing ±1 label column
    let m = drifting_matrix(total, cols, 4, 33);
    let label = |r: usize| if r.is_multiple_of(3) { 1.0 } else { -1.0 };
    let mut body = String::from("a,b,c,d,y\n");
    for r in 0..total {
        for v in m.row(r).iter().take(cols - 1) {
            body.push_str(&format!("{v},"));
        }
        body.push_str(&format!("{}\n", label(r)));
    }

    let path = std::env::temp_dir().join(format!("toc-follow-race-{}.csv", std::process::id()));
    std::fs::write(&path, "").unwrap();

    let plan = FaultPlan {
        seed: 0xACE_0FBA5E,
        max_latency_us: 150,
        eintr_per_mille: 400,
        ..FaultPlan::default() // chunked_writes on: appends land as short writes
    };
    let fault_stats = plan.stats.clone();
    let chunk_rows = 16;
    let config = StoreConfig::new(Scheme::Toc, chunk_rows, 0)
        .with_shards(3)
        .with_placement(toc_data::ShardPlacement::Adaptive)
        .with_fault_plan(plan);
    let store = ShardedSpillStore::open_streaming(cols - 1, &config).unwrap();

    let writer_done = AtomicBool::new(false);
    let mut rebalances = 0usize;
    std::thread::scope(|s| {
        // Writer: append the CSV in deterministic uneven bursts that tear
        // rows across write() calls, so the follower keeps hitting
        // carried partial lines.
        let wd = &writer_done;
        let bytes = body.as_bytes();
        let wpath = path.clone();
        s.spawn(move || {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&wpath)
                .unwrap();
            let mut lcg = 0x2545F491u64;
            let mut at = 0usize;
            while at < bytes.len() {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let burst = 7 + (lcg >> 33) as usize % 90;
                let end = (at + burst).min(bytes.len());
                f.write_all(&bytes[at..end]).unwrap();
                f.flush().unwrap();
                at = end;
                std::thread::sleep(Duration::from_micros(300));
            }
            wd.store(true, Ordering::Release);
        });

        // Follower: tail the growing file and ingest each row. `more`
        // keeps the follower alive through idle gaps until the writer is
        // done; after that the idle timeout ends the stream.
        let follower = s.spawn(|| {
            let mut ing = StoreIngest::new(
                &store,
                chunk_rows,
                Some(Scheme::Toc),
                EncodeOptions::default(),
            );
            let opts = FollowOptions {
                poll: Duration::from_millis(1),
                idle_timeout: Duration::from_millis(60),
            };
            let d = cols - 1;
            follow_rows(
                &path,
                &opts,
                &mut || !writer_done.load(Ordering::Acquire),
                &mut |_, row| ing.push_row(&row[..d], row[d]).map_err(|e| e.to_string()),
            )
            .unwrap();
            ing.finish().unwrap()
        });

        // Reader: sweep whatever is sealed so the planner has heat to act
        // on, then end the epoch — an Adaptive rebalance racing the
        // writer's next append.
        while !follower.is_finished() {
            for i in 0..store.num_batches() {
                store.visit(i, &mut |_, _| {});
            }
            rebalances += store.rebalance();
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = follower.join().unwrap();
        assert_eq!(stats.rows, total as u64);
    });
    let _ = rebalances; // may legitimately be 0 on a uniform device model

    // Every row survived the race, in order, with its label.
    assert_eq!(store.num_batches(), total.div_ceil(chunk_rows));
    let mut seen = 0usize;
    for i in 0..store.num_batches() {
        store.visit(i, &mut |b, y| {
            let d = b.decode();
            for (r, &yr) in y.iter().enumerate().take(d.rows()) {
                let row = seen + r;
                assert_eq!(d.row(r), &m.row(row)[..cols - 1], "row {row}");
                assert_eq!(yr, label(row), "label {row}");
            }
            seen += d.rows();
        });
    }
    assert_eq!(seen, total);

    assert!(
        fault_stats.chunked_writes.load(Ordering::Relaxed) >= 1,
        "no chunked short writes fired"
    );

    let snap = store.stats().snapshot_stable();
    snap.assert_consistent();
    drop(store);
    std::fs::remove_file(&path).ok();
}
