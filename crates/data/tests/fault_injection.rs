//! Fault-injection suite for the async spill-IO pipeline.
//!
//! The `FaultyIo` double serves every prefetch read through injectable
//! latency, chunked short reads, `EINTR`-style retry spins, and
//! out-of-order completion release. The property under test: **no
//! interleaving the double can produce may change a single byte** of what
//! the prefetcher hands the trainer — the spilled visit stream must be
//! bit-identical to the encoded source, and a `Trainer` run over the
//! faulty store must land on bit-identical weights to an in-memory run.

use proptest::prelude::*;
use toc_data::store::{ShardedSpillStore, StoreConfig};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_data::testing::FaultPlan;
use toc_formats::{MatrixBatch, Scheme};
use toc_ml::mgd::BatchProvider;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary fault schedules × store shapes: every visit returns the
    /// exact encoded bytes, single- and multi-threaded, and the IO
    /// accounting invariant holds.
    #[test]
    fn batches_are_bit_identical_under_any_interleaving(
        scheme_idx in 0usize..3,
        rows in 150usize..400,
        batch_rows in 23usize..90,
        shards in 1usize..5,
        depth in 1usize..5,
        seed in 0u64..1u64 << 48,
        max_latency_us in 0u64..300,
        chunked in proptest::prelude::any::<bool>(),
        eintr_per_mille in 0u32..400,
        reorder_window in 0usize..4,
    ) {
        let scheme = [Scheme::Toc, Scheme::Gzip, Scheme::Cla][scheme_idx];
        let ds = generate_preset(DatasetPreset::CensusLike, rows, 31);
        let n_batches = rows.div_ceil(batch_rows);
        let expected: Vec<Vec<u8>> = (0..n_batches)
            .map(|i| {
                let end = ((i + 1) * batch_rows).min(rows);
                scheme.encode(&ds.x.slice_rows(i * batch_rows, end)).to_bytes()
            })
            .collect();

        let plan = FaultPlan {
            seed,
            max_latency_us,
            chunked_reads: chunked,
            eintr_per_mille,
            reorder_window,
            ..FaultPlan::default()
        };
        let config = StoreConfig::new(scheme, batch_rows, 0)
            .with_shards(shards)
            .with_prefetch(depth)
            .with_fault_plan(plan.clone());
        let store = ShardedSpillStore::build(&ds.x, &ds.labels, &config).unwrap();
        prop_assert_eq!(store.spilled_batches(), n_batches);

        // Two single-visitor epochs (the second re-reads everything), then
        // a 4-thread concurrent sweep.
        for _epoch in 0..2 {
            #[allow(clippy::needless_range_loop)] // i indexes store, expected, labels in lockstep
            for i in 0..store.num_batches() {
                store.visit(i, &mut |b, labels| {
                    assert_eq!(b.to_bytes(), expected[i], "batch {i}");
                    let end = ((i + 1) * batch_rows).min(rows);
                    assert_eq!(labels, &ds.labels[i * batch_rows..end]);
                });
            }
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = &store;
                let expected = &expected;
                s.spawn(move || {
                    let mut i = t;
                    while i < store.num_batches() {
                        store.visit(i, &mut |b, _| {
                            assert_eq!(b.to_bytes(), expected[i], "batch {i}");
                        });
                        i += 4;
                    }
                });
            }
        });

        let visits = (3 * n_batches) as u64;
        let s = store.stats().snapshot_stable();
        s.assert_consistent();
        prop_assert_eq!(s.spill_requests, visits);
        prop_assert_eq!(s.prefetch_hits + s.prefetch_misses, visits);
        prop_assert!(s.disk_reads + s.coalesced_reads >= visits, "{:?}", s);
        // The engine was actually exercised (every store here spills).
        prop_assert!(s.submitted >= 1);
    }
}

/// A long-ish run with every fault cranked up: the trainer's result must
/// be bit-identical to training over the same batches in memory, and the
/// injected faults must demonstrably have fired.
#[test]
fn trainer_is_bit_identical_under_heavy_faults() {
    use toc_ml::mgd::{MemoryProvider, MgdConfig, ModelSpec, Trainer};
    use toc_ml::LossKind;

    let ds = generate_preset(DatasetPreset::CensusLike, 500, 7);
    let batch_rows = 50;
    let scheme = Scheme::Toc;

    let reference = MemoryProvider {
        batches: (0..10)
            .map(|i| {
                (
                    scheme.encode(&ds.x.slice_rows(i * batch_rows, (i + 1) * batch_rows)),
                    ds.labels[i * batch_rows..(i + 1) * batch_rows].to_vec(),
                )
            })
            .collect(),
        features: ds.x.cols(),
    };

    let plan = FaultPlan {
        seed: 0xDEAD_BEEF,
        max_latency_us: 400,
        chunked_reads: true,
        eintr_per_mille: 500,
        reorder_window: 3,
        ..FaultPlan::default()
    };
    let fault_stats = plan.stats.clone();
    let config = StoreConfig::new(scheme, batch_rows, 0)
        .with_shards(3)
        .with_prefetch(4)
        .with_fault_plan(plan);
    let store = ShardedSpillStore::build(&ds.x, &ds.labels, &config).unwrap();

    let trainer = Trainer::new(MgdConfig {
        epochs: 6,
        lr: 0.2,
        shuffle_batches: true, // random visit order stresses the lookahead
        ..Default::default()
    });
    let spec = ModelSpec::Linear(LossKind::Logistic);
    let from_store = trainer.train(&spec, &store, None);
    let from_memory = trainer.train(&spec, &reference, None);
    assert_eq!(
        from_store.model.weights(),
        from_memory.model.weights(),
        "fault-injected spill reads perturbed training"
    );

    let s = store.stats().snapshot_stable();
    s.assert_consistent();
    assert_eq!(s.spill_requests, 6 * 10);
    // The gauntlet actually ran: chunked short reads happened, and with
    // 500‰ per chunk the EINTR spin fired with overwhelming probability.
    use std::sync::atomic::Ordering;
    assert!(
        fault_stats.chunked_requests.load(Ordering::Relaxed) >= 1,
        "no chunked reads fired"
    );
    assert!(
        fault_stats.eintr_retries.load(Ordering::Relaxed) >= 1,
        "no EINTR retries fired"
    );
    assert!(
        fault_stats.delayed_us.load(Ordering::Relaxed) >= 1,
        "no latency injected"
    );
}
