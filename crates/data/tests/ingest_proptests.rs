//! Property tests for streaming ingestion: chunking a row stream through
//! the reusable [`toc_data::EncodeWorkspace`] must produce *exactly* the
//! bytes a one-shot encode of the same rows would — for arbitrary chunk
//! sizes, schemes and shard counts — and the workspace's high-water mark
//! must be a function of the chunk shape alone, never of how many rows
//! ever flowed through it (the bounded-memory property `toc ingest` and
//! `toc train --follow` are built on).

use proptest::prelude::*;
use toc_data::store::{ShardedSpillStore, StoreConfig};
use toc_data::synth::drifting_matrix;
use toc_data::{ContainerIngest, EncodeWorkspace, StoreIngest};
use toc_formats::container::Container;
use toc_formats::{EncodeOptions, MatrixBatch, Scheme};
use toc_ml::mgd::BatchProvider;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming rows through [`ContainerIngest`] chunk by chunk yields a
    /// container bit-identical to the one-shot
    /// [`Container::encode_with`] of the same matrix with the same
    /// segment size — chunking decides *where* boundaries fall, never
    /// what a segment encodes to.
    #[test]
    fn streamed_container_bit_identical_to_one_shot(
        scheme_idx in 0usize..Scheme::AUTO_SET.len(),
        rows in 1usize..260,
        cols in 1usize..8,
        chunk_rows in 1usize..97,
        seed in 0u64..1000,
    ) {
        let scheme = Scheme::AUTO_SET[scheme_idx];
        let m = drifting_matrix(rows, cols, 4, seed);
        let opts = EncodeOptions::default();
        let one_shot = Container::encode_with(&m, scheme, chunk_rows, &opts)
            .to_bytes()
            .unwrap();

        let mut sink = Vec::new();
        let mut ing =
            ContainerIngest::new(&mut sink, cols, chunk_rows, Some(scheme), opts).unwrap();
        for r in 0..m.rows() {
            ing.push_row(m.row(r)).unwrap();
        }
        let (total, stats) = ing.finish().unwrap();
        prop_assert_eq!(total as usize, sink.len());
        prop_assert_eq!(sink, one_shot);
        prop_assert_eq!(stats.rows as usize, rows);
        prop_assert_eq!(stats.chunks as usize, rows.div_ceil(chunk_rows));
    }

    /// Streaming the same rows into a live [`ShardedSpillStore`] across
    /// arbitrary shard counts: every appended segment reads back through
    /// the visit path with exact decode- and label-equality, and (for a
    /// fixed scheme) with bytes bit-identical to the one-shot chunk
    /// encode — the shard files hold exactly what a non-streaming encode
    /// of each chunk would have produced.
    #[test]
    fn store_ingest_bit_identical_across_shard_counts(
        scheme_idx in 0usize..Scheme::AUTO_SET.len(),
        auto_sel in 0usize..2,
        rows in 1usize..240,
        chunk_rows in 1usize..97,
        shards in 1usize..6,
        seed in 0u64..1000,
    ) {
        let fixed = Scheme::AUTO_SET[scheme_idx];
        let scheme = if auto_sel == 1 { None } else { Some(fixed) };
        let cols = 5usize;
        let m = drifting_matrix(rows, cols, 3, seed);
        let labels: Vec<f64> = (0..rows).map(|r| if r % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let opts = EncodeOptions::default();

        let config = StoreConfig::new(fixed, chunk_rows, 0).with_shards(shards);
        let store = ShardedSpillStore::open_streaming(cols, &config).unwrap();
        let mut ing = StoreIngest::new(&store, chunk_rows, scheme, opts);
        for (r, &label) in labels.iter().enumerate() {
            ing.push_row(m.row(r), label).unwrap();
        }
        let stats = ing.finish().unwrap();

        let n_chunks = rows.div_ceil(chunk_rows);
        prop_assert_eq!(stats.chunks as usize, n_chunks);
        prop_assert_eq!(store.num_batches(), n_chunks);
        prop_assert_eq!(store.appended_batches(), n_chunks);
        prop_assert_eq!(store.appended_bytes(), stats.encoded_bytes);

        let mut seen = 0usize;
        for i in 0..store.num_batches() {
            store.visit(i, &mut |b, y| {
                let d = b.decode();
                let end = seen + d.rows();
                assert_eq!(d, m.slice_rows(seen, end), "chunk {i}");
                assert_eq!(y, &labels[seen..end], "labels {i}");
                if let Some(s) = scheme {
                    // Bit-identity, not just decode-equality: the bytes
                    // appended to the shard file are exactly the one-shot
                    // encode of this chunk.
                    let expect = s.encode_with(&m.slice_rows(seen, end), &opts).to_bytes();
                    assert_eq!(b.to_bytes(), expect, "chunk {i} wire bytes");
                }
                seen = end;
            });
        }
        prop_assert_eq!(seen, rows);
    }

    /// The workspace-bytes accounting: pushing `growth`× more rows
    /// through the same workspace shape leaves the peak within 10% —
    /// peak encode memory is independent of the total row count.
    #[test]
    fn workspace_peak_independent_of_total_rows(
        cols in 1usize..8,
        chunk_rows in 8usize..64,
        growth in 2usize..9,
        seed in 0u64..1000,
    ) {
        let peak_for = |rows: usize| {
            let m = drifting_matrix(rows, cols, 3, seed);
            let mut ws = EncodeWorkspace::new(cols, chunk_rows);
            let opts = EncodeOptions::default();
            for r in 0..m.rows() {
                ws.push_row(m.row(r));
                if ws.is_full() {
                    ws.seal(None, &opts).unwrap();
                }
            }
            ws.seal(None, &opts);
            ws.peak_bytes()
        };
        let small = peak_for(chunk_rows * 2);
        let large = peak_for(chunk_rows * 2 * growth);
        prop_assert!(small > 0);
        prop_assert!(
            (large as f64) <= 1.1 * small as f64,
            "workspace peak grew with total rows: {} -> {} ({}x rows)",
            small, large, growth
        );
    }
}
