//! Multi-threaded stress over the sharded spill store: 8 visitors hammer
//! `visit` concurrently over a fully-spilled store (with and without the
//! prefetch pipeline). Every visit must return byte-identical batches and
//! the `IoStats` totals must add up exactly. Run it in release too — the
//! CI has a `cargo test --release` job precisely for these.

use toc_data::store::{IoEngineKind, ShardPlacement, ShardedSpillStore, StoreConfig};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::{MatrixBatch, Scheme};
use toc_ml::mgd::BatchProvider;

const BATCH_ROWS: usize = 100;
const THREADS: usize = 8;
const ROUNDS: usize = 5;

#[test]
fn eight_concurrent_visitors_get_byte_identical_batches() {
    let ds = generate_preset(DatasetPreset::CensusLike, 1200, 3);
    let n_batches = 12;
    // The serialized form each visit must reproduce, bit for bit.
    let expected: Vec<Vec<u8>> = (0..n_batches)
        .map(|i| {
            Scheme::Toc
                .encode(&ds.x.slice_rows(i * BATCH_ROWS, (i + 1) * BATCH_ROWS))
                .to_bytes()
        })
        .collect();

    for (prefetch, io, placement) in [
        (0usize, IoEngineKind::Sync, ShardPlacement::Stripe),
        (6, IoEngineKind::Sync, ShardPlacement::Stripe),
        (6, IoEngineKind::Pool, ShardPlacement::Stripe),
        (6, IoEngineKind::Ring, ShardPlacement::Stripe),
        (6, IoEngineKind::Ring, ShardPlacement::Pack),
    ] {
        let config = StoreConfig::new(Scheme::Toc, BATCH_ROWS, 0)
            .with_shards(4)
            .with_prefetch(prefetch)
            .with_io(io)
            .with_placement(placement);
        let store = ShardedSpillStore::build(&ds.x, &ds.labels, &config).unwrap();
        assert_eq!(store.spilled_batches(), n_batches);
        assert_eq!(store.num_shards(), 4);

        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        #[allow(clippy::needless_range_loop)]
                        // i indexes the store, expected and labels in lockstep
                        for i in 0..store.num_batches() {
                            store.visit(i, &mut |b, labels| {
                                assert_eq!(b.to_bytes(), expected[i], "batch {i}");
                                assert_eq!(
                                    labels,
                                    &ds.labels[i * BATCH_ROWS..(i + 1) * BATCH_ROWS]
                                );
                            });
                        }
                    }
                });
            }
        });

        let visits = (THREADS * ROUNDS * n_batches) as u64;
        // `snapshot_stable` because async engine workers may still be
        // retiring lookahead reads when the last visit returns; the
        // visitor-owned counters (requests/hits/misses) are exact either
        // way and `assert_consistent` checks they add up.
        let s = store.stats().snapshot_stable();
        s.assert_consistent();
        if prefetch == 0 {
            // No pipeline: every spilled visit is exactly one read.
            assert_eq!(s.disk_reads, visits);
            assert_eq!(
                s.bytes_read,
                (THREADS * ROUNDS) as u64 * store.spilled_bytes() as u64
            );
            assert_eq!(s.prefetch_hits, 0);
            assert_eq!(s.prefetch_misses, 0);
            assert_eq!(s.spill_requests, 0);
        } else {
            // Pipeline: every spilled visit is accounted as exactly one
            // hit or miss, and consumed exactly one read (or rode along a
            // coalesced ring read); at most a lookahead window of reads
            // stays unconsumed at shutdown.
            assert_eq!(s.spill_requests, visits, "{io:?} {s:?}");
            assert_eq!(s.prefetch_hits + s.prefetch_misses, visits, "{io:?} {s:?}");
            assert!(s.disk_reads + s.coalesced_reads >= visits, "{io:?} {s:?}");
            assert!(
                s.disk_reads + s.coalesced_reads <= visits + (8 * prefetch) as u64,
                "{io:?} {s:?}"
            );
        }
        assert_eq!(s.throttle_ns, 0); // no bandwidth model configured
    }
}

#[test]
fn trainer_converges_over_sharded_store_with_prefetch() {
    use toc_ml::mgd::{MgdConfig, ModelSpec, Trainer};
    use toc_ml::LossKind;
    // `trainer_runs_over_spilled_store` (crates/data/src/store.rs), ported
    // to the sharded store with the prefetch pipeline on: convergence must
    // be unchanged — prefetch only moves IO off the training thread.
    let ds = generate_preset(DatasetPreset::CensusLike, 600, 21);
    let config = StoreConfig::new(Scheme::Toc, 100, 0)
        .with_shards(3)
        .with_prefetch(4);
    let store = ShardedSpillStore::build(&ds.x, &ds.labels, &config).unwrap();
    assert_eq!(store.spilled_batches(), 6);
    let trainer = Trainer::new(MgdConfig {
        epochs: 8,
        lr: 0.3,
        ..Default::default()
    });
    let mut report = trainer.train(&ModelSpec::Linear(LossKind::Logistic), &store, None);
    let eval = Scheme::Den.encode(&ds.x);
    let err = report.model.error_rate(&eval, &ds.labels);
    assert!(err < 0.25, "error {err}");
    let s = store.stats().snapshot();
    // Exact accounting: every spilled visit is one hit or one miss (how
    // the split falls depends on how fast compute is relative to IO, so
    // only the total is asserted), and every visit consumed one read.
    assert_eq!(s.prefetch_hits + s.prefetch_misses, 8 * 6);
    assert!(s.disk_reads >= 8 * 6, "{s:?}");
}
