//! Deterministic scheduler test harness for the adaptive placement
//! planner and the affinity-aware IO/decode scheduling.
//!
//! The store is given shards with *asymmetric* simulated bandwidth —
//! fast, slow, and degrading device profiles, applied either directly
//! ([`StoreConfig::with_shard_profiles`]) or through the fault-injecting
//! engine double ([`FaultPlan::device_profiles`], which adds seeded
//! latency, chunked short reads, EINTR retries and out-of-order
//! completion release on top). The properties under test:
//!
//! * the runtime bandwidth profiler separates fast from slow shards,
//! * the adaptive planner migrates ≥ 80% of the hot batches onto the
//!   fast shards within two epochs — under clean scheduling *and* under
//!   the fault gauntlet,
//! * a degrading device sheds its batches once its EWMA falls,
//! * and no migration ever changes a single byte of any batch.

use std::sync::atomic::Ordering;
use toc_data::store::{
    IoEngineKind, Pinning, SchedulerConfig, ShardPlacement, ShardedSpillStore, StoreConfig,
};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_data::testing::FaultPlan;
use toc_data::DeviceProfile;
use toc_formats::{MatrixBatch, Scheme};
use toc_ml::mgd::BatchProvider;

const FAST_MBPS: f64 = 600.0;
const SLOW_MBPS: f64 = 25.0;

fn dataset() -> (toc_linalg::DenseMatrix, Vec<f64>) {
    let ds = generate_preset(DatasetPreset::CensusLike, 600, 21);
    (ds.x, ds.labels)
}

/// Encode the reference batch bytes the store must keep serving bitwise.
fn expected_bytes(x: &toc_linalg::DenseMatrix, scheme: Scheme, batch_rows: usize) -> Vec<Vec<u8>> {
    let n = x.rows().div_ceil(batch_rows);
    (0..n)
        .map(|i| {
            let end = ((i + 1) * batch_rows).min(x.rows());
            scheme.encode(&x.slice_rows(i * batch_rows, end)).to_bytes()
        })
        .collect()
}

/// One epoch: visit every batch, asserting bit-identical bytes, then
/// fire the epoch-boundary feedback (what the trainer does).
fn epoch(store: &ShardedSpillStore, expected: &[Vec<u8>]) {
    #[allow(clippy::needless_range_loop)] // i indexes store and expected in lockstep
    for i in 0..store.num_batches() {
        store.visit(i, &mut |b, _| {
            assert_eq!(b.to_bytes(), expected[i], "batch {i} bytes changed");
        });
    }
    store.end_epoch();
}

/// Fraction of spilled *bytes* currently assigned to the `fast` shards.
fn fraction_on(store: &ShardedSpillStore, fast: &[usize]) -> f64 {
    let bytes = store.placement_report().shard_bytes;
    let on: u64 = fast.iter().map(|&s| bytes[s]).sum();
    on as f64 / bytes.iter().sum::<u64>().max(1) as f64
}

#[test]
fn adaptive_migrates_hot_batches_to_fast_shards_within_two_epochs() {
    let (x, y) = dataset();
    // Shards 0/1 fast, 2/3 slow: the fast tier holds ~96% of the
    // aggregate bandwidth, so the planner must put ≥ 80% of the hot
    // bytes there once it has measured the asymmetry.
    let config = StoreConfig::new(Scheme::Den, 25, 0)
        .with_shards(4)
        .with_placement(ShardPlacement::Adaptive)
        .with_shard_mbps(vec![FAST_MBPS, FAST_MBPS, SLOW_MBPS, SLOW_MBPS]);
    let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
    assert_eq!(store.spilled_batches(), 24);
    let expected = expected_bytes(&x, Scheme::Den, 25);

    // The initial (pack) layout spreads bytes roughly evenly — nowhere
    // near the 80% target yet.
    let before = fraction_on(&store, &[0, 1]);
    assert!(before < 0.8, "initial layout already skewed: {before}");

    for e in 0..2 {
        epoch(&store, &expected);
        let rep = store.placement_report();
        assert!(rep.rebalances >= 1, "epoch {e}: no rebalance ran: {rep:?}");
    }
    let rep = store.placement_report();
    let after = fraction_on(&store, &[0, 1]);
    assert!(
        after >= 0.8,
        "only {:.0}% of hot bytes on fast shards after 2 epochs: {rep:?}",
        after * 100.0
    );
    assert!(rep.migrated_batches >= 1, "{rep:?}");
    // The profiler really measured the asymmetry it acted on.
    assert!(
        rep.shard_ewma_mbps[0] > 2.0 * rep.shard_ewma_mbps[2],
        "profiler failed to separate fast from slow: {rep:?}"
    );
    // One more epoch over the settled layout: everything still serves
    // bit-identically and the placement *stays* on the fast tier. (Moves
    // between the two equally-fast shards can still happen when their
    // EWMAs wander apart by more than the hysteresis — harmless churn,
    // bounded per pass by the spilled count — so the invariant asserted
    // here is the fraction, not zero migrations.)
    epoch(&store, &expected);
    let settled = store.placement_report();
    assert!(fraction_on(&store, &[0, 1]) >= 0.8, "{settled:?}");
    assert!(
        settled.migrated_batches <= rep.migrated_batches + store.spilled_batches() as u64,
        "{settled:?}"
    );
    store.stats().snapshot_stable().assert_consistent();
}

#[test]
fn adaptive_migration_survives_the_fault_gauntlet() {
    let (x, y) = dataset();
    // Same asymmetry, but the profiles ride the FaultyIo double: seeded
    // latency, chunked short reads, EINTR retry spins and out-of-order
    // completion release all stand between the profiler and the truth.
    // Chunking splits every request into 2–4 partial reads, so the
    // per-observation payload shrinks and real syscall overhead eats into
    // the signal — Den batches (4.2 KB) over a 10 MB/s slow tier keep
    // the simulated delay dominant in both debug and release builds.
    let slow = 10.0;
    let plan = FaultPlan {
        seed: 0x5EED_CAFE,
        max_latency_us: 150,
        chunked_reads: true,
        eintr_per_mille: 300,
        reorder_window: 3,
        device_profiles: vec![
            DeviceProfile::stable(FAST_MBPS),
            DeviceProfile::stable(FAST_MBPS),
            DeviceProfile::stable(slow),
            DeviceProfile::stable(slow),
        ],
        ..FaultPlan::default()
    };
    let fault_stats = plan.stats.clone();
    let config = StoreConfig::new(Scheme::Den, 25, 0)
        .with_shards(4)
        .with_prefetch(3)
        .with_placement(ShardPlacement::Adaptive)
        .with_fault_plan(plan);
    let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
    assert_eq!(store.spilled_batches(), 24);
    let expected = expected_bytes(&x, Scheme::Den, 25);

    for _ in 0..2 {
        epoch(&store, &expected);
    }
    let rep = store.placement_report();
    let after = fraction_on(&store, &[0, 1]);
    assert!(
        after >= 0.8,
        "under faults only {:.0}% of hot bytes on fast shards: {rep:?}",
        after * 100.0
    );
    // A full extra epoch after migration: bytes still bit-identical
    // through the faulty pipeline, and the accounting invariant holds.
    epoch(&store, &expected);
    let s = store.stats().snapshot_stable();
    s.assert_consistent();
    assert_eq!(s.spill_requests, 3 * 24);
    // The gauntlet actually fired.
    assert!(fault_stats.chunked_requests.load(Ordering::Relaxed) >= 1);
    assert!(fault_stats.delayed_us.load(Ordering::Relaxed) >= 1);
}

#[test]
fn degrading_shard_sheds_batches_as_its_ewma_falls() {
    let (x, y) = dataset();
    // Shard 0 starts fastest but loses 25% of its remaining bandwidth on
    // every read; shard 1 is stable and modest. After a couple of epochs
    // the planner must reverse its initial preference and move batches
    // *off* the degrading device.
    let config = StoreConfig::new(Scheme::Den, 25, 0)
        .with_shards(2)
        .with_placement(ShardPlacement::Adaptive)
        .with_shard_profiles(vec![
            DeviceProfile::degrading(800.0, 0.25),
            DeviceProfile::stable(120.0),
        ]);
    let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
    let expected = expected_bytes(&x, Scheme::Den, 25);

    // Epoch 1 measures shard 0 while it is still fast-ish; by the end of
    // epoch 2 twelve-plus reads have decayed it far below shard 1
    // (0.75^12 ≈ 0.03 of 800 ≈ 25 MB/s).
    for _ in 0..3 {
        epoch(&store, &expected);
    }
    let rep = store.placement_report();
    assert!(
        rep.shard_ewma_mbps[0] < rep.shard_ewma_mbps[1],
        "profiler never noticed the degradation: {rep:?}"
    );
    assert!(
        rep.shard_bytes[0] < rep.shard_bytes[1],
        "planner kept hot bytes on the degrading shard: {rep:?}"
    );
    assert!(rep.migrated_batches >= 1, "{rep:?}");
    // Bytes still intact after shedding.
    epoch(&store, &expected);
}

#[test]
fn pinned_scheduler_serves_adaptive_store_bit_identically() {
    let (x, y) = dataset();
    // Full stack: adaptive placement + asymmetric shards + ring engine
    // with an explicit pin map and striped decode lanes. Everything must
    // still be bitwise right after two epochs of migration.
    let config = StoreConfig::new(Scheme::Toc, 25, 0)
        .with_shards(4)
        .with_prefetch(4)
        .with_io(IoEngineKind::Ring)
        .with_placement(ShardPlacement::Adaptive)
        .with_shard_mbps(vec![FAST_MBPS, FAST_MBPS, SLOW_MBPS, SLOW_MBPS])
        .with_scheduler(SchedulerConfig {
            io_threads: 2,
            decode_workers: 3,
            pinning: Pinning::Fixed(vec![0, 1, 0, 1]),
        });
    let store = ShardedSpillStore::build(&x, &y, &config).unwrap();
    let expected = expected_bytes(&x, Scheme::Toc, 25);
    for _ in 0..3 {
        epoch(&store, &expected);
    }
    let rep = store.placement_report();
    assert_eq!(rep.pinning, Pinning::Fixed(vec![0, 1, 0, 1]));
    assert_eq!(rep.io_threads, 2);
    assert_eq!(rep.decode_workers, 3);
    assert!(fraction_on(&store, &[0, 1]) >= 0.8, "{rep:?}");
    let s = store.stats().snapshot_stable();
    s.assert_consistent();
    assert!(s.submitted >= 1, "ring engine never used: {s:?}");
}
