//! The seekable `.tocz` v2 read path: random access must be cheap
//! (positional reads bounded by the touched segment, asserted via
//! [`IoStats`]), projected decodes must match the full decode bit for
//! bit, and streaming a container into a [`ShardedSpillStore`] must
//! train identically to building from the materialized matrix.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use toc_data::store::{ShardedSpillStore, StoreConfig};
use toc_data::SeekableContainer;
use toc_formats::container::Container;
use toc_formats::{EncodeOptions, Scheme};
use toc_linalg::DenseMatrix;
use toc_ml::mgd::{BatchProvider, MgdConfig, ModelSpec, Trainer};
use toc_ml::LossKind;

static NEXT_ID: AtomicU32 = AtomicU32::new(0);

/// Unique temp path that removes itself on drop (pid alone is not
/// unique within one test binary).
struct TempPath(PathBuf);

impl TempPath {
    fn new(label: &str) -> Self {
        Self(std::env::temp_dir().join(format!(
            "toc-seek-{label}-{}-{}.tocz",
            std::process::id(),
            NEXT_ID.fetch_add(1, Ordering::Relaxed),
        )))
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// Deterministic pseudo-random matrix drawn from a small value pool.
fn test_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let pool = [0.0, 0.5, 1.5, -2.0, 3.25, 0.0];
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| pool[(next() % pool.len() as u64) as usize])
        .collect();
    DenseMatrix::from_vec(rows, cols, data)
}

fn write_container(m: &DenseMatrix, scheme: Scheme, seg_rows: usize, label: &str) -> TempPath {
    let p = TempPath::new(label);
    Container::encode_with(m, scheme, seg_rows, &EncodeOptions::default())
        .write(&p.0)
        .unwrap();
    p
}

/// The random-access acceptance gate: decoding one segment of a
/// 64-segment container — including opening the file (header,
/// postscript, footer) — must read at most 2× that segment's bytes.
#[test]
fn one_segment_read_is_bounded_by_segment_bytes() {
    let m = test_matrix(64 * 64, 16, 7);
    let p = write_container(&m, Scheme::Den, 64, "gate");

    let sc = SeekableContainer::open(&p.0).unwrap();
    assert_eq!(sc.num_segments(), 64);
    let leaf = &sc.footer().leaves()[37];
    let seg_bytes = leaf.end - leaf.begin;

    let part = sc
        .decode_rows(leaf.row_start as usize, leaf.row_end as usize)
        .unwrap();
    assert_eq!(part.rows(), 64);

    let snap = sc.stats().snapshot();
    assert!(
        snap.bytes_read <= 2 * seg_bytes,
        "read {} bytes to decode a {seg_bytes}-byte segment (gate: 2x)",
        snap.bytes_read
    );
    // Open is exactly 3 positional reads; the decode adds 1 per segment.
    assert_eq!(snap.disk_reads, 4);
}

/// Zone-map pruning gate: a selective row-range query over a 64-segment
/// container must skip at least 90% of the segments.
#[test]
fn selective_row_query_prunes_segments() {
    let m = test_matrix(64 * 32, 6, 11);
    let p = write_container(&m, Scheme::Toc, 32, "prune");
    let sc = SeekableContainer::open(&p.0).unwrap();
    let picked = sc.footer().segments_overlapping_rows(40, 90); // 2 of 64
    assert!(
        picked.len() * 10 <= sc.num_segments(),
        "selective query touched {} of {} segments",
        picked.len(),
        sc.num_segments()
    );
}

/// Projected and parallel decodes agree with the in-memory container
/// decode exactly, across schemes and awkward (segment-straddling) row
/// ranges.
#[test]
fn seek_decode_matches_in_memory_decode() {
    for scheme in [Scheme::Toc, Scheme::Den, Scheme::Csr, Scheme::Cla] {
        let m = test_matrix(333, 9, 5);
        let p = write_container(&m, scheme, 37, "eq");
        let sc = SeekableContainer::open(&p.0).unwrap();
        assert_eq!(sc.total_rows(), 333);
        assert_eq!(sc.cols(), 9);

        let full = sc.decode_rows(0, 333).unwrap();
        assert_eq!(full, m, "{scheme:?}: full seek decode drifted");

        for (r0, r1) in [(0, 1), (36, 38), (100, 300), (332, 333), (50, 50)] {
            let part = sc.decode_rows(r0, r1).unwrap();
            let par = sc.decode_rows_parallel(r0, r1, 4).unwrap();
            assert_eq!(part.rows(), r1 - r0);
            assert_eq!(part.data(), par.data(), "{scheme:?}: parallel drifted");
            for r in r0..r1 {
                assert_eq!(part.row(r - r0), m.row(r), "{scheme:?}: row {r}");
            }
        }
    }
}

/// Streaming build ([`ShardedSpillStore::build_from_container`]) must
/// produce the same batch boundaries as [`ShardedSpillStore::build`] on
/// the decoded matrix — so training on either store is bit-identical.
#[test]
fn container_build_trains_bit_identical_to_matrix_build() {
    // Features plus a ±1 label in the last column, segment size chosen to
    // straddle the store's batch_rows so the re-chunking carry-over path
    // is exercised.
    let rows = 420;
    let x = test_matrix(rows, 8, 13);
    let labels: Vec<f64> = (0..rows)
        .map(|r| if x.row(r)[0] > 0.0 { 1.0 } else { -1.0 })
        .collect();
    let mut joined = Vec::with_capacity(rows * 9);
    for (r, &label) in labels.iter().enumerate() {
        joined.extend_from_slice(x.row(r));
        joined.push(label);
    }
    let full = DenseMatrix::from_vec(rows, 9, joined);
    let p = write_container(&full, Scheme::Toc, 50, "train");

    let train = |store: &ShardedSpillStore| {
        let trainer = Trainer::new(MgdConfig {
            epochs: 4,
            lr: 0.2,
            shuffle_batches: true,
            ..Default::default()
        });
        trainer
            .train(&ModelSpec::Linear(LossKind::Logistic), store, None)
            .model
            .weights()
    };

    for config in [
        StoreConfig::new(Scheme::Toc, 60, usize::MAX), // all in memory
        StoreConfig::new(Scheme::Toc, 60, 0).with_shards(2), // all spilled
    ] {
        let a = ShardedSpillStore::build(&x, &labels, &config).unwrap();
        let b = ShardedSpillStore::build_from_container(&p.0, &config).unwrap();
        assert_eq!(a.num_batches(), b.num_batches());
        assert_eq!(
            train(&a),
            train(&b),
            "container-built store trained different weights"
        );
    }
}

/// v1 containers are not seekable and must be refused with a pointed
/// message, not mis-parsed.
#[test]
fn v1_container_is_refused_with_guidance() {
    let m = test_matrix(50, 4, 3);
    let p = TempPath::new("v1");
    Container::encode_with(&m, Scheme::Den, 16, &EncodeOptions::default())
        .write_v1(&p.0)
        .unwrap();
    let err = match SeekableContainer::open(&p.0) {
        Ok(_) => panic!("v1 container must not open as seekable"),
        Err(e) => e,
    };
    assert!(err.contains("v2"), "error should point at v2: {err}");
}
