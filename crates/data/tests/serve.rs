//! Multi-tenant serve layer: cache eviction properties, the IoStats
//! accounting the shared cache must keep honest, QoS share semantics,
//! and admission control.

use std::sync::Arc;

use proptest::prelude::*;
use toc_data::serve::{BatchCache, JobServer, JobSpec, ServeConfig, TenantProvider};
use toc_data::store::{ShardedSpillStore, StoreConfig};
use toc_data::synth::{generate_preset, DatasetPreset};
use toc_formats::{MatrixBatch, Scheme};
use toc_ml::mgd::{BatchProvider, MgdConfig, ModelSpec};
use toc_ml::LossKind;

/// Body of `prop_cache_never_exceeds_budget` (out-of-line: `proptest!`
/// expands bodies recursively and long ones blow the recursion limit).
fn check_budget_invariant(budget: usize, ops: Vec<(usize, usize, u32, bool)>) {
    let cache = BatchCache::new(budget);
    let mut inserted: std::collections::HashMap<usize, Vec<u8>> = std::collections::HashMap::new();
    for (id, size, heat, is_insert) in ops {
        let heat = heat as f64;
        if is_insert {
            let bytes: Vec<u8> = (0..size).map(|b| (b ^ id) as u8).collect();
            // Inserting over a resident id keeps the resident copy (spill
            // bytes are immutable per id), so only a fresh insert updates
            // the mirror.
            let was_resident = cache.contains(id);
            if cache.insert(id, bytes.clone(), heat) && !was_resident {
                inserted.insert(id, bytes);
            }
        } else if let Some(got) = cache.get(id, heat) {
            prop_assert_eq!(
                got.as_slice(),
                inserted[&id].as_slice(),
                "hit returned different bytes than were inserted"
            );
        }
        prop_assert!(
            cache.bytes() <= budget,
            "pool holds {} bytes over budget {budget}",
            cache.bytes()
        );
    }
}

/// Body of `prop_hottest_batches_survive`.
fn check_hottest_survive(k: usize, raw: Vec<u32>, seed: u64) {
    const SIZE: usize = 64;
    let cache = BatchCache::new(k * SIZE);
    // Distinct heats (ties make top-k ambiguous), deterministically
    // shuffled.
    let mut heats: Vec<u32> = raw;
    heats.sort_unstable();
    heats.dedup();
    let mut order = heats.clone();
    let mut state = seed;
    for i in (1..order.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.swap(i, (state % (i as u64 + 1)) as usize);
    }
    for (id, &heat) in order.iter().enumerate() {
        cache.insert(id, vec![0u8; SIZE], heat as f64);
    }
    let survivors: Vec<u32> = order
        .iter()
        .enumerate()
        .filter(|(id, _)| cache.contains(*id))
        .map(|(_, &h)| h)
        .collect();
    let top_k: std::collections::HashSet<u32> = heats.iter().rev().take(k).copied().collect();
    prop_assert_eq!(survivors.len(), heats.len().min(k));
    for h in &survivors {
        prop_assert!(
            top_k.contains(h),
            "heat {h} survived but is not among the {k} hottest of {:?}",
            heats
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any interleaving of inserts and gets the pool never exceeds
    /// its byte budget, its byte ledger matches the resident entries, and
    /// a hit always returns exactly the bytes that were inserted.
    #[test]
    fn prop_cache_never_exceeds_budget(
        budget in 1usize..4096,
        ops in prop::collection::vec(
            (0usize..32, 1usize..1024, 0u32..1000, any::<bool>()),
            1..80,
        ),
    ) {
        check_budget_invariant(budget, ops);
    }

    /// With equal-size entries and distinct heats, the cache behaves as a
    /// top-k selection: whatever order the inserts arrive in, exactly the
    /// k hottest entries survive.
    #[test]
    fn prop_hottest_batches_survive(
        k in 1usize..8,
        heats in prop::collection::vec(0u32..10_000, 1..24),
        seed in 0u64..1000,
    ) {
        check_hottest_survive(k, heats, seed);
    }
}

/// Pins the tenant-side IoStats accounting: a cold pass over an
/// all-spilled store misses on every visit (each miss = one physical
/// read), a warm pass hits on every visit (no reads at all), and neither
/// path touches the prefetch-pipeline counters. `assert_consistent`
/// holds throughout — a cache hit that performed a read, or a miss that
/// didn't, would break it.
#[test]
fn tenant_cache_accounting_pins_io_invariants() {
    let ds = generate_preset(DatasetPreset::CensusLike, 480, 5);
    let config = StoreConfig::new(Scheme::Toc, 60, 0).with_shards(2);
    let store = Arc::new(ShardedSpillStore::build(&ds.x, &ds.labels, &config).unwrap());
    let spilled = store.spilled_batches() as u64;
    assert_eq!(spilled, 8);
    let cache = Arc::new(BatchCache::new(usize::MAX));
    let tenant = TenantProvider::new(Arc::clone(&store), Arc::clone(&cache), 1.0);

    let mut rows = 0usize;
    for idx in 0..tenant.num_batches() {
        tenant.visit(idx, &mut |b, y| {
            rows += y.len();
            assert_eq!(b.rows(), y.len());
        });
    }
    let cold = store.stats().snapshot_stable();
    cold.assert_consistent();
    assert_eq!(rows, 480);
    assert_eq!(cold.cache_misses, spilled, "cold pass misses every batch");
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.disk_reads, spilled, "each miss pays exactly one read");
    assert_eq!(
        cold.spill_requests, 0,
        "tenants bypass the prefetch pipeline"
    );
    assert_eq!(cold.prefetch_hits + cold.prefetch_misses, 0);

    for idx in 0..tenant.num_batches() {
        tenant.visit(idx, &mut |_, _| {});
    }
    let warm = store.stats().snapshot_stable();
    warm.assert_consistent();
    assert_eq!(warm.cache_hits, spilled, "warm pass hits every batch");
    assert_eq!(warm.cache_misses, spilled, "no new misses");
    assert_eq!(warm.disk_reads, spilled, "hits cost no physical reads");
    assert_eq!(tenant.cache_hits(), spilled);
    assert_eq!(tenant.cache_misses(), spilled);
    assert_eq!(cache.len() as u64, spilled);
}

/// QoS shares are real: with the cache disabled and a slow simulated
/// device, a share-1 tenant racing a share-4 tenant must spend more time
/// throttled — its allowance is a quarter of its rival's.
#[test]
fn qos_low_share_yields_bandwidth() {
    let ds = generate_preset(DatasetPreset::CensusLike, 1200, 5);
    let config = StoreConfig::new(Scheme::Den, 100, 0)
        .with_shards(2)
        .with_disk_mbps(25.0);
    let store = Arc::new(ShardedSpillStore::build(&ds.x, &ds.labels, &config).unwrap());
    let server = JobServer::new(
        Arc::clone(&store),
        ServeConfig {
            max_concurrent: 2,
            cache_bytes: 0, // every visit is a miss: maximal QoS pressure
        },
    );
    let job = |name: &str, share: f64| {
        JobSpec::new(
            name,
            ModelSpec::Linear(LossKind::Logistic),
            MgdConfig {
                epochs: 5,
                lr: 0.1,
                seed: 1,
                record_curve: false,
                shuffle_batches: true,
            },
        )
        .with_share(share)
    };
    let outcomes = server.run(vec![job("low", 1.0), job("high", 4.0)]);
    store.stats().snapshot_stable().assert_consistent();
    let (low, high) = (&outcomes[0], &outcomes[1]);
    assert!(
        low.qos_wait > high.qos_wait,
        "share-1 tenant waited {:?}, share-4 tenant {:?}",
        low.qos_wait,
        high.qos_wait
    );
    assert!(low.qos_wait.as_nanos() > 0, "low share never throttled");
    // Same seed, shared byte-identical batches: QoS changes pacing only.
    assert_eq!(low.weights, high.weights);
}

/// Admission control: with `max_concurrent = 1`, four jobs run strictly
/// one at a time and the latecomers observably queue.
#[test]
fn admission_gates_concurrency() {
    let ds = generate_preset(DatasetPreset::CensusLike, 300, 5);
    let config = StoreConfig::new(Scheme::Toc, 60, 0).with_shards(2);
    let store = Arc::new(ShardedSpillStore::build(&ds.x, &ds.labels, &config).unwrap());
    let server = JobServer::new(
        Arc::clone(&store),
        ServeConfig {
            max_concurrent: 1,
            cache_bytes: store.spilled_bytes(),
        },
    );
    let jobs: Vec<JobSpec> = (0..4)
        .map(|i| {
            JobSpec::new(
                format!("q{i}"),
                ModelSpec::Linear(LossKind::Logistic),
                MgdConfig {
                    epochs: 2,
                    lr: 0.1,
                    seed: i,
                    record_curve: false,
                    shuffle_batches: true,
                },
            )
        })
        .collect();
    let outcomes = server.run(jobs);
    assert_eq!(server.peak_concurrency(), 1);
    assert_eq!(outcomes.len(), 4);
    let queued: u128 = outcomes.iter().map(|o| o.queue_wait.as_nanos()).sum();
    assert!(queued > 0, "with a gate of 1, someone must have waited");
}

/// The data-parallel NN path through a tenant provider is deterministic
/// under contention: an NN job racing three linear jobs produces the same
/// weights as the same NN job running alone.
#[test]
fn nn_parallel_job_is_stable_under_contention() {
    let ds = generate_preset(DatasetPreset::CensusLike, 480, 5);
    let config = || StoreConfig::new(Scheme::Toc, 60, 0).with_shards(2);
    let nn_job = || {
        JobSpec::new(
            "nn",
            ModelSpec::NeuralNet {
                hidden: vec![6],
                outputs: 1,
            },
            MgdConfig {
                epochs: 3,
                lr: 0.05,
                seed: 9,
                record_curve: false,
                shuffle_batches: false,
            },
        )
        .with_nn_workers(2)
    };
    let lin_job = |i: u64| {
        JobSpec::new(
            format!("lin{i}"),
            ModelSpec::Linear(LossKind::Logistic),
            MgdConfig {
                epochs: 3,
                lr: 0.2,
                seed: i,
                record_curve: false,
                shuffle_batches: true,
            },
        )
    };

    let solo_store = Arc::new(ShardedSpillStore::build(&ds.x, &ds.labels, &config()).unwrap());
    let solo = JobServer::new(solo_store, ServeConfig::default()).run(vec![nn_job()]);

    let store = Arc::new(ShardedSpillStore::build(&ds.x, &ds.labels, &config()).unwrap());
    let server = JobServer::new(
        Arc::clone(&store),
        ServeConfig {
            max_concurrent: 4,
            cache_bytes: store.spilled_bytes() / 2,
        },
    );
    let outcomes = server.run(vec![nn_job(), lin_job(1), lin_job(2), lin_job(3)]);
    store.stats().snapshot_stable().assert_consistent();
    assert_eq!(
        outcomes[0].weights, solo[0].weights,
        "NN job's weights changed under multi-tenant contention"
    );
}
