//! Test support: a fault-injecting [`SpillIo`] engine.
//!
//! [`FaultyIo`] implements the same submission/completion contract as the
//! production engines, but serves every request through a gauntlet of
//! injectable faults — per-request latency, chunked short reads,
//! `EINTR`-style retry spins, and out-of-order completion release — all
//! driven by a seeded RNG. The point is adversarial scheduling: the
//! prefetch pipeline and the trainer must produce **bit-identical
//! batches under any interleaving** the double can produce, which the
//! fault-injection suite (`crates/data/tests/fault_injection.rs`)
//! asserts with proptest over the fault space.
//!
//! Wire it in through [`crate::store::StoreConfig::with_fault_plan`]; the
//! plan overrides the configured engine kind. This module is compiled
//! into the library (not `#[cfg(test)]`) so integration tests and other
//! crates' suites can drive it, but nothing in the production read paths
//! references it.

use crate::io::{
    lock, Completion, CompletionQueue, DeviceProfile, IoShards, SpillIo, SpillRequest, Submission,
    SubmissionQueue, Ticket,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Shared observability counters for a [`FaultPlan`]: tests keep a clone
/// of the plan and assert the faults actually fired.
#[derive(Clone, Debug, Default)]
pub struct FaultStats {
    /// `EINTR`-style retry spins taken before a chunk read.
    pub eintr_retries: Arc<AtomicU64>,
    /// Requests served in more than one chunk (simulated short reads).
    pub chunked_requests: Arc<AtomicU64>,
    /// Sealed-segment appends landed in more than one partial `pwrite`
    /// (simulated short writes on the ingest path).
    pub chunked_writes: Arc<AtomicU64>,
    /// Completions released out of arrival order.
    pub reordered: Arc<AtomicU64>,
    /// Total injected latency, in microseconds.
    pub delayed_us: Arc<AtomicU64>,
}

/// Fault schedule for [`FaultyIo`]. All faults are *benign* — requests
/// still complete with the right bytes — so any output difference they
/// provoke is a real pipeline bug, not an artifact of the injection.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// RNG seed for the fault schedule.
    pub seed: u64,
    /// Uniform per-request latency in `[0, max_latency_us]` µs.
    pub max_latency_us: u64,
    /// Serve each request in 2–4 partial reads at sub-offsets (a short
    /// read followed by continuation reads) instead of one `pread`.
    pub chunked_reads: bool,
    /// Land each sealed-segment append in 2–4 partial `pwrite`s at
    /// bumped offsets (short writes) instead of one `write_all_at`, with
    /// the same latency/EINTR gauntlet as the read path. Only the
    /// streaming-ingest append path consults this; spill-at-build writes
    /// are unaffected.
    pub chunked_writes: bool,
    /// Per-chunk probability (‰) of an `EINTR`-style retry spin before
    /// the read proceeds.
    pub eintr_per_mille: u32,
    /// Hold up to this many finished completions in a pen and release
    /// them in seeded-random order (0 = complete in finish order). The
    /// pen always drains when the engine goes idle, so a held completion
    /// can never deadlock a waiting consumer.
    pub reorder_window: usize,
    /// IO worker threads (clamped to 1..=4).
    pub workers: usize,
    /// Per-shard asymmetric bandwidth profiles (cycled when shorter than
    /// the shard count; empty = the store's uniform model). This is how
    /// the scheduler harness gives the store fast, slow, and degrading
    /// devices to discover: the profiles are applied to the shard devices
    /// at store build, so *every* read path — faulty or not — simulates
    /// them, and the adaptive planner has a real signal to migrate by.
    pub device_profiles: Vec<DeviceProfile>,
    /// Observability counters (shared through clones of the plan).
    pub stats: FaultStats,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0xF0CA,
            max_latency_us: 200,
            chunked_reads: true,
            chunked_writes: true,
            eintr_per_mille: 250,
            reorder_window: 3,
            workers: 2,
            device_profiles: Vec::new(),
            stats: FaultStats::default(),
        }
    }
}

impl FaultPlan {
    /// A plan that differs from the default only in seed — handy for
    /// proptest sweeps over schedules.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// IO worker threads [`FaultyIo`] will actually start (the `workers`
    /// knob after clamping) — what `PlacementReport::io_threads` reports
    /// when the plan overrides the configured engine.
    pub fn resolved_workers(&self) -> usize {
        self.workers.clamp(1, 4)
    }

    /// Apply the plan's *write* faults to one sealed-segment append:
    /// injected latency, then the buffer lands in 2–4 partial `pwrite`s
    /// at bumped offsets with EINTR-style retry spins between chunks.
    /// The bytes on disk are always exactly `bytes` at `offset`, so a
    /// sealed segment that later fails to decode is a real append-path
    /// bug, not an artifact of the injection. Deterministic per `seq`
    /// (the store-wide append sequence number), independent of thread
    /// timing.
    pub(crate) fn faulty_append(
        &self,
        io: &IoShards,
        shard: usize,
        offset: u64,
        bytes: &[u8],
        seq: u64,
    ) -> std::io::Result<()> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ seq.wrapping_mul(0x517C_C1B7_2722_0A95));
        if self.max_latency_us > 0 {
            let us = rng.gen_range(0..=self.max_latency_us);
            if us > 0 {
                self.stats.delayed_us.fetch_add(us, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(us));
            }
        }
        let dev = &io.devices[shard];
        if !self.chunked_writes || bytes.len() < 2 {
            return dev.file.write_all_at(bytes, offset);
        }
        self.stats.chunked_writes.fetch_add(1, Ordering::Relaxed);
        let n_chunks = rng.gen_range(2..=4usize.min(bytes.len()));
        let chunk = bytes.len().div_ceil(n_chunks);
        let mut done = 0usize;
        while done < bytes.len() {
            let take = chunk.min(bytes.len() - done);
            let mut spins = 0;
            while spins < 4 && rng.gen_range(0..1000u32) < self.eintr_per_mille {
                self.stats.eintr_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
                spins += 1;
            }
            dev.file
                .write_all_at(&bytes[done..done + take], offset + done as u64)?;
            done += take;
        }
        Ok(())
    }
}

struct FaultShared {
    io: Arc<IoShards>,
    plan: FaultPlan,
    /// The production submission plumbing ([`SubmissionQueue`]) — shared
    /// with `PoolIo`, so the double's ticket/accounting contract cannot
    /// drift from the real engines'.
    subq: SubmissionQueue,
    /// Finished-but-unreleased completions, in arrival order.
    pen: Mutex<Vec<Completion>>,
    comp: CompletionQueue,
}

/// The fault-injecting [`SpillIo`] double. See the module docs.
pub struct FaultyIo {
    shared: Arc<FaultShared>,
    threads: Vec<JoinHandle<()>>,
}

impl FaultyIo {
    pub(crate) fn start(io: Arc<IoShards>, plan: FaultPlan) -> Self {
        let workers = plan.resolved_workers();
        let shared = Arc::new(FaultShared {
            io,
            plan,
            subq: SubmissionQueue::new(),
            pen: Mutex::new(Vec::new()),
            comp: CompletionQueue::new(),
        });
        let threads = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker(&shared, w as u64))
            })
            .collect();
        Self { shared, threads }
    }

    /// Release pen members in seeded-random order until at most
    /// `keep` remain.
    fn flush_pen(shared: &FaultShared, rng: &mut StdRng, keep: usize) {
        let mut pen = lock(&shared.pen);
        while pen.len() > keep {
            let i = rng.gen_range(0..pen.len());
            if i != 0 {
                shared.plan.stats.reordered.fetch_add(1, Ordering::Relaxed);
            }
            let c = pen.remove(i);
            shared.comp.push(c);
        }
    }

    /// Serve one request with the plan's faults: latency, chunked partial
    /// reads, EINTR-style retry spins. The bytes delivered are always
    /// exactly the requested range.
    fn faulty_read(
        shared: &FaultShared,
        rng: &mut StdRng,
        req: &SpillRequest,
        buf: &mut Vec<u8>,
    ) -> std::io::Result<()> {
        let plan = &shared.plan;
        if plan.max_latency_us > 0 {
            let us = rng.gen_range(0..=plan.max_latency_us);
            if us > 0 {
                plan.stats.delayed_us.fetch_add(us, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(us));
            }
        }
        let io = &shared.io;
        if !plan.chunked_reads || req.len < 2 {
            return io.read_range(req.shard, req.offset, req.len, buf);
        }
        // A short read followed by continuation reads at bumped offsets:
        // the consumer contract (full buffer on Ok) is preserved, the
        // offset arithmetic is what gets exercised.
        buf.clear();
        buf.resize(req.len, 0);
        let n_chunks = rng.gen_range(2..=4usize.min(req.len));
        plan.stats.chunked_requests.fetch_add(1, Ordering::Relaxed);
        let chunk = req.len.div_ceil(n_chunks);
        let dev = &io.devices[req.shard];
        let mut done = 0usize;
        while done < req.len {
            let take = chunk.min(req.len - done);
            // EINTR-style interruption: spin-retry before the chunk lands.
            let mut spins = 0;
            while spins < 4 && rng.gen_range(0..1000u32) < plan.eintr_per_mille {
                plan.stats.eintr_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
                spins += 1;
            }
            let t0 = std::time::Instant::now();
            dev.file
                .read_exact_at(&mut buf[done..done + take], req.offset + done as u64)?;
            // Shared accounting with `IoShards::read_range`: each chunk
            // charges the (possibly asymmetric/degrading) device model,
            // the stats counters, and the bandwidth profiler — the
            // adaptive planner must keep learning under faulty
            // scheduling too.
            io.account_read(req.shard, take, t0);
            done += take;
        }
        Ok(())
    }

    fn worker(shared: &FaultShared, widx: u64) {
        let mut rng =
            StdRng::seed_from_u64(shared.plan.seed.wrapping_add(widx.wrapping_mul(0x9E37)));
        loop {
            let sub = loop {
                if shared.comp.is_shut_down() {
                    Self::flush_pen(shared, &mut rng, 0);
                    return;
                }
                if let Some(s) = shared.subq.try_pop() {
                    break s;
                }
                // Idle: drain the reorder pen completely so a held
                // completion can never starve a waiting consumer, then
                // sleep briefly for new work.
                Self::flush_pen(shared, &mut rng, 0);
                shared.subq.wait_briefly(Duration::from_micros(500));
            };
            let Submission {
                ticket,
                req,
                mut buf,
                at,
            } = sub;
            let result = Self::faulty_read(shared, &mut rng, &req, &mut buf);
            shared.io.stats.record_complete(at);
            lock(&shared.pen).push(Completion {
                ticket,
                shard: req.shard,
                buf,
                result,
            });
            Self::flush_pen(shared, &mut rng, shared.plan.reorder_window);
        }
    }
}

impl SpillIo for FaultyIo {
    fn submit(&self, req: SpillRequest, buf: Vec<u8>) -> Ticket {
        self.shared.subq.submit(&self.shared.io, req, buf)
    }

    fn complete(&self) -> Option<Completion> {
        self.shared.comp.pop()
    }

    fn shutdown(&self) {
        self.shared.comp.shut_down();
        self.shared.subq.notify_all();
    }

    fn in_flight(&self) -> usize {
        self.shared.io.stats.in_flight.load(Ordering::Relaxed) as usize
    }
}

impl Drop for FaultyIo {
    fn drop(&mut self) {
        self.shutdown();
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}
