//! Streaming numeric CSV: offset-tracked row iteration, resumable from
//! a byte offset, and a tail-follow mode over a growing file.
//!
//! Deliberately small: comma-separated `f64` cells, optional header line
//! (auto-detected: a first line with any non-numeric field is treated as
//! a header), one matrix row per line. The reader exists in this crate —
//! not the CLI — because the ingestion pipeline needs two properties a
//! plain line loop cannot give it:
//!
//! * **Byte offsets per row.** A checkpoint sidecar records the source
//!   offset of the last *sealed* chunk so `toc ingest --resume` can seek
//!   straight back to it and re-read only the rows that were staged but
//!   not yet durable ([`CsvStream::offset`], [`CsvStream::open_at`]).
//! * **Tail-follow.** `toc train --follow` consumes a log that another
//!   process is still appending: poll for growth, never parse a torn
//!   (unterminated) final line until the stream actually ends, re-open
//!   from the top when the file is truncated under us, and keep
//!   EOF-versus-error structurally distinct ([`follow_rows`],
//!   [`CsvError`]).

use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// `(rows, cols, header)` summary returned by the streaming readers.
pub type StreamSummary = (usize, usize, Option<Vec<String>>);

/// Per-row callback: `(row_index, fields)`; an `Err` aborts the stream.
pub type RowSink<'a> = &'a mut dyn FnMut(usize, &[f64]) -> Result<(), String>;

/// Structured CSV stream error: IO failures are distinct from parse
/// failures and from sink aborts, so a follower can tell "the file went
/// away" from "the file contains garbage" (EOF itself is not an error —
/// the streaming APIs report it as `Ok(None)` / a normal return).
#[derive(Debug)]
pub enum CsvError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// A line was structurally bad: ragged width, unparsable number,
    /// or an empty stream.
    Parse(String),
    /// The per-row sink aborted the stream.
    Sink(String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "{e}"),
            CsvError::Parse(m) | CsvError::Sink(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// An incremental CSV reader over one open file, tracking the byte
/// offset of everything consumed so far. [`CsvStream::next_row`] only
/// commits newline-terminated lines; a trailing unterminated line is
/// carried across calls (the torn tail of a file that is still being
/// appended) until [`CsvStream::finish_partial`] flushes it at true end
/// of stream.
pub struct CsvStream {
    reader: BufReader<std::fs::File>,
    /// Byte offset one past the last *committed* line (header or row).
    offset: u64,
    /// Carried bytes of an unterminated final line, not yet committed.
    carry: String,
    cols: usize,
    header: Option<Vec<String>>,
    rows: usize,
    /// Header auto-detection is pending (fresh stream, nothing read).
    at_start: bool,
    row_buf: Vec<f64>,
}

impl CsvStream {
    /// Open a fresh stream at the top of the file (header auto-detect).
    pub fn open(path: &Path) -> Result<Self, CsvError> {
        Self::open_at(path, 0, 0)
    }

    /// Open positioned at `offset` with a known column count — the
    /// resume path: the checkpoint already consumed the header and
    /// `offset` bytes of rows. With `offset == 0` the stream is fresh
    /// and `cols` (if nonzero) is enforced on the first data line.
    pub fn open_at(path: &Path, offset: u64, cols: usize) -> Result<Self, CsvError> {
        let mut file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if offset > len {
            return Err(CsvError::Parse(format!(
                "resume offset {offset} past end of {} ({len} bytes)",
                path.display()
            )));
        }
        if offset > 0 {
            file.seek(SeekFrom::Start(offset))?;
        }
        Ok(Self {
            reader: BufReader::new(file),
            offset,
            carry: String::new(),
            cols,
            header: None,
            rows: 0,
            at_start: offset == 0,
            row_buf: Vec::new(),
        })
    }

    /// Byte offset one past the last committed line. After `next_row`
    /// returns a row, this is exactly the offset to store in a
    /// checkpoint for re-opening with [`CsvStream::open_at`].
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Data rows committed so far.
    pub fn rows_read(&self) -> usize {
        self.rows
    }

    /// Column count (0 until the first data line commits).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The auto-detected header, if one was seen.
    pub fn header(&self) -> Option<&[String]> {
        self.header.as_deref()
    }

    fn parse_fields(&mut self, trimmed: &str) -> Result<bool, CsvError> {
        // Returns true when the line committed a data row (false:
        // header or blank).
        if trimmed.is_empty() {
            return Ok(false);
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if self.at_start {
            self.at_start = false;
            if fields.iter().any(|f| f.parse::<f64>().is_err()) {
                self.header = Some(fields.iter().map(|s| s.to_string()).collect());
                if self.cols == 0 {
                    self.cols = fields.len();
                }
                return Ok(false);
            }
            if self.cols == 0 {
                self.cols = fields.len();
            }
        }
        if fields.len() != self.cols {
            return Err(CsvError::Parse(format!(
                "row {} has {} fields, expected {}",
                self.rows + 1,
                fields.len(),
                self.cols
            )));
        }
        self.row_buf.clear();
        for fld in &fields {
            self.row_buf.push(fld.parse::<f64>().map_err(|e| {
                CsvError::Parse(format!("row {}: bad number {fld:?}: {e}", self.rows + 1))
            })?);
        }
        self.rows += 1;
        Ok(true)
    }

    /// Read the next newline-terminated data row. `Ok(None)` means the
    /// reader is at (possibly temporary) end of stream — any
    /// unterminated trailing bytes stay carried, uncommitted, so a
    /// follower can retry after the writer finishes the line.
    pub fn next_row(&mut self) -> Result<Option<(usize, &[f64])>, CsvError> {
        loop {
            let n = self.reader.read_line(&mut self.carry)?;
            if n == 0 {
                return Ok(None);
            }
            if !self.carry.ends_with('\n') {
                // Torn tail: the writer has not finished this line yet.
                // Keep it carried; nothing is committed.
                return Ok(None);
            }
            let line = std::mem::take(&mut self.carry);
            self.offset += line.len() as u64;
            let trimmed = line.trim_end_matches(['\n', '\r']);
            let committed = self.parse_fields(trimmed)?;
            if committed {
                let idx = self.rows - 1;
                // The borrow of row_buf ends the loop.
                return Ok(Some((idx, &self.row_buf)));
            }
        }
    }

    /// Commit a trailing unterminated line, if any — called exactly once
    /// when the stream has truly ended (the writer is done, so the torn
    /// tail is actually a complete final row without a newline).
    pub fn finish_partial(&mut self) -> Result<Option<(usize, &[f64])>, CsvError> {
        if self.carry.is_empty() {
            return Ok(None);
        }
        let line = std::mem::take(&mut self.carry);
        self.offset += line.len() as u64;
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if self.parse_fields(trimmed)? {
            return Ok(Some((self.rows - 1, &self.row_buf)));
        }
        Ok(None)
    }

    /// Bytes currently carried as a torn (unterminated) tail.
    pub fn carried_bytes(&self) -> usize {
        self.carry.len()
    }
}

/// Stream a numeric CSV row by row without materializing the matrix:
/// `f(row_index, values)` is called once per data row with a reused
/// buffer, so peak memory is one row. Returns `(rows, cols, header)`;
/// an empty stream is a [`CsvError::Parse`] ("empty CSV").
pub fn stream_rows(path: &Path, f: RowSink<'_>) -> Result<StreamSummary, CsvError> {
    let mut s = CsvStream::open(path)?;
    loop {
        let done = match s.next_row()? {
            Some((i, row)) => {
                let r = f(i, row);
                r.map_err(CsvError::Sink)?;
                false
            }
            None => true,
        };
        if done {
            break;
        }
    }
    if let Some((i, row)) = s.finish_partial()? {
        f(i, row).map_err(CsvError::Sink)?;
    }
    if s.rows_read() == 0 {
        return Err(CsvError::Parse("empty CSV".into()));
    }
    Ok((s.rows_read(), s.cols(), s.header().map(|h| h.to_vec())))
}

/// Knobs for [`follow_rows`]: how often to poll a quiet file for
/// growth, and how long it must stay quiet before the stream is
/// declared over.
#[derive(Clone, Copy, Debug)]
pub struct FollowOptions {
    /// Sleep between polls when no new complete line is available.
    pub poll: Duration,
    /// End the stream after this long with no growth (and commit a
    /// trailing unterminated line, if any).
    pub idle_timeout: Duration,
}

impl Default for FollowOptions {
    fn default() -> Self {
        Self {
            poll: Duration::from_millis(10),
            idle_timeout: Duration::from_millis(400),
        }
    }
}

/// Follow a growing CSV file: stream every committed row as it appears,
/// polling for growth, and keep going until the file has been idle for
/// `opts.idle_timeout` **and** `more()` has returned false (pass
/// `&mut || false` to rely on the idle timeout alone). Torn final lines
/// are never parsed mid-stream; when the file shrinks (log rotation /
/// truncation) the reader re-opens from the top and continues — row
/// indices stay monotonic across the re-open. Returns the same summary
/// as [`stream_rows`], except that an empty stream is reported as
/// `(0, 0, None)` rather than an error (a follower outliving an empty
/// log is normal, not malformed input).
pub fn follow_rows(
    path: &Path,
    opts: &FollowOptions,
    more: &mut dyn FnMut() -> bool,
    f: RowSink<'_>,
) -> Result<StreamSummary, CsvError> {
    let mut s = CsvStream::open(path)?;
    let mut rows_total = 0usize;
    let mut cols = 0usize;
    let mut header: Option<Vec<String>> = None;
    let mut last_progress = Instant::now();
    loop {
        match s.next_row() {
            Ok(Some((_, row))) => {
                let owned_idx = rows_total;
                f(owned_idx, row).map_err(CsvError::Sink)?;
                rows_total += 1;
                cols = s.cols();
                if header.is_none() {
                    header = s.header().map(|h| h.to_vec());
                }
                last_progress = Instant::now();
                continue;
            }
            Ok(None) => {}
            Err(e) => return Err(e),
        }
        // No complete line available. Truncated under us?
        let len = std::fs::metadata(path)?.len();
        if len < s.offset() + s.carried_bytes() as u64 {
            // Rotation: start over from the top of the new file, fresh
            // header detection, same expected width once known.
            s = CsvStream::open_at(path, 0, cols)?;
            last_progress = Instant::now();
            continue;
        }
        let idle = last_progress.elapsed() >= opts.idle_timeout;
        if idle && !more() {
            break;
        }
        std::thread::sleep(opts.poll);
    }
    if let Some((_, row)) = s.finish_partial()? {
        f(rows_total, row).map_err(CsvError::Sink)?;
        rows_total += 1;
        cols = s.cols();
    }
    if header.is_none() {
        header = s.header().map(|h| h.to_vec());
    }
    Ok((rows_total, cols, header))
}

/// A fully materialized CSV: `(rows, cols, row-major data, header)`.
pub type CsvContents = (usize, usize, Vec<f64>, Option<Vec<String>>);

/// Read a numeric CSV into `(rows, cols, data, header)` — the
/// materializing convenience on top of [`stream_rows`].
pub fn read_all(path: &Path) -> Result<CsvContents, CsvError> {
    let mut data: Vec<f64> = Vec::new();
    let (rows, cols, header) = stream_rows(path, &mut |_, row| {
        data.extend_from_slice(row);
        Ok(())
    })?;
    Ok((rows, cols, data, header))
}

/// Owned path + position of a follower, for re-opening (exposed for
/// checkpoint plumbing and tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourcePosition {
    pub path: PathBuf,
    pub offset: u64,
    pub cols: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "toc-data-csv-{}-{:?}-{name}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn offsets_resume_mid_file() {
        let p = tmp("resume.csv");
        std::fs::write(&p, "a,b\n1,2\n3,4\n5,6\n").unwrap();
        let mut s = CsvStream::open(&p).unwrap();
        let (i, row) = s.next_row().unwrap().unwrap();
        assert_eq!((i, row), (0, &[1.0, 2.0][..]));
        let mark = s.offset();
        let cols = s.cols();
        drop(s);
        // Re-open at the recorded offset: the remaining rows stream with
        // no header re-detection.
        let mut s = CsvStream::open_at(&p, mark, cols).unwrap();
        let mut seen = Vec::new();
        while let Some((_, row)) = s.next_row().unwrap() {
            seen.push(row.to_vec());
        }
        assert_eq!(seen, vec![vec![3.0, 4.0], vec![5.0, 6.0]]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn torn_tail_is_not_committed_until_finish() {
        let p = tmp("torn.csv");
        std::fs::write(&p, "1,2\n3,").unwrap();
        let mut s = CsvStream::open(&p).unwrap();
        assert_eq!(s.next_row().unwrap().unwrap().1, &[1.0, 2.0][..]);
        assert!(s.next_row().unwrap().is_none());
        assert_eq!(s.rows_read(), 1);
        // The writer "finishes" the line; the reader picks it up whole.
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
            f.write_all(b"4\n").unwrap();
        }
        assert_eq!(s.next_row().unwrap().unwrap().1, &[3.0, 4.0][..]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn finish_partial_commits_unterminated_final_row() {
        let p = tmp("partial.csv");
        std::fs::write(&p, "1,2\n3,4").unwrap();
        let (rows, cols, _) = stream_rows(&p, &mut |_, _| Ok(())).unwrap();
        assert_eq!((rows, cols), (2, 2));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn follow_streams_rows_appended_by_a_writer_thread() {
        let p = tmp("follow.csv");
        std::fs::write(&p, "x,y\n").unwrap();
        let path = p.clone();
        let writer = std::thread::spawn(move || {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            for i in 0..20 {
                // Torn writes on purpose: the line lands in two pieces.
                let line = format!("{i},{}\n", i * 2);
                let (a, b) = line.split_at(line.len() / 2);
                f.write_all(a.as_bytes()).unwrap();
                f.flush().unwrap();
                std::thread::sleep(Duration::from_millis(2));
                f.write_all(b.as_bytes()).unwrap();
                f.flush().unwrap();
            }
        });
        let mut seen = Vec::new();
        let opts = FollowOptions {
            poll: Duration::from_millis(2),
            idle_timeout: Duration::from_millis(200),
        };
        let (rows, cols, header) = follow_rows(&p, &opts, &mut || false, &mut |i, row| {
            seen.push((i, row.to_vec()));
            Ok(())
        })
        .unwrap();
        writer.join().unwrap();
        assert_eq!((rows, cols), (20, 2));
        assert_eq!(header.unwrap(), vec!["x", "y"]);
        for (i, (idx, row)) in seen.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(row, &vec![i as f64, (i * 2) as f64]);
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn follow_reopens_after_truncation() {
        let p = tmp("trunc.csv");
        std::fs::write(&p, "1,1\n2,2\n").unwrap();
        let path = p.clone();
        let truncated = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let t2 = truncated.clone();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            // Log rotation: replace the file with fresh, shorter content.
            std::fs::write(&path, "7,7\n").unwrap();
            t2.store(true, std::sync::atomic::Ordering::Release);
            std::thread::sleep(Duration::from_millis(30));
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"8,8\n").unwrap();
        });
        let mut seen = Vec::new();
        let opts = FollowOptions {
            poll: Duration::from_millis(5),
            idle_timeout: Duration::from_millis(250),
        };
        let (rows, _, _) = follow_rows(&p, &opts, &mut || false, &mut |i, row| {
            seen.push((i, row.to_vec()));
            Ok(())
        })
        .unwrap();
        writer.join().unwrap();
        assert!(truncated.load(std::sync::atomic::Ordering::Acquire));
        // Rows before rotation plus the rewritten file's rows, indices
        // monotonic throughout.
        assert_eq!(rows, seen.len());
        assert!(seen.iter().enumerate().all(|(i, (idx, _))| i == *idx));
        assert!(seen.windows(2).all(|w| w[0].0 + 1 == w[1].0));
        let tail: Vec<Vec<f64>> = seen
            .iter()
            .rev()
            .take(2)
            .rev()
            .map(|(_, r)| r.clone())
            .collect();
        assert_eq!(tail, vec![vec![7.0, 7.0], vec![8.0, 8.0]]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn io_parse_and_sink_errors_are_distinct() {
        let missing = tmp("missing.csv");
        assert!(matches!(
            stream_rows(&missing, &mut |_, _| Ok(())),
            Err(CsvError::Io(_))
        ));
        let ragged = tmp("ragged.csv");
        std::fs::write(&ragged, "1,2,3\n4,5\n").unwrap();
        assert!(matches!(
            stream_rows(&ragged, &mut |_, _| Ok(())),
            Err(CsvError::Parse(_))
        ));
        let fine = tmp("fine.csv");
        std::fs::write(&fine, "1,2\n").unwrap();
        assert!(matches!(
            stream_rows(&fine, &mut |_, _| Err("stop".into())),
            Err(CsvError::Sink(_))
        ));
        std::fs::remove_file(&ragged).ok();
        std::fs::remove_file(&fine).ok();
    }
}
