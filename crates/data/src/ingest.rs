//! Streaming row ingestion: bounded-memory chunked encode into a live
//! store or a seekable `.tocz` container.
//!
//! Every other build path in this crate materializes the full dataset
//! before the first batch is encoded. This module inverts that: rows
//! arrive one at a time (CSV, a synth generator, a socket), stage in a
//! reusable [`EncodeWorkspace`] bounded by `chunk_rows × cols`, and each
//! full chunk is *sealed* — scheme chosen per chunk via
//! [`toc_formats::pick_scheme`] over [`Scheme::AUTO_SET`] (or fixed),
//! encoded, and appended to its sink — after which the staging buffers
//! are handed back for the next chunk. Peak ingest memory is therefore a
//! function of the chunk shape alone, never of how many rows flow
//! through; [`EncodeWorkspace::peak_bytes`] tracks the high-water mark so
//! tests and the `ingest_scaling` bench gate can assert exactly that.
//!
//! Two sinks:
//!
//! * [`StoreIngest`] appends sealed segments to a *live*
//!   [`ShardedSpillStore`] ([`ShardedSpillStore::append_sealed`]) while
//!   trainers, tenant readers and the adaptive migrator run concurrently
//!   — the online-training path ([`toc_ml::mgd::Trainer::train_online`],
//!   `toc train --follow`).
//! * [`ContainerIngest`] streams sealed segments through a
//!   [`ContainerStreamWriter`], so a finished stream is a valid seekable
//!   v2 `.tocz` — byte-identical to the one-shot
//!   [`toc_formats::container::Container`] encode of the same rows
//!   (`toc ingest`).
//!
//! Chunking changes *where* segment boundaries fall, never what a chunk
//! of given rows encodes to: sealing is deterministic in the staged
//! values, which is what the ingest proptests pin down.
//!
//! ## Crash safety
//!
//! Both drivers can periodically persist an [`IngestCheckpoint`] — a
//! checksummed sidecar recording the sealed-chunk watermark (a
//! [`WriterState`] for containers, a [`crate::store::StoreCheckpoint`]
//! for stores), the source byte offset the watermark corresponds to, the
//! running [`IngestStats`], and a hash of the workspace configuration.
//! [`ingest_csv_container`] is the resumable CSV→container driver behind
//! `toc ingest --resume`: on restart it validates the sidecar against
//! the partial output, truncates any torn tail past the watermark,
//! re-opens the CSV at the recorded offset, and continues to a result
//! **byte-identical** to an uninterrupted run — sealing is deterministic
//! in the staged rows, and a sealed chunk is never re-emitted. The
//! `ingest_resume` integration suite kills the driver at every
//! [`KillPoint`] (and at fault-injected torn-write points) to pin this
//! down.

use std::fs;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use toc_formats::container::{
    fnv1a64, parse_v2_footer, ContainerStreamWriter, WriterState, ZoneMap,
};
use toc_formats::{
    pick_scheme, AnyBatch, ClaPlanner, EncodeOptions, FormatError, MatrixBatch, Scheme,
};
use toc_linalg::DenseMatrix;
use toc_ml::mgd::BatchProvider;

use crate::csv::{CsvError, CsvStream};
use crate::store::{AppenderToken, ShardedSpillStore};

/// A reusable staging-and-encode workspace: holds up to `chunk_rows`
/// rows, seals them into one encoded segment, and takes its buffer back
/// afterwards. The buffer never grows past `chunk_rows × cols` values,
/// so the workspace's high-water mark ([`EncodeWorkspace::peak_bytes`])
/// is independent of the total number of rows ever pushed — the
/// bounded-memory property streaming ingestion is built on.
pub struct EncodeWorkspace {
    cols: usize,
    chunk_rows: usize,
    stage: Vec<f64>,
    staged_rows: usize,
    peak_bytes: usize,
}

/// One sealed chunk: the per-chunk scheme choice, the encoded segment,
/// and the zone map computed from the staged rows *before* encoding —
/// the same order [`toc_formats::container::Container::encode_with`]
/// uses, which is what makes the streamed container byte-identical to
/// the one-shot encode.
pub struct SealedChunk {
    pub scheme: Scheme,
    pub batch: AnyBatch,
    pub zone: ZoneMap,
    pub rows: usize,
}

impl EncodeWorkspace {
    pub fn new(cols: usize, chunk_rows: usize) -> Self {
        assert!(cols > 0, "ingest needs at least one column");
        assert!(chunk_rows > 0, "ingest needs at least one row per chunk");
        Self {
            cols,
            chunk_rows,
            stage: Vec::with_capacity(cols * chunk_rows),
            staged_rows: 0,
            peak_bytes: 0,
        }
    }

    /// Stage one row. Panics if the row width disagrees with the
    /// workspace or the chunk is already full (callers seal on
    /// [`EncodeWorkspace::is_full`]).
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row width mismatch");
        assert!(self.staged_rows < self.chunk_rows, "chunk already full");
        self.stage.extend_from_slice(row);
        self.staged_rows += 1;
    }

    pub fn is_full(&self) -> bool {
        self.staged_rows >= self.chunk_rows
    }

    pub fn staged_rows(&self) -> usize {
        self.staged_rows
    }

    /// Seal the staged rows into one encoded segment: compute the zone
    /// map, pick the scheme (`None` = per-chunk auto over
    /// [`Scheme::AUTO_SET`]), encode, and reclaim the staging buffer.
    /// Returns `None` when nothing is staged.
    pub fn seal(&mut self, scheme: Option<Scheme>, opts: &EncodeOptions) -> Option<SealedChunk> {
        if self.staged_rows == 0 {
            return None;
        }
        let rows = self.staged_rows;
        let dense = DenseMatrix::from_vec(rows, self.cols, std::mem::take(&mut self.stage));
        let zone = ZoneMap::compute(&dense, opts.cla.sample_rows);
        let picked = scheme.unwrap_or_else(|| pick_scheme(&dense, &Scheme::AUTO_SET, opts));
        let batch = picked.encode_with(&dense, opts);
        // Reclaim the staging allocation: the dense matrix wrapped our
        // buffer, so taking it back means steady-state ingestion never
        // reallocates the stage.
        self.stage = dense.into_data();
        self.stage.clear();
        self.staged_rows = 0;
        // High-water mark of what this workspace held at the seal point:
        // the staging buffer plus the sealed segment it produced.
        let used = self.stage.capacity() * std::mem::size_of::<f64>() + batch.size_bytes();
        self.peak_bytes = self.peak_bytes.max(used);
        Some(SealedChunk {
            scheme: picked,
            batch,
            zone,
            rows,
        })
    }

    /// High-water mark, in bytes, of the staging buffer plus the largest
    /// sealed segment. Flat in the total row count by construction.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }
}

/// Counters reported by both ingest drivers (the CLI prints them as the
/// machine-parseable `ingest:` line).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IngestStats {
    /// Rows sealed into segments.
    pub rows: u64,
    /// Segments sealed.
    pub chunks: u64,
    /// Encoded bytes across all sealed segments.
    pub encoded_bytes: u64,
    /// Workspace high-water mark ([`EncodeWorkspace::peak_bytes`]).
    pub peak_workspace_bytes: usize,
    /// Sealed-segment count per scheme, in first-seen order — with
    /// per-chunk auto-pick over a drifting stream this is where the
    /// choice visibly changes.
    pub scheme_counts: Vec<(Scheme, u64)>,
}

impl IngestStats {
    fn note(&mut self, scheme: Scheme, rows: usize, encoded: usize) {
        self.rows += rows as u64;
        self.chunks += 1;
        self.encoded_bytes += encoded as u64;
        match self.scheme_counts.iter_mut().find(|(s, _)| *s == scheme) {
            Some((_, n)) => *n += 1,
            None => self.scheme_counts.push((scheme, 1)),
        }
    }

    /// `NAME:count` pairs joined with `,` — e.g. `TOC:3,DEN:1`.
    pub fn scheme_summary(&self) -> String {
        self.scheme_counts
            .iter()
            .map(|(s, n)| format!("{}:{n}", s.name()))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Error from the resumable ingest drivers. Keeps the failure domains
/// apart so callers can tell "the disk failed" ([`IngestError::Io`])
/// from "the container writer refused" ([`IngestError::Format`]) from
/// "the source CSV is garbage" ([`IngestError::Csv`]) from "the
/// checkpoint sidecar does not match this job"
/// ([`IngestError::Checkpoint`]) — only the last two are the operator's
/// to fix.
#[derive(Debug)]
pub enum IngestError {
    /// An underlying file operation failed (source, output, or sidecar).
    Io(std::io::Error),
    /// The container writer rejected or failed an operation.
    Format(FormatError),
    /// The source CSV stream was malformed.
    Csv(CsvError),
    /// The checkpoint sidecar is corrupt, stale, or inconsistent with
    /// the job configuration or the partial output.
    Checkpoint(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest IO: {e}"),
            IngestError::Format(e) => write!(f, "container: {e}"),
            IngestError::Csv(e) => write!(f, "csv: {e}"),
            IngestError::Checkpoint(m) => write!(f, "checkpoint: {m}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<FormatError> for IngestError {
    fn from(e: FormatError) -> Self {
        IngestError::Format(e)
    }
}

impl From<CsvError> for IngestError {
    fn from(e: CsvError) -> Self {
        IngestError::Csv(e)
    }
}

/// Streams rows into a *live* [`ShardedSpillStore`]: every full chunk is
/// sealed and appended ([`ShardedSpillStore::append_sealed`]), becoming
/// visible to concurrent trainers atomically. The store must have shard
/// files ([`ShardedSpillStore::open_streaming`]).
///
/// Construction claims the store's single appender slot
/// ([`ShardedSpillStore::try_acquire_appender`]) for the ingest's
/// lifetime, so two `StoreIngest`s can never interleave chunks into one
/// store — [`StoreIngest::try_new`] reports the conflict, `new` panics
/// on it.
pub struct StoreIngest<'a> {
    store: &'a ShardedSpillStore,
    _token: AppenderToken<'a>,
    ws: EncodeWorkspace,
    labels: Vec<f64>,
    scheme: Option<Scheme>,
    encode: EncodeOptions,
    stats: IngestStats,
}

impl<'a> StoreIngest<'a> {
    /// Claim the store's appender slot and set up staging. Panics if
    /// another `StoreIngest` (or raw appender token) is already live on
    /// this store — use [`StoreIngest::try_new`] to handle that case.
    pub fn new(
        store: &'a ShardedSpillStore,
        chunk_rows: usize,
        scheme: Option<Scheme>,
        encode: EncodeOptions,
    ) -> Self {
        Self::try_new(store, chunk_rows, scheme, encode)
            .expect("another StoreIngest already owns this store's appender slot")
    }

    /// Like [`StoreIngest::new`], but returns `None` when the store's
    /// appender slot is already taken instead of panicking.
    pub fn try_new(
        store: &'a ShardedSpillStore,
        chunk_rows: usize,
        scheme: Option<Scheme>,
        encode: EncodeOptions,
    ) -> Option<Self> {
        let token = store.try_acquire_appender()?;
        Some(Self {
            ws: EncodeWorkspace::new(store.num_features(), chunk_rows),
            store,
            _token: token,
            labels: Vec::with_capacity(chunk_rows),
            scheme,
            encode,
            stats: IngestStats::default(),
        })
    }

    /// Resume ingestion into a store restored with
    /// [`ShardedSpillStore::open_streaming_resume`]: validates that the
    /// checkpoint was written by a store ingest with this exact
    /// workspace configuration, then continues the counters where the
    /// checkpoint left them. The caller re-opens the row source at
    /// [`IngestCheckpoint::source_offset`].
    pub fn resume(
        store: &'a ShardedSpillStore,
        chunk_rows: usize,
        scheme: Option<Scheme>,
        encode: EncodeOptions,
        ck: &IngestCheckpoint,
    ) -> Result<Self, IngestError> {
        if ck.kind != CheckpointKind::Store {
            return Err(IngestError::Checkpoint(
                "sidecar is a container checkpoint, not a store checkpoint".into(),
            ));
        }
        let want = ingest_config_hash(store.num_features(), chunk_rows, scheme, &encode);
        if ck.config_hash != want {
            return Err(IngestError::Checkpoint(format!(
                "workspace config hash {:#018x} does not match the checkpoint's {:#018x} \
                 (columns, chunk rows, scheme, or encode options changed)",
                want, ck.config_hash
            )));
        }
        let mut ing = Self::try_new(store, chunk_rows, scheme, encode)
            .ok_or_else(|| IngestError::Checkpoint("store appender slot already taken".into()))?;
        ing.stats = ck.stats.clone();
        Ok(ing)
    }

    /// Stage one row (features + its ±1 label); seals and appends the
    /// chunk when it fills.
    pub fn push_row(&mut self, features: &[f64], label: f64) -> std::io::Result<()> {
        self.ws.push_row(features);
        self.labels.push(label);
        if self.ws.is_full() {
            self.seal_chunk()?;
        }
        Ok(())
    }

    fn seal_chunk(&mut self) -> std::io::Result<()> {
        let Some(sealed) = self.ws.seal(self.scheme, &self.encode) else {
            return Ok(());
        };
        let bytes = sealed.batch.to_bytes();
        let labels = std::mem::take(&mut self.labels);
        self.labels.reserve(self.ws.chunk_rows);
        self.store.append_sealed(&bytes, labels)?;
        self.stats.note(sealed.scheme, sealed.rows, bytes.len());
        Ok(())
    }

    /// Rows currently staged (not yet sealed into a chunk).
    pub fn staged_rows(&self) -> usize {
        self.ws.staged_rows()
    }

    /// Running counters over the chunks sealed so far.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Snapshot a resumable checkpoint: the store's sealed extents
    /// ([`ShardedSpillStore::streaming_checkpoint`]) plus the running
    /// counters and `source_offset`, the byte offset in the row source
    /// that the sealed watermark corresponds to. Rows staged past the
    /// watermark are *not* captured — a resume re-reads them from
    /// `source_offset`.
    pub fn checkpoint(&self, source_offset: u64) -> IngestCheckpoint {
        let mut stats = self.stats.clone();
        stats.peak_workspace_bytes = self.ws.peak_bytes();
        IngestCheckpoint {
            kind: CheckpointKind::Store,
            config_hash: ingest_config_hash(
                self.store.num_features(),
                self.ws.chunk_rows,
                self.scheme,
                &self.encode,
            ),
            source_offset,
            stats,
            state: self.store.streaming_checkpoint().to_bytes(),
        }
    }

    /// Seal any partial final chunk and report the ingest counters.
    pub fn finish(mut self) -> std::io::Result<IngestStats> {
        self.seal_chunk()?;
        self.stats.peak_workspace_bytes = self.ws.peak_bytes();
        Ok(self.stats)
    }
}

/// Streams rows into a seekable v2 `.tocz` through
/// [`ContainerStreamWriter`]: chunk = container segment. Rows carry all
/// columns (the label column stays in the matrix, exactly like
/// [`ShardedSpillStore::build_from_container`] expects to read it back).
pub struct ContainerIngest<W: std::io::Write> {
    writer: ContainerStreamWriter<W>,
    ws: EncodeWorkspace,
    scheme: Option<Scheme>,
    encode: EncodeOptions,
    stats: IngestStats,
}

impl<W: std::io::Write> ContainerIngest<W> {
    pub fn new(
        sink: W,
        cols: usize,
        chunk_rows: usize,
        scheme: Option<Scheme>,
        encode: EncodeOptions,
    ) -> Result<Self, FormatError> {
        Ok(Self {
            writer: ContainerStreamWriter::new(sink)?,
            ws: EncodeWorkspace::new(cols, chunk_rows),
            scheme,
            encode,
            stats: IngestStats::default(),
        })
    }

    /// Resume over a sink already positioned at the checkpoint's byte
    /// watermark (the partial file truncated back to
    /// [`WriterState::offset`]): reconstructs the stream writer from
    /// `state` without writing anything and continues the counters from
    /// `stats`. `state` must have at least one sealed segment (its
    /// column count pins the staging workspace); checkpoints are only
    /// written after a seal, so a well-formed sidecar always does.
    pub fn resume(
        sink: W,
        chunk_rows: usize,
        scheme: Option<Scheme>,
        encode: EncodeOptions,
        state: WriterState,
        stats: IngestStats,
    ) -> Result<Self, FormatError> {
        let cols = state.cols().ok_or_else(|| {
            FormatError::Corrupt("writer state has no sealed segments to resume from".into())
        })? as usize;
        Ok(Self {
            writer: ContainerStreamWriter::resume(sink, state)?,
            ws: EncodeWorkspace::new(cols, chunk_rows),
            scheme,
            encode,
            stats,
        })
    }

    /// Stage one full-width row; seals and writes the segment when the
    /// chunk fills.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), FormatError> {
        self.ws.push_row(row);
        if self.ws.is_full() {
            self.seal_chunk()?;
        }
        Ok(())
    }

    fn seal_chunk(&mut self) -> Result<(), FormatError> {
        let Some(sealed) = self.ws.seal(self.scheme, &self.encode) else {
            return Ok(());
        };
        let before = self.writer.bytes_written();
        self.writer.append(&sealed.batch, sealed.zone)?;
        let wire = (self.writer.bytes_written() - before) as usize;
        self.stats.note(sealed.scheme, sealed.rows, wire);
        Ok(())
    }

    /// Rows currently staged (not yet sealed into a segment). Drops to
    /// zero exactly when `push_row` seals a chunk — the seam the
    /// resumable driver uses to spot seal boundaries.
    pub fn staged_rows(&self) -> usize {
        self.ws.staged_rows()
    }

    /// Running counters over the segments sealed so far.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Bytes of sealed segments written so far (the checkpoint byte
    /// watermark — staged rows are not included).
    pub fn bytes_written(&self) -> u64 {
        self.writer.bytes_written()
    }

    /// Flush the sink. Called before persisting a checkpoint so the
    /// sealed bytes the sidecar's watermark points at are actually in
    /// the file, not a userspace buffer.
    pub fn flush(&mut self) -> Result<(), FormatError> {
        self.writer.flush()
    }

    /// The writer's resumable state at the current sealed watermark
    /// (see [`ContainerStreamWriter::state`]).
    pub fn writer_state(&self) -> WriterState {
        self.writer.state()
    }

    /// Seal any partial final chunk, write the layout-tree footer and
    /// postscript, and report `(total container bytes, counters)`.
    pub fn finish(mut self) -> Result<(u64, IngestStats), FormatError> {
        self.seal_chunk()?;
        self.stats.peak_workspace_bytes = self.ws.peak_bytes();
        let total = self.writer.finish()?;
        Ok((total, self.stats))
    }
}

// ---------------------------------------------------------------------------
// Checkpoint sidecars.

/// Which driver wrote an [`IngestCheckpoint`] — the two `state` payloads
/// are not interchangeable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointKind {
    /// `state` is a serialized [`WriterState`] (CSV → `.tocz` container).
    Container,
    /// `state` is a serialized [`crate::store::StoreCheckpoint`]
    /// (CSV → live sharded store).
    Store,
}

/// Hash of everything that must *not* change between the run that wrote
/// a checkpoint and the run resuming from it: resuming with a different
/// column count, chunk size, scheme choice, or CLA planner would splice
/// differently-encoded chunks into one output and silently break the
/// byte-identity guarantee. FNV-1a over the canonical little-endian
/// serialization.
pub fn ingest_config_hash(
    cols: usize,
    chunk_rows: usize,
    scheme: Option<Scheme>,
    encode: &EncodeOptions,
) -> u64 {
    let mut buf = Vec::with_capacity(27);
    buf.extend_from_slice(&(cols as u64).to_le_bytes());
    buf.extend_from_slice(&(chunk_rows as u64).to_le_bytes());
    // 255 = per-chunk auto-pick (no fixed scheme); valid tags are < 12.
    buf.push(scheme.map_or(255, Scheme::tag));
    buf.push(match encode.cla.planner {
        ClaPlanner::Greedy => 0,
        ClaPlanner::SampleMerge => 1,
    });
    buf.extend_from_slice(&(encode.cla.sample_rows as u64).to_le_bytes());
    fnv1a64(&buf)
}

/// The sidecar path for an ingest output: `<out>.ckpt` appended to the
/// full file name (`data.tocz` → `data.tocz.ckpt`), so the pair travels
/// together and a glob for the output never picks up the sidecar.
pub fn sidecar_path(out: &Path) -> PathBuf {
    let mut os = out.as_os_str().to_os_string();
    os.push(".ckpt");
    PathBuf::from(os)
}

/// `"TCKP"`.
const SIDECAR_MAGIC: u32 = 0x5443_4B50;
const SIDECAR_V1: u8 = 1;

/// A persisted ingest checkpoint: everything a fresh process needs to
/// continue an interrupted ingest to a byte-identical result. Serialized
/// with a trailing FNV-1a checksum and written atomically
/// (temp + rename), so a crash *during* a checkpoint write leaves the
/// previous sidecar intact and a torn sidecar is detected, never acted
/// on.
#[derive(Clone, Debug)]
pub struct IngestCheckpoint {
    /// Which driver wrote this (and how to parse `state`).
    pub kind: CheckpointKind,
    /// [`ingest_config_hash`] of the writing run's workspace config.
    pub config_hash: u64,
    /// Byte offset in the row source (CSV) that the sealed watermark
    /// corresponds to: resume re-opens the source here.
    pub source_offset: u64,
    /// Counters as of the watermark.
    pub stats: IngestStats,
    /// Sink-specific resume state ([`WriterState`] or
    /// [`crate::store::StoreCheckpoint`] bytes).
    pub state: Vec<u8>,
}

impl IngestCheckpoint {
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.state.len());
        out.extend_from_slice(&SIDECAR_MAGIC.to_le_bytes());
        out.push(SIDECAR_V1);
        out.push(match self.kind {
            CheckpointKind::Container => 0,
            CheckpointKind::Store => 1,
        });
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        out.extend_from_slice(&self.source_offset.to_le_bytes());
        out.extend_from_slice(&self.stats.rows.to_le_bytes());
        out.extend_from_slice(&self.stats.chunks.to_le_bytes());
        out.extend_from_slice(&self.stats.encoded_bytes.to_le_bytes());
        out.extend_from_slice(&(self.stats.peak_workspace_bytes as u64).to_le_bytes());
        debug_assert!(self.stats.scheme_counts.len() <= u8::MAX as usize);
        out.push(self.stats.scheme_counts.len() as u8);
        for &(scheme, count) in &self.stats.scheme_counts {
            out.push(scheme.tag());
            out.extend_from_slice(&count.to_le_bytes());
        }
        out.extend_from_slice(&(self.state.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.state);
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IngestError> {
        let bad = |m: &str| IngestError::Checkpoint(m.to_string());
        if bytes.len() < 8 {
            return Err(bad("sidecar too short"));
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let sum = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        if fnv1a64(body) != sum {
            return Err(bad("sidecar checksum mismatch (torn or corrupt)"));
        }
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], IngestError> {
            let s = body
                .get(*at..*at + n)
                .ok_or_else(|| bad("sidecar truncated"))?;
            *at += n;
            Ok(s)
        };
        let u64_at = |at: &mut usize| -> Result<u64, IngestError> {
            Ok(u64::from_le_bytes(take(at, 8)?.try_into().unwrap()))
        };
        let magic = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
        if magic != SIDECAR_MAGIC {
            return Err(bad("bad sidecar magic"));
        }
        let version = take(&mut at, 1)?[0];
        if version != SIDECAR_V1 {
            return Err(bad("unsupported sidecar version"));
        }
        let kind = match take(&mut at, 1)?[0] {
            0 => CheckpointKind::Container,
            1 => CheckpointKind::Store,
            k => return Err(IngestError::Checkpoint(format!("unknown sidecar kind {k}"))),
        };
        let config_hash = u64_at(&mut at)?;
        let source_offset = u64_at(&mut at)?;
        let mut stats = IngestStats {
            rows: u64_at(&mut at)?,
            chunks: u64_at(&mut at)?,
            encoded_bytes: u64_at(&mut at)?,
            peak_workspace_bytes: u64_at(&mut at)? as usize,
            scheme_counts: Vec::new(),
        };
        let n_schemes = take(&mut at, 1)?[0] as usize;
        for _ in 0..n_schemes {
            let tag = take(&mut at, 1)?[0];
            let scheme = scheme_from_tag(tag)
                .ok_or_else(|| IngestError::Checkpoint(format!("unknown scheme tag {tag}")))?;
            let count = u64_at(&mut at)?;
            stats.scheme_counts.push((scheme, count));
        }
        let state_len = u64_at(&mut at)? as usize;
        let state = take(&mut at, state_len)?.to_vec();
        if at != body.len() {
            return Err(bad("trailing bytes after sidecar payload"));
        }
        Ok(Self {
            kind,
            config_hash,
            source_offset,
            stats,
            state,
        })
    }

    /// Write the sidecar atomically: serialize to `<path>.tmp`, fsync,
    /// rename over `path`. A crash mid-write can only lose the *new*
    /// checkpoint, never corrupt the previous one.
    pub fn write_atomic(&self, path: &Path) -> Result<(), IngestError> {
        let mut tmp_os = path.as_os_str().to_os_string();
        tmp_os.push(".tmp");
        let tmp = PathBuf::from(tmp_os);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and validate a sidecar from disk.
    pub fn read(path: &Path) -> Result<Self, IngestError> {
        Self::from_bytes(&fs::read(path)?)
    }
}

fn scheme_from_tag(tag: u8) -> Option<Scheme> {
    Scheme::ALL.iter().copied().find(|s| s.tag() == tag)
}

// ---------------------------------------------------------------------------
// The resumable CSV → container driver.

/// Where the kill-matrix tests interrupt [`ingest_csv_container_killable`]
/// — each variant models a distinct crash window of the real driver.
/// When the condition fires the driver flushes its sink (the bytes a
/// real crash would leave visible in the file after the OS writes out
/// the page cache) and returns with [`CsvIngestOutcome::killed`] set
/// instead of finishing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillPoint {
    /// After `staged` rows (≥ 1) are staged on top of `chunks` sealed
    /// chunks: staged rows live only in the workspace, so a crash here
    /// loses them from the output but not from the source.
    AfterStagedRows { chunks: u64, staged: usize },
    /// Immediately after the `chunks`-th chunk seals, *before* any
    /// checkpoint write — the sidecar on disk (if any) is one or more
    /// chunks behind the file.
    AfterSealedChunk { chunks: u64 },
    /// Immediately after the checkpoint following the `chunks`-th chunk
    /// is persisted — sidecar and file agree exactly.
    AfterCheckpoint { chunks: u64 },
    /// After [`ContainerIngest::finish`] wrote the footer but before the
    /// sidecar was cleaned up — the output is complete and the stale
    /// sidecar must be recognized as such on resume.
    AfterFooter,
}

/// One resumable CSV → `.tocz` ingest job.
pub struct CsvContainerJob {
    /// Source CSV (numeric, optional header line).
    pub csv: PathBuf,
    /// Output container path.
    pub out: PathBuf,
    /// Rows per sealed segment.
    pub chunk_rows: usize,
    /// Fixed scheme, or `None` for per-chunk auto-pick.
    pub scheme: Option<Scheme>,
    pub encode: EncodeOptions,
    /// Persist a checkpoint sidecar every this many sealed chunks;
    /// `0` disables checkpointing entirely (no sidecar is ever written).
    pub checkpoint_every: u64,
}

/// What [`ingest_csv_container`] did.
#[derive(Clone, Debug)]
pub struct CsvIngestOutcome {
    /// Total bytes in the output: the finished container size, or the
    /// sealed watermark when `killed` is set.
    pub total_bytes: u64,
    /// Counters over all sealed chunks — including the ones restored
    /// from a checkpoint, so a resumed run reports the same totals as an
    /// uninterrupted one.
    pub stats: IngestStats,
    /// Chunks restored from a checkpoint (0 for a fresh or restarted
    /// run).
    pub resumed_chunks: u64,
    /// Column count of the ingested rows.
    pub cols: usize,
    /// The test-only kill point that fired, if any.
    pub killed: Option<KillPoint>,
}

/// Run a CSV → container ingest, optionally resuming from a checkpoint
/// sidecar (`<out>.ckpt`).
///
/// With `resume` set the driver inspects the sidecar and partial output
/// before touching the source:
///
/// * output already a complete v2 container (crash after the footer,
///   before sidecar cleanup) → removed sidecar, counters reconstructed
///   from the footer, nothing re-ingested;
/// * valid sidecar + output at least as long as its watermark → torn
///   tail truncated, writer and CSV re-opened at the watermark, ingest
///   continues — never re-emitting a sealed chunk;
/// * no sidecar (crash before the first checkpoint) → clean restart
///   from row zero;
/// * sidecar that fails its checksum, hashes a different workspace
///   config, or outruns the file → [`IngestError::Checkpoint`].
///
/// In every resumable case the final file is byte-identical to an
/// uninterrupted run over the same source.
pub fn ingest_csv_container(
    job: &CsvContainerJob,
    resume: bool,
) -> Result<CsvIngestOutcome, IngestError> {
    ingest_csv_container_killable(job, resume, None)
}

/// [`ingest_csv_container`] with a test-only crash injection point; see
/// [`KillPoint`]. Not part of the stable API.
#[doc(hidden)]
pub fn ingest_csv_container_killable(
    job: &CsvContainerJob,
    resume: bool,
    kill: Option<KillPoint>,
) -> Result<CsvIngestOutcome, IngestError> {
    let sidecar = sidecar_path(&job.out);
    let mut stream;
    let mut ing: Option<ContainerIngest<fs::File>> = None;
    let mut cfg_hash = 0u64;
    let mut resumed_chunks = 0u64;

    let restored = if resume {
        load_container_checkpoint(job, &sidecar)?
    } else {
        None
    };
    match restored {
        Some(Restored::Complete(outcome)) => return Ok(*outcome),
        Some(Restored::At {
            stream: s,
            ing: i,
            config_hash,
            chunks,
        }) => {
            stream = s;
            ing = Some(*i);
            cfg_hash = config_hash;
            resumed_chunks = chunks;
        }
        None => {
            stream = CsvStream::open(&job.csv)?;
        }
    }

    let kill_now = |ing: &mut ContainerIngest<fs::File>,
                    cols: usize,
                    kp: KillPoint|
     -> Result<CsvIngestOutcome, IngestError> {
        ing.flush()?;
        Ok(CsvIngestOutcome {
            total_bytes: ing.bytes_written(),
            stats: ing.stats().clone(),
            resumed_chunks,
            cols,
            killed: Some(kp),
        })
    };

    let mut last_chunks = ing.as_ref().map_or(0, |i| i.stats().chunks);
    loop {
        let row_committed = match stream.next_row()? {
            Some((_, row)) => {
                push_lazy(&mut ing, &mut cfg_hash, job, row)?;
                true
            }
            None => match stream.finish_partial()? {
                Some((_, row)) => {
                    push_lazy(&mut ing, &mut cfg_hash, job, row)?;
                    false // true end of stream after this row
                }
                None => break,
            },
        };
        let ing_ref = ing.as_mut().expect("ingest exists after a pushed row");
        if ing_ref.stats().chunks != last_chunks {
            // A chunk just sealed; stream.offset() is exactly the source
            // watermark for it (the sealing row's line is committed).
            last_chunks = ing_ref.stats().chunks;
            if let Some(kp @ KillPoint::AfterSealedChunk { chunks }) = kill {
                if last_chunks == chunks {
                    return kill_now(ing_ref, stream.cols(), kp);
                }
            }
            if job.checkpoint_every > 0 && last_chunks.is_multiple_of(job.checkpoint_every) {
                ing_ref.flush()?;
                let ck = IngestCheckpoint {
                    kind: CheckpointKind::Container,
                    config_hash: cfg_hash,
                    source_offset: stream.offset(),
                    stats: ing_ref.stats().clone(),
                    state: ing_ref.writer_state().to_bytes(),
                };
                ck.write_atomic(&sidecar)?;
                if let Some(kp @ KillPoint::AfterCheckpoint { chunks }) = kill {
                    if last_chunks == chunks {
                        return kill_now(ing_ref, stream.cols(), kp);
                    }
                }
            }
        }
        if let Some(kp @ KillPoint::AfterStagedRows { chunks, staged }) = kill {
            if staged > 0 && ing_ref.stats().chunks == chunks && ing_ref.staged_rows() == staged {
                return kill_now(ing_ref, stream.cols(), kp);
            }
        }
        if !row_committed {
            break;
        }
    }

    let Some(ing) = ing else {
        return Err(IngestError::Csv(CsvError::Parse("empty CSV".into())));
    };
    let cols = stream.cols();
    let (total_bytes, stats) = ing.finish()?;
    if let Some(kp @ KillPoint::AfterFooter) = kill {
        // Crash window between footer write and sidecar cleanup: the
        // stale sidecar is intentionally left behind.
        return Ok(CsvIngestOutcome {
            total_bytes,
            stats,
            resumed_chunks,
            cols,
            killed: Some(kp),
        });
    }
    if job.checkpoint_every > 0 {
        match fs::remove_file(&sidecar) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(IngestError::Io(e)),
        }
    }
    Ok(CsvIngestOutcome {
        total_bytes,
        stats,
        resumed_chunks,
        cols,
        killed: None,
    })
}

/// Lazily create the container ingest on the first committed row (which
/// pins the column count) and push `row` into it.
fn push_lazy(
    ing: &mut Option<ContainerIngest<fs::File>>,
    cfg_hash: &mut u64,
    job: &CsvContainerJob,
    row: &[f64],
) -> Result<(), IngestError> {
    if ing.is_none() {
        let file = fs::File::create(&job.out)?;
        *cfg_hash = ingest_config_hash(row.len(), job.chunk_rows, job.scheme, &job.encode);
        *ing = Some(ContainerIngest::new(
            file,
            row.len(),
            job.chunk_rows,
            job.scheme,
            job.encode,
        )?);
    }
    ing.as_mut().unwrap().push_row(row)?;
    Ok(())
}

enum Restored {
    /// The output is already a complete container; nothing to do.
    Complete(Box<CsvIngestOutcome>),
    /// Writer and source re-opened at the checkpoint watermark.
    At {
        stream: CsvStream,
        ing: Box<ContainerIngest<fs::File>>,
        config_hash: u64,
        chunks: u64,
    },
}

/// Validate the sidecar against the partial output and reconstruct the
/// resume state. `Ok(None)` means "no sidecar: restart from scratch"
/// (a crash before the first checkpoint leaves exactly that).
fn load_container_checkpoint(
    job: &CsvContainerJob,
    sidecar: &Path,
) -> Result<Option<Restored>, IngestError> {
    let ck = match IngestCheckpoint::read(sidecar) {
        Ok(ck) => ck,
        Err(IngestError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if ck.kind != CheckpointKind::Container {
        return Err(IngestError::Checkpoint(
            "sidecar is a store checkpoint, not a container checkpoint".into(),
        ));
    }
    let state = WriterState::from_bytes(&ck.state)?;
    let cols = state.cols().ok_or_else(|| {
        IngestError::Checkpoint("sidecar has no sealed segments to resume from".into())
    })? as usize;
    let want = ingest_config_hash(cols, job.chunk_rows, job.scheme, &job.encode);
    if ck.config_hash != want {
        return Err(IngestError::Checkpoint(format!(
            "workspace config hash {:#018x} does not match the sidecar's {:#018x} \
             (columns, chunk rows, scheme, or encode options changed)",
            want, ck.config_hash
        )));
    }

    // Crash-after-footer: the output may already be complete.
    let bytes = fs::read(&job.out)?;
    if let Ok((footer, _)) = parse_v2_footer(&bytes) {
        let mut stats = IngestStats::default();
        for leaf in footer.leaves() {
            let tag = leaf.scheme.expect("footer leaves carry scheme tags");
            let scheme = scheme_from_tag(tag)
                .ok_or_else(|| IngestError::Checkpoint(format!("unknown scheme tag {tag}")))?;
            stats.note(
                scheme,
                (leaf.row_end - leaf.row_start) as usize,
                (leaf.end - leaf.begin) as usize,
            );
        }
        let chunks = stats.chunks;
        match fs::remove_file(sidecar) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(IngestError::Io(e)),
        }
        return Ok(Some(Restored::Complete(Box::new(CsvIngestOutcome {
            total_bytes: bytes.len() as u64,
            stats,
            resumed_chunks: chunks,
            cols: footer.cols as usize,
            killed: None,
        }))));
    }

    let len = bytes.len() as u64;
    drop(bytes);
    if len < state.offset() {
        return Err(IngestError::Checkpoint(format!(
            "output is {len} bytes but the sidecar watermark is {} — the sidecar outran the file",
            state.offset()
        )));
    }
    // Truncate the torn tail (bytes past the last checkpointed seal) and
    // position the writer at the watermark.
    let mut file = fs::OpenOptions::new().write(true).open(&job.out)?;
    file.set_len(state.offset())?;
    file.seek(SeekFrom::End(0))?;
    let chunks = state.num_segments() as u64;
    let stream = CsvStream::open_at(&job.csv, ck.source_offset, cols)?;
    let ing = ContainerIngest::resume(
        file,
        job.chunk_rows,
        job.scheme,
        job.encode,
        state,
        ck.stats.clone(),
    )?;
    Ok(Some(Restored::At {
        stream,
        ing: Box::new(ing),
        config_hash: ck.config_hash,
        chunks,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use crate::synth::drifting_matrix;
    use toc_formats::container::Container;
    use toc_ml::mgd::BatchProvider;

    #[test]
    fn streamed_container_matches_one_shot_encode() {
        let m = drifting_matrix(130, 6, 3, 9);
        let opts = EncodeOptions::default();
        let one_shot = Container::encode_with(&m, Scheme::Toc, 40, &opts)
            .to_bytes()
            .unwrap();

        let mut sink = Vec::new();
        let mut ing = ContainerIngest::new(&mut sink, 6, 40, Some(Scheme::Toc), opts).unwrap();
        for r in 0..m.rows() {
            ing.push_row(m.row(r)).unwrap();
        }
        let (total, stats) = ing.finish().unwrap();
        assert_eq!(total as usize, sink.len());
        assert_eq!(sink, one_shot);
        assert_eq!(stats.rows, 130);
        assert_eq!(stats.chunks, 4); // 40+40+40+10
    }

    #[test]
    fn store_ingest_appends_visible_decodable_segments() {
        let config = StoreConfig::new(Scheme::Toc, 50, 0).with_shards(2);
        let store = ShardedSpillStore::open_streaming(5, &config).unwrap();
        let m = drifting_matrix(120, 5, 4, 11);

        let mut ing = StoreIngest::new(&store, 50, None, EncodeOptions::default());
        for r in 0..m.rows() {
            ing.push_row(m.row(r), if r % 2 == 0 { 1.0 } else { -1.0 })
                .unwrap();
        }
        assert_eq!(store.num_batches(), 2); // two full chunks sealed so far
        let stats = ing.finish().unwrap();
        assert_eq!(stats.rows, 120);
        assert_eq!(stats.chunks, 3);
        assert_eq!(store.num_batches(), 3);
        assert_eq!(store.appended_batches(), 3);
        assert_eq!(store.appended_bytes(), stats.encoded_bytes);

        // Round-trip every appended segment through the visit path.
        let mut rows_seen = 0;
        for i in 0..store.num_batches() {
            store.visit(i, &mut |b, labels| {
                let dense = b.decode();
                assert_eq!(dense.cols(), 5);
                assert_eq!(labels.len(), dense.rows());
                for r in 0..dense.rows() {
                    assert_eq!(dense.row(r), m.row(rows_seen + r), "row {r} of chunk {i}");
                }
                rows_seen += dense.rows();
            });
        }
        assert_eq!(rows_seen, 120);
    }

    #[test]
    fn second_store_ingest_is_rejected_while_first_is_live() {
        let config = StoreConfig::new(Scheme::Toc, 50, 0).with_shards(2);
        let store = ShardedSpillStore::open_streaming(4, &config).unwrap();
        let ing = StoreIngest::new(&store, 16, Some(Scheme::Toc), EncodeOptions::default());
        assert!(
            StoreIngest::try_new(&store, 16, Some(Scheme::Toc), EncodeOptions::default()).is_none(),
            "two live StoreIngests on one store must be rejected"
        );
        drop(ing);
        // Releasing the first frees the appender slot.
        assert!(
            StoreIngest::try_new(&store, 16, Some(Scheme::Toc), EncodeOptions::default()).is_some()
        );
    }

    #[test]
    fn workspace_peak_is_flat_in_total_rows() {
        let peak_for = |rows: usize| {
            let m = drifting_matrix(rows, 6, 3, 5);
            let mut ws = EncodeWorkspace::new(6, 32);
            let opts = EncodeOptions::default();
            for r in 0..m.rows() {
                ws.push_row(m.row(r));
                if ws.is_full() {
                    ws.seal(None, &opts).unwrap();
                }
            }
            ws.seal(None, &opts);
            ws.peak_bytes()
        };
        let small = peak_for(64);
        let large = peak_for(64 * 16);
        assert!(small > 0);
        assert!(
            (large as f64) <= 1.1 * small as f64,
            "workspace peak grew with total rows: {small} -> {large}"
        );
    }

    #[test]
    fn sidecar_roundtrips_and_rejects_corruption() {
        let mut stats = IngestStats::default();
        stats.note(Scheme::Toc, 40, 321);
        stats.note(Scheme::Den, 40, 2560);
        stats.note(Scheme::Toc, 40, 330);
        let ck = IngestCheckpoint {
            kind: CheckpointKind::Container,
            config_hash: 0xDEAD_BEEF_0BAD_CAFE,
            source_offset: 12_345,
            stats: stats.clone(),
            state: vec![1, 2, 3, 4, 5],
        };
        let bytes = ck.to_bytes();
        let back = IngestCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.kind, CheckpointKind::Container);
        assert_eq!(back.config_hash, ck.config_hash);
        assert_eq!(back.source_offset, 12_345);
        assert_eq!(back.stats, stats);
        assert_eq!(back.state, vec![1, 2, 3, 4, 5]);

        // One flipped bit anywhere fails the checksum.
        let mut tampered = bytes.clone();
        tampered[7] ^= 0x01;
        assert!(matches!(
            IngestCheckpoint::from_bytes(&tampered),
            Err(IngestError::Checkpoint(_))
        ));
        // Truncation is detected too.
        assert!(matches!(
            IngestCheckpoint::from_bytes(&bytes[..bytes.len() - 3]),
            Err(IngestError::Checkpoint(_))
        ));
    }

    #[test]
    fn config_hash_pins_every_knob() {
        let base = ingest_config_hash(6, 40, Some(Scheme::Toc), &EncodeOptions::default());
        assert_eq!(
            base,
            ingest_config_hash(6, 40, Some(Scheme::Toc), &EncodeOptions::default())
        );
        assert_ne!(
            base,
            ingest_config_hash(7, 40, Some(Scheme::Toc), &EncodeOptions::default())
        );
        assert_ne!(
            base,
            ingest_config_hash(6, 41, Some(Scheme::Toc), &EncodeOptions::default())
        );
        assert_ne!(
            base,
            ingest_config_hash(6, 40, None, &EncodeOptions::default())
        );
        let mut greedy = EncodeOptions::default();
        greedy.cla = toc_formats::ClaOptions::greedy();
        assert_ne!(base, ingest_config_hash(6, 40, Some(Scheme::Toc), &greedy));
    }
}
