//! Streaming row ingestion: bounded-memory chunked encode into a live
//! store or a seekable `.tocz` container.
//!
//! Every other build path in this crate materializes the full dataset
//! before the first batch is encoded. This module inverts that: rows
//! arrive one at a time (CSV, a synth generator, a socket), stage in a
//! reusable [`EncodeWorkspace`] bounded by `chunk_rows × cols`, and each
//! full chunk is *sealed* — scheme chosen per chunk via
//! [`toc_formats::pick_scheme`] over [`Scheme::AUTO_SET`] (or fixed),
//! encoded, and appended to its sink — after which the staging buffers
//! are handed back for the next chunk. Peak ingest memory is therefore a
//! function of the chunk shape alone, never of how many rows flow
//! through; [`EncodeWorkspace::peak_bytes`] tracks the high-water mark so
//! tests and the `ingest_scaling` bench gate can assert exactly that.
//!
//! Two sinks:
//!
//! * [`StoreIngest`] appends sealed segments to a *live*
//!   [`ShardedSpillStore`] ([`ShardedSpillStore::append_sealed`]) while
//!   trainers, tenant readers and the adaptive migrator run concurrently
//!   — the online-training path ([`toc_ml::mgd::Trainer::train_online`],
//!   `toc train --follow`).
//! * [`ContainerIngest`] streams sealed segments through a
//!   [`ContainerStreamWriter`], so a finished stream is a valid seekable
//!   v2 `.tocz` — byte-identical to the one-shot
//!   [`toc_formats::container::Container`] encode of the same rows
//!   (`toc ingest`).
//!
//! Chunking changes *where* segment boundaries fall, never what a chunk
//! of given rows encodes to: sealing is deterministic in the staged
//! values, which is what the ingest proptests pin down.

use toc_formats::container::{ContainerStreamWriter, ZoneMap};
use toc_formats::{pick_scheme, AnyBatch, EncodeOptions, MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;
use toc_ml::mgd::BatchProvider;

use crate::store::ShardedSpillStore;

/// A reusable staging-and-encode workspace: holds up to `chunk_rows`
/// rows, seals them into one encoded segment, and takes its buffer back
/// afterwards. The buffer never grows past `chunk_rows × cols` values,
/// so the workspace's high-water mark ([`EncodeWorkspace::peak_bytes`])
/// is independent of the total number of rows ever pushed — the
/// bounded-memory property streaming ingestion is built on.
pub struct EncodeWorkspace {
    cols: usize,
    chunk_rows: usize,
    stage: Vec<f64>,
    staged_rows: usize,
    peak_bytes: usize,
}

/// One sealed chunk: the per-chunk scheme choice, the encoded segment,
/// and the zone map computed from the staged rows *before* encoding —
/// the same order [`toc_formats::container::Container::encode_with`]
/// uses, which is what makes the streamed container byte-identical to
/// the one-shot encode.
pub struct SealedChunk {
    pub scheme: Scheme,
    pub batch: AnyBatch,
    pub zone: ZoneMap,
    pub rows: usize,
}

impl EncodeWorkspace {
    pub fn new(cols: usize, chunk_rows: usize) -> Self {
        assert!(cols > 0, "ingest needs at least one column");
        assert!(chunk_rows > 0, "ingest needs at least one row per chunk");
        Self {
            cols,
            chunk_rows,
            stage: Vec::with_capacity(cols * chunk_rows),
            staged_rows: 0,
            peak_bytes: 0,
        }
    }

    /// Stage one row. Panics if the row width disagrees with the
    /// workspace or the chunk is already full (callers seal on
    /// [`EncodeWorkspace::is_full`]).
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row width mismatch");
        assert!(self.staged_rows < self.chunk_rows, "chunk already full");
        self.stage.extend_from_slice(row);
        self.staged_rows += 1;
    }

    pub fn is_full(&self) -> bool {
        self.staged_rows >= self.chunk_rows
    }

    pub fn staged_rows(&self) -> usize {
        self.staged_rows
    }

    /// Seal the staged rows into one encoded segment: compute the zone
    /// map, pick the scheme (`None` = per-chunk auto over
    /// [`Scheme::AUTO_SET`]), encode, and reclaim the staging buffer.
    /// Returns `None` when nothing is staged.
    pub fn seal(&mut self, scheme: Option<Scheme>, opts: &EncodeOptions) -> Option<SealedChunk> {
        if self.staged_rows == 0 {
            return None;
        }
        let rows = self.staged_rows;
        let dense = DenseMatrix::from_vec(rows, self.cols, std::mem::take(&mut self.stage));
        let zone = ZoneMap::compute(&dense, opts.cla.sample_rows);
        let picked = scheme.unwrap_or_else(|| pick_scheme(&dense, &Scheme::AUTO_SET, opts));
        let batch = picked.encode_with(&dense, opts);
        // Reclaim the staging allocation: the dense matrix wrapped our
        // buffer, so taking it back means steady-state ingestion never
        // reallocates the stage.
        self.stage = dense.into_data();
        self.stage.clear();
        self.staged_rows = 0;
        // High-water mark of what this workspace held at the seal point:
        // the staging buffer plus the sealed segment it produced.
        let used = self.stage.capacity() * std::mem::size_of::<f64>() + batch.size_bytes();
        self.peak_bytes = self.peak_bytes.max(used);
        Some(SealedChunk {
            scheme: picked,
            batch,
            zone,
            rows,
        })
    }

    /// High-water mark, in bytes, of the staging buffer plus the largest
    /// sealed segment. Flat in the total row count by construction.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }
}

/// Counters reported by both ingest drivers (the CLI prints them as the
/// machine-parseable `ingest:` line).
#[derive(Clone, Debug, Default)]
pub struct IngestStats {
    /// Rows sealed into segments.
    pub rows: u64,
    /// Segments sealed.
    pub chunks: u64,
    /// Encoded bytes across all sealed segments.
    pub encoded_bytes: u64,
    /// Workspace high-water mark ([`EncodeWorkspace::peak_bytes`]).
    pub peak_workspace_bytes: usize,
    /// Sealed-segment count per scheme, in first-seen order — with
    /// per-chunk auto-pick over a drifting stream this is where the
    /// choice visibly changes.
    pub scheme_counts: Vec<(Scheme, u64)>,
}

impl IngestStats {
    fn note(&mut self, scheme: Scheme, rows: usize, encoded: usize) {
        self.rows += rows as u64;
        self.chunks += 1;
        self.encoded_bytes += encoded as u64;
        match self.scheme_counts.iter_mut().find(|(s, _)| *s == scheme) {
            Some((_, n)) => *n += 1,
            None => self.scheme_counts.push((scheme, 1)),
        }
    }

    /// `NAME:count` pairs joined with `,` — e.g. `TOC:3,DEN:1`.
    pub fn scheme_summary(&self) -> String {
        self.scheme_counts
            .iter()
            .map(|(s, n)| format!("{}:{n}", s.name()))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Streams rows into a *live* [`ShardedSpillStore`]: every full chunk is
/// sealed and appended ([`ShardedSpillStore::append_sealed`]), becoming
/// visible to concurrent trainers atomically. The store must have shard
/// files ([`ShardedSpillStore::open_streaming`]).
pub struct StoreIngest<'a> {
    store: &'a ShardedSpillStore,
    ws: EncodeWorkspace,
    labels: Vec<f64>,
    scheme: Option<Scheme>,
    encode: EncodeOptions,
    stats: IngestStats,
}

impl<'a> StoreIngest<'a> {
    pub fn new(
        store: &'a ShardedSpillStore,
        chunk_rows: usize,
        scheme: Option<Scheme>,
        encode: EncodeOptions,
    ) -> Self {
        Self {
            ws: EncodeWorkspace::new(store.num_features(), chunk_rows),
            store,
            labels: Vec::with_capacity(chunk_rows),
            scheme,
            encode,
            stats: IngestStats::default(),
        }
    }

    /// Stage one row (features + its ±1 label); seals and appends the
    /// chunk when it fills.
    pub fn push_row(&mut self, features: &[f64], label: f64) -> std::io::Result<()> {
        self.ws.push_row(features);
        self.labels.push(label);
        if self.ws.is_full() {
            self.seal_chunk()?;
        }
        Ok(())
    }

    fn seal_chunk(&mut self) -> std::io::Result<()> {
        let Some(sealed) = self.ws.seal(self.scheme, &self.encode) else {
            return Ok(());
        };
        let bytes = sealed.batch.to_bytes();
        let labels = std::mem::take(&mut self.labels);
        self.labels.reserve(self.ws.chunk_rows);
        self.store.append_sealed(&bytes, labels)?;
        self.stats.note(sealed.scheme, sealed.rows, bytes.len());
        Ok(())
    }

    /// Seal any partial final chunk and report the ingest counters.
    pub fn finish(mut self) -> std::io::Result<IngestStats> {
        self.seal_chunk()?;
        self.stats.peak_workspace_bytes = self.ws.peak_bytes();
        Ok(self.stats)
    }
}

/// Streams rows into a seekable v2 `.tocz` through
/// [`ContainerStreamWriter`]: chunk = container segment. Rows carry all
/// columns (the label column stays in the matrix, exactly like
/// [`ShardedSpillStore::build_from_container`] expects to read it back).
pub struct ContainerIngest<W: std::io::Write> {
    writer: ContainerStreamWriter<W>,
    ws: EncodeWorkspace,
    scheme: Option<Scheme>,
    encode: EncodeOptions,
    stats: IngestStats,
}

impl<W: std::io::Write> ContainerIngest<W> {
    pub fn new(
        sink: W,
        cols: usize,
        chunk_rows: usize,
        scheme: Option<Scheme>,
        encode: EncodeOptions,
    ) -> Result<Self, String> {
        Ok(Self {
            writer: ContainerStreamWriter::new(sink)?,
            ws: EncodeWorkspace::new(cols, chunk_rows),
            scheme,
            encode,
            stats: IngestStats::default(),
        })
    }

    /// Stage one full-width row; seals and writes the segment when the
    /// chunk fills.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), String> {
        self.ws.push_row(row);
        if self.ws.is_full() {
            self.seal_chunk()?;
        }
        Ok(())
    }

    fn seal_chunk(&mut self) -> Result<(), String> {
        let Some(sealed) = self.ws.seal(self.scheme, &self.encode) else {
            return Ok(());
        };
        let before = self.writer.bytes_written();
        self.writer.append(&sealed.batch, sealed.zone)?;
        let wire = (self.writer.bytes_written() - before) as usize;
        self.stats.note(sealed.scheme, sealed.rows, wire);
        Ok(())
    }

    /// Seal any partial final chunk, write the layout-tree footer and
    /// postscript, and report `(total container bytes, counters)`.
    pub fn finish(mut self) -> Result<(u64, IngestStats), String> {
        self.seal_chunk()?;
        self.stats.peak_workspace_bytes = self.ws.peak_bytes();
        let total = self.writer.finish()?;
        Ok((total, self.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use crate::synth::drifting_matrix;
    use toc_formats::container::Container;
    use toc_ml::mgd::BatchProvider;

    #[test]
    fn streamed_container_matches_one_shot_encode() {
        let m = drifting_matrix(130, 6, 3, 9);
        let opts = EncodeOptions::default();
        let one_shot = Container::encode_with(&m, Scheme::Toc, 40, &opts)
            .to_bytes()
            .unwrap();

        let mut sink = Vec::new();
        let mut ing = ContainerIngest::new(&mut sink, 6, 40, Some(Scheme::Toc), opts).unwrap();
        for r in 0..m.rows() {
            ing.push_row(m.row(r)).unwrap();
        }
        let (total, stats) = ing.finish().unwrap();
        assert_eq!(total as usize, sink.len());
        assert_eq!(sink, one_shot);
        assert_eq!(stats.rows, 130);
        assert_eq!(stats.chunks, 4); // 40+40+40+10
    }

    #[test]
    fn store_ingest_appends_visible_decodable_segments() {
        let config = StoreConfig::new(Scheme::Toc, 50, 0).with_shards(2);
        let store = ShardedSpillStore::open_streaming(5, &config).unwrap();
        let m = drifting_matrix(120, 5, 4, 11);

        let mut ing = StoreIngest::new(&store, 50, None, EncodeOptions::default());
        for r in 0..m.rows() {
            ing.push_row(m.row(r), if r % 2 == 0 { 1.0 } else { -1.0 })
                .unwrap();
        }
        assert_eq!(store.num_batches(), 2); // two full chunks sealed so far
        let stats = ing.finish().unwrap();
        assert_eq!(stats.rows, 120);
        assert_eq!(stats.chunks, 3);
        assert_eq!(store.num_batches(), 3);
        assert_eq!(store.appended_batches(), 3);
        assert_eq!(store.appended_bytes(), stats.encoded_bytes);

        // Round-trip every appended segment through the visit path.
        let mut rows_seen = 0;
        for i in 0..store.num_batches() {
            store.visit(i, &mut |b, labels| {
                let dense = b.decode();
                assert_eq!(dense.cols(), 5);
                assert_eq!(labels.len(), dense.rows());
                for r in 0..dense.rows() {
                    assert_eq!(dense.row(r), m.row(rows_seen + r), "row {r} of chunk {i}");
                }
                rows_seen += dense.rows();
            });
        }
        assert_eq!(rows_seen, 120);
    }

    #[test]
    fn workspace_peak_is_flat_in_total_rows() {
        let peak_for = |rows: usize| {
            let m = drifting_matrix(rows, 6, 3, 5);
            let mut ws = EncodeWorkspace::new(6, 32);
            let opts = EncodeOptions::default();
            for r in 0..m.rows() {
                ws.push_row(m.row(r));
                if ws.is_full() {
                    ws.seal(None, &opts).unwrap();
                }
            }
            ws.seal(None, &opts);
            ws.peak_bytes()
        };
        let small = peak_for(64);
        let large = peak_for(64 * 16);
        assert!(small > 0);
        assert!(
            (large as f64) <= 1.1 * small as f64,
            "workspace peak grew with total rows: {small} -> {large}"
        );
    }
}
