#![forbid(unsafe_code)]
//! # toc-data — synthetic datasets and the out-of-core mini-batch store
//!
//! [`synth`] generates datasets whose sparsity, distinct-value counts and
//! cross-row redundancy match the profiles of the paper's six evaluation
//! datasets (Table 5). [`store`] holds the memory-budgeted batch stores
//! with real disk spill that reproduce the in-memory/out-of-core regimes
//! of the end-to-end experiments (Tables 6–7, Figures 9–11): the
//! single-file [`MiniBatchStore`] and the sharded, prefetching
//! [`ShardedSpillStore`]. [`io`] is the async spill-IO seam underneath —
//! a submission/completion [`SpillIo`] trait with a portable worker-pool
//! backend and a coalescing ring backend — and [`testing`] provides a
//! fault-injecting engine double for adversarial scheduling tests.
//! [`serve`] layers the multi-tenant job server on top: many concurrent
//! training jobs over one shared store and one heat-aware compressed
//! batch cache.

pub mod csv;
pub mod ingest;
pub mod io;
pub mod serve;
pub mod store;
pub mod synth;
pub mod testing;

pub use csv::{follow_rows, stream_rows, CsvError, CsvStream, FollowOptions};
pub use ingest::{
    ingest_csv_container, sidecar_path, CheckpointKind, ContainerIngest, CsvContainerJob,
    CsvIngestOutcome, EncodeWorkspace, IngestCheckpoint, IngestError, IngestStats, StoreIngest,
};

pub use io::{
    BandwidthProfile, DeviceProfile, IoEngineKind, IoSnapshot, IoStats, LatencyHistogram, Pinning,
    SchedulerConfig, SeekableContainer, SpillIo, LATENCY_BUCKETS,
};
pub use serve::{BatchCache, JobOutcome, JobServer, JobSpec, ServeConfig, TenantProvider};
pub use store::{
    place_spilled, plan_adaptive, MiniBatchStore, PlacementReport, ShardPlacement,
    ShardedSpillStore, StoreConfig,
};
pub use synth::{
    drifting_matrix, generate, generate_preset, Dataset, DatasetPreset, SynthConfig, TaskKind,
};
pub use testing::{FaultPlan, FaultStats};
