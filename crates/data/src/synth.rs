//! Synthetic dataset generators matched to the six evaluation datasets of
//! Table 5.
//!
//! The real datasets are not redistributable here, so each preset controls
//! the three axes that drive every compression scheme in the comparison:
//!
//! 1. **sparsity** (zero fraction) — drives CSR/sparse encoding,
//! 2. **distinct-value count** — drives value indexing (CVI/DVI) and the
//!    TOC first layer,
//! 3. **cross-row repetition of column-value subsequences** ("motifs") —
//!    drives the TOC logical encoding, CLA co-coding and the GC schemes.
//!
//! The presets also cover the two regimes where TOC intentionally loses
//! (Figure 5): `Rcv1Like` (extreme sparsity, unique values → CSR wins) and
//! `DeepLike` (dense unique doubles → nothing compresses).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use toc_linalg::DenseMatrix;

/// Classification task attached to a generated dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TaskKind {
    /// Binary labels in `{-1, +1}` from a hidden linear model plus label
    /// noise.
    Binary { noise: f64 },
    /// `classes` labels from argmax of hidden linear scorers.
    MultiClass { classes: usize },
}

/// How non-verbatim motif rows are produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PerturbKind {
    /// Re-randomize ~30% of the cells independently (kills subsequence
    /// repetition: the regime where TOC's logical encoding gains little,
    /// like Mnist).
    Random,
    /// Splice two motifs at a random cut point (rows still consist of
    /// shared column-value subsequences, like categorical enterprise data:
    /// Census / Kdd99).
    Crossover,
}

/// Full generator specification.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    pub rows: usize,
    pub cols: usize,
    /// Fraction of non-zero cells (Table 5 "sparsity").
    pub density: f64,
    /// Number of distinct non-zero values; 0 = fresh random doubles
    /// (incompressible by value indexing).
    pub value_pool: usize,
    /// Number of row templates; 0 = fully i.i.d. rows.
    pub motifs: usize,
    /// Probability that a motif row is copied verbatim.
    pub motif_fidelity: f64,
    /// What happens to the other rows.
    pub perturb: PerturbKind,
    /// Distinct values each column may take (0 = the whole pool).
    /// Small domains mimic categorical/quantized columns.
    pub column_domain: usize,
    /// Place non-zeros in contiguous runs (image-like "strokes") instead of
    /// i.i.d. cells. Long zero runs are what byte compressors exploit on
    /// pixel data.
    pub clustered: bool,
    pub task: TaskKind,
    pub seed: u64,
}

/// The six dataset presets of Table 5 (dimensions scaled to laptop size;
/// sparsity and redundancy structure preserved).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetPreset {
    /// US Census: 68 cols, moderate sparsity (0.43), heavily categorical
    /// (small value pool, strong row motifs).
    CensusLike,
    /// ImageNet features: 900 cols, sparsity 0.31, moderate redundancy.
    ImagenetLike,
    /// Mnist8m pixels: 784 cols, sparsity 0.25, weaker subsequence
    /// repetition (the dataset where Gzip beats TOC in Figure 5) and 10
    /// classes.
    MnistLike,
    /// Kdd99: 42 cols, sparsity 0.39, extremely repetitive (TOC's best
    /// case, ~51x).
    Kdd99Like,
    /// Rcv1: extremely sparse tf-idf vectors with unique values (CSR's
    /// best case). Column count scaled from 47236 to 4000.
    Rcv1Like,
    /// Deep1Billion descriptors: fully dense unique doubles (nothing
    /// compresses; Table 5 sparsity 1.0).
    DeepLike,
}

impl DatasetPreset {
    /// All six presets, in the paper's order.
    pub const ALL: [DatasetPreset; 6] = [
        DatasetPreset::CensusLike,
        DatasetPreset::ImagenetLike,
        DatasetPreset::MnistLike,
        DatasetPreset::Kdd99Like,
        DatasetPreset::Rcv1Like,
        DatasetPreset::DeepLike,
    ];

    /// The four moderate-sparsity presets used in the end-to-end runs.
    pub const MODERATE: [DatasetPreset; 4] = [
        DatasetPreset::CensusLike,
        DatasetPreset::ImagenetLike,
        DatasetPreset::MnistLike,
        DatasetPreset::Kdd99Like,
    ];

    pub fn name(self) -> &'static str {
        match self {
            DatasetPreset::CensusLike => "census",
            DatasetPreset::ImagenetLike => "imagenet",
            DatasetPreset::MnistLike => "mnist",
            DatasetPreset::Kdd99Like => "kdd99",
            DatasetPreset::Rcv1Like => "rcv1",
            DatasetPreset::DeepLike => "deep1b",
        }
    }

    /// Generator configuration for `rows` rows.
    pub fn config(self, rows: usize, seed: u64) -> SynthConfig {
        match self {
            DatasetPreset::CensusLike => SynthConfig {
                rows,
                cols: 68,
                density: 0.43,
                value_pool: 12,
                motifs: 12,
                motif_fidelity: 0.96,
                perturb: PerturbKind::Crossover,
                column_domain: 3,
                clustered: false,
                task: TaskKind::Binary { noise: 0.05 },
                seed,
            },
            DatasetPreset::ImagenetLike => SynthConfig {
                rows,
                cols: 900,
                density: 0.31,
                value_pool: 24,
                motifs: 48,
                motif_fidelity: 0.8,
                perturb: PerturbKind::Crossover,
                column_domain: 3,
                clustered: false,
                task: TaskKind::Binary { noise: 0.05 },
                seed,
            },
            DatasetPreset::MnistLike => SynthConfig {
                rows,
                cols: 784,
                density: 0.25,
                value_pool: 48,
                motifs: 90,
                motif_fidelity: 0.1,
                perturb: PerturbKind::Crossover,
                column_domain: 6,
                clustered: true,
                task: TaskKind::MultiClass { classes: 10 },
                seed,
            },
            DatasetPreset::Kdd99Like => SynthConfig {
                rows,
                cols: 42,
                density: 0.39,
                value_pool: 6,
                motifs: 5,
                motif_fidelity: 0.99,
                perturb: PerturbKind::Crossover,
                column_domain: 3,
                clustered: false,
                task: TaskKind::Binary { noise: 0.02 },
                seed,
            },
            DatasetPreset::Rcv1Like => SynthConfig {
                rows,
                cols: 4000,
                density: 0.0016,
                value_pool: 0,
                motifs: 0,
                motif_fidelity: 0.0,
                perturb: PerturbKind::Random,
                column_domain: 0,
                clustered: false,
                task: TaskKind::Binary { noise: 0.05 },
                seed,
            },
            DatasetPreset::DeepLike => SynthConfig {
                rows,
                cols: 96,
                density: 1.0,
                value_pool: 0,
                motifs: 0,
                motif_fidelity: 0.0,
                perturb: PerturbKind::Random,
                column_domain: 0,
                clustered: false,
                task: TaskKind::Binary { noise: 0.05 },
                seed,
            },
        }
    }
}

/// A generated dataset: features plus labels in the `toc-ml` convention
/// (binary `±1`, or class index as `f64`).
#[derive(Clone, Debug)]
pub struct Dataset {
    pub x: DenseMatrix,
    pub labels: Vec<f64>,
    /// 2 for binary, k for multiclass.
    pub classes: usize,
}

impl Dataset {
    /// Split into contiguous mini-batches of `batch_rows` (the data is
    /// generated i.i.d., so contiguous slicing is a valid shuffle-once).
    pub fn minibatches(&self, batch_rows: usize) -> Vec<(DenseMatrix, Vec<f64>)> {
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.x.rows() {
            let end = (start + batch_rows).min(self.x.rows());
            out.push((
                self.x.slice_rows(start, end),
                self.labels[start..end].to_vec(),
            ));
            start = end;
        }
        out
    }
}

/// Generate a dataset from a config.
pub fn generate(config: &SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Value pool (empty = unique values per cell). Each column draws from
    // a small per-column domain, like categorical/quantized real data —
    // this keeps the distinct column:value pair count realistic.
    let pool: Vec<f64> = (0..config.value_pool)
        .map(|_| (rng.gen_range(1..64) as f64) * 0.25)
        .collect();
    let domain = if config.column_domain == 0 {
        pool.len().max(1)
    } else {
        config.column_domain.min(pool.len().max(1))
    };
    let mut draw_value = |rng: &mut StdRng, col: usize| -> f64 {
        if pool.is_empty() {
            rng.gen_range(-2.0..2.0)
        } else {
            pool[(col.wrapping_mul(31) + rng.gen_range(0..domain)) % pool.len()]
        }
    };

    // Row templates.
    let gen_row = |rng: &mut StdRng, draw: &mut dyn FnMut(&mut StdRng, usize) -> f64| -> Vec<f64> {
        if config.density < 0.02 {
            // Extreme sparsity: place ~density*cols non-zeros directly.
            let nnz = ((config.cols as f64 * config.density).round() as usize).max(1);
            let mut row = vec![0.0; config.cols];
            for _ in 0..nnz {
                let c = rng.gen_range(0..config.cols);
                row[c] = draw(rng, c);
            }
            row
        } else if config.clustered {
            // Stroke-like runs: contiguous non-zero segments separated
            // by long zero gaps, as in centered image data.
            let seg_len = 12usize.min(config.cols);
            let nnz_target = (config.cols as f64 * config.density) as usize;
            let n_segs = (nnz_target / seg_len).max(1);
            let mut row = vec![0.0; config.cols];
            for _ in 0..n_segs {
                let start = rng.gen_range(0..config.cols.saturating_sub(seg_len) + 1);
                #[allow(clippy::needless_range_loop)] // c feeds both row and draw
                for c in start..start + seg_len {
                    row[c] = draw(rng, c);
                }
            }
            row
        } else {
            (0..config.cols)
                .map(|c| {
                    if rng.gen::<f64>() < config.density {
                        draw(rng, c)
                    } else {
                        0.0
                    }
                })
                .collect()
        }
    };

    let motifs: Vec<Vec<f64>> = (0..config.motifs)
        .map(|_| gen_row(&mut rng, &mut draw_value))
        .collect();

    let mut x = DenseMatrix::zeros(config.rows, config.cols);
    for r in 0..config.rows {
        let row: Vec<f64> = if motifs.is_empty() {
            gen_row(&mut rng, &mut draw_value)
        } else {
            let base = &motifs[rng.gen_range(0..motifs.len())];
            if rng.gen::<f64>() < config.motif_fidelity {
                base.clone()
            } else {
                match config.perturb {
                    PerturbKind::Random => {
                        // Re-randomize ~30% of the cells, preserving the
                        // sparsity level.
                        base.iter()
                            .enumerate()
                            .map(|(c, &v)| {
                                if rng.gen::<f64>() < 0.3 {
                                    if rng.gen::<f64>() < config.density {
                                        draw_value(&mut rng, c)
                                    } else {
                                        0.0
                                    }
                                } else {
                                    v
                                }
                            })
                            .collect()
                    }
                    PerturbKind::Crossover => {
                        // Splice two motifs: the row is new, but every
                        // column-value subsequence in it is shared.
                        let other = &motifs[rng.gen_range(0..motifs.len())];
                        let cut = rng.gen_range(0..=config.cols);
                        let mut row = base.clone();
                        row[cut..].copy_from_slice(&other[cut..]);
                        row
                    }
                }
            }
        };
        x.row_mut(r).copy_from_slice(&row);
    }

    // Labels from hidden linear scorers.
    let (labels, classes) = match config.task {
        TaskKind::Binary { noise } => {
            let truth: Vec<f64> = (0..config.cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let scores = x.matvec(&truth);
            let median = {
                let mut s = scores.clone();
                s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                s[s.len() / 2]
            };
            let labels = scores
                .iter()
                .map(|&s| {
                    let y = if s >= median { 1.0 } else { -1.0 };
                    if rng.gen::<f64>() < noise {
                        -y
                    } else {
                        y
                    }
                })
                .collect();
            (labels, 2)
        }
        TaskKind::MultiClass { classes } => {
            let scorers: Vec<Vec<f64>> = (0..classes)
                .map(|_| (0..config.cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect();
            let per_class: Vec<Vec<f64>> = scorers.iter().map(|s| x.matvec(s)).collect();
            let labels = (0..config.rows)
                .map(|r| {
                    let mut best = 0usize;
                    for k in 1..classes {
                        if per_class[k][r] > per_class[best][r] {
                            best = k;
                        }
                    }
                    best as f64
                })
                .collect();
            (labels, classes)
        }
    };

    Dataset { x, labels, classes }
}

/// Convenience: generate a preset at a given scale.
pub fn generate_preset(preset: DatasetPreset, rows: usize, seed: u64) -> Dataset {
    generate(&preset.config(rows, seed))
}

/// A wide matrix with *non-adjacent* correlated column pairs: column
/// `c + cols/2` is a deterministic function of column `c`, while columns
/// within each half are mutually independent draws from `distinct`-value
/// pools. This is the regime where CLA's sample-based co-coding planner
/// beats greedy left-to-right grouping (the paper's fig5/fig6 wide-matrix
/// setting): greedy can only merge neighbors — which are independent here,
/// so merging inflates the dictionary — while the planner pairs each
/// column with its distant partner.
///
/// `cols` must be even; `distinct` per-column values are drawn from a
/// seeded pool so the output is reproducible.
pub fn correlated_matrix(rows: usize, cols: usize, distinct: usize, seed: u64) -> DenseMatrix {
    assert!(
        cols.is_multiple_of(2),
        "correlated_matrix needs an even column count"
    );
    assert!(distinct >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let half = cols / 2;
    // Per-column value pools: distinct values, distinct across columns.
    let pools: Vec<Vec<f64>> = (0..half)
        .map(|c| {
            (0..distinct)
                .map(|k| (c * distinct + k) as f64 * 0.5 + rng.gen_range(0.0..0.25))
                .collect()
        })
        .collect();
    let mut m = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        for (c, pool) in pools.iter().enumerate() {
            let k = rng.gen_range(0..distinct);
            m.set(r, c, pool[k]);
            // Partner column: a bijection of the left value (offset by a
            // column-specific constant), so the pair's joint cardinality
            // equals `distinct` while the columns' byte patterns differ.
            m.set(r, c + half, pool[k] + 1000.0 * (c + 1) as f64);
        }
    }
    m
}

/// A matrix whose compressibility *drifts* with row position: rows at
/// the head of the stream draw every value from tiny per-column pools
/// (`distinct` values each — dictionary schemes win), rows at the tail
/// draw mostly from a continuous range (dense wins), and the pool-vs-
/// noise mix slides linearly in between. A chunked ingester that picks a
/// scheme per chunk ([`crate::ingest`]) therefore sees its choice change
/// over one stream — the regime the per-chunk planner exists for.
/// Deterministic in `seed`.
pub fn drifting_matrix(rows: usize, cols: usize, distinct: usize, seed: u64) -> DenseMatrix {
    assert!(distinct >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-column value pools, distinct across columns (same construction
    // as `correlated_matrix`).
    let pools: Vec<Vec<f64>> = (0..cols)
        .map(|c| {
            (0..distinct)
                .map(|k| (c * distinct + k) as f64 * 0.5 + rng.gen_range(0.0..0.25))
                .collect()
        })
        .collect();
    let mut m = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        // Fraction of values drawn from the continuous range: 0 at the
        // head of the stream, ~1 at the tail.
        let drift = r as f64 / rows.max(1) as f64;
        for (c, pool) in pools.iter().enumerate() {
            let v = if rng.gen_range(0.0..1.0) < drift {
                rng.gen_range(-4.0..4.0)
            } else {
                pool[rng.gen_range(0..distinct)]
            };
            m.set(r, c, v);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use toc_formats::{MatrixBatch, Scheme};

    #[test]
    fn presets_hit_target_sparsity() {
        for preset in DatasetPreset::ALL {
            let cfg = preset.config(400, 1);
            let ds = generate(&cfg);
            let got = ds.x.density();
            let want = cfg.density;
            let tol = (want * 0.25).max(0.02);
            assert!(
                (got - want).abs() < tol,
                "{}: density {got} vs target {want}",
                preset.name()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_preset(DatasetPreset::CensusLike, 100, 7);
        let b = generate_preset(DatasetPreset::CensusLike, 100, 7);
        assert_eq!(a.x, b.x);
        assert_eq!(a.labels, b.labels);
        let c = generate_preset(DatasetPreset::CensusLike, 100, 8);
        assert_ne!(a.x, c.x);
    }

    #[test]
    fn labels_match_task() {
        let b = generate_preset(DatasetPreset::CensusLike, 200, 3);
        assert!(b.labels.iter().all(|&y| y == 1.0 || y == -1.0));
        assert_eq!(b.classes, 2);
        let m = generate_preset(DatasetPreset::MnistLike, 200, 3);
        assert!(m
            .labels
            .iter()
            .all(|&y| (0.0..10.0).contains(&y) && y.fract() == 0.0));
        assert_eq!(m.classes, 10);
        // Both classes / several classes must actually appear.
        assert!(b.labels.iter().any(|&y| y > 0.0) && b.labels.iter().any(|&y| y < 0.0));
    }

    #[test]
    fn minibatch_split_covers_all_rows() {
        let ds = generate_preset(DatasetPreset::Kdd99Like, 130, 9);
        let batches = ds.minibatches(50);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[2].0.rows(), 30);
        let total: usize = batches.iter().map(|(x, _)| x.rows()).sum();
        assert_eq!(total, 130);
    }

    #[test]
    fn compression_landscape_matches_figure5_shape() {
        // The qualitative orderings the generators must reproduce.
        let batch_rows = 250;
        let ratio = |preset: DatasetPreset, scheme: Scheme| {
            let ds = generate_preset(preset, batch_rows, 11);
            ds.x.den_size_bytes() as f64 / scheme.encode(&ds.x).size_bytes() as f64
        };
        // kdd99-like: TOC >> CSR, strong absolute ratio.
        let kdd_toc = ratio(DatasetPreset::Kdd99Like, Scheme::Toc);
        let kdd_csr = ratio(DatasetPreset::Kdd99Like, Scheme::Csr);
        assert!(
            kdd_toc > 2.0 * kdd_csr,
            "kdd: TOC {kdd_toc} vs CSR {kdd_csr}"
        );
        assert!(kdd_toc > 20.0, "kdd TOC ratio {kdd_toc}");
        // census-like: TOC > CSR.
        let cen_toc = ratio(DatasetPreset::CensusLike, Scheme::Toc);
        let cen_csr = ratio(DatasetPreset::CensusLike, Scheme::Csr);
        assert!(cen_toc > cen_csr, "census: {cen_toc} vs {cen_csr}");
        // rcv1-like: CSR ≈ TOC (within 40%), both >> DEN.
        let rcv_toc = ratio(DatasetPreset::Rcv1Like, Scheme::Toc);
        let rcv_csr = ratio(DatasetPreset::Rcv1Like, Scheme::Csr);
        assert!(rcv_csr > 50.0);
        assert!(
            (rcv_toc / rcv_csr - 1.0).abs() < 0.4,
            "rcv1: {rcv_toc} vs {rcv_csr}"
        );
        // deep-like: nothing achieves a meaningful ratio.
        for scheme in [Scheme::Toc, Scheme::Csr, Scheme::Gzip] {
            let r = ratio(DatasetPreset::DeepLike, scheme);
            assert!(r < 1.3, "{}: {r}", scheme.name());
        }
    }

    #[test]
    fn sampled_cla_planner_beats_greedy_on_correlated_wide_matrix() {
        // The acceptance matrix of the planner_ratio bench bin: 64
        // columns, each correlated with its partner 32 columns away.
        use toc_formats::{ClaOptions, EncodeOptions, MatrixBatch};
        let m = correlated_matrix(2048, 64, 16, 42);
        let den = m.den_size_bytes() as f64;
        let greedy = Scheme::Cla
            .encode_with(
                &m,
                &EncodeOptions {
                    cla: ClaOptions::greedy(),
                },
            )
            .size_bytes() as f64;
        let sampled = Scheme::Cla.encode(&m).size_bytes() as f64;
        assert!(
            den / sampled > den / greedy,
            "sampled ratio {:.2} must beat greedy {:.2}",
            den / sampled,
            den / greedy
        );
        // And the decoded bytes agree with the input exactly.
        let b = Scheme::Cla.encode(&m);
        assert_eq!(b.decode(), m);
    }

    #[test]
    fn correlated_matrix_is_deterministic_and_paired() {
        let a = correlated_matrix(64, 8, 4, 7);
        assert_eq!(a, correlated_matrix(64, 8, 4, 7));
        for r in 0..64 {
            for c in 0..4 {
                assert_eq!(a.get(r, c + 4), a.get(r, c) + 1000.0 * (c + 1) as f64);
            }
        }
    }

    #[test]
    fn mnist_like_weaker_logical_gains_than_kdd() {
        // Fig. 6: logical encoding adds little on mnist, a lot on kdd.
        let gain = |preset: DatasetPreset| {
            let ds = generate_preset(preset, 250, 5);
            let sparse = Scheme::TocSparse.encode(&ds.x).size_bytes() as f64;
            let logical = Scheme::TocSparseLogical.encode(&ds.x).size_bytes() as f64;
            sparse / logical
        };
        let kdd = gain(DatasetPreset::Kdd99Like);
        let mnist = gain(DatasetPreset::MnistLike);
        assert!(kdd > mnist, "logical gain kdd {kdd} vs mnist {mnist}");
    }
}
