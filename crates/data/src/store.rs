//! Memory-budgeted mini-batch store with real disk spill.
//!
//! Reproduces the system regime behind the paper's end-to-end results
//! (Figure 1A/D, §5.3): encoded mini-batches live in memory until a
//! configurable budget is exhausted; the remainder spills to a file and is
//! re-read (real file IO + deserialization) on every visit. Whether a
//! format's batches fit in the budget is exactly what separates TOC from
//! the baselines on the large-scale runs.

use parking_lot::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use toc_formats::{AnyBatch, MatrixBatch, Scheme};
use toc_linalg::DenseMatrix;
use toc_ml::mgd::BatchProvider;

/// Store configuration.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Encoding scheme for all batches.
    pub scheme: Scheme,
    /// Rows per mini-batch (the paper uses 250 for the end-to-end runs).
    pub batch_rows: usize,
    /// Bytes of encoded batches kept in memory; anything beyond spills.
    pub memory_budget: usize,
    /// Spill directory; defaults to a fresh directory under the OS temp dir.
    pub spill_dir: Option<PathBuf>,
    /// Simulated disk read bandwidth in MB/s. The paper's end-to-end runs
    /// read spilled batches from cloud block storage; on a dev box the OS
    /// page cache makes re-reads nearly free, which would hide the IO wall
    /// the experiments measure. `Some(mbps)` adds a delay of
    /// `bytes / mbps` per spilled read on top of the real file IO;
    /// `None` performs raw IO only.
    pub disk_mbps: Option<f64>,
}

impl StoreConfig {
    pub fn new(scheme: Scheme, batch_rows: usize, memory_budget: usize) -> Self {
        Self {
            scheme,
            batch_rows,
            memory_budget,
            spill_dir: None,
            disk_mbps: None,
        }
    }

    /// Builder-style bandwidth override.
    pub fn with_disk_mbps(mut self, mbps: f64) -> Self {
        self.disk_mbps = Some(mbps);
        self
    }
}

enum Location {
    Memory(AnyBatch),
    Disk { offset: u64, len: usize },
}

/// Cumulative IO statistics (updated on every visit).
#[derive(Debug, Default)]
pub struct IoStats {
    pub disk_reads: AtomicU64,
    pub bytes_read: AtomicU64,
}

/// The out-of-core mini-batch store. Implements
/// [`toc_ml::mgd::BatchProvider`], so it plugs directly into the trainer.
pub struct MiniBatchStore {
    scheme: Scheme,
    features: usize,
    entries: Vec<(Location, Vec<f64>)>,
    spill_file: Option<Mutex<File>>,
    spill_path: Option<PathBuf>,
    owns_dir: Option<PathBuf>,
    memory_bytes: usize,
    spilled_bytes: usize,
    disk_mbps: Option<f64>,
    pub stats: IoStats,
}

impl MiniBatchStore {
    /// Encode `x` into mini-batches under `config`, spilling past the
    /// memory budget. `labels` follow the `toc-ml` convention.
    pub fn build(x: &DenseMatrix, labels: &[f64], config: &StoreConfig) -> std::io::Result<Self> {
        assert_eq!(x.rows(), labels.len());
        // First pass: encode every batch and decide memory vs. disk,
        // preserving the original batch order (shuffle-once semantics).
        enum Pending {
            Mem(AnyBatch),
            Disk(Vec<u8>),
        }
        let mut pending: Vec<(Pending, Vec<f64>)> = Vec::new();
        let mut memory_bytes = 0usize;
        let mut any_spilled = false;

        let mut start = 0usize;
        while start < x.rows() {
            let end = (start + config.batch_rows).min(x.rows());
            let dense = x.slice_rows(start, end);
            let batch = config.scheme.encode(&dense);
            let y = labels[start..end].to_vec();
            let size = batch.size_bytes();
            if memory_bytes + size <= config.memory_budget {
                memory_bytes += size;
                pending.push((Pending::Mem(batch), y));
            } else {
                any_spilled = true;
                pending.push((Pending::Disk(batch.to_bytes()), y));
            }
            start = end;
        }

        // Second pass: lay spilled batches out in the spill file, keeping
        // entry order aligned with batch order.
        let mut entries = Vec::with_capacity(pending.len());
        let (spill_file, spill_path, owns_dir, spilled_bytes) = if !any_spilled {
            for (p, y) in pending {
                match p {
                    Pending::Mem(b) => entries.push((Location::Memory(b), y)),
                    Pending::Disk(_) => unreachable!(),
                }
            }
            (None, None, None, 0)
        } else {
            let (dir, owns) = match &config.spill_dir {
                Some(d) => (d.clone(), None),
                None => {
                    let d = std::env::temp_dir().join(format!(
                        "toc-store-{}-{}",
                        std::process::id(),
                        NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
                    ));
                    (d.clone(), Some(d))
                }
            };
            fs::create_dir_all(&dir)?;
            let path = dir.join(format!("spill-{}.bin", config.scheme.tag()));
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .read(true)
                .truncate(true)
                .open(&path)?;
            let mut offset = 0u64;
            let mut total = 0usize;
            for (p, y) in pending {
                match p {
                    Pending::Mem(b) => entries.push((Location::Memory(b), y)),
                    Pending::Disk(bytes) => {
                        f.write_all(&bytes)?;
                        entries.push((
                            Location::Disk {
                                offset,
                                len: bytes.len(),
                            },
                            y,
                        ));
                        offset += bytes.len() as u64;
                        total += bytes.len();
                    }
                }
            }
            f.sync_all()?;
            f.seek(SeekFrom::Start(0))?;
            (Some(Mutex::new(f)), Some(path), owns, total)
        };

        Ok(Self {
            scheme: config.scheme,
            features: x.cols(),
            entries,
            spill_file,
            spill_path,
            owns_dir,
            memory_bytes,
            spilled_bytes,
            disk_mbps: config.disk_mbps,
            stats: IoStats::default(),
        })
    }

    /// Number of batches kept in memory.
    pub fn in_memory_batches(&self) -> usize {
        self.entries
            .iter()
            .filter(|(l, _)| matches!(l, Location::Memory(_)))
            .count()
    }

    /// Number of batches on disk.
    pub fn spilled_batches(&self) -> usize {
        self.entries.len() - self.in_memory_batches()
    }

    /// Bytes of encoded batches resident in memory.
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Bytes of encoded batches on disk.
    pub fn spilled_bytes(&self) -> usize {
        self.spilled_bytes
    }

    /// Total encoded footprint.
    pub fn total_bytes(&self) -> usize {
        self.memory_bytes + self.spilled_bytes
    }

    /// The scheme this store encodes with.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    fn read_disk(&self, offset: u64, len: usize) -> AnyBatch {
        let file = self
            .spill_file
            .as_ref()
            .expect("disk entry without spill file");
        let mut buf = vec![0u8; len];
        {
            let mut f = file.lock();
            f.seek(SeekFrom::Start(offset)).expect("seek spill file");
            f.read_exact(&mut buf).expect("read spill file");
        }
        if let Some(mbps) = self.disk_mbps {
            // Model the target storage bandwidth (see `StoreConfig`).
            std::thread::sleep(std::time::Duration::from_secs_f64(
                len as f64 / (mbps * 1e6),
            ));
        }
        self.stats.disk_reads.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_read
            .fetch_add(len as u64, Ordering::Relaxed);
        Scheme::from_bytes(&buf).expect("spill file corrupted")
    }
}

static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(0);

impl BatchProvider for MiniBatchStore {
    fn num_batches(&self) -> usize {
        self.entries.len()
    }

    fn num_features(&self) -> usize {
        self.features
    }

    fn visit(&self, idx: usize, f: &mut dyn FnMut(&AnyBatch, &[f64])) {
        let (loc, labels) = &self.entries[idx];
        match loc {
            Location::Memory(b) => f(b, labels),
            Location::Disk { offset, len } => {
                let b = self.read_disk(*offset, *len);
                f(&b, labels);
            }
        }
    }
}

impl Drop for MiniBatchStore {
    fn drop(&mut self) {
        // Best-effort cleanup of the spill artifacts we created.
        self.spill_file = None;
        if let Some(p) = &self.spill_path {
            let _ = fs::remove_file(p);
        }
        if let Some(d) = &self.owns_dir {
            let _ = fs::remove_dir(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_preset, DatasetPreset};

    fn dataset() -> (DenseMatrix, Vec<f64>) {
        let ds = generate_preset(DatasetPreset::CensusLike, 600, 21);
        (ds.x, ds.labels)
    }

    #[test]
    fn everything_fits_with_big_budget() {
        let (x, y) = dataset();
        let store =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Toc, 100, usize::MAX)).unwrap();
        assert_eq!(store.num_batches(), 6);
        assert_eq!(store.spilled_batches(), 0);
        assert_eq!(store.stats.disk_reads.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn zero_budget_spills_everything_and_roundtrips() {
        let (x, y) = dataset();
        for scheme in [Scheme::Toc, Scheme::Den, Scheme::Gzip, Scheme::Cla] {
            let store = MiniBatchStore::build(&x, &y, &StoreConfig::new(scheme, 150, 0)).unwrap();
            assert_eq!(store.spilled_batches(), 4, "{}", scheme.name());
            // Visiting a spilled batch does real IO and returns the exact
            // batch content.
            store.visit(2, &mut |b, labels| {
                assert_eq!(b.decode(), x.slice_rows(300, 450));
                assert_eq!(labels, &y[300..450]);
            });
            assert!(store.stats.disk_reads.load(Ordering::Relaxed) >= 1);
        }
    }

    #[test]
    fn partial_budget_splits_memory_and_disk() {
        let (x, y) = dataset();
        let probe =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Csr, 100, usize::MAX)).unwrap();
        let half = probe.memory_bytes() / 2;
        let store =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Csr, 100, half)).unwrap();
        assert!(store.in_memory_batches() >= 1);
        assert!(store.spilled_batches() >= 1);
        assert_eq!(store.in_memory_batches() + store.spilled_batches(), 6);
        // All batches still decode correctly.
        for i in 0..store.num_batches() {
            store.visit(i, &mut |b, _| {
                assert_eq!(b.decode(), x.slice_rows(i * 100, (i + 1) * 100));
            });
        }
    }

    #[test]
    fn toc_fits_where_den_spills() {
        // The crux of Table 6: pick a budget between the TOC footprint and
        // the DEN footprint.
        let (x, y) = dataset();
        let toc_total =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Toc, 250, usize::MAX))
                .unwrap()
                .total_bytes();
        let budget = toc_total * 2;
        let toc =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Toc, 250, budget)).unwrap();
        let den =
            MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Den, 250, budget)).unwrap();
        assert_eq!(toc.spilled_batches(), 0);
        assert!(den.spilled_batches() > 0);
    }

    #[test]
    fn trainer_runs_over_spilled_store() {
        use toc_ml::mgd::{MgdConfig, ModelSpec, Trainer};
        use toc_ml::LossKind;
        let (x, y) = dataset();
        let store = MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Toc, 100, 0)).unwrap();
        let trainer = Trainer::new(MgdConfig {
            epochs: 8,
            lr: 0.3,
            ..Default::default()
        });
        let mut report = trainer.train(&ModelSpec::Linear(LossKind::Logistic), &store, None);
        let eval = Scheme::Den.encode(&x);
        let err = report.model.error_rate(&eval, &y);
        assert!(err < 0.25, "error {err}");
        assert!(store.stats.disk_reads.load(Ordering::Relaxed) >= 8 * 6);
    }

    #[test]
    fn spill_file_removed_on_drop() {
        let (x, y) = dataset();
        let store = MiniBatchStore::build(&x, &y, &StoreConfig::new(Scheme::Den, 200, 0)).unwrap();
        let path = store.spill_path.clone().unwrap();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists());
    }
}
